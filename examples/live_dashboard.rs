//! Live dashboard: mid-run telemetry over a streaming RMAT ingest.
//!
//! Drives an incremental degree-count over a Graph500 RMAT stream and,
//! while shards are still chewing on it, polls the cloneable
//! [`TelemetryHub`] for derived gauges — events/sec and ingested
//! updates/sec over sliding windows, per-shard queue depth, park ratio,
//! in-flight envelopes — the numbers an operator's dashboard would chart.
//! The engine runs with the adaptive data-path controller on, so the
//! final report also shows what it decided (coalescing toggles, batch
//! resizes) while the stream was live. After quiescence it
//! performs one Prometheus text-exposition scrape and one JSON scrape
//! against the same hub, exactly what a `/metrics` endpoint would serve.
//! The CI smoke job runs this bounded and asserts the scrape parses.
//!
//! Knobs (all optional):
//! - `REMO_DASH_SCALE`  — RMAT scale (default 13; edges ≈ 16 × 2^scale)
//! - `REMO_DASH_SHARDS` — shard threads (default 4)
//! - `REMO_DASH_TICKS`  — ingest chunks / dashboard refreshes (default 16)
//! - `REMO_DASH_QUERIES` — number of live queries (default 0 = a solo
//!   degree-count). When ≥ 1 the engine runs a [`QueryRegistry`] with a
//!   rotating BFS / CC / degree / SSSP mix attached, and the dashboard
//!   gains a per-query section — attached gauge, per-query envelope and
//!   update counters — scraped from the same hub the exporters serve
//!   (DESIGN.md §17)
//! - `REMO_DASH_WAL`    — directory for the durability layer; when set,
//!   every event is write-ahead logged and checkpointed, and the WAL /
//!   checkpoint / replay counters show up in both scrapes and the final
//!   report (default: off)
//! - `REMO_DASH_PLACEMENT` — `compact` or `scatter` pins shard threads to
//!   cores (NUMA-aware, see DESIGN.md §16); the per-shard seats show up in
//!   the dashboard header and both scrapes (default: unpinned)
//! - `REMO_DASH_TRACE` — `1` turns on causal update tracing
//!   ([`TraceConfig::on`]: 1-in-64 ingest sampling, DESIGN.md §18). The
//!   report gains a propagation-trace section — summary quantiles plus the
//!   deepest reconstructed tree, hop by hop — and the `remo_trace_*`
//!   families in both scrapes carry real samples (default: off)
//!
//! Independent of tracing, the final report always ends with a per-shard
//! utilization table (phase accounting is on by default): each shard's
//! busy wall decomposed into drain / process / flush / spin / park /
//! checkpoint / replay time.
//!
//! Run with: `cargo run --release --example live_dashboard`

use std::time::Duration;

use remo::core::Algorithm;
use remo::prelude::*;

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = env_or("REMO_DASH_SCALE", 13) as u32;
    let shards = env_or("REMO_DASH_SHARDS", 4) as usize;
    let ticks = env_or("REMO_DASH_TICKS", 16) as usize;
    let queries = env_or("REMO_DASH_QUERIES", 0) as usize;

    let cfg = RmatConfig {
        seed: 42,
        ..RmatConfig::graph500(scale)
    };
    let mut edges = remo::gen::rmat::generate(&cfg);
    remo::gen::stream::shuffle(&mut edges, 7);
    println!(
        "ingesting RMAT{scale} ({} edge events) over {shards} shards, {ticks} ticks\n",
        edges.len()
    );

    let mut config = EngineConfig::undirected(shards).with_adaptive();
    if let Ok(dir) = std::env::var("REMO_DASH_WAL") {
        println!("durability: WAL + checkpoints under {dir}");
        config = config.with_durability(DurabilityConfig::new(dir).fsync(false));
    }
    if std::env::var("REMO_DASH_TRACE").as_deref() == Ok("1") {
        println!("tracing: causal update tracing on (1-in-64 sampling)");
        config = config.with_tracing(TraceConfig::on());
    }
    let mut pinned = false;
    match std::env::var("REMO_DASH_PLACEMENT").as_deref() {
        Ok("compact") => {
            config = config.with_placement(PlacementPolicy::Compact);
            pinned = true;
        }
        Ok("scatter") => {
            config = config.with_placement(PlacementPolicy::Scatter);
            pinned = true;
        }
        Ok(other) => eprintln!("ignoring REMO_DASH_PLACEMENT={other} (want compact|scatter)"),
        Err(_) => {}
    }

    if queries > 0 {
        // Multi-query mode: one shared topology, `queries` live columns.
        let hub_vertex = edges[0].0;
        let reg = QueryRegistry::<u64>::new();
        let engine = Engine::new(reg.clone(), config);
        for i in 0..queries {
            match i % 4 {
                0 => reg.attach(&engine, DegreeCount, &[], &format!("degree-{i}")),
                1 => reg.attach(&engine, IncBfs, &[hub_vertex], &format!("bfs-{i}")),
                2 => reg.attach(&engine, IncCc, &[], &format!("cc-{i}")),
                _ => reg.attach(&engine, IncSssp, &[hub_vertex], &format!("sssp-{i}")),
            }
            .expect("attach");
        }
        println!("registry: {} live queries on one topology", reg.attached());
        drive(engine, &edges, ticks, pinned);
    } else {
        drive(Engine::new(DegreeCount, config), &edges, ticks, pinned);
    }
}

/// The dashboard loop itself is algorithm-agnostic: it only talks to the
/// engine's supervised API and its telemetry hub.
fn drive<A: Algorithm>(engine: Engine<A>, edges: &[(u64, u64)], ticks: usize, pinned: bool) {
    // The hub is a cheap clone-able handle: hand it to a dashboard thread,
    // an HTTP endpoint, or (here) poll it inline between ingest chunks.
    let hub = engine.telemetry();

    // Where did each shard land? −1 = unpinned (the default policy).
    // Seats reach the gauges via each shard's first idle publish, so give
    // freshly-spawned shards a bounded beat to report in.
    {
        let mut g = hub.gauges();
        let deadline = std::time::Instant::now() + Duration::from_millis(500);
        while pinned
            && g.pinned_core.iter().any(|&c| c < 0)
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
            g = hub.gauges();
        }
        let seats: Vec<String> = g
            .pinned_core
            .iter()
            .zip(&g.numa_node)
            .map(|(c, n)| {
                if *c < 0 {
                    "-".to_string()
                } else {
                    format!("cpu{c}/node{n}")
                }
            })
            .collect();
        println!("placement: [{}]", seats.join(" "));
    }

    println!(
        "{:>4}  {:>12}  {:>10}  {:>10}  {:>9}  {:>10}  {:>7}  queue depths",
        "tick", "processed", "events/s", "updates/s", "in-flight", "backlog", "park%"
    );
    let chunk = edges.len().div_ceil(ticks.max(1));
    for (i, batch) in edges.chunks(chunk).enumerate() {
        engine.try_ingest_pairs(batch).expect("ingest");
        // Shards drain in the background; give the sliding window a beat
        // so consecutive polls straddle real progress.
        std::thread::sleep(Duration::from_millis(40));
        let g = hub.gauges();
        let depths: Vec<String> = g.queue_depth.iter().map(|d| d.to_string()).collect();
        println!(
            "{i:>4}  {:>12}  {:>10.0}  {:>10.0}  {:>9}  {:>10}  {:>6.2}%  [{}]",
            g.events_processed,
            g.events_per_sec,
            g.updates_per_sec,
            g.in_flight,
            g.ingest_backlog,
            100.0 * g.park_ratio,
            depths.join(" ")
        );
    }

    engine.try_await_quiescence().expect("quiescence");

    // The per-query section, present whenever a registry is live: the
    // same rows the exporters serialize, straight off the hub.
    if let Some(src) = hub.query_source() {
        println!("\n--- live queries ({} attached) ---", src.queries_attached());
        println!(
            "{:>4}  {:<12}  {:>14}  {:>14}",
            "slot", "query", "envelopes", "updates"
        );
        for row in src.query_rows() {
            println!(
                "{:>4}  {:<12}  {:>14}  {:>14}",
                row.slot, row.name, row.envelopes_sent, row.updates_applied
            );
        }
    }

    // The trace section, present whenever causal tracing is on: summary
    // quantiles over every reconstructed propagation tree, then the
    // deepest tree hop by hop — "what did update X touch, and where did
    // its latency go" for one concrete X (DESIGN.md §18).
    let traces = engine.traces_now();
    if !traces.is_empty() {
        let ts = engine.trace_summary();
        println!("\n--- propagation traces ({} observed) ---", ts.observed);
        println!(
            "fixpoint p50/p99: {:.1}/{:.1} us  hops p50/p99: {:.0}/{:.0}  \
             amplification p50/p99: {:.0}/{:.0}  cross-shard {}  cross-numa {}",
            ts.fixpoint.quantile_ns(0.50) / 1_000.0,
            ts.fixpoint.quantile_ns(0.99) / 1_000.0,
            ts.hops.quantile_ns(0.50),
            ts.hops.quantile_ns(0.99),
            ts.amplification.quantile_ns(0.50),
            ts.amplification.quantile_ns(0.99),
            ts.cross_shard_hops,
            ts.cross_numa_hops
        );
        if let Some(t) = traces
            .iter()
            .max_by_key(|t| (t.depth, t.amplification, t.id))
        {
            println!(
                "deepest tree: trace {} root {}->{} @shard {}  depth {}  \
                 amplification {}  processed {}  fixpoint {:.1} us",
                t.id,
                t.src,
                t.dst,
                t.root_shard,
                t.depth,
                t.amplification,
                t.processed,
                t.fixpoint_ns as f64 / 1_000.0
            );
            for h in &t.hops {
                println!(
                    "  hop {:>2}: sent {:>4}  processed {:>4}  absorbed {:>3}  \
                     dominated {:>3}  suppressed {:>3}  replayed {:>3}  transit {:.1} us",
                    h.hop,
                    h.sent,
                    h.processed,
                    h.absorbed,
                    h.dominated,
                    h.suppressed,
                    h.replayed,
                    h.transit_ns as f64 / 1_000.0
                );
            }
        }
    }

    // One scrape of each exporter against the still-live engine — the
    // same strings a `/metrics` (Prometheus) or `/metrics.json` endpoint
    // would serve. The smoke job greps these sections.
    println!("\n--- prometheus scrape ---");
    print!("{}", hub.render_prometheus());
    println!("--- json scrape ---");
    println!("{}", hub.render_json());

    let result = engine.try_finish().expect("finish");
    let m = &result.metrics;
    m.verify_balance().expect("envelope balance");
    let (p50, p99, p999) = m.service.quantiles_us();
    let (q50, q99, _) = m.quiesce.quantiles_us();
    println!("--- final ---");
    println!(
        "vertices {}  edges {}  events {}  amplification {:.2}",
        result.num_vertices,
        result.num_edges,
        m.total().events_processed(),
        m.amplification()
    );
    println!(
        "service time p50/p99/p999: {p50:.1}/{p99:.1}/{p999:.1} us \
         ({} samples)  quiesce p50/p99: {q50:.0}/{q99:.0} us",
        m.service.count
    );
    let t = m.total();
    println!(
        "adaptive: {} decisions (coalesce +{}/-{}, batch x2 {} / half {}), \
         {} deferred flushes",
        t.adaptive_decisions,
        t.adaptive_coalesce_on,
        t.adaptive_coalesce_off,
        t.adaptive_batch_grow,
        t.adaptive_batch_shrink,
        t.flush_deferrals
    );
    if t.wal_records_appended > 0 {
        let (c50, c99, _) = m.checkpoint.quantiles_us();
        println!(
            "durability: {} WAL records / {} bytes, {} checkpoints \
             (p50/p99 {c50:.0}/{c99:.0} us), {} replayed, {} respawns",
            t.wal_records_appended,
            t.wal_bytes,
            t.checkpoints_written,
            t.replayed_records,
            t.shard_respawns
        );
    }

    // Where did each shard's wall clock go? Phase accounting is on by
    // default; every busy nanosecond lands in exactly one phase, so the
    // row sums to ~100% of the shard's busy wall (DESIGN.md §18).
    if m.per_shard.iter().any(|s| s.phase_busy_ns > 0) {
        println!("--- per-shard utilization ---");
        println!(
            "{:>5}  {:>9}  {:>6}  {:>6}  {:>6}  {:>6}  {:>6}  {:>6}  {:>6}",
            "shard", "busy_ms", "drain%", "proc%", "flush%", "spin%", "park%", "ckpt%", "replay%"
        );
        for (i, s) in m.per_shard.iter().enumerate() {
            let busy = s.phase_busy_ns.max(1) as f64;
            let pct = |ns: u64| 100.0 * ns as f64 / busy;
            println!(
                "{i:>5}  {:>9.1}  {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}",
                s.phase_busy_ns as f64 / 1e6,
                pct(s.phase_drain_ns),
                pct(s.phase_process_ns),
                pct(s.phase_flush_ns),
                pct(s.phase_spin_ns),
                pct(s.phase_park_ns),
                pct(s.phase_checkpoint_ns),
                pct(s.phase_replay_ns),
            );
        }
    }
}
