//! Social-network reachability: live connected components over a growing
//! friendship graph, with on-the-fly global snapshots.
//!
//! The paper's "observable problem solution" framing (§I): instead of the
//! static "what are the components?", the dynamic system maintains "what are
//! the components *right now*?" — and can discretize that answer at any
//! moment (§III-D) without stopping the stream. This example watches a
//! social graph grow and reports, at each snapshot, how consolidated the
//! network is (size of the giant component, number of components), exactly
//! the kind of evolving-structure dashboards the introduction motivates.
//!
//! Run with: `cargo run --release --example social_reachability`

use remo::prelude::*;
use std::collections::HashMap;

fn main() {
    let people = 30_000u64;
    let mut friendships = remo::gen::social::generate(&remo::gen::SocialConfig {
        num_vertices: people,
        edges_per_vertex: 3,
        seed: 2024,
    });
    remo::gen::stream::shuffle(&mut friendships, 5);
    println!(
        "friendship stream: {} edges among up to {people} people",
        friendships.len()
    );

    let mut engine = Engine::new(IncCc, EngineConfig::undirected(4));

    let intervals = 5;
    let chunk = friendships.len() / intervals;
    for i in 0..intervals {
        let lo = i * chunk;
        let hi = if i + 1 == intervals {
            friendships.len()
        } else {
            lo + chunk
        };
        engine.try_ingest_pairs(&friendships[lo..hi]).unwrap();
        engine.try_await_quiescence().unwrap(); // settle this interval for a crisp row
                                                // Continuous global-state collection (would also work mid-flight,
                                                // as the quickstart example shows).
        let snap = engine.try_snapshot().unwrap();
        let mut sizes: HashMap<u64, usize> = HashMap::new();
        for (_, &label) in snap.iter() {
            *sizes.entry(label).or_default() += 1;
        }
        let giant = sizes.values().copied().max().unwrap_or(0);
        println!(
            "after {:>7} edges: {:>6} people seen, {:>5} components, giant component {:>6} ({:.1}%)",
            hi,
            snap.len(),
            sizes.len(),
            giant,
            100.0 * giant as f64 / snap.len().max(1) as f64
        );
    }

    // Final answer and a point query: are two arbitrary people connected?
    let result = engine.try_finish().unwrap();
    let (a, b) = (100u64, 29_000u64);
    let connected = match (result.states.get(a), result.states.get(b)) {
        (Some(la), Some(lb)) => la == lb,
        _ => false,
    };
    println!("point query: are {a} and {b} in the same community? {connected}");
    println!(
        "engine totals: {} events processed for {} topology events",
        result.metrics.total().events_processed(),
        result.metrics.total().topo_ingested
    );
}
