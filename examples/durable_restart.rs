//! Durable restart: per-shard WAL + checkpoints surviving a hard crash.
//!
//! Connected components (`IncCc`) over a deterministic RMAT stream, with
//! the engine's durability layer enabled: every accepted event is
//! CRC-framed into a per-shard write-ahead log and the dense state arena
//! is checkpointed periodically, so a killed process can reopen the same
//! directory and converge to the identical fixpoint.
//!
//! Because every REMO algorithm is monotone and join-idempotent, replay
//! is at-least-once: the resume path simply re-ingests the full stream on
//! top of the recovered state and the fixpoint is unchanged.
//!
//! Modes (first CLI argument):
//!
//! - `baseline`         — no durability; prints the reference fixpoint.
//! - `ingest <dir>`     — durable run (fsync on) that streams slowly in
//!   chunks, leaving a wide window for `kill -9`; prints the fixpoint if
//!   it survives to the end.
//! - `resume <dir>`     — reopens `<dir>` (checkpoint restore + WAL
//!   replay), re-ingests the stream, prints the fixpoint. CI kills
//!   `ingest` mid-stream and asserts this line equals `baseline`'s.
//! - `demo` (default)   — self-contained tour: baseline, then a durable
//!   run that loses a shard mid-stream and recovers in place, then a
//!   cold restart over the same directory; asserts all three fixpoints
//!   are identical.
//!
//! Run with: `cargo run --release --example durable_restart [mode] [dir]`

use std::path::PathBuf;
use std::time::Duration;

use remo::core::FaultPlan;
use remo::prelude::*;

/// The deterministic workload every mode shares: scale-12 RMAT
/// (Graph500 parameters), shuffled with a fixed seed. Two processes
/// running days apart produce byte-identical streams.
fn stream() -> Vec<(VertexId, VertexId)> {
    let cfg = RmatConfig::graph500(12);
    let mut edges = remo::gen::rmat::generate(&cfg);
    remo::gen::stream::shuffle(&mut edges, 7);
    edges
}

fn config(shards: usize) -> EngineConfig {
    EngineConfig {
        quiescence_deadline: Some(Duration::from_secs(60)),
        query_deadline: Some(Duration::from_secs(60)),
        ..EngineConfig::undirected(shards)
    }
}

/// FNV-1a over the sorted `(vertex, state)` pairs: one `u64` that two
/// independent processes can compare with `grep fixpoint`.
fn fixpoint_hash(states: &Snapshot<u64>) -> u64 {
    let mut pairs: Vec<(VertexId, u64)> = states.iter().map(|(v, s)| (v, *s)).collect();
    pairs.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (v, s) in pairs {
        for b in v.to_le_bytes().into_iter().chain(s.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Drains the engine and prints the machine-readable fixpoint line CI
/// greps for, plus the durability counters behind it.
fn finish_and_report(engine: Engine<IncCc>) -> u64 {
    let result = engine.try_finish().expect("harvest failed");
    assert!(!result.is_degraded(), "run degraded: {:?}", result.failures);
    let total = result.metrics.total();
    let hash = fixpoint_hash(&result.states);
    println!(
        "durability: {} WAL records ({} bytes), {} checkpoints, {} replayed, {} respawns",
        total.wal_records_appended,
        total.wal_bytes,
        total.checkpoints_written,
        total.replayed_records,
        total.shard_respawns
    );
    println!("fixpoint {hash:016x} over {} vertices", result.num_vertices);
    hash
}

fn run_baseline(edges: &[(VertexId, VertexId)]) -> u64 {
    let engine = Engine::new(IncCc, config(4));
    engine.try_ingest_pairs(edges).unwrap();
    engine.try_await_quiescence().unwrap();
    finish_and_report(engine)
}

/// Slow durable ingest: chunked with short sleeps so an external
/// `kill -9` lands mid-stream with high probability. fsync is ON — the
/// WAL tail on disk is exactly what the kernel was told to persist.
fn run_ingest(edges: &[(VertexId, VertexId)], dir: &PathBuf) -> u64 {
    let cfg = config(4).with_durability(DurabilityConfig::new(dir).checkpoint_every(4096));
    let engine = Engine::open(IncCc, cfg).expect("open durable dir");
    println!("ingesting {} events into {}", edges.len(), dir.display());
    for (i, chunk) in edges.chunks(2048).enumerate() {
        engine.try_ingest_pairs(chunk).unwrap();
        if i % 8 == 0 {
            println!("  chunk {i}: {} events in", (i + 1) * 2048);
        }
        std::thread::sleep(Duration::from_millis(15));
    }
    engine.try_await_quiescence().unwrap();
    finish_and_report(engine)
}

/// Cold restart: reopen the directory (each shard restores its latest
/// checkpoint and replays its WAL tail during startup), then re-ingest
/// the whole stream — duplicates are absorbed by the monotone join.
fn run_resume(edges: &[(VertexId, VertexId)], dir: &PathBuf) -> u64 {
    let cfg = config(4).with_durability(DurabilityConfig::new(dir).checkpoint_every(4096));
    let engine = Engine::open(IncCc, cfg).expect("open durable dir");
    println!("reopened {}; re-ingesting the full stream", dir.display());
    engine.try_ingest_pairs(edges).unwrap();
    engine.try_await_quiescence().unwrap();
    finish_and_report(engine)
}

/// In-process tour of both recovery paths.
fn run_demo(edges: &[(VertexId, VertexId)]) {
    println!("== baseline (no durability) ==");
    let want = run_baseline(edges);

    let dir = std::env::temp_dir().join(format!("remo-durable-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    println!("\n== durable run, shard 2 panics mid-stream, warm recovery ==");
    let cfg = config(4)
        .with_durability(
            DurabilityConfig::new(&dir)
                .checkpoint_every(4096)
                .fsync(false),
        )
        .with_fault_plan(FaultPlan::panic_shard_at(2, 5_000));
    let engine = Engine::open(IncCc, cfg).expect("open durable dir");
    engine.try_ingest_pairs(edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let warm = finish_and_report(engine);
    assert_eq!(warm, want, "warm recovery diverged from baseline");

    println!("\n== cold restart over the same directory ==");
    let cold = run_resume(edges, &dir);
    assert_eq!(cold, want, "cold restart diverged from baseline");

    let _ = std::fs::remove_dir_all(&dir);
    println!("\nall three fixpoints identical: {want:016x}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map(String::as_str).unwrap_or("demo");
    let edges = stream();
    println!(
        "workload: RMAT scale 12 — {} edge events, IncCc, 4 shards",
        edges.len()
    );
    match mode {
        "baseline" => {
            run_baseline(&edges);
        }
        "ingest" => {
            let dir = PathBuf::from(args.get(2).expect("usage: ingest <dir>"));
            run_ingest(&edges, &dir);
        }
        "resume" => {
            let dir = PathBuf::from(args.get(2).expect("usage: resume <dir>"));
            run_resume(&edges, &dir);
        }
        "demo" => run_demo(&edges),
        other => {
            eprintln!("unknown mode {other:?}; expected baseline|ingest|resume|demo");
            std::process::exit(2);
        }
    }
}
