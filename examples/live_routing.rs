//! Live routing: incremental SSSP over an evolving road network, plus a
//! road-closure scenario handled by generational state (§VI-B).
//!
//! Part 1 — roads open over time (edge additions with weights): the SSSP
//! state at every junction is the live cost of the best route to the depot;
//! a new shortcut repairs downstream costs automatically (Algorithm 5).
//!
//! Part 2 — a road closes (edge deletion): deletions break monotonicity, so
//! the generational BFS bumps the state generation and re-floods, exactly
//! the paper's sketched strategy. Old-generation values are recognizably
//! stale; the rebuilt tree reflects the closure.
//!
//! Run with: `cargo run --release --example live_routing`

use remo::algos::generational::level_in_generation;
use remo::prelude::*;

fn main() {
    // A small-world road network: mostly local connections plus a few long
    // highways — Watts-Strogatz is the classic model for that.
    let junctions = 10_000u64;
    let roads = remo::gen::random::watts_strogatz(&remo::gen::random::WsConfig {
        num_vertices: junctions,
        k: 3,
        beta: 0.05,
        seed: 77,
    });
    let weighted = remo::gen::stream::with_weights(&roads, 9, 3);
    println!(
        "road network: {} junctions, {} road segments",
        junctions,
        weighted.len()
    );

    // ---- Part 1: live SSSP while roads open ----
    let depot = 0u64;
    let engine = Engine::new(IncSssp, EngineConfig::undirected(4));
    engine.try_init_vertex(depot).unwrap();

    let (phase1, phase2) = weighted.split_at(weighted.len() / 2);
    engine.try_ingest_weighted(phase1).unwrap();
    engine.try_await_quiescence().unwrap();
    let probe = junctions / 2;
    let before = engine.try_collect_live().unwrap().get(probe).copied();

    engine.try_ingest_weighted(phase2).unwrap();
    let result = engine.try_finish().unwrap();
    let after = result.states.get(probe).copied();
    println!(
        "junction {probe}: route cost with half the roads {:?} -> all roads {:?}",
        before, after
    );
    let reachable = result
        .states
        .iter()
        .filter(|(_, &c)| c != remo::algos::UNREACHED && c != 0)
        .count();
    println!(
        "depot reaches {reachable}/{} junctions",
        result.num_vertices
    );

    // ---- Part 2: a closure, handled generationally ----
    println!("\n-- road closure (generational rebuild, §VI-B) --");
    let (algo, generation) = GenBfs::new();
    let engine = Engine::new(algo, EngineConfig::undirected(4));
    engine.try_init_vertex(depot).unwrap();
    // A corridor 0-1-2-3-4 plus a detour 0-10-11-12-4.
    engine
        .try_ingest_pairs(&[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (0, 10),
            (10, 11),
            (11, 12),
            (12, 4),
        ])
        .unwrap();
    engine.try_await_quiescence().unwrap();
    let g0 = generation.current();
    let hops = |s: Option<&remo::algos::GenLevel>, g: u32| {
        s.map(|&st| level_in_generation(st, g))
            .unwrap_or(remo::algos::UNREACHED)
    };
    let live = engine.try_collect_live().unwrap();
    println!("junction 4 before closure: {} hops", hops(live.get(4), g0));

    // Close segment 1-2; bump the generation; re-flood from the depot.
    engine.try_delete_pairs(&[(1, 2)]).unwrap();
    engine.try_await_quiescence().unwrap();
    let g1 = generation.bump();
    engine.try_init_vertex(depot).unwrap();
    let result = engine.try_finish().unwrap();
    let after_closure = hops(result.states.get(4), g1);
    println!("junction 4 after closure:  {after_closure} hops (via the detour)");
    assert_eq!(after_closure, 5, "detour is 0-10-11-12-4: five levels");
    let stranded = hops(result.states.get(2), g1) == remo::algos::UNREACHED
        || hops(result.states.get(2), g1) > 3;
    println!("junction 2 rerouted or stranded correctly: {stranded}");
}
