//! Incremental attack-graph reachability, live, via the query registry.
//!
//! A security team's attack graph is never finished: network scans keep
//! discovering links (host A can talk to host B), and each discovery can
//! silently extend an attacker's reach. Recomputing reachability from
//! scratch per discovery is exactly the batch-processing trap the paper
//! argues against — here the whole pipeline is incremental instead, and
//! the [`QueryRegistry`] (DESIGN.md §17) keeps several analyses live on
//! **one** shared copy of the topology:
//!
//! - `exposure` — multi S-T connectivity ([`IncStCon`]) from the
//!   internet-facing entry points: which hosts can an attacker starting
//!   at any entry point currently reach, and from which entries?
//! - `blast`    — BFS hop count from the primary gateway: how deep does a
//!   perimeter breach cut?
//! - `pivot`    — degree tracking: the highly connected hosts an attacker
//!   would pivot through (and a defender should harden first).
//!
//! Mid-scan, an incident responder declares a freshly disclosed CVE makes
//! two internal hosts attacker-controlled. The team attaches a *new*
//! `cve` connectivity query seeded at those hosts **live**: the registry
//! backfills its column from the adjacency the shards already store — the
//! scan stream is not replayed — and every later discovery updates it
//! incrementally like the others. A "When" trigger (§III-E) pages on the
//! compound condition "reachable from an entry point AND within 3 hops of
//! the gateway": it fires at most once per host, the moment some
//! discovery first satisfies it.
//!
//! Run with: `cargo run --release --example attack_graph`

use remo::prelude::*;

fn main() {
    // The "network": a scale-free topology whose edge events arrive in
    // scan-discovery order (shuffled — scans find links in no useful
    // order).
    let mut discoveries = Dataset::TwitterLike.generate(0.15, 2024);
    remo::gen::stream::shuffle(&mut discoveries, 5);

    // Internet-facing entry points: the first few distinct hosts the scan
    // saw (a DMZ is small); the primary gateway is the first of them.
    let mut entries: Vec<u64> = Vec::new();
    for &(a, b) in &discoveries {
        for v in [a, b] {
            if !entries.contains(&v) {
                entries.push(v);
            }
            if entries.len() == 4 {
                break;
            }
        }
        if entries.len() == 4 {
            break;
        }
    }
    let gateway = entries[0];
    println!(
        "attack surface: {} reachability discoveries, entry points {entries:?}, gateway {gateway}",
        discoveries.len()
    );

    // One engine, one shared topology, N live analyses.
    let reg = QueryRegistry::<u64>::new();
    let mut builder = EngineBuilder::new(reg.clone(), EngineConfig::undirected(4));
    // Slot 0 = exposure mask, slot 1 = gateway hop count (attach order
    // below): page when a host is attacker-reachable AND shallow.
    builder.trigger("attacker-reachable within 3 hops of gateway", |_, s: &RegPayload<u64>| {
        let exposed = s.cell(0).copied().unwrap_or(0) != 0;
        let hops = s.cell(1).copied().unwrap_or(0);
        exposed && hops > 0 && hops <= 3
    });
    let engine = builder.build();
    let exposure = reg
        .attach(&engine, IncStCon::new(entries.clone()), &entries, "exposure")
        .unwrap();
    let blast = reg.attach(&engine, IncBfs, &[gateway], "blast").unwrap();
    let pivot = reg.attach(&engine, DegreeCount, &[], "pivot").unwrap();

    // The scan streams in; all three analyses stay current throughout.
    let cut = discoveries.len() / 2;
    engine.try_ingest_pairs(&discoveries[..cut]).unwrap();
    engine.try_await_quiescence().unwrap();

    // Incident: a CVE drops, two mid-scan hosts are now presumed
    // compromised. Attach a fresh connectivity query seeded there — LIVE.
    // Backfill replays the stored adjacency inside each shard; the first
    // half of the scan is not re-ingested.
    let compromised = vec![discoveries[cut].0, discoveries[cut + 1].1];
    let cve = reg
        .attach(
            &engine,
            IncStCon::new(compromised.clone()),
            &compromised,
            "cve",
        )
        .unwrap();
    println!(
        "CVE response: attached live query from presumed-compromised hosts {compromised:?} \
         after {cut} discoveries ({} analyses on one topology)",
        reg.attached()
    );

    engine.try_ingest_pairs(&discoveries[cut..]).unwrap();
    engine.try_await_quiescence().unwrap();

    let pages = engine.trigger_events().try_iter().count();
    println!("pager: {pages} hosts became attacker-reachable within 3 hops of the gateway");

    // Harvest every analysis from the single run.
    let result = engine.try_finish().unwrap();
    let exposure_states = reg.project(&result.states, exposure);
    let blast_states = reg.project(&result.states, blast);
    let pivot_states = reg.project(&result.states, pivot);
    let cve_states = reg.project(&result.states, cve);

    let hosts = result.num_vertices;
    let exposed = exposure_states.iter().filter(|(_, m)| **m != 0).count();
    let fully = exposure_states
        .iter()
        .filter(|(_, m)| m.count_ones() as usize == entries.len())
        .count();
    let deep = blast_states
        .iter()
        .filter(|(_, l)| **l != 0 && **l != u64::MAX)
        .map(|(_, l)| *l)
        .max()
        .unwrap_or(0);
    let (hub, hub_deg) = pivot_states
        .iter()
        .max_by_key(|(_, d)| **d)
        .map(|(v, d)| (v, *d))
        .unwrap_or((0, 0));
    let cve_reach = cve_states.iter().filter(|(_, m)| **m != 0).count();

    println!("exposure: {exposed}/{hosts} hosts reachable from some entry point ({fully} from all {})", entries.len());
    println!("blast:    deepest reachable host is {deep} hops behind the gateway");
    println!("pivot:    host {hub} is the biggest pivot risk ({hub_deg} links)");
    println!("cve:      the mid-scan compromise reaches {cve_reach}/{hosts} hosts");
    for (id, name) in [(exposure, "exposure"), (blast, "blast"), (pivot, "pivot"), (cve, "cve")] {
        if let Some((envs, upds)) = reg.query_counters(id) {
            println!("  [{name:<8}] {envs:>9} envelopes sent, {upds:>9} updates applied");
        }
    }
    println!(
        "one topology, one run: {} discoveries drove all four analyses",
        result.metrics.total().topo_ingested
    );
}
