//! Multiple simultaneous queries on one dynamic graph.
//!
//! The paper's vision (§I): "multiple algorithms can be executed
//! simultaneously (i.e. maintain their state) on the same underlying
//! dynamic data structure, thus enabling support for multiple queries" — a
//! capability its prototype listed as future work (§III-F). The
//! [`QueryRegistry`] realizes it dynamically (DESIGN.md §17): BFS (how far
//! is everything from our hub?) and Connected Components (what communities
//! exist?) share one topology, one set of shards, and one message stream —
//! each with its own state column and per-query delta envelopes — with a
//! trigger over the combined local state. Halfway through the stream a
//! *third* query (degree tracking) attaches live: it backfills from the
//! adjacency the shards already store, no stream re-ingest, and from then
//! on rides the same topology events as everyone else.
//!
//! Run with: `cargo run --release --example multi_query`

use remo::prelude::*;
use std::collections::HashMap;

fn main() {
    let mut edges = Dataset::Sk2005Like.generate(0.2, 99);
    remo::gen::stream::shuffle(&mut edges, 12);
    let hub = edges[0].0;
    println!("workload: {} edge events; hub vertex {hub}", edges.len());

    // One engine, one registry. Attach order fixes the column slots:
    // BFS lands in slot 0, CC in slot 1 — the trigger below reads both.
    let hub_label = cc_label(hub);
    let reg = QueryRegistry::<u64>::new();
    let mut builder = EngineBuilder::new(reg.clone(), EngineConfig::undirected(4));
    builder.trigger(
        "close to hub AND in a big community",
        move |_, s: &RegPayload<u64>| {
            let level = s.cell(0).copied().unwrap_or(0);
            let label = s.cell(1).copied().unwrap_or(0);
            level > 0 && level <= 2 && label >= hub_label
        },
    );
    let engine = builder.build();
    let bfs = reg.attach(&engine, IncBfs, &[hub], "bfs").unwrap();
    let cc = reg.attach(&engine, IncCc, &[], "cc").unwrap();

    // First half of the stream: two live queries.
    let cut = edges.len() / 2;
    engine.try_ingest_pairs(&edges[..cut]).unwrap();
    engine.try_await_quiescence().unwrap();

    // A third query arrives mid-run. Attach backfills its column from the
    // adjacency each shard already stores — the first half of the stream
    // is NOT replayed through the engine.
    let deg = reg.attach(&engine, DegreeCount, &[], "degree").unwrap();
    println!(
        "attached 'degree' live after {cut} events ({} queries on one topology)",
        reg.attached()
    );

    engine.try_ingest_pairs(&edges[cut..]).unwrap();
    engine.try_await_quiescence().unwrap();

    let near_hub_alerts = engine.trigger_events().try_iter().count();
    println!("trigger: {near_hub_alerts} pages within 2 hops sharing a dominant community");

    // All three answers, live, from the same run.
    let result = engine.try_finish().unwrap();
    let bfs_states = reg.project(&result.states, bfs);
    let cc_states = reg.project(&result.states, cc);
    let deg_states = reg.project(&result.states, deg);

    let reached = bfs_states
        .iter()
        .filter(|(_, l)| **l != u64::MAX && **l != 0)
        .count();
    let mut communities: HashMap<u64, usize> = HashMap::new();
    for (_, label) in cc_states.iter() {
        *communities.entry(*label).or_default() += 1;
    }
    let giant = communities.values().max().copied().unwrap_or(0);
    let max_degree = deg_states.iter().map(|(_, d)| *d).max().unwrap_or(0);
    println!(
        "BFS query:    hub reaches {reached}/{} pages",
        result.num_vertices
    );
    println!(
        "CC query:     {} communities, giant community {giant} pages",
        communities.len()
    );
    println!("degree query: max degree {max_degree} (attached mid-stream)");
    for (id, name) in [(bfs, "bfs"), (cc, "cc"), (deg, "degree")] {
        if let Some((envs, upds)) = reg.query_counters(id) {
            println!("  [{name:<6}] {envs:>9} envelopes sent, {upds:>9} updates applied");
        }
    }
    println!(
        "one topology, one run: {} topology events drove all three answers",
        result.metrics.total().topo_ingested
    );
}
