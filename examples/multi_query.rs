//! Multiple simultaneous queries on one dynamic graph.
//!
//! The paper's vision (§I): "multiple algorithms can be executed
//! simultaneously (i.e. maintain their state) on the same underlying
//! dynamic data structure, thus enabling support for multiple queries" — a
//! capability its prototype listed as future work (§III-F). `Pair` composes
//! REMO algorithms: here BFS (how far is everything from our hub?) and
//! Connected Components (what communities exist?) share one topology, one
//! set of shards, and one message stream — with a trigger over the
//! *combined* local state.
//!
//! Run with: `cargo run --release --example multi_query`

use remo::core::Pair;
use remo::prelude::*;
use std::collections::HashMap;

fn main() {
    let mut edges = Dataset::Sk2005Like.generate(0.2, 99);
    remo::gen::stream::shuffle(&mut edges, 12);
    let hub = edges[0].0;
    println!("workload: {} edge events; hub vertex {hub}", edges.len());

    // One engine, two live algorithms, plus a trigger over the combined
    // local state: pages that are both close to the hub (BFS level <= 2)
    // and labelled into the hub's (eventually dominant) community.
    let hub_label = cc_label(hub);
    let mut builder = EngineBuilder::new(Pair::new(IncBfs, IncCc), EngineConfig::undirected(4));
    builder.trigger(
        "close to hub AND in a big community",
        move |_, (level, label): &(u64, u64)| *level <= 2 && *level > 0 && *label >= hub_label,
    );
    let engine = builder.build();
    engine.try_init_vertex(hub).unwrap();
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();

    let near_hub_alerts = engine.trigger_events().try_iter().count();
    println!("trigger: {near_hub_alerts} pages within 2 hops sharing a dominant community");

    // Both answers, live, from the same run.
    let result = engine.try_finish().unwrap();
    let reached = result
        .states
        .iter()
        .filter(|(_, (l, _))| *l != u64::MAX && *l != 0)
        .count();
    let mut communities: HashMap<u64, usize> = HashMap::new();
    for (_, (_, label)) in result.states.iter() {
        *communities.entry(*label).or_default() += 1;
    }
    let giant = communities.values().max().copied().unwrap_or(0);
    println!(
        "BFS query: hub reaches {reached}/{} pages",
        result.num_vertices
    );
    println!(
        "CC query:  {} communities, giant community {giant} pages",
        communities.len()
    );
    println!(
        "one topology, one run: {} topology events drove both answers",
        result.metrics.total().topo_ingested
    );
}
