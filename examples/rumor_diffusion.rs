//! Information diffusion: temporal reachability on a timestamped
//! interaction stream.
//!
//! Social interactions carry information only forward in time: a message
//! posted at time t spreads across an interaction at time τ only if τ >= t.
//! `IncTemporal` maintains every account's *earliest exposure time* to a
//! rumour seeded at one account, live, as interactions stream in — with a
//! trigger the moment any account on a watchlist is exposed. This is the
//! paper's "When" question (§II) on a temporal substrate.
//!
//! Run with: `cargo run --release --example rumor_diffusion`

use remo::prelude::*;

fn main() {
    // A preferential-attachment contact network; interaction timestamps
    // follow the generation order (later edges = later interactions),
    // which is how social streams actually arrive.
    let contacts = remo::gen::social::generate(&remo::gen::SocialConfig {
        num_vertices: 15_000,
        edges_per_vertex: 5,
        seed: 4242,
    });
    let interactions: Vec<(u64, u64, u64)> = contacts
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| (a, b, i as u64 + 2)) // timestamps >= 2
        .collect();
    println!(
        "interaction stream: {} timestamped contacts among 15000 accounts",
        interactions.len()
    );

    let patient_zero = interactions[100].0;
    let watchlist = [14_000u64, 14_500, 14_999];
    let mut builder = EngineBuilder::new(IncTemporal, EngineConfig::undirected(4));
    let wl: std::collections::HashSet<u64> = watchlist.into_iter().collect();
    builder.trigger("watchlisted account exposed", move |v, arrival: &u64| {
        *arrival != u64::MAX && *arrival > 0 && wl.contains(&v)
    });
    let engine = builder.build();
    engine.try_init_vertex(patient_zero).unwrap();
    println!("rumour seeded at account {patient_zero}");

    engine.try_ingest_weighted(&interactions).unwrap();
    engine.try_await_quiescence().unwrap();
    for fire in engine.trigger_events().try_iter() {
        println!("ALERT: watchlisted account {} exposed", fire.vertex);
    }

    let result = engine.try_finish().unwrap();
    let exposed: Vec<u64> = result
        .states
        .iter()
        .filter(|(_, &a)| a != u64::MAX && a != 0)
        .map(|(_, &a)| a)
        .collect();
    let latest = exposed.iter().max().copied().unwrap_or(0);
    println!(
        "diffusion: {}/{} accounts exposed; last exposure at interaction #{}",
        exposed.len(),
        result.num_vertices,
        latest
    );
    for w in watchlist {
        match result.states.get(w) {
            Some(&a) if a != u64::MAX && a != 0 => {
                println!("watchlist {w}: exposed at interaction #{a}")
            }
            _ => println!("watchlist {w}: never exposed"),
        }
    }
}
