//! Fraud detection: real-time "When" queries on a payment network.
//!
//! The paper's motivating scenario (§I, §III-E): a financial transaction
//! stream forms a graph; analysts flag suspicious accounts and want a
//! *real-time* callback the moment any monitored account gains a money-flow
//! path to a flagged one — not a batch job hours later. Multi S-T
//! connectivity (Algorithm 7) makes each account's local state the set of
//! flagged sources it is connected to; a trigger fires exactly once per
//! (account, condition) with no false positives (§III-E guarantees).
//!
//! Run with: `cargo run --release --example fraud_detection`

use remo::prelude::*;
use std::collections::HashSet;

fn main() {
    // Synthetic payment network: preferential attachment mimics the heavy
    // concentration of flows through exchanges/processors.
    let accounts = 20_000u64;
    let mut payments = remo::gen::social::generate(&remo::gen::SocialConfig {
        num_vertices: accounts,
        edges_per_vertex: 6,
        seed: 1234,
    });
    remo::gen::stream::shuffle(&mut payments, 99);
    println!(
        "payment stream: {} transfers among {accounts} accounts",
        payments.len()
    );

    // Three accounts flagged by an upstream system.
    let flagged: Vec<u64> = vec![17, 4242, 13_337];
    // Accounts our analysts are watching.
    let watchlist: HashSet<u64> = [100u64, 2_000, 9_999, 19_998].into_iter().collect();

    let mut builder =
        EngineBuilder::new(IncStCon::new(flagged.clone()), EngineConfig::undirected(4));
    let wl = watchlist.clone();
    builder.trigger(
        "watched account touched flagged funds",
        move |v, mask: &u64| *mask != 0 && wl.contains(&v),
    );
    let engine = builder.build();
    for &f in &flagged {
        engine.try_init_vertex(f).unwrap();
    }

    // Stream transactions in batches, reacting to alerts between batches —
    // in production the trigger channel would be consumed concurrently.
    let batch = payments.len() / 10;
    for (i, chunk) in payments.chunks(batch).enumerate() {
        engine.try_ingest_pairs(chunk).unwrap();
        engine.try_await_quiescence().unwrap();
        for fire in engine.trigger_events().try_iter() {
            println!(
                "ALERT (batch {i}): account {} now connected to flagged funds \
                 (observed at shard {} event #{})",
                fire.vertex, fire.shard, fire.seq
            );
        }
    }

    // Drain late alerts after the stream settles, then shut down.
    engine.try_await_quiescence().unwrap();
    for fire in engine.trigger_events().try_iter() {
        println!(
            "ALERT (final): account {} now connected to flagged funds",
            fire.vertex
        );
    }
    let result = engine.try_finish().unwrap();
    let tainted = result.states.iter().filter(|(_, &m)| m != 0).count();
    println!(
        "final: {tainted}/{} accounts transitively connected to flagged funds",
        result.num_vertices
    );
    for &w in &watchlist {
        let mask = result.states.get(w).copied().unwrap_or(0);
        let sources: Vec<u64> = flagged
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &s)| s)
            .collect();
        println!("watchlist account {w}: connected to flagged {sources:?}");
    }
    assert_eq!(
        result.metrics.total().triggers_fired as usize,
        result
            .states
            .iter()
            .filter(|(v, &m)| m != 0 && watchlist.contains(v))
            .count(),
        "exactly-once firing"
    );
}
