//! Quickstart: live BFS over a dynamically constructed graph.
//!
//! Demonstrates the core loop of the paper: ingest an edge stream while an
//! algorithm maintains its answer, snapshot global state mid-stream without
//! pausing ingestion, and read the final converged result.
//!
//! Run with: `cargo run --release --example quickstart`

use remo::prelude::*;

fn main() {
    // A scale-12 RMAT graph (Graph500 parameters), ~65k directed edge events.
    let cfg = RmatConfig::graph500(12);
    let mut edges = remo::gen::rmat::generate(&cfg);
    remo::gen::stream::shuffle(&mut edges, 7);
    println!(
        "workload: RMAT scale {} — {} vertices, {} edge events",
        cfg.scale,
        cfg.num_vertices(),
        edges.len()
    );

    // Engine: 4 shared-nothing shards, undirected edges, live BFS hooked in.
    let mut engine = Engine::new(IncBfs, EngineConfig::undirected(4));
    let source = edges[0].0;
    engine.try_init_vertex(source).unwrap();
    println!("BFS source: vertex {source}");

    // Stream the first half, let it settle, then snapshot on the fly while
    // the second half is already flowing — ingestion is never paused.
    let (first, second) = edges.split_at(edges.len() / 2);
    engine.try_ingest_pairs(first).unwrap();
    engine.try_await_quiescence().unwrap();
    engine.try_ingest_pairs(second).unwrap();
    let snap = engine.try_snapshot().unwrap();
    println!(
        "mid-stream snapshot (epoch {}): {} vertices captured, no pause",
        snap.epoch,
        snap.len()
    );

    // Query local state at any time: how far is some vertex right now?
    let probe = edges[42].1;
    let live = engine.try_collect_live().unwrap();
    println!(
        "live query: vertex {probe} is currently at BFS level {:?}",
        live.get(probe)
    );

    // Drain and inspect.
    let result = engine.try_finish().unwrap();
    let reached = result
        .states
        .iter()
        .filter(|(_, &l)| l != remo::algos::UNREACHED)
        .count();
    let max_level = result
        .states
        .iter()
        .map(|(_, &l)| l)
        .filter(|&l| l != remo::algos::UNREACHED)
        .max()
        .unwrap_or(0);
    let total = result.metrics.total();
    println!(
        "final: {reached}/{} vertices reached, eccentricity {max_level}",
        result.num_vertices
    );
    println!(
        "engine: {} topology events, {} algorithmic events, amplification {:.2}x",
        total.topo_ingested,
        total.events_processed(),
        result.metrics.amplification()
    );
}
