//! Hashing primitives shared by the storage layer and the partitioner.
//!
//! The paper's infrastructure assigns a vertex `V` to a process via
//! `hash(V) mod P` (consistent hashing, §III-C) and its DegAwareRHH store
//! uses open addressing with Robin Hood hashing (§III-B). Both need a fast,
//! well-mixing integer hash. We use the finalizer of SplitMix64 / Murmur3's
//! 64-bit avalanche, which passes standard avalanche tests and is effectively
//! free compared to SipHash for integer keys (see the Rust Performance Book's
//! guidance on hashing integer keys).

/// A 64-bit finalizer with full avalanche: every input bit flips each output
/// bit with probability ~1/2. Deterministic across runs and platforms.
#[inline(always)]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hash used by the vertex partitioner. Kept distinct from [`mix64`] so that
/// the partition function and the in-table hash can be re-seeded
/// independently without correlating bucket placement with shard placement.
#[inline(always)]
pub fn partition_hash(x: u64) -> u64 {
    // xor with a distinct odd constant before mixing de-correlates the two
    // hash streams.
    mix64(x ^ 0x9e37_79b9_7f4a_7c15)
}

/// Trait for keys usable in the Robin Hood table.
///
/// The storage layer only ever keys by integer identifiers (vertex ids,
/// neighbour ids), so a dedicated trait with a direct `hash64` beats going
/// through `std::hash::Hasher` machinery.
pub trait Key64: Copy + Eq {
    /// Full-width hash of the key.
    fn hash64(self) -> u64;
}

impl Key64 for u64 {
    #[inline(always)]
    fn hash64(self) -> u64 {
        mix64(self)
    }
}

impl Key64 for u32 {
    #[inline(always)]
    fn hash64(self) -> u64 {
        mix64(self as u64)
    }
}

impl Key64 for (u64, u64) {
    #[inline(always)]
    fn hash64(self) -> u64 {
        // Combine with a rotation so (a, b) and (b, a) hash differently.
        mix64(self.0 ^ self.1.rotate_left(32) ^ 0xd6e8_feb8_6659_fd93)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(0), mix64(0));
        assert_eq!(mix64(12345), mix64(12345));
    }

    #[test]
    fn mix64_zero_is_not_zero_fixed_point_neighbourhood() {
        // mix64(0) == 0 (SplitMix finalizer maps 0 to 0); every other small
        // input must avalanche away from its identity.
        for i in 1u64..1000 {
            assert_ne!(mix64(i), i, "identity fixed point at {i}");
        }
    }

    #[test]
    fn mix64_spreads_low_bits() {
        // Sequential keys must not collide in their low bits (these select
        // the bucket in a power-of-two table).
        let mask = 0xfffu64;
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..1024 {
            seen.insert(mix64(i) & mask);
        }
        // With 4096 buckets and 1024 balls, expect ~890 distinct under a
        // uniform hash; require a loose lower bound.
        assert!(
            seen.len() > 700,
            "only {} distinct low-bit patterns",
            seen.len()
        );
    }

    #[test]
    fn partition_hash_differs_from_mix64() {
        let mut same = 0;
        for i in 0u64..1000 {
            if partition_hash(i) == mix64(i) {
                same += 1;
            }
        }
        assert_eq!(same, 0);
    }

    #[test]
    fn pair_key_is_order_sensitive() {
        assert_ne!((1u64, 2u64).hash64(), (2u64, 1u64).hash64());
    }

    #[test]
    fn partition_hash_balances_mod_small_p() {
        // Check the consistent-hashing use: hash(V) mod P should be roughly
        // balanced for sequential vertex ids.
        for p in [2usize, 3, 7, 8] {
            let mut counts = vec![0usize; p];
            for v in 0u64..10_000 {
                counts[(partition_hash(v) % p as u64) as usize] += 1;
            }
            let min = *counts.iter().min().unwrap();
            let max = *counts.iter().max().unwrap();
            assert!(max - min < 10_000 / p, "imbalance for P={p}: {counts:?}");
        }
    }
}
