//! Dense vertex interning and arena-backed (structure-of-arrays) storage.
//!
//! The per-event cost floor of the shard hot path is one full Robin Hood
//! probe on the 64-bit global [`VertexId`] *per table access*, into records
//! that interleave algorithm state with adjacency headers. This module
//! splits that into two levels, following the locality discipline the paper
//! chose DegAwareRHH for (§III-B) and that RisGraph-style systems show is
//! what sub-millisecond per-update analysis hinges on:
//!
//! 1. an **interning table** ([`InternTable`]): `RhhMap<VertexId, u32>`,
//!    probed once per delivered event, mapping the sparse global id to a
//!    shard-local dense index;
//! 2. a **record slab** indexed by that dense id ([`DenseVertexTable`]): a
//!    `Vec` of per-vertex records, each a hot payload (a bare live state,
//!    or a packed state + meta-word — the engine's choice) stored
//!    *contiguously with* its [`Adjacency`]. Every subsequent access
//!    within the event is a direct array index, and because nearly every
//!    event that changes state also scans the adjacency (`update_nbrs`),
//!    keeping the two in one record means that touch is a single
//!    contiguous ~56-byte region instead of two slab loads in distinct
//!    cache lines. (An earlier structure-of-arrays split of state and
//!    adjacency into separate `Vec`s measured ~20% slower per event
//!    end-to-end for exactly this reason.)
//!
//! Dense indices are *stable for the lifetime of the table* (vertices are
//! never evicted — matching the engine, where a touched vertex keeps its
//! record until shutdown), so callers may hold a [`LocalIdx`] across events
//! and iteration is a linear slab walk in intern order instead of a sparse
//! scan over hash slots.

use crate::adjacency::{Adjacency, EdgeMeta};
use crate::rhh::RhhMap;
use crate::VertexId;

/// Shard-local dense vertex index. `u32` bounds a shard at ~4.3B vertices,
/// which exceeds any per-shard partition of the paper's datasets (the 3.5B
/// vertex Webgraph splits across shards) while halving the intern-table
/// value size versus the global id.
pub type LocalIdx = u32;

/// Global-id → dense-index interning table plus the reverse mapping.
///
/// # Examples
/// ```
/// use remo_store::dense::InternTable;
/// let mut t = InternTable::new();
/// let (a, new) = t.intern(900);
/// assert!(new && a == 0);
/// assert_eq!(t.intern(900), (0, false));
/// assert_eq!(t.lookup(900), Some(0));
/// assert_eq!(t.id(a), 900);
/// ```
pub struct InternTable {
    map: RhhMap<VertexId, LocalIdx>,
    ids: Vec<VertexId>,
}

impl Default for InternTable {
    fn default() -> Self {
        Self::new()
    }
}

impl InternTable {
    /// Creates an empty table without allocating.
    pub fn new() -> Self {
        InternTable {
            map: RhhMap::new(),
            ids: Vec::new(),
        }
    }

    /// Creates a table pre-sized for `vertices` ids (no rehash storms while
    /// interning up to that many).
    pub fn with_capacity(vertices: usize) -> Self {
        InternTable {
            map: RhhMap::with_capacity(vertices),
            ids: Vec::with_capacity(vertices),
        }
    }

    /// Number of interned vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dense index for `v`, interning it if new. Returns `(idx, was_new)`.
    /// One probe sequence on either path.
    #[inline]
    pub fn intern(&mut self, v: VertexId) -> (LocalIdx, bool) {
        let next = self.ids.len() as LocalIdx;
        let (idx, new) = self.map.entry_or_insert_with(v, || next);
        let idx = *idx;
        if new {
            self.ids.push(v);
        }
        (idx, new)
    }

    /// Dense index for `v` if already interned.
    #[inline]
    pub fn lookup(&self, v: VertexId) -> Option<LocalIdx> {
        self.map.get(v).copied()
    }

    /// Global id of a dense index (panics on an index never handed out).
    #[inline]
    pub fn id(&self, idx: LocalIdx) -> VertexId {
        self.ids[idx as usize]
    }

    /// Global ids in dense (intern) order.
    #[inline]
    pub fn ids(&self) -> &[VertexId] {
        &self.ids
    }

    /// Actual heap footprint: intern slots + reverse map.
    pub fn heap_bytes(&self) -> usize {
        self.map.heap_bytes() + self.ids.capacity() * std::mem::size_of::<VertexId>()
    }
}

/// One slab entry: per-vertex hot payload packed with its adjacency, so
/// the state-change + neighbour-scan pattern of a propagating event touches
/// one contiguous record.
#[derive(Clone, Default)]
struct DenseRecord<S> {
    state: S,
    adj: Adjacency,
}

/// A dense, arena-backed vertex table: interning front-end over a record
/// slab indexed by [`LocalIdx`].
///
/// Mirrors [`crate::VertexTable`]'s vocabulary (ensure/insert_edge/degree/
/// iterate) but exposes the dense index so hot paths intern **once** per
/// event and use direct indexing thereafter.
pub struct DenseVertexTable<S> {
    intern: InternTable,
    recs: Vec<DenseRecord<S>>,
    edges: usize,
}

impl<S: Default> Default for DenseVertexTable<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Default> DenseVertexTable<S> {
    /// Creates an empty table.
    pub fn new() -> Self {
        DenseVertexTable {
            intern: InternTable::new(),
            recs: Vec::new(),
            edges: 0,
        }
    }

    /// Creates a table pre-sized for `vertices` entries.
    pub fn with_capacity(vertices: usize) -> Self {
        DenseVertexTable {
            intern: InternTable::with_capacity(vertices),
            recs: Vec::with_capacity(vertices),
            edges: 0,
        }
    }

    /// Number of vertices present.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.intern.len()
    }

    /// Number of directed edges stored via [`Self::insert_edge`].
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Dense index of `v`, creating default state and empty adjacency if
    /// absent. Returns `(idx, was_new)`. The single probe of the hot path.
    #[inline]
    pub fn intern(&mut self, v: VertexId) -> (LocalIdx, bool) {
        let (idx, new) = self.intern.intern(v);
        if new {
            self.recs.push(DenseRecord::default());
        }
        (idx, new)
    }

    /// Dense index of `v` if it has a record.
    #[inline]
    pub fn lookup(&self, v: VertexId) -> Option<LocalIdx> {
        self.intern.lookup(v)
    }

    /// Global id of dense index `idx`.
    #[inline]
    pub fn vertex_id(&self, idx: LocalIdx) -> VertexId {
        self.intern.id(idx)
    }

    /// Global ids in dense (intern) order — the whole-store walk used by
    /// control sweeps, without materializing states or adjacencies.
    #[inline]
    pub fn ids(&self) -> &[VertexId] {
        self.intern.ids()
    }

    /// Live state at `idx`.
    #[inline]
    pub fn state(&self, idx: LocalIdx) -> &S {
        &self.recs[idx as usize].state
    }

    /// Mutable live state at `idx`.
    #[inline]
    pub fn state_mut(&mut self, idx: LocalIdx) -> &mut S {
        &mut self.recs[idx as usize].state
    }

    /// Adjacency at `idx`.
    #[inline]
    pub fn adj(&self, idx: LocalIdx) -> &Adjacency {
        &self.recs[idx as usize].adj
    }

    /// Mutable adjacency at `idx`.
    #[inline]
    pub fn adj_mut(&mut self, idx: LocalIdx) -> &mut Adjacency {
        &mut self.recs[idx as usize].adj
    }

    /// Simultaneous mutable access to the state and adjacency of the record
    /// at `idx` (a split borrow of one slab entry — both land in the same
    /// contiguous region).
    #[inline]
    pub fn state_adj_mut(&mut self, idx: LocalIdx) -> (&mut S, &mut Adjacency) {
        let rec = &mut self.recs[idx as usize];
        (&mut rec.state, &mut rec.adj)
    }

    /// Inserts the directed edge `src -> dst` with `meta`, interning `src`
    /// if needed. Returns `true` when the edge is new.
    pub fn insert_edge(&mut self, src: VertexId, dst: VertexId, meta: EdgeMeta) -> bool {
        let (idx, _) = self.intern(src);
        let new = self.recs[idx as usize].adj.insert(dst, meta);
        if new {
            self.edges += 1;
        }
        new
    }

    /// Removes the directed edge `src -> dst`, returning its metadata.
    pub fn remove_edge(&mut self, src: VertexId, dst: VertexId) -> Option<EdgeMeta> {
        let idx = self.lookup(src)?;
        let meta = self.recs[idx as usize].adj.remove(dst)?;
        self.edges -= 1;
        Some(meta)
    }

    /// Out-degree of `v` (0 when absent).
    pub fn degree(&self, v: VertexId) -> usize {
        self.lookup(v)
            .map_or(0, |i| self.recs[i as usize].adj.degree())
    }

    /// Iterates `(vertex, state, adjacency)` in dense (intern) order — a
    /// linear slab walk, not a sparse hash-slot scan.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &S, &Adjacency)> + '_ {
        self.intern
            .ids()
            .iter()
            .zip(self.recs.iter())
            .map(|(&v, r)| (v, &r.state, &r.adj))
    }

    /// Approximate heap footprint of adjacency storage, in bytes.
    pub fn adjacency_heap_bytes(&self) -> usize {
        self.recs.iter().map(|r| r.adj.heap_bytes()).sum()
    }

    /// Approximate total heap footprint: intern table + record slab +
    /// adjacency heap storage.
    pub fn heap_bytes(&self) -> usize {
        self.intern.heap_bytes()
            + self.recs.capacity() * std::mem::size_of::<DenseRecord<S>>()
            + self.adjacency_heap_bytes()
    }

    /// Decomposes the table into `(ids, states, adjs)` slabs, aligned by
    /// dense index (for converting into other record layouts at shutdown).
    pub fn into_parts(self) -> (Vec<VertexId>, Vec<S>, Vec<Adjacency>) {
        let (states, adjs) = self.recs.into_iter().map(|r| (r.state, r.adj)).unzip();
        (self.intern.ids, states, adjs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_dense() {
        let mut t = InternTable::new();
        let ids: Vec<LocalIdx> = (0..100u64).map(|v| t.intern(v * 17).0).collect();
        assert_eq!(ids, (0..100).collect::<Vec<LocalIdx>>());
        for v in 0..100u64 {
            assert_eq!(t.lookup(v * 17), Some(v as LocalIdx));
            assert_eq!(t.id(v as LocalIdx), v * 17);
        }
        assert_eq!(t.lookup(1), None);
    }

    #[test]
    fn intern_twice_returns_same_index() {
        let mut t = InternTable::new();
        assert_eq!(t.intern(42), (0, true));
        assert_eq!(t.intern(42), (0, false));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn table_intern_creates_once() {
        let mut t: DenseVertexTable<u64> = DenseVertexTable::new();
        let (i, new) = t.intern(5);
        assert!(new);
        let (j, new) = t.intern(5);
        assert!(!new);
        assert_eq!(i, j);
        assert_eq!(t.num_vertices(), 1);
    }

    #[test]
    fn insert_edge_counts_distinct_edges() {
        let mut t: DenseVertexTable<u64> = DenseVertexTable::new();
        assert!(t.insert_edge(1, 2, EdgeMeta::unweighted()));
        assert!(t.insert_edge(1, 3, EdgeMeta::unweighted()));
        assert!(!t.insert_edge(1, 2, EdgeMeta::unweighted()));
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.degree(2), 0);
    }

    #[test]
    fn state_persists_across_edge_inserts() {
        let mut t: DenseVertexTable<u64> = DenseVertexTable::new();
        let (i, _) = t.intern(1);
        *t.state_mut(i) = 42;
        t.insert_edge(1, 2, EdgeMeta::unweighted());
        assert_eq!(*t.state(i), 42);
        assert_eq!(*t.state(t.lookup(1).unwrap()), 42);
    }

    #[test]
    fn remove_edge_updates_count() {
        let mut t: DenseVertexTable<u64> = DenseVertexTable::new();
        t.insert_edge(1, 2, EdgeMeta::weighted(9));
        assert_eq!(t.remove_edge(1, 2).unwrap().weight, 9);
        assert_eq!(t.remove_edge(1, 2), None);
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn iter_walks_in_intern_order() {
        let mut t: DenseVertexTable<u64> = DenseVertexTable::new();
        for v in (0..50u64).rev() {
            let (i, _) = t.intern(v);
            *t.state_mut(i) = v;
        }
        let ids: Vec<VertexId> = t.iter().map(|(v, _, _)| v).collect();
        assert_eq!(ids, (0u64..50).rev().collect::<Vec<_>>());
        assert_eq!(t.ids(), &ids[..]);
        for (v, s, _) in t.iter() {
            assert_eq!(v, *s);
        }
    }

    #[test]
    fn split_borrow_of_state_and_adjacency() {
        let mut t: DenseVertexTable<u64> = DenseVertexTable::new();
        let (i, _) = t.intern(7);
        let (s, a) = t.state_adj_mut(i);
        *s = 9;
        a.insert(8, EdgeMeta::unweighted());
        assert_eq!(*t.state(i), 9);
        assert_eq!(t.adj(i).degree(), 1);
    }

    #[test]
    fn with_capacity_avoids_rehash() {
        let mut t: DenseVertexTable<u64> = DenseVertexTable::with_capacity(1000);
        let before = t.heap_bytes();
        for v in 0..1000u64 {
            t.intern(v);
        }
        assert_eq!(t.num_vertices(), 1000);
        // Slabs and intern table were pre-sized: no growth happened.
        assert_eq!(t.heap_bytes(), before);
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut t: DenseVertexTable<u64> = DenseVertexTable::new();
        let empty = t.heap_bytes();
        for v in 0..1000u64 {
            t.insert_edge(v, v + 1, EdgeMeta::unweighted());
        }
        assert!(t.heap_bytes() > empty);
    }

    #[test]
    fn into_parts_round_trip() {
        let mut t: DenseVertexTable<u64> = DenseVertexTable::new();
        for v in 0..10u64 {
            let (i, _) = t.intern(v * 3);
            *t.state_mut(i) = v;
            t.insert_edge(v * 3, v, EdgeMeta::unweighted());
        }
        let (ids, states, adjs) = t.into_parts();
        assert_eq!(ids.len(), 10);
        assert_eq!(states.len(), 10);
        assert_eq!(adjs.len(), 10);
        for (i, &v) in ids.iter().enumerate() {
            assert_eq!(v, i as u64 * 3);
            assert_eq!(states[i], i as u64);
            assert_eq!(adjs[i].degree(), 1);
        }
    }
}
