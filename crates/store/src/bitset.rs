//! Growable bitset used by multi S-T connectivity state.
//!
//! The paper's S-T algorithm stores, per vertex, the set of sources the
//! vertex is connected to, "extended to multi S-T connectivity by using a
//! bitmap" (§II-B). Up to 64 sources a single `u64` word suffices (the fast
//! path used by `remo_algos`'s default S-T state); this type covers the
//! general case and the set algebra (`union`, `is_subset`) the algorithm's
//! superset/subset/mixed branches need.

/// A compact growable set of small integers.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set pre-sized to hold values `< capacity_bits`.
    pub fn with_capacity(capacity_bits: usize) -> Self {
        BitSet {
            words: vec![0; capacity_bits.div_ceil(64)],
        }
    }

    /// Inserts `bit`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, bit: usize) -> bool {
        let word = bit / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (bit % 64);
        let was_set = self.words[word] & mask != 0;
        self.words[word] |= mask;
        !was_set
    }

    /// Removes `bit`; returns `true` if it was present.
    pub fn remove(&mut self, bit: usize) -> bool {
        let word = bit / 64;
        if word >= self.words.len() {
            return false;
        }
        let mask = 1u64 << (bit % 64);
        let was_set = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        was_set
    }

    /// True when `bit` is in the set.
    pub fn contains(&self, bit: usize) -> bool {
        let word = bit / 64;
        word < self.words.len() && self.words[word] & (1u64 << (bit % 64)) != 0
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Backing words, 64 bits each, low bits first — the serialization
    /// surface for durable checkpoints/WAL records.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a set from backing words (exact inverse of
    /// [`BitSet::as_words`]).
    pub fn from_words(words: Vec<u64>) -> Self {
        BitSet { words }
    }

    /// Unions `other` into `self`; returns `true` when `self` changed.
    ///
    /// This is the monotone join of the multi S-T lattice: state only ever
    /// gains bits.
    pub fn union_in_place(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (s, &o) in self.words.iter_mut().zip(other.words.iter()) {
            let merged = *s | o;
            changed |= merged != *s;
            *s = merged;
        }
        changed
    }

    /// True when every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// True when `self` and `other` contain exactly the same elements
    /// (trailing zero words are insignificant).
    pub fn same_elements(&self, other: &BitSet) -> bool {
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }

    /// Iterates set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Clears all bits, retaining capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for bit in iter {
            s.insert(bit);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_across_word_boundaries() {
        let mut s = BitSet::new();
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(1000);
        assert_eq!(s.count(), 4);
        assert!(s.contains(1000));
        assert!(!s.contains(999));
    }

    #[test]
    fn union_reports_change_precisely() {
        let a: BitSet = [1, 2, 3].into_iter().collect();
        let mut b: BitSet = [2, 3].into_iter().collect();
        assert!(b.union_in_place(&a));
        assert!(!b.union_in_place(&a), "second union must be a no-op");
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn subset_relations() {
        let small: BitSet = [1, 200].into_iter().collect();
        let big: BitSet = [1, 2, 200, 300].into_iter().collect();
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(small.is_subset(&small));
        assert!(BitSet::new().is_subset(&small));
    }

    #[test]
    fn same_elements_ignores_capacity() {
        let mut a = BitSet::with_capacity(1024);
        let mut b = BitSet::new();
        a.insert(5);
        b.insert(5);
        assert!(a.same_elements(&b));
        b.insert(700);
        assert!(!a.same_elements(&b));
    }

    #[test]
    fn iter_ascending() {
        let s: BitSet = [700, 0, 64, 5].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 64, 700]);
    }

    #[test]
    fn st_branch_logic_mixed_sets() {
        // The three branches of Algorithm 7: equal, superset, subset, mixed.
        let ours: BitSet = [1, 2].into_iter().collect();
        let theirs: BitSet = [2, 3].into_iter().collect();
        assert!(!ours.same_elements(&theirs));
        assert!(!theirs.is_subset(&ours));
        assert!(!ours.is_subset(&theirs)); // mixed: union and broadcast
        let mut merged = ours.clone();
        merged.union_in_place(&theirs);
        assert_eq!(merged.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }
}
