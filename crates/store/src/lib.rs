//! # remo-store — dynamic and static graph storage
//!
//! Storage substrate for the REMO reproduction, built from scratch:
//!
//! - [`rhh`]: an open-addressing hash map with Robin Hood hashing and
//!   backward-shift deletion, the engine behind everything else (the paper's
//!   DegAwareRHH store, §III-B).
//! - [`adjacency`]: degree-aware adjacency lists — compact arrays for the
//!   low-degree majority, Robin Hood tables for heavy hitters.
//! - [`vertex_table`]: per-shard vertex records (algorithm state + edges).
//! - [`dense`]: dense vertex interning plus structure-of-arrays slabs, the
//!   shard hot-path layout (one probe per event, direct indexing after).
//! - [`csr`]: the static Compressed Sparse Row graph the paper's baselines
//!   run on (§V-B).
//! - [`spill`]: the cold tier standing in for NVRAM spill.
//! - [`bitset`]: growable bitsets for multi S-T connectivity state.
//! - [`hash`]: deterministic 64-bit mixing shared with the partitioner.
//!
//! Nothing in this crate is thread-safe by design: each engine shard owns its
//! tables exclusively (shared-nothing architecture).

pub mod adjacency;
pub mod bitset;
pub mod csr;
pub mod dense;
pub mod hash;
pub mod rhh;
pub mod spill;
pub mod vertex_table;

/// Vertex identifier. The paper uses opaque integer ids; `u64` covers every
/// dataset in Table I (the Webgraph has 3.5B vertices).
pub type VertexId = u64;

/// Edge weight type. `u64::MAX` is reserved as "infinity" by SSSP-style
/// algorithms.
pub type Weight = u64;

pub use adjacency::{Adjacency, EdgeMeta, PROMOTE_DEGREE};
pub use bitset::BitSet;
pub use csr::Csr;
pub use dense::{DenseVertexTable, InternTable, LocalIdx};
pub use rhh::RhhMap;
pub use spill::{SpillStore, TieredAdjacency};
pub use vertex_table::{VertexRecord, VertexTable};
