//! Per-shard vertex table: algorithm state plus adjacency for every vertex a
//! shard owns.
//!
//! In the paper each process stores, for its partition of the vertices, the
//! dynamic adjacency structure and the live algorithm state (Figure 2's
//! "compute and storage layers of a process"). This table is that storage
//! layer: a Robin Hood map from vertex id to a [`VertexRecord`] combining
//! the algorithm's vertex-local state `S` with a degree-aware [`Adjacency`].
//!
//! The table is deliberately *not* thread-safe: a shard owns its table
//! exclusively (shared-nothing design, §II-A reason (ii)). Cross-shard access
//! happens only via events.

use crate::adjacency::{Adjacency, EdgeMeta};
use crate::rhh::RhhMap;
use crate::VertexId;

/// Storage for one vertex: live algorithm state and out-edges.
#[derive(Debug, Clone, Default)]
pub struct VertexRecord<S> {
    /// Vertex-local algorithm state (`this.value` in the paper's Algorithm 3,
    /// generalized to an arbitrary type).
    pub state: S,
    /// Out-edges with per-edge metadata.
    pub adj: Adjacency,
}

/// A shard's vertex table.
pub struct VertexTable<S> {
    map: RhhMap<VertexId, VertexRecord<S>>,
    edges: usize,
}

impl<S: Default> Default for VertexTable<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Default> VertexTable<S> {
    /// Creates an empty table.
    pub fn new() -> Self {
        VertexTable {
            map: RhhMap::new(),
            edges: 0,
        }
    }

    /// Creates a table pre-sized for `vertices` entries.
    pub fn with_capacity(vertices: usize) -> Self {
        VertexTable {
            map: RhhMap::with_capacity(vertices),
            edges: 0,
        }
    }

    /// Number of vertices present.
    pub fn num_vertices(&self) -> usize {
        self.map.len()
    }

    /// Number of directed edges stored.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// True when `v` has a record (it was touched by an edge or an init).
    pub fn contains(&self, v: VertexId) -> bool {
        self.map.contains(v)
    }

    /// Record for `v`, if present.
    pub fn get(&self, v: VertexId) -> Option<&VertexRecord<S>> {
        self.map.get(v)
    }

    /// Mutable record for `v`, if present.
    pub fn get_mut(&mut self, v: VertexId) -> Option<&mut VertexRecord<S>> {
        self.map.get_mut(v)
    }

    /// Record for `v`, created with default state and no edges if absent.
    /// Returns `(record, was_new)`.
    pub fn ensure(&mut self, v: VertexId) -> (&mut VertexRecord<S>, bool) {
        let (rec, was_new) = self.map.entry_or_insert_with(v, VertexRecord::default);
        (rec, was_new)
    }

    /// Slot index of `v`'s record, if present. Transient validity: stale
    /// after any vertex insertion or removal (see
    /// [`crate::RhhMap::find_index`]).
    #[inline]
    pub fn index_of(&self, v: VertexId) -> Option<usize> {
        self.map.find_index(v)
    }

    /// Slot index of `v`'s record, creating a default record if absent.
    /// Returns `(index, was_new)`. Same transient validity as
    /// [`Self::index_of`].
    #[inline]
    pub fn ensure_index(&mut self, v: VertexId) -> (usize, bool) {
        self.map
            .entry_index_or_insert_with(v, VertexRecord::default)
    }

    /// Record at a slot index obtained from [`Self::index_of`] /
    /// [`Self::ensure_index`] with no intervening vertex insert/remove.
    #[inline]
    pub fn record_at(&self, idx: usize) -> &VertexRecord<S> {
        self.map.value_at(idx)
    }

    /// Mutable form of [`Self::record_at`].
    #[inline]
    pub fn record_at_mut(&mut self, idx: usize) -> &mut VertexRecord<S> {
        self.map.value_at_mut(idx)
    }

    /// Inserts a fully-formed record for `v`, adding its adjacency degree to
    /// the edge count. Used when rebuilding a table from another layout's
    /// slabs; `v` must not already be present.
    pub fn insert_record(&mut self, v: VertexId, state: S, adj: Adjacency) {
        self.edges += adj.degree();
        let prev = self.map.insert(v, VertexRecord { state, adj });
        debug_assert!(prev.is_none(), "insert_record over existing vertex");
    }

    /// Inserts the directed edge `src -> dst` (where `src` is owned by this
    /// shard) with `meta`. Creates the `src` record if needed. Returns `true`
    /// when the edge is new.
    pub fn insert_edge(&mut self, src: VertexId, dst: VertexId, meta: EdgeMeta) -> bool {
        let (rec, _) = self.ensure(src);
        let new = rec.adj.insert(dst, meta);
        if new {
            self.edges += 1;
        }
        new
    }

    /// Removes the directed edge `src -> dst`, returning its metadata.
    pub fn remove_edge(&mut self, src: VertexId, dst: VertexId) -> Option<EdgeMeta> {
        let meta = self.map.get_mut(src)?.adj.remove(dst)?;
        self.edges -= 1;
        Some(meta)
    }

    /// Out-degree of `v` (0 when absent).
    pub fn degree(&self, v: VertexId) -> usize {
        self.map.get(v).map_or(0, |r| r.adj.degree())
    }

    /// Iterates `(vertex, record)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &VertexRecord<S>)> + '_ {
        self.map.iter()
    }

    /// Iterates `(vertex, record)` mutably, in unspecified order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (VertexId, &mut VertexRecord<S>)> + '_ {
        self.map.iter_mut()
    }

    /// Approximate heap footprint of adjacency storage, in bytes.
    pub fn adjacency_heap_bytes(&self) -> usize {
        self.iter().map(|(_, r)| r.adj.heap_bytes()).sum()
    }

    /// Actual heap footprint of the record slot array (records are stored
    /// inline in the hash slots; excludes adjacency heap storage), in
    /// bytes.
    pub fn record_heap_bytes(&self) -> usize {
        self.map.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_creates_once() {
        let mut t: VertexTable<u64> = VertexTable::new();
        let (_, new) = t.ensure(5);
        assert!(new);
        let (_, new) = t.ensure(5);
        assert!(!new);
        assert_eq!(t.num_vertices(), 1);
    }

    #[test]
    fn insert_edge_counts_distinct_edges() {
        let mut t: VertexTable<u64> = VertexTable::new();
        assert!(t.insert_edge(1, 2, EdgeMeta::unweighted()));
        assert!(t.insert_edge(1, 3, EdgeMeta::unweighted()));
        assert!(!t.insert_edge(1, 2, EdgeMeta::unweighted()));
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.degree(2), 0); // dst untouched by a directed insert
    }

    #[test]
    fn state_persists_across_edge_inserts() {
        let mut t: VertexTable<u64> = VertexTable::new();
        t.ensure(1).0.state = 42;
        t.insert_edge(1, 2, EdgeMeta::unweighted());
        assert_eq!(t.get(1).unwrap().state, 42);
    }

    #[test]
    fn remove_edge_updates_count() {
        let mut t: VertexTable<u64> = VertexTable::new();
        t.insert_edge(1, 2, EdgeMeta::weighted(9));
        assert_eq!(t.remove_edge(1, 2).unwrap().weight, 9);
        assert_eq!(t.remove_edge(1, 2), None);
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn iter_spans_all_vertices() {
        let mut t: VertexTable<u64> = VertexTable::new();
        for v in 0..50u64 {
            t.ensure(v).0.state = v;
        }
        let mut ids: Vec<VertexId> = t.iter().map(|(v, _)| v).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0u64..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_access_roundtrip() {
        let mut t: VertexTable<u64> = VertexTable::with_capacity(16);
        let (idx, new) = t.ensure_index(9);
        assert!(new);
        t.record_at_mut(idx).state = 5;
        assert_eq!(t.index_of(9), Some(idx));
        assert_eq!(t.record_at(idx).state, 5);
        assert_eq!(t.get(9).unwrap().state, 5);
        assert_eq!(t.index_of(10), None);
    }

    #[test]
    fn insert_record_counts_edges() {
        let mut t: VertexTable<u64> = VertexTable::new();
        let mut adj = Adjacency::new();
        adj.insert(2, EdgeMeta::unweighted());
        adj.insert(3, EdgeMeta::unweighted());
        t.insert_record(1, 7, adj);
        assert_eq!(t.num_vertices(), 1);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.get(1).unwrap().state, 7);
        assert_eq!(t.degree(1), 2);
    }

    #[test]
    fn high_degree_vertex_promotes_transparently() {
        let mut t: VertexTable<u64> = VertexTable::new();
        for dst in 0..1000u64 {
            t.insert_edge(7, dst, EdgeMeta::unweighted());
        }
        assert_eq!(t.degree(7), 1000);
        assert!(t.get(7).unwrap().adj.is_promoted());
        assert_eq!(t.num_edges(), 1000);
    }
}
