//! Degree-aware adjacency storage.
//!
//! DegAwareRHH (§III-B) is "degree aware, and uses a separate, compact data
//! structure for low-degree vertices" while high-degree vertices get a Robin
//! Hood hash table with good locality. Scale-free graphs make this split pay
//! off: the overwhelming majority of vertices have a handful of edges (a
//! compact array beats any hash table there — insertion is an append, lookup
//! is a short linear scan entirely within one or two cache lines), while the
//! few heavy hitters need O(1) duplicate detection and neighbour lookup.
//!
//! Each directed edge stores an [`EdgeMeta`]: its weight plus the *cached
//! neighbour value* the paper's programming model maintains (`nbrs.set(...)`
//! in Algorithm 3). Algorithms use the cache to suppress redundant update
//! messages; the ablation bench `ablate_store` measures what that buys.

use crate::rhh::RhhMap;
use crate::VertexId;

/// Degree at which a compact array promotes to a Robin Hood table.
///
/// 32 entries of 24 bytes each stay within a few cache lines and keep the
/// linear scan cheaper than hashing; beyond that the O(d) duplicate check on
/// insert starts to lose.
pub const PROMOTE_DEGREE: usize = 32;

/// Per-edge metadata: the edge weight and the last value the neighbour
/// reported (used by algorithms as a local cache of remote state).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeMeta {
    /// Edge weight. Algorithms that ignore weights treat this as 1.
    pub weight: u64,
    /// Cached last-known value of the neighbour's algorithm state, updated
    /// whenever the neighbour sends us an event (Algorithm 3 line 18/21).
    pub cached: u64,
}

impl EdgeMeta {
    /// Metadata for an unweighted edge with no cached neighbour value yet.
    pub fn unweighted() -> Self {
        EdgeMeta {
            weight: 1,
            cached: 0,
        }
    }

    /// Metadata for a weighted edge.
    pub fn weighted(weight: u64) -> Self {
        EdgeMeta { weight, cached: 0 }
    }
}

/// Adjacency list of a single vertex, automatically switching representation
/// by degree.
#[derive(Debug, Clone)]
pub enum Adjacency {
    /// Compact unordered array for low-degree vertices.
    Compact(Vec<(VertexId, EdgeMeta)>),
    /// Robin Hood table for high-degree vertices.
    Table(RhhMap<VertexId, EdgeMeta>),
}

impl Default for Adjacency {
    fn default() -> Self {
        Adjacency::Compact(Vec::new())
    }
}

impl Adjacency {
    /// Creates an empty adjacency list (compact representation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of out-edges.
    pub fn degree(&self) -> usize {
        match self {
            Adjacency::Compact(v) => v.len(),
            Adjacency::Table(t) => t.len(),
        }
    }

    /// True when this vertex has no out-edges.
    pub fn is_empty(&self) -> bool {
        self.degree() == 0
    }

    /// True when the high-degree (table) representation is active. Exposed
    /// for tests and benches.
    pub fn is_promoted(&self) -> bool {
        matches!(self, Adjacency::Table(_))
    }

    /// Inserts the edge `-> nbr` with `meta`. Returns `true` when the edge is
    /// new, `false` when it already existed (its metadata is then updated in
    /// place, matching the paper's attribute-update semantics).
    pub fn insert(&mut self, nbr: VertexId, meta: EdgeMeta) -> bool {
        match self {
            Adjacency::Compact(v) => {
                if let Some(slot) = v.iter_mut().find(|(n, _)| *n == nbr) {
                    slot.1 = meta;
                    return false;
                }
                v.push((nbr, meta));
                if v.len() > PROMOTE_DEGREE {
                    self.promote();
                }
                true
            }
            Adjacency::Table(t) => t.insert(nbr, meta).is_none(),
        }
    }

    /// Inserts the edge `-> nbr`, keeping the **minimum** weight across
    /// re-adds (the cached value is still refreshed). Returns `true` when
    /// the edge is new.
    ///
    /// This is the engine's topology-maintenance entry point: §II-B only
    /// supports edge updates "limited to reducing edge weight", and making
    /// the surviving weight the min of everything ever added keeps the
    /// final topology deterministic when the two orientations of an
    /// undirected edge carry different weights and race in from different
    /// shards' streams (plain last-wins [`Adjacency::insert`] would leave
    /// whichever arrived last — an arrival-order artifact).
    pub fn insert_weight_min(&mut self, nbr: VertexId, meta: EdgeMeta) -> bool {
        match self {
            Adjacency::Compact(v) => {
                if let Some(slot) = v.iter_mut().find(|(n, _)| *n == nbr) {
                    slot.1 = EdgeMeta {
                        weight: slot.1.weight.min(meta.weight),
                        cached: meta.cached,
                    };
                    return false;
                }
                v.push((nbr, meta));
                if v.len() > PROMOTE_DEGREE {
                    self.promote();
                }
                true
            }
            Adjacency::Table(t) => {
                if let Some(slot) = t.get_mut(nbr) {
                    slot.weight = slot.weight.min(meta.weight);
                    slot.cached = meta.cached;
                    false
                } else {
                    t.insert(nbr, meta);
                    true
                }
            }
        }
    }

    /// Removes the edge `-> nbr`, returning its metadata if it existed.
    /// (Used by the decremental extension; the core paper is add-only.)
    pub fn remove(&mut self, nbr: VertexId) -> Option<EdgeMeta> {
        match self {
            Adjacency::Compact(v) => {
                let pos = v.iter().position(|(n, _)| *n == nbr)?;
                Some(v.swap_remove(pos).1)
            }
            Adjacency::Table(t) => t.remove(nbr),
        }
    }

    /// Metadata of the edge `-> nbr`, if present.
    pub fn get(&self, nbr: VertexId) -> Option<&EdgeMeta> {
        match self {
            Adjacency::Compact(v) => v.iter().find(|(n, _)| *n == nbr).map(|(_, m)| m),
            Adjacency::Table(t) => t.get(nbr),
        }
    }

    /// Mutable metadata of the edge `-> nbr`, if present.
    pub fn get_mut(&mut self, nbr: VertexId) -> Option<&mut EdgeMeta> {
        match self {
            Adjacency::Compact(v) => v.iter_mut().find(|(n, _)| *n == nbr).map(|(_, m)| m),
            Adjacency::Table(t) => t.get_mut(nbr),
        }
    }

    /// Updates the cached neighbour value on the edge `-> nbr`, if the edge
    /// exists. Returns the previous cached value.
    pub fn set_cached(&mut self, nbr: VertexId, value: u64) -> Option<u64> {
        let meta = self.get_mut(nbr)?;
        Some(std::mem::replace(&mut meta.cached, value))
    }

    /// Iterates `(neighbour, metadata)` in unspecified order.
    pub fn iter(&self) -> AdjIter<'_> {
        match self {
            Adjacency::Compact(v) => AdjIter::Compact(v.iter()),
            Adjacency::Table(t) => AdjIter::Table(Box::new(t.iter())),
        }
    }

    /// Approximate heap footprint in bytes (for the Table I stand-in report
    /// and the spill tier's eviction policy).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Adjacency::Compact(v) => v.capacity() * std::mem::size_of::<(VertexId, EdgeMeta)>(),
            Adjacency::Table(t) => {
                // dist(u16) + key(u64) + value(EdgeMeta) per slot, padded.
                t.capacity_slots() * 32
            }
        }
    }

    fn promote(&mut self) {
        if let Adjacency::Compact(v) = self {
            let mut table = RhhMap::with_capacity(v.len() * 2);
            for (n, m) in v.drain(..) {
                table.insert(n, m);
            }
            *self = Adjacency::Table(table);
        }
    }
}

/// Iterator over a vertex's out-edges.
pub enum AdjIter<'a> {
    Compact(std::slice::Iter<'a, (VertexId, EdgeMeta)>),
    Table(Box<dyn Iterator<Item = (VertexId, &'a EdgeMeta)> + 'a>),
}

impl<'a> Iterator for AdjIter<'a> {
    type Item = (VertexId, EdgeMeta);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            AdjIter::Compact(it) => it.next().map(|(n, m)| (*n, *m)),
            AdjIter::Table(it) => it.next().map(|(n, m)| (n, *m)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_compact_and_empty() {
        let a = Adjacency::new();
        assert_eq!(a.degree(), 0);
        assert!(a.is_empty());
        assert!(!a.is_promoted());
    }

    #[test]
    fn insert_dedupes_and_updates_meta() {
        let mut a = Adjacency::new();
        assert!(a.insert(7, EdgeMeta::weighted(3)));
        assert!(!a.insert(7, EdgeMeta::weighted(9)));
        assert_eq!(a.degree(), 1);
        assert_eq!(a.get(7).unwrap().weight, 9);
    }

    #[test]
    fn insert_weight_min_keeps_cheapest_weight() {
        let mut a = Adjacency::new();
        assert!(a.insert_weight_min(7, EdgeMeta::weighted(5)));
        assert!(!a.insert_weight_min(7, EdgeMeta::weighted(9)));
        assert_eq!(a.get(7).unwrap().weight, 5, "re-add must not raise");
        assert!(!a.insert_weight_min(7, EdgeMeta::weighted(2)));
        assert_eq!(a.get(7).unwrap().weight, 2, "reduction applies");
        // The cached value still refreshes on every re-add.
        assert!(!a.insert_weight_min(
            7,
            EdgeMeta {
                weight: 8,
                cached: 42
            }
        ));
        let m = a.get(7).unwrap();
        assert_eq!((m.weight, m.cached), (2, 42));
    }

    #[test]
    fn insert_weight_min_in_table_representation() {
        let mut a = Adjacency::new();
        for n in 0..(PROMOTE_DEGREE as u64 + 4) {
            a.insert_weight_min(n, EdgeMeta::weighted(n + 10));
        }
        assert!(a.is_promoted());
        assert!(!a.insert_weight_min(3, EdgeMeta::weighted(1)));
        assert_eq!(a.get(3).unwrap().weight, 1);
        assert!(!a.insert_weight_min(3, EdgeMeta::weighted(100)));
        assert_eq!(a.get(3).unwrap().weight, 1);
    }

    #[test]
    fn promotes_past_threshold_and_preserves_contents() {
        let mut a = Adjacency::new();
        for i in 0..=(PROMOTE_DEGREE as u64) {
            a.insert(i, EdgeMeta::weighted(i + 100));
        }
        assert!(a.is_promoted());
        assert_eq!(a.degree(), PROMOTE_DEGREE + 1);
        for i in 0..=(PROMOTE_DEGREE as u64) {
            assert_eq!(a.get(i).unwrap().weight, i + 100, "neighbour {i}");
        }
    }

    #[test]
    fn dedupe_survives_promotion() {
        let mut a = Adjacency::new();
        for i in 0..200u64 {
            a.insert(i, EdgeMeta::unweighted());
        }
        for i in 0..200u64 {
            assert!(!a.insert(i, EdgeMeta::unweighted()), "dup {i} accepted");
        }
        assert_eq!(a.degree(), 200);
    }

    #[test]
    fn set_cached_roundtrip_in_both_representations() {
        let mut a = Adjacency::new();
        a.insert(1, EdgeMeta::unweighted());
        assert_eq!(a.set_cached(1, 42), Some(0));
        assert_eq!(a.get(1).unwrap().cached, 42);
        assert_eq!(a.set_cached(99, 1), None);

        for i in 0..100u64 {
            a.insert(i, EdgeMeta::unweighted());
        }
        assert!(a.is_promoted());
        assert_eq!(a.set_cached(50, 7), Some(0));
        assert_eq!(a.get(50).unwrap().cached, 7);
    }

    #[test]
    fn iter_covers_all_edges() {
        let mut a = Adjacency::new();
        for i in 0..100u64 {
            a.insert(i, EdgeMeta::weighted(i));
        }
        let mut seen: Vec<VertexId> = a.iter().map(|(n, _)| n).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0u64..100).collect::<Vec<_>>());
    }

    #[test]
    fn remove_in_both_representations() {
        let mut a = Adjacency::new();
        a.insert(1, EdgeMeta::weighted(5));
        assert_eq!(a.remove(1).unwrap().weight, 5);
        assert_eq!(a.remove(1), None);
        assert!(a.is_empty());

        for i in 0..100u64 {
            a.insert(i, EdgeMeta::unweighted());
        }
        assert!(a.remove(3).is_some());
        assert_eq!(a.degree(), 99);
        assert!(a.get(3).is_none());
    }
}
