//! Compressed Sparse Row (CSR) static graph representation.
//!
//! This is the *static* side of the paper's evaluation: "the comparison of
//! static construction (including compression from input presented as
//! [src, dst] pairs to Compressed Sparse Row (CSR) format...)" (§V-B).
//! Construction takes an edge list exactly as the dynamic path does —
//! `[source, destination]` pairs (optionally weighted) — and compresses it
//! with a two-pass counting sort, which is how production static frameworks
//! build CSR. The static baseline algorithms in `remo-baseline` run on this.
//!
//! Vertex ids are assumed dense enough that `max_id + 1` offset slots are
//! acceptable (true for all generated workloads; real datasets are typically
//! relabelled to dense ids during preprocessing anyway).

use crate::VertexId;

/// An immutable CSR graph with per-edge weights.
#[derive(Debug, Clone)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets`/`weights` for vertex `v`.
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<u64>,
}

impl Csr {
    /// Builds a CSR from unweighted directed edges (weight 1 each).
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        Self::build(
            num_vertices,
            edges.len(),
            edges.iter().map(|&(s, d)| (s, d, 1)),
        )
    }

    /// Builds a CSR from weighted directed edges.
    pub fn from_weighted_edges(num_vertices: usize, edges: &[(VertexId, VertexId, u64)]) -> Self {
        Self::build(num_vertices, edges.len(), edges.iter().copied())
    }

    fn build(
        num_vertices: usize,
        num_edges: usize,
        edges: impl Iterator<Item = (VertexId, VertexId, u64)> + Clone,
    ) -> Self {
        // Pass 1: out-degree histogram.
        let mut offsets = vec![0usize; num_vertices + 1];
        for (src, _, _) in edges.clone() {
            debug_assert!((src as usize) < num_vertices, "src {src} out of range");
            offsets[src as usize + 1] += 1;
        }
        // Prefix sum.
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        // Pass 2: scatter.
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; num_edges];
        let mut weights = vec![0u64; num_edges];
        for (src, dst, w) in edges {
            let at = cursor[src as usize];
            targets[at] = dst;
            weights[at] = w;
            cursor[src as usize] += 1;
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices (including isolated ids below the maximum).
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Weights parallel to [`Self::neighbors`].
    #[inline]
    pub fn edge_weights(&self, v: VertexId) -> &[u64] {
        let v = v as usize;
        &self.weights[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Iterates `(src, dst, weight)` over every edge.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, u64)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .zip(self.edge_weights(v))
                .map(move |(&d, &w)| (v, d, w))
        })
    }

    /// Heap footprint in bytes (offsets + targets + weights), for the
    /// static-vs-dynamic memory comparison.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.weights.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn neighbors_preserve_input_order_within_vertex() {
        let g = diamond();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(3), &[] as &[VertexId]);
    }

    #[test]
    fn weighted_build_aligns_weights() {
        let g = Csr::from_weighted_edges(3, &[(0, 1, 10), (0, 2, 20), (1, 2, 30)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.edge_weights(0), &[10, 20]);
        assert_eq!(g.edge_weights(1), &[30]);
    }

    #[test]
    fn isolated_vertices_have_empty_neighborhoods() {
        let g = Csr::from_edges(10, &[(0, 9)]);
        for v in 1..9 {
            assert_eq!(g.degree(v), 0);
        }
        assert_eq!(g.neighbors(0), &[9]);
    }

    #[test]
    fn edges_iterator_roundtrips() {
        let input = vec![(0u64, 1u64, 5u64), (2, 0, 7), (1, 2, 9), (0, 2, 11)];
        let g = Csr::from_weighted_edges(3, &input);
        let mut out: Vec<_> = g.edges().collect();
        let mut exp = input.clone();
        out.sort_unstable();
        exp.sort_unstable();
        assert_eq!(out, exp);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn parallel_edges_are_kept() {
        // CSR is a faithful compression: duplicate pairs in the input stay.
        let g = Csr::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.degree(0), 2);
    }
}
