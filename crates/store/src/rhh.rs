//! An open-addressing hash map with Robin Hood hashing and backward-shift
//! deletion.
//!
//! This is the storage engine behind the dynamic graph store, mirroring the
//! paper's DegAwareRHH structure (§III-B): "open addressing and compact hash
//! tables with Robin Hood Hashing", chosen for its data locality on
//! high-degree vertices. Robin Hood hashing minimizes the *variance* of probe
//! distances by letting an inserting entry steal the slot of any resident
//! entry that is closer to its ideal bucket ("take from the rich"). Combined
//! with backward-shift deletion this keeps probe sequences short and scan
//! behaviour cache-friendly, which is what the graph workload needs: the
//! dominant operation is "iterate all neighbours of a vertex".
//!
//! The table is specialized for the integer-like keys used throughout the
//! storage layer via [`Key64`]; values are arbitrary.

use crate::hash::Key64;

/// Probe distance stored per slot. `EMPTY` marks an unoccupied slot.
type Dist = u16;
const EMPTY: Dist = Dist::MAX;

/// Maximum load factor numerator/denominator: grow beyond 7/8 full.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

struct Slot<K, V> {
    dist: Dist,
    // Only valid when `dist != EMPTY`. We keep K: Copy and store V inline;
    // `Option` would cost an extra discriminant per slot and hurt locality.
    key: std::mem::MaybeUninit<K>,
    value: std::mem::MaybeUninit<V>,
}

impl<K, V> Slot<K, V> {
    #[inline(always)]
    fn empty() -> Self {
        Slot {
            dist: EMPTY,
            key: std::mem::MaybeUninit::uninit(),
            value: std::mem::MaybeUninit::uninit(),
        }
    }

    #[inline(always)]
    fn is_empty(&self) -> bool {
        self.dist == EMPTY
    }
}

/// A Robin Hood hash map over [`Key64`] keys.
///
/// # Examples
/// ```
/// use remo_store::rhh::RhhMap;
/// let mut m: RhhMap<u64, &str> = RhhMap::new();
/// m.insert(7, "seven");
/// assert_eq!(m.get(7), Some(&"seven"));
/// assert_eq!(m.remove(7), Some("seven"));
/// assert!(m.is_empty());
/// ```
pub struct RhhMap<K: Key64, V> {
    slots: Vec<Slot<K, V>>,
    len: usize,
    /// `slots.len() - 1`; slots.len() is always a power of two (or zero).
    mask: usize,
}

impl<K: Key64, V> Default for RhhMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key64, V> RhhMap<K, V> {
    /// Creates an empty map without allocating.
    pub fn new() -> Self {
        RhhMap {
            slots: Vec::new(),
            len: 0,
            mask: 0,
        }
    }

    /// Creates a map that can hold `cap` entries without reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        let mut m = Self::new();
        if cap > 0 {
            m.grow_to(Self::slots_for(cap));
        }
        m
    }

    fn slots_for(cap: usize) -> usize {
        // Smallest power of two with load factor headroom; at least 8.
        let needed = cap * LOAD_DEN / LOAD_NUM + 1;
        needed.next_power_of_two().max(8)
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots allocated (power of two, or zero for a fresh map).
    #[inline]
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }

    /// Actual heap footprint of the slot array, in bytes. Values are
    /// stored inline, so this is the map's whole allocation (excluding
    /// whatever the values themselves point to).
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<K, V>>()
    }

    #[inline(always)]
    fn ideal(&self, key: K) -> usize {
        (key.hash64() as usize) & self.mask
    }

    /// Looks up `key`, returning a reference to its value.
    #[inline]
    pub fn get(&self, key: K) -> Option<&V> {
        self.find(key)
            .map(|i| unsafe { self.slots[i].value.assume_init_ref() })
    }

    /// Looks up `key`, returning a mutable reference to its value.
    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.find(key)
            .map(|i| unsafe { self.slots[i].value.assume_init_mut() })
    }

    /// True when `key` is present.
    #[inline]
    pub fn contains(&self, key: K) -> bool {
        self.find(key).is_some()
    }

    /// Index of the slot holding `key`, if present. Uses the Robin Hood
    /// early-exit: once we meet a resident whose probe distance is smaller
    /// than ours, the key cannot be further along.
    #[inline]
    fn find(&self, key: K) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let mut idx = self.ideal(key);
        let mut dist: Dist = 0;
        loop {
            let slot = &self.slots[idx];
            if slot.is_empty() || slot.dist < dist {
                return None;
            }
            if slot.dist == dist && unsafe { *slot.key.assume_init_ref() } == key {
                return Some(idx);
            }
            idx = (idx + 1) & self.mask;
            dist += 1;
        }
    }

    /// Slot index of `key`, if present, for use with [`Self::value_at`] /
    /// [`Self::value_at_mut`]. The index is **transient**: any insert,
    /// remove, or growth may relocate entries, after which indices obtained
    /// earlier are stale (they will still be in-bounds, but may address a
    /// different key's value). Callers must re-probe after mutation of the
    /// key set.
    #[inline]
    pub fn find_index(&self, key: K) -> Option<usize> {
        self.find(key)
    }

    /// Slot index for `key`, inserting the result of `default()` first if
    /// absent. Returns `(index, was_new)`. Single probe sequence on either
    /// path; the same transient-validity rule as [`Self::find_index`]
    /// applies.
    pub fn entry_index_or_insert_with(
        &mut self,
        key: K,
        default: impl FnOnce() -> V,
    ) -> (usize, bool) {
        if let Some(idx) = self.find(key) {
            return (idx, false);
        }
        self.reserve_one();
        let idx = match self.insert_inner(key, default()) {
            InsertOutcome::Inserted(idx) => idx,
            InsertOutcome::Replaced(_) => unreachable!("find() said absent"),
        };
        self.len += 1;
        (idx, true)
    }

    /// Value stored in occupied slot `idx` (from [`Self::find_index`] or
    /// [`Self::entry_index_or_insert_with`], with no intervening insert or
    /// remove). Panics if the slot is empty.
    #[inline]
    pub fn value_at(&self, idx: usize) -> &V {
        let slot = &self.slots[idx];
        assert!(!slot.is_empty(), "value_at on empty slot");
        unsafe { slot.value.assume_init_ref() }
    }

    /// Mutable form of [`Self::value_at`].
    #[inline]
    pub fn value_at_mut(&mut self, idx: usize) -> &mut V {
        let slot = &mut self.slots[idx];
        assert!(!slot.is_empty(), "value_at_mut on empty slot");
        unsafe { slot.value.assume_init_mut() }
    }

    /// Inserts `key -> value`, returning the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.reserve_one();
        match self.insert_inner(key, value) {
            InsertOutcome::Replaced(old) => Some(old),
            InsertOutcome::Inserted(_) => {
                self.len += 1;
                None
            }
        }
    }

    /// Returns a mutable reference to the value for `key`, inserting the
    /// result of `default()` first if absent. Single probe sequence on
    /// either path (hot in the engine's per-event vertex lookup).
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        self.entry_or_insert_with(key, default).0
    }

    /// Like [`Self::get_or_insert_with`], additionally reporting whether
    /// the entry was newly created.
    pub fn entry_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> (&mut V, bool) {
        if let Some(idx) = self.find(key) {
            return (unsafe { self.slots[idx].value.assume_init_mut() }, false);
        }
        self.reserve_one();
        let idx = match self.insert_inner(key, default()) {
            InsertOutcome::Inserted(idx) => idx,
            InsertOutcome::Replaced(_) => unreachable!("find() said absent"),
        };
        self.len += 1;
        (unsafe { self.slots[idx].value.assume_init_mut() }, true)
    }

    /// Removes `key`, returning its value if present. Uses backward-shift
    /// deletion: subsequent displaced entries are moved one slot back, which
    /// (unlike tombstones) keeps probe distances tight under churn.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let idx = self.find(key)?;
        let slot = &mut self.slots[idx];
        slot.dist = EMPTY;
        let value = unsafe {
            slot.key.assume_init_drop_shim();
            slot.value.assume_init_read()
        };
        self.len -= 1;
        // Backward shift: pull each following entry with dist > 0 back by one.
        let mut hole = idx;
        loop {
            let next = (hole + 1) & self.mask;
            let next_dist = self.slots[next].dist;
            if next_dist == EMPTY || next_dist == 0 {
                break;
            }
            let moved = std::mem::replace(&mut self.slots[next], Slot::empty());
            self.slots[hole] = Slot {
                dist: moved.dist - 1,
                key: moved.key,
                value: moved.value,
            };
            hole = next;
        }
        Some(value)
    }

    /// Visits every `(key, &value)` pair in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> + '_ {
        self.slots
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| unsafe { (*s.key.assume_init_ref(), s.value.assume_init_ref()) })
    }

    /// Visits every `(key, &mut value)` pair in unspecified order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> + '_ {
        self.slots
            .iter_mut()
            .filter(|s| !s.is_empty())
            .map(|s| unsafe { (*s.key.assume_init_ref(), s.value.assume_init_mut()) })
    }

    /// Visits every key in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Removes all entries, retaining the allocation.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            if !slot.is_empty() {
                slot.dist = EMPTY;
                unsafe {
                    slot.key.assume_init_drop_shim();
                    slot.value.assume_init_drop();
                }
            }
        }
        self.len = 0;
    }

    /// Longest probe distance currently present (0 for an empty map). Exposed
    /// for tests and the store ablation bench: Robin Hood keeps this small.
    pub fn max_probe_distance(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| s.dist as usize)
            .max()
            .unwrap_or(0)
    }

    #[inline]
    fn reserve_one(&mut self) {
        if self.slots.is_empty() {
            self.grow_to(8);
        } else if (self.len + 1) * LOAD_DEN > self.slots.len() * LOAD_NUM {
            self.grow_to(self.slots.len() * 2);
        }
    }

    fn grow_to(&mut self, new_slots: usize) {
        debug_assert!(new_slots.is_power_of_two());
        let old = std::mem::replace(
            &mut self.slots,
            (0..new_slots).map(|_| Slot::empty()).collect(),
        );
        self.mask = new_slots - 1;
        for slot in old {
            if !slot.is_empty() {
                let (key, value) =
                    unsafe { (*slot.key.assume_init_ref(), slot.value.assume_init_read()) };
                let _ = self.insert_inner(key, value);
            }
        }
    }

    /// Core Robin Hood insertion; assumes capacity is available. Does not
    /// touch `self.len`. Reports the slot index where the *original* key
    /// landed (it never moves again within this insertion: only displaced
    /// residents keep probing).
    fn insert_inner(&mut self, mut key: K, mut value: V) -> InsertOutcome<V> {
        let mut idx = self.ideal(key);
        let mut dist: Dist = 0;
        let mut original_at: Option<usize> = None;
        loop {
            let slot = &mut self.slots[idx];
            if slot.is_empty() {
                slot.dist = dist;
                slot.key.write(key);
                slot.value.write(value);
                return InsertOutcome::Inserted(original_at.unwrap_or(idx));
            }
            if original_at.is_none()
                && slot.dist == dist
                && unsafe { *slot.key.assume_init_ref() } == key
            {
                let old = std::mem::replace(unsafe { slot.value.assume_init_mut() }, value);
                return InsertOutcome::Replaced(old);
            }
            if slot.dist < dist {
                // Steal from the rich: swap the resident out and keep probing
                // to re-place it.
                std::mem::swap(&mut slot.dist, &mut dist);
                unsafe {
                    let k = *slot.key.assume_init_ref();
                    slot.key.write(key);
                    key = k;
                    std::mem::swap(slot.value.assume_init_mut(), &mut value);
                }
                if original_at.is_none() {
                    original_at = Some(idx);
                }
            }
            idx = (idx + 1) & self.mask;
            dist = dist
                .checked_add(1)
                .expect("probe distance overflow: table failed to grow");
        }
    }
}

enum InsertOutcome<V> {
    /// Newly inserted; payload is the slot index of the inserted key.
    Inserted(usize),
    /// Key existed; payload is the previous value.
    Replaced(V),
}

impl<K: Key64, V> Drop for RhhMap<K, V> {
    fn drop(&mut self) {
        if std::mem::needs_drop::<V>() || std::mem::needs_drop::<K>() {
            self.clear();
        }
    }
}

impl<K: Key64, V: Clone> Clone for RhhMap<K, V> {
    fn clone(&self) -> Self {
        let mut m = RhhMap::with_capacity(self.len);
        for (k, v) in self.iter() {
            m.insert(k, v.clone());
        }
        m
    }
}

impl<K: Key64 + std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for RhhMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// `MaybeUninit<K>` for `K: Copy` never needs dropping; this shim documents
/// intent at the call sites that conceptually "take" the key.
trait DropShim {
    unsafe fn assume_init_drop_shim(&mut self);
}

impl<K: Copy> DropShim for std::mem::MaybeUninit<K> {
    #[inline(always)]
    unsafe fn assume_init_drop_shim(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut m = RhhMap::new();
        for i in 0u64..1000 {
            assert_eq!(m.insert(i, i * 2), None);
        }
        assert_eq!(m.len(), 1000);
        for i in 0u64..1000 {
            assert_eq!(m.get(i), Some(&(i * 2)));
        }
        assert_eq!(m.get(1000), None);
    }

    #[test]
    fn insert_replaces() {
        let mut m = RhhMap::new();
        assert_eq!(m.insert(5u64, "a"), None);
        assert_eq!(m.insert(5u64, "b"), Some("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(5), Some(&"b"));
    }

    #[test]
    fn remove_backward_shift_preserves_lookups() {
        let mut m = RhhMap::new();
        for i in 0u64..512 {
            m.insert(i, i);
        }
        // Remove every third key and verify the rest stay findable.
        for i in (0u64..512).step_by(3) {
            assert_eq!(m.remove(i), Some(i));
        }
        for i in 0u64..512 {
            if i % 3 == 0 {
                assert_eq!(m.get(i), None, "key {i} should be gone");
            } else {
                assert_eq!(m.get(i), Some(&i), "key {i} should remain");
            }
        }
    }

    #[test]
    fn remove_missing_is_none() {
        let mut m: RhhMap<u64, u64> = RhhMap::new();
        assert_eq!(m.remove(1), None);
        m.insert(1, 1);
        assert_eq!(m.remove(2), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn get_or_insert_with() {
        let mut m: RhhMap<u64, Vec<u64>> = RhhMap::new();
        m.get_or_insert_with(3, Vec::new).push(7);
        m.get_or_insert_with(3, Vec::new).push(8);
        assert_eq!(m.get(3), Some(&vec![7, 8]));
    }

    #[test]
    fn iter_sees_everything_once() {
        let mut m = RhhMap::new();
        for i in 0u64..100 {
            m.insert(i, ());
        }
        let mut keys: Vec<u64> = m.keys().collect();
        keys.sort_unstable();
        assert_eq!(keys, (0u64..100).collect::<Vec<_>>());
    }

    #[test]
    fn clear_retains_allocation() {
        let mut m = RhhMap::new();
        for i in 0u64..100 {
            m.insert(i, i);
        }
        let cap = m.capacity_slots();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity_slots(), cap);
        m.insert(1, 1);
        assert_eq!(m.get(1), Some(&1));
    }

    #[test]
    fn with_capacity_avoids_growth() {
        let mut m = RhhMap::with_capacity(1000);
        let cap = m.capacity_slots();
        for i in 0u64..1000 {
            m.insert(i, ());
        }
        assert_eq!(m.capacity_slots(), cap);
    }

    #[test]
    fn probe_distances_stay_small_at_load() {
        let mut m = RhhMap::with_capacity(10_000);
        for i in 0u64..10_000 {
            m.insert(i, ());
        }
        // Robin Hood at <= 7/8 load keeps the max probe length modest; the
        // expected max is O(log n). 64 is a very loose ceiling that still
        // catches clustering regressions.
        assert!(
            m.max_probe_distance() < 64,
            "max probe distance {}",
            m.max_probe_distance()
        );
    }

    #[test]
    fn drops_values_exactly_once() {
        use std::rc::Rc;
        let sentinel = Rc::new(());
        {
            let mut m = RhhMap::new();
            for i in 0u64..100 {
                m.insert(i, Rc::clone(&sentinel));
            }
            for i in 0u64..50 {
                m.remove(i);
            }
            assert_eq!(Rc::strong_count(&sentinel), 51);
        }
        assert_eq!(Rc::strong_count(&sentinel), 1);
    }

    #[test]
    fn clone_is_deep_and_equal() {
        let mut m = RhhMap::new();
        for i in 0u64..100 {
            m.insert(i, i + 1);
        }
        let c = m.clone();
        for i in 0u64..100 {
            assert_eq!(c.get(i), Some(&(i + 1)));
        }
        assert_eq!(c.len(), m.len());
    }

    #[test]
    fn slot_index_roundtrip() {
        let mut m: RhhMap<u64, u64> = RhhMap::with_capacity(100);
        let (idx, new) = m.entry_index_or_insert_with(7, || 70);
        assert!(new);
        assert_eq!(*m.value_at(idx), 70);
        *m.value_at_mut(idx) += 1;
        assert_eq!(m.find_index(7), Some(idx));
        assert_eq!(m.get(7), Some(&71));
        let (idx2, new) = m.entry_index_or_insert_with(7, || 0);
        assert!(!new);
        assert_eq!(idx2, idx);
        assert_eq!(m.find_index(8), None);
    }

    #[test]
    fn dense_collisions_handled() {
        // Keys that collide in low bits exercise long probe chains.
        let mut m = RhhMap::new();
        let stride = 1u64 << 32;
        for i in 0u64..200 {
            m.insert(i * stride, i);
        }
        for i in 0u64..200 {
            assert_eq!(m.get(i * stride), Some(&i));
        }
    }
}
