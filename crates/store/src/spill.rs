//! Cold-tier spill storage: the stand-in for DegAwareRHH's NVRAM tier.
//!
//! The paper's store "allows compressed, dynamic graph data to be stored in
//! memory and spill to NVRAM only when needed" (§III-B). We do not have
//! NVRAM; per the reproduction's substitution rules the cold tier is a plain
//! file (DESIGN.md §3.2). The code path is the same one an NVRAM tier would
//! exercise — serialize a vertex's adjacency into a block, free the in-memory
//! representation, and fault it back in on access — only the medium differs.
//!
//! Blocks are allocated append-only with a first-fit free list so that
//! spill/restore churn does not grow the file unboundedly.

use crate::adjacency::{Adjacency, EdgeMeta};
use crate::rhh::RhhMap;
use crate::VertexId;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Handle to a spilled adjacency block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillHandle {
    offset: u64,
    /// Bytes of live data in the block.
    len: u64,
    /// Bytes reserved for the block (>= len); reused via the free list.
    cap: u64,
}

impl SpillHandle {
    /// Size of the live serialized data, in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }
}

/// An append-mostly block store in a temporary file.
pub struct SpillStore {
    file: File,
    path: PathBuf,
    end: u64,
    /// Freed blocks as `(offset, cap)`, first-fit reused.
    free: Vec<(u64, u64)>,
    /// Counters for tests and the Table I stand-in report.
    pub spills: u64,
    pub restores: u64,
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpillStore {
    /// Creates a store backed by a fresh temporary file (removed on drop).
    pub fn new_temp() -> io::Result<Self> {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("remo-spill-{}-{}.bin", std::process::id(), seq));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        Ok(SpillStore {
            file,
            path,
            end: 0,
            free: Vec::new(),
            spills: 0,
            restores: 0,
        })
    }

    /// Current file length in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.end
    }

    /// Serializes `adj` to the cold tier and returns its handle.
    pub fn spill(&mut self, adj: &Adjacency) -> io::Result<SpillHandle> {
        let buf = serialize_adjacency(adj);
        let len = buf.len() as u64;
        let (offset, cap) = self.allocate(len);
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(&buf)?;
        self.spills += 1;
        Ok(SpillHandle { offset, len, cap })
    }

    /// Reads an adjacency back from the cold tier. The handle stays valid
    /// (blocks are immutable until freed), so repeated restores are allowed.
    pub fn restore(&mut self, h: &SpillHandle) -> io::Result<Adjacency> {
        let mut buf = vec![0u8; h.len as usize];
        self.file.seek(SeekFrom::Start(h.offset))?;
        self.file.read_exact(&mut buf)?;
        self.restores += 1;
        deserialize_adjacency(&buf)
    }

    /// Releases a block for reuse.
    pub fn release(&mut self, h: SpillHandle) {
        self.free.push((h.offset, h.cap));
    }

    fn allocate(&mut self, len: u64) -> (u64, u64) {
        if let Some(pos) = self.free.iter().position(|&(_, cap)| cap >= len) {
            let (offset, cap) = self.free.swap_remove(pos);
            return (offset, cap);
        }
        let offset = self.end;
        self.end += len;
        (offset, len)
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn serialize_adjacency(adj: &Adjacency) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + adj.degree() * 24);
    buf.extend_from_slice(&(adj.degree() as u64).to_le_bytes());
    for (nbr, meta) in adj.iter() {
        buf.extend_from_slice(&nbr.to_le_bytes());
        buf.extend_from_slice(&meta.weight.to_le_bytes());
        buf.extend_from_slice(&meta.cached.to_le_bytes());
    }
    buf
}

fn deserialize_adjacency(buf: &[u8]) -> io::Result<Adjacency> {
    let corrupt = || io::Error::new(io::ErrorKind::InvalidData, "corrupt spill block");
    let read_u64 = |at: usize| -> io::Result<u64> {
        Ok(u64::from_le_bytes(
            buf.get(at..at + 8).ok_or_else(corrupt)?.try_into().unwrap(),
        ))
    };
    let count = read_u64(0)? as usize;
    let mut adj = Adjacency::new();
    for i in 0..count {
        let base = 8 + i * 24;
        let nbr = read_u64(base)?;
        let weight = read_u64(base + 8)?;
        let cached = read_u64(base + 16)?;
        adj.insert(nbr, EdgeMeta { weight, cached });
    }
    Ok(adj)
}

/// A tiered adjacency store: hot adjacencies live in memory, cold ones on the
/// spill device. Vertices fault in on access, as a semi-external-memory graph
/// store would against NVRAM.
pub struct TieredAdjacency {
    hot: RhhMap<VertexId, Adjacency>,
    cold: RhhMap<VertexId, SpillHandle>,
    store: SpillStore,
}

impl TieredAdjacency {
    /// Creates an empty tiered store with a fresh spill file.
    pub fn new() -> io::Result<Self> {
        Ok(TieredAdjacency {
            hot: RhhMap::new(),
            cold: RhhMap::new(),
            store: SpillStore::new_temp()?,
        })
    }

    /// Inserts an edge, faulting the source's adjacency in if it was cold.
    pub fn insert_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        meta: EdgeMeta,
    ) -> io::Result<bool> {
        self.fault_in(src)?;
        Ok(self
            .hot
            .get_or_insert_with(src, Adjacency::new)
            .insert(dst, meta))
    }

    /// Evicts `v`'s adjacency to the cold tier. No-op if `v` is absent or
    /// already cold.
    pub fn evict(&mut self, v: VertexId) -> io::Result<()> {
        if let Some(adj) = self.hot.remove(v) {
            let h = self.store.spill(&adj)?;
            self.cold.insert(v, h);
        }
        Ok(())
    }

    /// Evicts every hot vertex whose estimated footprint is at most
    /// `max_bytes` — a crude coldness policy sufficient for exercising the
    /// tier (real systems use recency; the IO path is identical).
    pub fn evict_small(&mut self, max_bytes: usize) -> io::Result<usize> {
        let victims: Vec<VertexId> = self
            .hot
            .iter()
            .filter(|(_, a)| a.heap_bytes() <= max_bytes)
            .map(|(v, _)| v)
            .collect();
        let n = victims.len();
        for v in victims {
            self.evict(v)?;
        }
        Ok(n)
    }

    /// Degree of `v` (faults in if cold).
    pub fn degree(&mut self, v: VertexId) -> io::Result<usize> {
        self.fault_in(v)?;
        Ok(self.hot.get(v).map_or(0, |a| a.degree()))
    }

    /// Neighbours of `v` as an owned vector (faults in if cold).
    pub fn neighbors(&mut self, v: VertexId) -> io::Result<Vec<(VertexId, EdgeMeta)>> {
        self.fault_in(v)?;
        Ok(self
            .hot
            .get(v)
            .map_or_else(Vec::new, |a| a.iter().collect()))
    }

    /// Number of vertices currently in the hot tier.
    pub fn hot_count(&self) -> usize {
        self.hot.len()
    }

    /// Number of vertices currently spilled.
    pub fn cold_count(&self) -> usize {
        self.cold.len()
    }

    /// Spill/restore counters `(spills, restores)`.
    pub fn io_counters(&self) -> (u64, u64) {
        (self.store.spills, self.store.restores)
    }

    fn fault_in(&mut self, v: VertexId) -> io::Result<()> {
        if let Some(h) = self.cold.remove(v) {
            let adj = self.store.restore(&h)?;
            self.store.release(h);
            self.hot.insert(v, adj);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_adj(n: u64) -> Adjacency {
        let mut a = Adjacency::new();
        for i in 0..n {
            a.insert(
                i,
                EdgeMeta {
                    weight: i + 1,
                    cached: i * 2,
                },
            );
        }
        a
    }

    #[test]
    fn spill_restore_roundtrip() {
        let mut s = SpillStore::new_temp().unwrap();
        let adj = sample_adj(100);
        let h = s.spill(&adj).unwrap();
        let back = s.restore(&h).unwrap();
        assert_eq!(back.degree(), 100);
        for i in 0..100u64 {
            assert_eq!(back.get(i).unwrap().weight, i + 1);
            assert_eq!(back.get(i).unwrap().cached, i * 2);
        }
    }

    #[test]
    fn empty_adjacency_roundtrip() {
        let mut s = SpillStore::new_temp().unwrap();
        let h = s.spill(&Adjacency::new()).unwrap();
        assert_eq!(s.restore(&h).unwrap().degree(), 0);
    }

    #[test]
    fn free_list_reuses_blocks() {
        let mut s = SpillStore::new_temp().unwrap();
        let h1 = s.spill(&sample_adj(50)).unwrap();
        let end_after_first = s.file_bytes();
        s.release(h1);
        let _h2 = s.spill(&sample_adj(40)).unwrap(); // fits in freed block
        assert_eq!(
            s.file_bytes(),
            end_after_first,
            "file grew despite free block"
        );
    }

    #[test]
    fn tiered_store_faults_in_transparently() {
        let mut t = TieredAdjacency::new().unwrap();
        for dst in 0..20u64 {
            t.insert_edge(1, dst, EdgeMeta::unweighted()).unwrap();
        }
        t.evict(1).unwrap();
        assert_eq!(t.hot_count(), 0);
        assert_eq!(t.cold_count(), 1);
        // Access faults it back in.
        assert_eq!(t.degree(1).unwrap(), 20);
        assert_eq!(t.hot_count(), 1);
        assert_eq!(t.cold_count(), 0);
        // And edges survive the trip.
        assert_eq!(t.neighbors(1).unwrap().len(), 20);
    }

    #[test]
    fn insert_after_evict_preserves_old_edges() {
        let mut t = TieredAdjacency::new().unwrap();
        t.insert_edge(5, 1, EdgeMeta::unweighted()).unwrap();
        t.evict(5).unwrap();
        t.insert_edge(5, 2, EdgeMeta::unweighted()).unwrap();
        let nbrs = t.neighbors(5).unwrap();
        assert_eq!(nbrs.len(), 2);
    }

    #[test]
    fn evict_small_only_takes_small_vertices() {
        let mut t = TieredAdjacency::new().unwrap();
        for dst in 0..500u64 {
            t.insert_edge(1, dst, EdgeMeta::unweighted()).unwrap();
        }
        t.insert_edge(2, 1, EdgeMeta::unweighted()).unwrap();
        // A degree-1 compact list occupies one small Vec allocation
        // (capacity 4 => 96 bytes); the degree-500 vertex is far larger.
        let evicted = t.evict_small(128).unwrap();
        assert_eq!(evicted, 1, "only the degree-1 vertex fits under 128 bytes");
        assert_eq!(t.cold_count(), 1);
        assert_eq!(t.degree(1).unwrap(), 500);
    }
}
