//! Property-based tests for the storage layer: the Robin Hood map and the
//! degree-aware adjacency must behave exactly like their obvious model
//! implementations under arbitrary operation sequences.

use proptest::prelude::*;
use remo_store::adjacency::{Adjacency, EdgeMeta};
use remo_store::bitset::BitSet;
use remo_store::csr::Csr;
use remo_store::rhh::RhhMap;
use std::collections::{BTreeMap, BTreeSet, HashMap};

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Clear,
}

fn map_op() -> impl Strategy<Value = MapOp> {
    // Keys from a small domain so inserts/removes collide often.
    let key = 0u64..64;
    prop_oneof![
        4 => (key.clone(), any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        2 => key.clone().prop_map(MapOp::Remove),
        2 => key.prop_map(MapOp::Get),
        1 => Just(MapOp::Clear),
    ]
}

proptest! {
    /// The Robin Hood map agrees with `HashMap` under arbitrary op sequences.
    #[test]
    fn rhh_matches_model(ops in proptest::collection::vec(map_op(), 0..400)) {
        let mut rhh: RhhMap<u64, u64> = RhhMap::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(rhh.insert(k, v), model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(rhh.remove(k), model.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(rhh.get(k), model.get(&k));
                }
                MapOp::Clear => {
                    rhh.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(rhh.len(), model.len());
        }
        // Final full-content comparison.
        let got: BTreeMap<u64, u64> = rhh.iter().map(|(k, v)| (k, *v)).collect();
        let want: BTreeMap<u64, u64> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Adjacency (with its compact->table promotion) agrees with a BTreeMap
    /// model, including the promotion boundary.
    #[test]
    fn adjacency_matches_model(
        ops in proptest::collection::vec(
            prop_oneof![
                4 => (0u64..128, 1u64..100).prop_map(|(n, w)| (0u8, n, w)),
                1 => (0u64..128, 0u64..1).prop_map(|(n, _)| (1u8, n, 0)),
            ],
            0..300,
        )
    ) {
        let mut adj = Adjacency::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (kind, nbr, w) in ops {
            if kind == 0 {
                let new = adj.insert(nbr, EdgeMeta::weighted(w));
                prop_assert_eq!(new, model.insert(nbr, w).is_none());
            } else {
                let removed = adj.remove(nbr);
                prop_assert_eq!(removed.map(|m| m.weight), model.remove(&nbr));
            }
            prop_assert_eq!(adj.degree(), model.len());
        }
        let got: BTreeMap<u64, u64> =
            adj.iter().map(|(n, m)| (n, m.weight)).collect();
        prop_assert_eq!(got, model);
    }

    /// BitSet agrees with a BTreeSet model, and union is the lattice join.
    #[test]
    fn bitset_matches_model(
        a in proptest::collection::btree_set(0usize..512, 0..64),
        b in proptest::collection::btree_set(0usize..512, 0..64),
    ) {
        let sa: BitSet = a.iter().copied().collect();
        let sb: BitSet = b.iter().copied().collect();
        prop_assert_eq!(sa.count(), a.len());
        for x in 0..512 {
            prop_assert_eq!(sa.contains(x), a.contains(&x));
        }
        prop_assert_eq!(sa.is_subset(&sb), a.is_subset(&b));
        let mut merged = sa.clone();
        let changed = merged.union_in_place(&sb);
        let union: BTreeSet<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(merged.iter().collect::<Vec<_>>(),
                        union.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(changed, union.len() != a.len());
        // Join is idempotent (monotone convergence relies on this).
        prop_assert!(!merged.clone().union_in_place(&sb));
    }

    /// CSR is a lossless re-encoding of any edge list.
    #[test]
    fn csr_roundtrips_edges(
        edges in proptest::collection::vec((0u64..64, 0u64..64, 1u64..1000), 0..200)
    ) {
        let g = Csr::from_weighted_edges(64, &edges);
        prop_assert_eq!(g.num_edges(), edges.len());
        let mut got: Vec<_> = g.edges().collect();
        let mut want = edges.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // Degrees sum to edge count.
        let total: usize = (0..64).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, edges.len());
    }

    /// Spill serialization is lossless for arbitrary adjacencies.
    #[test]
    fn spill_roundtrips(
        edges in proptest::collection::btree_map(0u64..1000, (1u64..100, 0u64..100), 0..80)
    ) {
        let mut adj = Adjacency::new();
        for (&n, &(w, c)) in &edges {
            adj.insert(n, EdgeMeta { weight: w, cached: c });
        }
        let mut store = remo_store::SpillStore::new_temp().unwrap();
        let h = store.spill(&adj).unwrap();
        let back = store.restore(&h).unwrap();
        prop_assert_eq!(back.degree(), edges.len());
        for (&n, &(w, c)) in &edges {
            let m = back.get(n).expect("edge lost in spill");
            prop_assert_eq!((m.weight, m.cached), (w, c));
        }
    }
}
