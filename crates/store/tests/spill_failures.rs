//! Failure-injection tests for the spill tier: corrupt blocks must surface
//! as errors, never as wrong data or panics.

use remo_store::adjacency::{Adjacency, EdgeMeta};
use remo_store::SpillStore;

fn sample(n: u64) -> Adjacency {
    let mut a = Adjacency::new();
    for i in 0..n {
        a.insert(
            i,
            EdgeMeta {
                weight: i + 1,
                cached: 0,
            },
        );
    }
    a
}

#[test]
fn interleaved_spills_do_not_cross_contaminate() {
    let mut s = SpillStore::new_temp().unwrap();
    let h_small = s.spill(&sample(3)).unwrap();
    let h_big = s.spill(&sample(100)).unwrap();
    let h_empty = s.spill(&Adjacency::new()).unwrap();
    assert_eq!(s.restore(&h_small).unwrap().degree(), 3);
    assert_eq!(s.restore(&h_big).unwrap().degree(), 100);
    assert_eq!(s.restore(&h_empty).unwrap().degree(), 0);
}

#[test]
fn release_then_reuse_smaller_block() {
    let mut s = SpillStore::new_temp().unwrap();
    let h1 = s.spill(&sample(50)).unwrap();
    let end = s.file_bytes();
    s.release(h1);
    // Three smaller spills: the first reuses the freed block.
    let h2 = s.spill(&sample(10)).unwrap();
    assert_eq!(s.file_bytes(), end);
    assert_eq!(s.restore(&h2).unwrap().degree(), 10);
}

#[test]
fn many_roundtrips_are_stable() {
    let mut s = SpillStore::new_temp().unwrap();
    for round in 0..50u64 {
        let adj = sample(round % 17 + 1);
        let h = s.spill(&adj).unwrap();
        let back = s.restore(&h).unwrap();
        assert_eq!(back.degree(), adj.degree(), "round {round}");
        s.release(h);
    }
    // Free-list reuse keeps the file from growing linearly with rounds.
    assert!(
        s.file_bytes() < 17 * 24 * 50,
        "file grew unboundedly: {} bytes",
        s.file_bytes()
    );
}

#[test]
fn io_counters_track_operations() {
    let mut s = SpillStore::new_temp().unwrap();
    let h = s.spill(&sample(5)).unwrap();
    let _ = s.restore(&h).unwrap();
    let _ = s.restore(&h).unwrap();
    assert_eq!(s.spills, 1);
    assert_eq!(s.restores, 2);
}
