//! Property tests for the REMO convergence claim (§II-B, §II-D):
//! for every algorithm, **any** edge stream over **any** shard count,
//! shuffled **any** way, converges to exactly the state a static oracle
//! computes on the final graph — monotonically.
//!
//! This is the paper's central correctness argument ("the resulting state is
//! the deterministic level according to the topology of the graph")
//! verified mechanically against the union-find / BFS / Dijkstra oracles.

use proptest::prelude::*;
use remo_algos::{cc_label, IncBfs, IncCc, IncSssp, IncStCon, UNREACHED};
use remo_baseline as oracle;
use remo_core::{Engine, EngineConfig};
use remo_store::Csr;

/// Generates a random edge list over a small vertex domain (dense enough to
/// produce interesting components and cycles).
fn edges_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..24, 0u64..24), 1..120)
        .prop_map(|v| v.into_iter().filter(|&(a, b)| a != b).collect())
}

fn undirected_csr(edges: &[(u64, u64)], n: usize) -> Csr {
    Csr::from_edges(n, &oracle::symmetrize(edges))
}

fn weighted_csr(edges: &[(u64, u64, u64)], n: usize) -> Csr {
    Csr::from_weighted_edges(n, &oracle::construct::symmetrize_weighted(edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental BFS == static BFS, for any stream and shard count.
    #[test]
    fn bfs_matches_oracle(
        edges in edges_strategy(),
        shards in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut stream = edges.clone();
        remo_gen::stream::shuffle(&mut stream, seed);

        let engine = Engine::new(IncBfs, EngineConfig::undirected(shards));
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_pairs(&stream).unwrap();
        let states = engine.try_finish().unwrap().states;

        let csr = undirected_csr(&edges, 24);
        let want = oracle::bfs_levels(&csr, 0);
        for (v, &level) in states.iter() {
            let expect = want.get(v as usize).copied().unwrap_or(oracle::UNREACHED);
            prop_assert_eq!(level, expect, "vertex {} (P={}, seed={})", v, shards, seed);
        }
    }

    /// Incremental SSSP == Dijkstra, for any weighted stream.
    #[test]
    fn sssp_matches_oracle(
        edges in edges_strategy(),
        shards in 1usize..5,
        seed in any::<u64>(),
        wmax in 1u64..20,
    ) {
        let weighted = remo_gen::stream::with_weights(&edges, wmax, seed ^ 0xabc);
        let mut stream = weighted.clone();
        // Shuffle triple order with the pair shuffler's RNG discipline.
        {
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            for i in (1..stream.len()).rev() {
                let j = rng.gen_range(0..=i);
                stream.swap(i, j);
            }
        }

        let engine = Engine::new(IncSssp, EngineConfig::undirected(shards));
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_weighted(&stream).unwrap();
        let states = engine.try_finish().unwrap().states;

        // Re-adding an undirected edge with a different weight makes the
        // stored weight (and thus late re-relaxations) depend on event
        // arrival order — the paper restricts weight updates to reductions
        // for exactly this reason. Keep the oracle exact by only checking
        // streams where every *unordered* pair appears once.
        let mut seen: std::collections::HashSet<(u64, u64)> = Default::default();
        let unique = weighted
            .iter()
            .all(|&(s, d, _)| seen.insert((s.min(d), s.max(d))));
        if unique {
            let csr = weighted_csr(&weighted, 24);
            let want = oracle::sssp_costs(&csr, 0);
            for (v, &cost) in states.iter() {
                let expect = want.get(v as usize).copied().unwrap_or(UNREACHED);
                prop_assert_eq!(cost, expect, "vertex {} (P={}, seed={})", v, shards, seed);
            }
        }
    }

    /// Incremental CC == union-find dominator labels.
    #[test]
    fn cc_matches_oracle(
        edges in edges_strategy(),
        shards in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut stream = edges.clone();
        remo_gen::stream::shuffle(&mut stream, seed);

        let engine = Engine::new(IncCc, EngineConfig::undirected(shards));
        engine.try_ingest_pairs(&stream).unwrap();
        let states = engine.try_finish().unwrap().states;

        let csr = undirected_csr(&edges, 24);
        let want = oracle::components_dominator_label(&csr, cc_label);
        for (v, &label) in states.iter() {
            prop_assert_eq!(label, want[v as usize], "vertex {} (P={})", v, shards);
        }
    }

    /// Multi S-T == per-source reachability masks.
    #[test]
    fn stcon_matches_oracle(
        edges in edges_strategy(),
        shards in 1usize..5,
        seed in any::<u64>(),
        nsources in 1usize..5,
    ) {
        let mut stream = edges.clone();
        remo_gen::stream::shuffle(&mut stream, seed);
        let sources: Vec<u64> = (0..nsources as u64 * 3).step_by(3).collect();

        let engine = Engine::new(
            IncStCon::new(sources.clone()),
            EngineConfig::undirected(shards),
        );
        for &s in &sources {
            engine.try_init_vertex(s).unwrap();
        }
        engine.try_ingest_pairs(&stream).unwrap();
        let states = engine.try_finish().unwrap().states;

        let csr = undirected_csr(&edges, 24);
        let want = oracle::st_masks(&csr, &sources);
        for (v, &mask) in states.iter() {
            let expect = want.get(v as usize).copied().unwrap_or(0);
            prop_assert_eq!(mask, expect, "vertex {} (P={})", v, shards);
        }
    }

    /// Permutation independence: two different shuffles of the same stream
    /// give bit-identical final states (the §II-D determinism claim).
    #[test]
    fn permutations_reach_identical_fixpoints(
        edges in edges_strategy(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let mut a = edges.clone();
        let mut b = edges.clone();
        remo_gen::stream::shuffle(&mut a, seed_a);
        remo_gen::stream::shuffle(&mut b, seed_b);

        let ea = Engine::new(IncBfs, EngineConfig::undirected(3));
        ea.try_init_vertex(0).unwrap();
        ea.try_ingest_pairs(&a).unwrap();
        let ra = ea.try_finish().unwrap().states.into_vec();

        let eb = Engine::new(IncBfs, EngineConfig::undirected(3));
        eb.try_init_vertex(0).unwrap();
        eb.try_ingest_pairs(&b).unwrap();
        let rb = eb.try_finish().unwrap().states.into_vec();

        prop_assert_eq!(ra, rb);
    }

    /// Monotonicity under incremental batches: levels never increase as
    /// more edges arrive (the definition of the convex REMO state space).
    #[test]
    fn bfs_levels_never_regress_across_batches(
        edges in edges_strategy(),
        cut in 0.1f64..0.9,
    ) {
        let split_at = ((edges.len() as f64) * cut) as usize;
        let (first, second) = edges.split_at(split_at);

        let engine = Engine::new(IncBfs, EngineConfig::undirected(2));
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_pairs(first).unwrap();
        let before = engine.try_collect_live().unwrap();
        engine.try_ingest_pairs(second).unwrap();
        let after = engine.try_finish().unwrap().states;

        for (v, &lvl_before) in before.iter() {
            if let Some(&lvl_after) = after.get(v) {
                prop_assert!(
                    lvl_after <= lvl_before || lvl_before == 0,
                    "vertex {} regressed {} -> {}", v, lvl_before, lvl_after
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Incremental widest path == max-bottleneck Dijkstra, for any stream
    /// with unique unordered pairs (duplicate weights are order-ambiguous,
    /// as for SSSP).
    #[test]
    fn widest_matches_oracle(
        edges in edges_strategy(),
        shards in 1usize..5,
        seed in any::<u64>(),
        wmax in 1u64..30,
    ) {
        let mut seen: std::collections::HashSet<(u64, u64)> = Default::default();
        let unique: Vec<(u64, u64)> = edges
            .into_iter()
            .filter(|&(a, b)| seen.insert((a.min(b), a.max(b))))
            .collect();
        prop_assume!(!unique.is_empty());
        let weighted = remo_gen::stream::with_weights(&unique, wmax, seed ^ 0x717);

        let engine = Engine::new(remo_algos::IncWidest, EngineConfig::undirected(shards));
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_weighted(&weighted).unwrap();
        let states = engine.try_finish().unwrap().states;

        let csr = weighted_csr(&weighted, 24);
        let want = oracle::widest_paths(&csr, 0);
        for (v, &cap) in states.iter() {
            let expect = want.get(v as usize).copied().unwrap_or(0);
            prop_assert_eq!(cap, expect, "vertex {} (P={}, seed={})", v, shards, seed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Incremental temporal reachability == the static earliest-arrival
    /// sweep (unique unordered pairs; timestamps >= 2 per the arrival
    /// convention).
    #[test]
    fn temporal_matches_oracle(
        edges in edges_strategy(),
        shards in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut seen: std::collections::HashSet<(u64, u64)> = Default::default();
        let unique: Vec<(u64, u64)> = edges
            .into_iter()
            .filter(|&(a, b)| seen.insert((a.min(b), a.max(b))))
            .collect();
        prop_assume!(!unique.is_empty());
        // Timestamps in 2..=50.
        let stamped: Vec<(u64, u64, u64)> = remo_gen::stream::with_weights(&unique, 49, seed)
            .into_iter()
            .map(|(s, d, w)| (s, d, w + 1))
            .collect();

        let engine = Engine::new(remo_algos::IncTemporal, EngineConfig::undirected(shards));
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_weighted(&stamped).unwrap();
        let states = engine.try_finish().unwrap().states;

        let csr = weighted_csr(&stamped, 24);
        let want = oracle::earliest_arrivals(&csr, 0);
        for (v, &arrival) in states.iter() {
            let expect = want.get(v as usize).copied().unwrap_or(UNREACHED);
            prop_assert_eq!(arrival, expect, "vertex {} (P={}, seed={})", v, shards, seed);
        }
    }
}
