//! Property tests for the lattice messaging layers (coalescing + dominance
//! filtering + priority draining): for every coalescing-enabled algorithm,
//! any seeded RMAT stream, and any shard count, the lattice-enabled engine
//! reaches the *identical* final state map as the exact-FIFO baseline — the
//! layers may only change how much work convergence takes, never where it
//! lands (§II-B order-independence). Each run also checks the termination
//! books: absorbed and dominance-retired envelopes must not leak `sent` or
//! `processed` counts, so the four-counter probe still balances at
//! quiescence.

use proptest::prelude::*;
use remo_core::{Engine, EngineConfig, VertexId, Weight};
use remo_gen::RmatConfig;
use remo_store::hash::mix64;

/// Small seeded RMAT stream: dense enough for improvement bursts (the
/// redundancy the lattice layers exist to eliminate) while keeping each
/// proptest case cheap.
fn rmat_edges(seed: u64) -> Vec<(VertexId, VertexId)> {
    let cfg = RmatConfig {
        seed,
        ..RmatConfig::graph500(6)
    };
    let mut edges = remo_gen::rmat::generate(&cfg);
    remo_gen::stream::shuffle(&mut edges, seed ^ 0x1a77);
    edges
}

/// Weight derived from the endpoints only (symmetric), so duplicate and
/// reversed occurrences of an edge in the stream agree — differing weights
/// on the same undirected edge make the weighted fixpoint order-dependent
/// regardless of coalescing (see DESIGN.md on reduction-only updates).
fn weighted(edges: &[(VertexId, VertexId)]) -> Vec<(VertexId, VertexId, Weight)> {
    edges
        .iter()
        .map(|&(s, d)| (s, d, (mix64(s ^ d) % 13) + 1))
        .collect()
}

/// Runs the algorithm over the stream twice — exact FIFO and all lattice
/// layers on — and asserts identical fixpoints plus balanced counters.
fn assert_lattice_matches_fifo<A, F>(
    make: F,
    edges: &[(VertexId, VertexId)],
    weights: Option<&[(VertexId, VertexId, Weight)]>,
    init: Option<VertexId>,
    shards: usize,
) -> Result<(), TestCaseError>
where
    A: remo_core::Algorithm,
    A::State: PartialEq + std::fmt::Debug,
    F: Fn() -> A,
{
    let mut states = Vec::new();
    for lattice in [false, true] {
        let mut config = EngineConfig::undirected(shards);
        if lattice {
            config = config.with_lattice();
        }
        let engine = Engine::new(make(), config);
        if let Some(v) = init {
            engine.try_init_vertex(v).unwrap();
        }
        match weights {
            Some(w) => engine.try_ingest_weighted(w).unwrap(),
            None => engine.try_ingest_pairs(edges).unwrap(),
        }
        engine.try_await_quiescence().unwrap();
        prop_assert!(
            engine.counters_balanced(),
            "sent/processed counters leaked (lattice={}, P={})",
            lattice,
            shards
        );
        let result = engine.try_finish().unwrap();
        // The per-envelope books must close too: sent = processed +
        // dominated + undeliverable + dropped, with coalesced/suppressed
        // envelopes never counted as sent (RunMetrics::verify_balance).
        let balance = result.metrics.verify_balance();
        prop_assert!(
            balance.is_ok(),
            "balance violated (lattice={}, P={}): {:?}",
            lattice,
            shards,
            balance
        );
        states.push(result.states.into_vec());
    }
    prop_assert_eq!(
        &states[0],
        &states[1],
        "lattice run diverged (P={})",
        shards
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bfs_lattice_matches_fifo(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        let source = edges[0].0;
        assert_lattice_matches_fifo(|| remo_algos::IncBfs, &edges, None, Some(source), shards)?;
    }

    #[test]
    fn sssp_lattice_matches_fifo(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        let w = weighted(&edges);
        let source = edges[0].0;
        assert_lattice_matches_fifo(|| remo_algos::IncSssp, &edges, Some(&w), Some(source), shards)?;
    }

    #[test]
    fn cc_lattice_matches_fifo(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        assert_lattice_matches_fifo(|| remo_algos::IncCc, &edges, None, None, shards)?;
    }

    #[test]
    fn widest_lattice_matches_fifo(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        let w = weighted(&edges);
        let source = edges[0].0;
        assert_lattice_matches_fifo(|| remo_algos::IncWidest, &edges, Some(&w), Some(source), shards)?;
    }

    /// Degree implements `join` (max — for composition) but no `priority`:
    /// the lattice layers must degrade to exact FIFO without disturbing the
    /// counts.
    #[test]
    fn degree_lattice_matches_fifo(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        assert_lattice_matches_fifo(|| remo_algos::DegreeCount, &edges, None, None, shards)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The adaptive controller composes with the lattice layers: exact
    /// FIFO, static all-on lattice, and both adaptive bases (controller
    /// starting from lattice-off and from lattice-on, flipping coalescing
    /// and batch sizes mid-run) must land on byte-identical fixpoints
    /// with balanced envelope books.
    #[test]
    fn adaptive_lattice_matches_fifo(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        let w = weighted(&edges);
        let source = edges[0].0;
        let mut states = Vec::new();
        for (lattice, adaptive) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut config = EngineConfig::undirected(shards);
            if lattice {
                config = config.with_lattice();
            }
            if adaptive {
                config = config.with_adaptive();
            }
            let engine = Engine::new(remo_algos::IncSssp, config);
            engine.try_init_vertex(source).unwrap();
            engine.try_ingest_weighted(&w).unwrap();
            engine.try_await_quiescence().unwrap();
            prop_assert!(
                engine.counters_balanced(),
                "counters leaked (lattice={}, adaptive={}, P={})",
                lattice, adaptive, shards
            );
            let result = engine.try_finish().unwrap();
            let balance = result.metrics.verify_balance();
            prop_assert!(
                balance.is_ok(),
                "balance violated (lattice={}, adaptive={}, P={}): {:?}",
                lattice, adaptive, shards, balance
            );
            states.push(result.states.into_vec());
        }
        for s in &states[1..] {
            prop_assert_eq!(&states[0], s, "adaptive cell diverged from FIFO (P={})", shards);
        }
    }
}
