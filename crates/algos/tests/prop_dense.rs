//! Differential property tests for the storage layouts: for every
//! algorithm, seeded RMAT stream, and shard count, the dense-arena layout
//! (interning table + dense record slab) must be observationally
//! identical to the seed's rhh-record layout — byte-identical fixpoints,
//! identical mid-stream snapshot views (exercising the cold fork side map),
//! and the same set of trigger firings. The layout is a physical choice;
//! nothing the engine computes may depend on it.

use proptest::prelude::*;
use remo_core::{Engine, EngineBuilder, EngineConfig, StorageLayout, VertexId, Weight};
use remo_gen::RmatConfig;
use remo_store::hash::mix64;

/// Small seeded RMAT stream, shuffled: dense enough to exercise growth,
/// promotion, and cross-shard traffic while keeping each case cheap.
fn rmat_edges(seed: u64) -> Vec<(VertexId, VertexId)> {
    let cfg = RmatConfig {
        seed,
        ..RmatConfig::graph500(6)
    };
    let mut edges = remo_gen::rmat::generate(&cfg);
    remo_gen::stream::shuffle(&mut edges, seed ^ 0x1a77);
    edges
}

/// Symmetric per-edge weight (see prop_lattice: reversed occurrences of an
/// undirected edge must agree for the weighted fixpoint to be unique).
fn weighted(edges: &[(VertexId, VertexId)]) -> Vec<(VertexId, VertexId, Weight)> {
    edges
        .iter()
        .map(|&(s, d)| (s, d, (mix64(s ^ d) % 13) + 1))
        .collect()
}

/// What one run observed, in comparable form.
#[derive(Debug, PartialEq)]
struct Observed<S> {
    snapshot: Vec<(VertexId, S)>,
    fixpoint: Vec<(VertexId, S)>,
    fires: Vec<(usize, VertexId)>,
    num_vertices: usize,
    num_edges: u64,
}

/// Runs `make()` over the stream under `layout`: ingest the first half,
/// quiesce, take a continuous snapshot (forcing per-vertex forks and the
/// dense layout's cold side map), ingest the rest, and harvest fixpoint +
/// trigger fires. The mid-run quiescence pins the snapshot boundary so both
/// layouts observe the same prefix.
fn observe<A, F>(
    make: F,
    layout: StorageLayout,
    edges: &[(VertexId, VertexId)],
    weights: Option<&[(VertexId, VertexId, Weight)]>,
    init: Option<VertexId>,
    shards: usize,
) -> Observed<A::State>
where
    A: remo_core::Algorithm,
    A::State: PartialEq + std::fmt::Debug,
    F: Fn() -> A,
{
    let config = EngineConfig::undirected(shards)
        .with_storage(layout)
        .with_expected_vertices(64);
    let mut builder = EngineBuilder::new(make(), config);
    // Fire-once trigger over a state the algorithms all eventually leave
    // bottom on; the exact predicate does not matter, only that both
    // layouts agree on the fire set.
    builder.trigger("nonbottom", |_v, s: &A::State| *s != A::State::default());
    let mut engine = builder.build();
    if let Some(v) = init {
        engine.try_init_vertex(v).unwrap();
    }
    let half = edges.len() / 2;
    match weights {
        Some(w) => engine.try_ingest_weighted(&w[..half]).unwrap(),
        None => engine.try_ingest_pairs(&edges[..half]).unwrap(),
    }
    engine.try_await_quiescence().unwrap();
    let snapshot = engine.try_snapshot().unwrap().into_vec();
    match weights {
        Some(w) => engine.try_ingest_weighted(&w[half..]).unwrap(),
        None => engine.try_ingest_pairs(&edges[half..]).unwrap(),
    }
    engine.try_await_quiescence().unwrap();
    let mut fires: Vec<(usize, VertexId)> = engine
        .trigger_events()
        .try_iter()
        .map(|f| (f.trigger, f.vertex))
        .collect();
    fires.sort_unstable();
    fires.dedup();
    let result = engine.try_finish().unwrap();
    assert!(result.failures.is_empty());
    assert!(result.store_bytes > 0, "store must report a footprint");
    Observed {
        snapshot,
        fixpoint: result.states.into_vec(),
        fires,
        num_vertices: result.num_vertices,
        num_edges: result.num_edges,
    }
}

/// Asserts the two layouts observe the same world.
fn assert_layouts_agree<A, F>(
    make: F,
    edges: &[(VertexId, VertexId)],
    weights: Option<&[(VertexId, VertexId, Weight)]>,
    init: Option<VertexId>,
    shards: usize,
) -> Result<(), TestCaseError>
where
    A: remo_core::Algorithm,
    A::State: PartialEq + std::fmt::Debug,
    F: Fn() -> A + Copy,
{
    let dense = observe::<A, F>(
        make,
        StorageLayout::DenseArena,
        edges,
        weights,
        init,
        shards,
    );
    let legacy = observe::<A, F>(make, StorageLayout::RhhRecord, edges, weights, init, shards);
    prop_assert_eq!(
        &dense.fixpoint,
        &legacy.fixpoint,
        "fixpoints diverged (P={})",
        shards
    );
    prop_assert_eq!(
        &dense.snapshot,
        &legacy.snapshot,
        "snapshot views diverged (P={})",
        shards
    );
    prop_assert_eq!(
        &dense.fires,
        &legacy.fires,
        "trigger fire sets diverged (P={})",
        shards
    );
    prop_assert_eq!(dense.num_vertices, legacy.num_vertices);
    prop_assert_eq!(dense.num_edges, legacy.num_edges);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn bfs_layouts_agree(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        let source = edges[0].0;
        assert_layouts_agree::<remo_algos::IncBfs, _>(
            || remo_algos::IncBfs, &edges, None, Some(source), shards)?;
    }

    #[test]
    fn sssp_layouts_agree(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        let w = weighted(&edges);
        let source = edges[0].0;
        assert_layouts_agree::<remo_algos::IncSssp, _>(
            || remo_algos::IncSssp, &edges, Some(&w), Some(source), shards)?;
    }

    #[test]
    fn cc_layouts_agree(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        assert_layouts_agree::<remo_algos::IncCc, _>(
            || remo_algos::IncCc, &edges, None, None, shards)?;
    }

    /// The lattice layers compose with the dense layout: all three layers
    /// on, both storage layouts, same fixpoint.
    #[test]
    fn lattice_on_dense_matches_lattice_on_legacy(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        let source = edges[0].0;
        let mut states = Vec::new();
        for layout in [StorageLayout::DenseArena, StorageLayout::RhhRecord] {
            let config = EngineConfig::undirected(shards)
                .with_lattice()
                .with_storage(layout);
            let engine = Engine::new(remo_algos::IncBfs, config);
            engine.try_init_vertex(source).unwrap();
            engine.try_ingest_pairs(&edges).unwrap();
            engine.try_await_quiescence().unwrap();
            prop_assert!(engine.counters_balanced());
            states.push(engine.try_finish().unwrap().states.into_vec());
        }
        prop_assert_eq!(&states[0], &states[1], "lattice+dense diverged (P={})", shards);
    }
}
