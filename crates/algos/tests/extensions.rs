//! Tests for the extension algorithms: wide (>64 source) S-T connectivity,
//! generational deletes under randomized schedules, and the deterministic
//! BFS tree's validity invariants.

use proptest::prelude::*;
use remo_algos::generational::{level_in_generation, GenBfs};
use remo_algos::{IncBfsDeterministic, IncStConWide, UNREACHED};
use remo_baseline as oracle;
use remo_core::{Engine, EngineConfig};
use remo_store::{BitSet, Csr};

fn undirected_csr(edges: &[(u64, u64)], n: usize) -> Csr {
    Csr::from_edges(n, &oracle::symmetrize(edges))
}

#[test]
fn wide_stcon_handles_more_than_64_sources() {
    // A ring of 200 vertices with 80 sources: every vertex must end up
    // connected to all 80 (single component).
    let n = 200u64;
    let edges: Vec<(u64, u64)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let sources: Vec<u64> = (0..80).map(|i| i * 2).collect();

    let engine = Engine::new(
        IncStConWide::new(sources.clone()),
        EngineConfig::undirected(3),
    );
    for &s in &sources {
        engine.try_init_vertex(s).unwrap();
    }
    engine.try_ingest_pairs(&edges).unwrap();
    let states = engine.try_finish().unwrap().states;

    let full: BitSet = (0..80usize).collect();
    for (v, set) in states.iter() {
        assert!(
            set.same_elements(&full),
            "vertex {v} missing sources: {set:?}"
        );
    }
}

#[test]
fn wide_stcon_respects_components() {
    // Two components, sources split across them.
    let edges = vec![(0u64, 1), (1, 2), (10, 11), (11, 12)];
    let sources: Vec<u64> = vec![0, 10, 2];
    let engine = Engine::new(
        IncStConWide::new(sources.clone()),
        EngineConfig::undirected(2),
    );
    for &s in &sources {
        engine.try_init_vertex(s).unwrap();
    }
    engine.try_ingest_pairs(&edges).unwrap();
    let states = engine.try_finish().unwrap().states;

    let left: BitSet = [0usize, 2].into_iter().collect(); // sources 0 and 2
    let right: BitSet = [1usize].into_iter().collect(); // source 10
    for v in [0u64, 1, 2] {
        assert!(states.get(v).unwrap().same_elements(&left), "vertex {v}");
    }
    for v in [10u64, 11, 12] {
        assert!(states.get(v).unwrap().same_elements(&right), "vertex {v}");
    }
}

#[test]
fn deterministic_bfs_tree_is_valid() {
    // On a random graph: every reached vertex's parent must be reached at
    // exactly level-1, and the parent must actually be a neighbour.
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(77);
    let n = 120u64;
    let edges: Vec<(u64, u64)> = (0..400)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .filter(|&(a, b)| a != b)
        .collect();

    let engine = Engine::new(IncBfsDeterministic, EngineConfig::undirected(3));
    engine.try_init_vertex(0).unwrap();
    engine.try_ingest_pairs(&edges).unwrap();
    let states = engine.try_finish().unwrap().states;

    let mut nbrs: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
        Default::default();
    for &(a, b) in &edges {
        nbrs.entry(a).or_default().insert(b);
        nbrs.entry(b).or_default().insert(a);
    }
    let level = |v: u64| states.get(v).map(|&(l, _)| l).unwrap_or(UNREACHED);
    for (v, &(l, parent)) in states.iter() {
        if l == UNREACHED || l == 0 || l == 1 {
            continue;
        }
        assert_eq!(level(parent), l - 1, "vertex {v}: parent {parent} level");
        assert!(
            nbrs.get(&v).is_some_and(|s| s.contains(&parent)),
            "vertex {v}: parent {parent} is not a neighbour"
        );
        // Tie-break: no neighbour at level l-1 has a smaller id than parent.
        let best = nbrs[&v]
            .iter()
            .filter(|&&u| level(u) == l - 1)
            .min()
            .copied()
            .unwrap();
        assert_eq!(parent, best, "vertex {v}: not the lowest-id parent");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generational BFS equals a static recompute after arbitrary
    /// add/delete splits — the §VI-B claim under randomized schedules.
    #[test]
    fn generational_matches_recompute(
        edges in proptest::collection::vec((0u64..20, 0u64..20), 5..60)
            .prop_map(|v| v.into_iter().filter(|&(a, b)| a != b).collect::<Vec<_>>()),
        delete_mask in proptest::collection::vec(any::<bool>(), 60),
        shards in 1usize..4,
    ) {
        prop_assume!(!edges.is_empty());
        let deletions: Vec<(u64, u64)> = edges
            .iter()
            .zip(delete_mask.iter())
            .filter(|(_, &del)| del)
            .map(|(&e, _)| e)
            .collect();

        let (algo, generation) = GenBfs::new();
        let engine = Engine::new(algo, EngineConfig::undirected(shards));
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_pairs(&edges).unwrap();
        engine.try_await_quiescence().unwrap();
        engine.try_delete_pairs(&deletions).unwrap();
        engine.try_await_quiescence().unwrap();
        let g = generation.bump();
        engine.try_init_vertex(0).unwrap();
        let states = engine.try_finish().unwrap().states;

        let deleted: std::collections::HashSet<(u64, u64)> = deletions
            .iter()
            .flat_map(|&(a, b)| [(a, b), (b, a)])
            .collect();
        let remaining: Vec<(u64, u64)> = edges
            .iter()
            .filter(|&&(a, b)| !deleted.contains(&(a, b)))
            .copied()
            .collect();
        let csr = undirected_csr(&remaining, 20);
        let want = oracle::bfs_levels(&csr, 0);

        for (v, &state) in states.iter() {
            let got = level_in_generation(state, g);
            let expect = want.get(v as usize).copied().unwrap_or(UNREACHED);
            prop_assert_eq!(got, expect, "vertex {} (P={})", v, shards);
        }
    }
}

#[test]
fn gen_cc_without_deletes_matches_plain_cc() {
    use remo_algos::{cc_label, GenCc, IncCc};
    let edges: Vec<(u64, u64)> = (0..60u64).map(|i| (i, (i * 7 + 2) % 60)).collect();

    let plain = {
        let e = Engine::new(IncCc, EngineConfig::undirected(3));
        e.try_ingest_pairs(&edges).unwrap();
        e.try_finish().unwrap().states.into_vec()
    };
    let gen = {
        let e = Engine::new(GenCc, EngineConfig::undirected(3));
        e.try_ingest_pairs(&edges).unwrap();
        e.try_finish().unwrap().states.into_vec()
    };
    for ((v1, label), (v2, (g, glabel))) in plain.iter().zip(gen.iter()) {
        assert_eq!(v1, v2);
        assert_eq!(*g, 0, "no deletions: generation stays 0");
        assert_eq!(glabel, label, "vertex {v1}");
    }
    let _ = cc_label(0);
}

#[test]
fn gen_cc_bridge_deletion_splits_component() {
    use remo_algos::GenCc;
    // Two triangles joined by the bridge 2-3.
    let edges = vec![(0u64, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)];
    let engine = Engine::new(GenCc, EngineConfig::undirected(2));
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();
    // One component: all states equal.
    let before = engine.try_collect_live().unwrap();
    let first = *before.get(0).unwrap();
    for v in 0..6u64 {
        assert_eq!(before.get(v), Some(&first), "vertex {v} before the cut");
    }

    engine.try_delete_pairs(&[(2, 3)]).unwrap();
    let states = engine.try_finish().unwrap().states;
    // Self-healing: both halves re-labelled in a newer generation.
    let left = *states.get(0).unwrap();
    let right = *states.get(3).unwrap();
    assert!(left.0 >= 1 && right.0 >= 1, "generation must have advanced");
    assert_ne!(left, right, "the halves must now differ");
    for v in [0u64, 1, 2] {
        assert_eq!(states.get(v), Some(&left), "left vertex {v}");
    }
    for v in [3u64, 4, 5] {
        assert_eq!(states.get(v), Some(&right), "right vertex {v}");
    }
}

#[test]
fn gen_cc_non_bridge_deletion_keeps_component_together() {
    use remo_algos::GenCc;
    // A 4-cycle: deleting one edge keeps it connected.
    let edges = vec![(0u64, 1), (1, 2), (2, 3), (3, 0)];
    let engine = Engine::new(GenCc, EngineConfig::undirected(2));
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();
    engine.try_delete_pairs(&[(1, 2)]).unwrap();
    let states = engine.try_finish().unwrap().states;
    let first = *states.get(0).unwrap();
    assert!(first.0 >= 1);
    for v in 0..4u64 {
        assert_eq!(states.get(v), Some(&first), "vertex {v} must stay merged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// GenCc with **quiescence-separated** deletions (its exactness
    /// contract): same-component iff same `(generation, label)` pair,
    /// against a union-find recompute over the remaining edges.
    #[test]
    fn gen_cc_matches_recompute_after_deletes(
        edges in proptest::collection::vec((0u64..16, 0u64..16), 4..40)
            .prop_map(|v| v.into_iter().filter(|&(a, b)| a != b).collect::<Vec<_>>()),
        delete_mask in proptest::collection::vec(any::<bool>(), 40),
        shards in 1usize..4,
    ) {
        use remo_algos::GenCc;
        prop_assume!(!edges.is_empty());
        let deletions: Vec<(u64, u64)> = edges
            .iter()
            .zip(delete_mask.iter())
            .filter(|(_, &del)| del)
            .map(|(&e, _)| e)
            .collect();

        let engine = Engine::new(GenCc, EngineConfig::undirected(shards));
        engine.try_ingest_pairs(&edges).unwrap();
        engine.try_await_quiescence().unwrap();
        for &d in &deletions {
            engine.try_delete_pairs(&[d]).unwrap();
            engine.try_await_quiescence().unwrap();
        }
        let states = engine.try_finish().unwrap().states;

        // Remaining topology after removing each deleted pair entirely.
        let deleted: std::collections::HashSet<(u64, u64)> = deletions
            .iter()
            .flat_map(|&(a, b)| [(a, b), (b, a)])
            .collect();
        let remaining: Vec<(u64, u64)> = edges
            .iter()
            .filter(|&&(a, b)| !deleted.contains(&(a, b)))
            .copied()
            .collect();
        let csr = undirected_csr(&remaining, 16);
        let want = oracle::components_min_label(&csr);

        // Same component (oracle) <=> identical (gen, label) state.
        let touched: Vec<u64> = states.iter().map(|(v, _)| v).collect();
        for &a in &touched {
            for &b in &touched {
                let same_oracle = want[a as usize] == want[b as usize];
                let same_state = states.get(a) == states.get(b);
                prop_assert_eq!(
                    same_oracle, same_state,
                    "vertices {} and {}: oracle {} vs state {} (P={})",
                    a, b, same_oracle, same_state, shards
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// GenCc under a fully **concurrent** deletion storm: the weaker
    /// guarantee that still always holds — convergence, generations
    /// advance on touched components, and *completeness* (vertices the
    /// oracle puts in one component always share a state). Exactness of
    /// the separation direction needs quiesced deletions (tested above).
    #[test]
    fn gen_cc_concurrent_deletes_stay_complete(
        edges in proptest::collection::vec((0u64..16, 0u64..16), 4..40)
            .prop_map(|v| v.into_iter().filter(|&(a, b)| a != b).collect::<Vec<_>>()),
        delete_mask in proptest::collection::vec(any::<bool>(), 40),
        shards in 1usize..4,
    ) {
        use remo_algos::GenCc;
        prop_assume!(!edges.is_empty());
        let deletions: Vec<(u64, u64)> = edges
            .iter()
            .zip(delete_mask.iter())
            .filter(|(_, &del)| del)
            .map(|(&e, _)| e)
            .collect();

        let engine = Engine::new(GenCc, EngineConfig::undirected(shards));
        engine.try_ingest_pairs(&edges).unwrap();
        engine.try_await_quiescence().unwrap();
        engine.try_delete_pairs(&deletions).unwrap(); // all at once, fully concurrent
        let states = engine.try_finish().unwrap().states;

        let deleted: std::collections::HashSet<(u64, u64)> = deletions
            .iter()
            .flat_map(|&(a, b)| [(a, b), (b, a)])
            .collect();
        let remaining: Vec<(u64, u64)> = edges
            .iter()
            .filter(|&&(a, b)| !deleted.contains(&(a, b)))
            .copied()
            .collect();
        let csr = undirected_csr(&remaining, 16);
        let want = oracle::components_min_label(&csr);

        // Completeness: same oracle component => identical state.
        let touched: Vec<u64> = states.iter().map(|(v, _)| v).collect();
        for &a in &touched {
            for &b in &touched {
                if want[a as usize] == want[b as usize] {
                    prop_assert_eq!(
                        states.get(a), states.get(b),
                        "same-component vertices {} and {} diverged (P={})",
                        a, b, shards
                    );
                }
            }
        }
    }
}
