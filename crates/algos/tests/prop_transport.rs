//! Differential property tests for the data-plane transports: for every
//! algorithm, seeded RMAT stream, shard count, and storage layout, the
//! SPSC lane-mesh transport must be observationally identical to the
//! seed's channel transport — byte-identical fixpoints, identical
//! mid-stream snapshot views, and the same set of trigger firings. The
//! transport is a physical choice; nothing the engine computes may depend
//! on whether a batch rode a lane, fell back to the channel, or woke a
//! parked receiver.

use proptest::prelude::*;
use remo_core::{
    Engine, EngineBuilder, EngineConfig, PlacementPolicy, StorageLayout, TransportMode, VertexId,
    Weight,
};
use remo_gen::RmatConfig;
use remo_store::hash::mix64;

/// Small seeded RMAT stream, shuffled: dense enough to exercise batching,
/// lane traffic, recycling, and cross-shard fan-out while keeping each
/// case cheap.
fn rmat_edges(seed: u64) -> Vec<(VertexId, VertexId)> {
    let cfg = RmatConfig {
        seed,
        ..RmatConfig::graph500(6)
    };
    let mut edges = remo_gen::rmat::generate(&cfg);
    remo_gen::stream::shuffle(&mut edges, seed ^ 0x7a3e);
    edges
}

/// Symmetric per-edge weight (see prop_lattice: reversed occurrences of an
/// undirected edge must agree for the weighted fixpoint to be unique).
fn weighted(edges: &[(VertexId, VertexId)]) -> Vec<(VertexId, VertexId, Weight)> {
    edges
        .iter()
        .map(|&(s, d)| (s, d, (mix64(s ^ d) % 13) + 1))
        .collect()
}

/// What one run observed, in comparable form.
#[derive(Debug, PartialEq)]
struct Observed<S> {
    snapshot: Vec<(VertexId, S)>,
    fixpoint: Vec<(VertexId, S)>,
    fires: Vec<(usize, VertexId)>,
    num_vertices: usize,
    num_edges: u64,
}

/// Runs `make()` over the stream under `transport`: ingest the first half,
/// quiesce, take a continuous snapshot (the epoch barrier must not hang on
/// parked shards), ingest the rest, and harvest fixpoint + trigger fires.
/// The mid-run quiescence pins the snapshot boundary so both transports
/// observe the same prefix.
#[allow(clippy::too_many_arguments)]
fn observe<A, F>(
    make: F,
    transport: TransportMode,
    layout: StorageLayout,
    edges: &[(VertexId, VertexId)],
    weights: Option<&[(VertexId, VertexId, Weight)]>,
    init: Option<VertexId>,
    shards: usize,
    adaptive: bool,
    placement: PlacementPolicy,
) -> Observed<A::State>
where
    A: remo_core::Algorithm,
    A::State: PartialEq + std::fmt::Debug,
    F: Fn() -> A,
{
    let mut config = EngineConfig::undirected(shards)
        .with_transport(transport)
        .with_storage(layout)
        .with_expected_vertices(64);
    if adaptive {
        config = config.with_adaptive();
    }
    config = config.with_placement(placement);
    let mut builder = EngineBuilder::new(make(), config);
    builder.trigger("nonbottom", |_v, s: &A::State| *s != A::State::default());
    let mut engine = builder.build();
    if let Some(v) = init {
        engine.try_init_vertex(v).unwrap();
    }
    let half = edges.len() / 2;
    match weights {
        Some(w) => engine.try_ingest_weighted(&w[..half]).unwrap(),
        None => engine.try_ingest_pairs(&edges[..half]).unwrap(),
    }
    engine.try_await_quiescence().unwrap();
    let snapshot = engine.try_snapshot().unwrap().into_vec();
    match weights {
        Some(w) => engine.try_ingest_weighted(&w[half..]).unwrap(),
        None => engine.try_ingest_pairs(&edges[half..]).unwrap(),
    }
    engine.try_await_quiescence().unwrap();
    assert!(engine.counters_balanced());
    let mut fires: Vec<(usize, VertexId)> = engine
        .trigger_events()
        .try_iter()
        .map(|f| (f.trigger, f.vertex))
        .collect();
    fires.sort_unstable();
    fires.dedup();
    let result = engine.try_finish().unwrap();
    assert!(result.failures.is_empty());
    // Harvested envelope books must close under either transport:
    // sent = processed + dominated + undeliverable + dropped.
    result.metrics.verify_balance().unwrap();
    Observed {
        snapshot,
        fixpoint: result.states.into_vec(),
        fires,
        num_vertices: result.num_vertices,
        num_edges: result.num_edges,
    }
}

/// Asserts the two transports observe the same world, under `layout`.
fn assert_transports_agree<A, F>(
    make: F,
    layout: StorageLayout,
    edges: &[(VertexId, VertexId)],
    weights: Option<&[(VertexId, VertexId, Weight)]>,
    init: Option<VertexId>,
    shards: usize,
    adaptive: bool,
) -> Result<(), TestCaseError>
where
    A: remo_core::Algorithm,
    A::State: PartialEq + std::fmt::Debug,
    F: Fn() -> A + Copy,
{
    let lanes = observe::<A, F>(
        make,
        TransportMode::Lanes,
        layout,
        edges,
        weights,
        init,
        shards,
        adaptive,
        PlacementPolicy::None,
    );
    let channel = observe::<A, F>(
        make,
        TransportMode::Channel,
        layout,
        edges,
        weights,
        init,
        shards,
        adaptive,
        PlacementPolicy::None,
    );
    prop_assert_eq!(
        &lanes.fixpoint,
        &channel.fixpoint,
        "fixpoints diverged (P={})",
        shards
    );
    prop_assert_eq!(
        &lanes.snapshot,
        &channel.snapshot,
        "snapshot views diverged (P={})",
        shards
    );
    prop_assert_eq!(
        &lanes.fires,
        &channel.fires,
        "trigger fire sets diverged (P={})",
        shards
    );
    prop_assert_eq!(lanes.num_vertices, channel.num_vertices);
    prop_assert_eq!(lanes.num_edges, channel.num_edges);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn bfs_transports_agree(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        let source = edges[0].0;
        assert_transports_agree::<remo_algos::IncBfs, _>(
            || remo_algos::IncBfs, StorageLayout::DenseArena, &edges, None, Some(source), shards, false)?;
    }

    #[test]
    fn sssp_transports_agree(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        let w = weighted(&edges);
        let source = edges[0].0;
        assert_transports_agree::<remo_algos::IncSssp, _>(
            || remo_algos::IncSssp, StorageLayout::DenseArena, &edges, Some(&w), Some(source), shards, false)?;
    }

    /// The transport choice composes with the storage layout choice: lanes
    /// over the legacy rhh-record layout still matches the channel path.
    #[test]
    fn cc_transports_agree_on_legacy_layout(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        assert_transports_agree::<remo_algos::IncCc, _>(
            || remo_algos::IncCc, StorageLayout::RhhRecord, &edges, None, None, shards, false)?;
    }

    /// The lattice messaging layers compose with the lane transport: all
    /// three layers on, both transports, same fixpoint and balanced
    /// counters (coalesced/dominated envelopes never touch a lane).
    #[test]
    fn lattice_on_lanes_matches_lattice_on_channel(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        let source = edges[0].0;
        let mut states = Vec::new();
        for transport in [TransportMode::Lanes, TransportMode::Channel] {
            let config = EngineConfig::undirected(shards)
                .with_lattice()
                .with_transport(transport);
            let engine = Engine::new(remo_algos::IncBfs, config);
            engine.try_init_vertex(source).unwrap();
            engine.try_ingest_pairs(&edges).unwrap();
            engine.try_await_quiescence().unwrap();
            prop_assert!(engine.counters_balanced());
            let result = engine.try_finish().unwrap();
            let balance = result.metrics.verify_balance();
            prop_assert!(
                balance.is_ok(),
                "balance violated ({:?}, P={}): {:?}",
                transport,
                shards,
                balance
            );
            states.push(result.states.into_vec());
        }
        prop_assert_eq!(&states[0], &states[1], "lattice+lanes diverged (P={})", shards);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The adaptive controller is a performance policy, not a semantic
    /// one: with adaptation flipping coalescing and batch sizes mid-run,
    /// both transports must still observe byte-identical snapshots,
    /// fixpoints, and trigger fires vs each other.
    #[test]
    fn bfs_adaptive_transports_agree(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        let source = edges[0].0;
        assert_transports_agree::<remo_algos::IncBfs, _>(
            || remo_algos::IncBfs, StorageLayout::DenseArena, &edges, None, Some(source), shards, true)?;
    }

    /// Adaptive-on vs all-static must be observationally identical on the
    /// SAME transport too — the controller's decisions may change how
    /// envelopes travel, never what they compute.
    #[test]
    fn adaptive_is_observationally_identity(seed in any::<u64>(), shards in 1usize..5) {
        let edges = rmat_edges(seed);
        let w = weighted(&edges);
        let source = edges[0].0;
        for transport in [TransportMode::Lanes, TransportMode::Channel] {
            let on = observe::<remo_algos::IncSssp, _>(
                || remo_algos::IncSssp, transport, StorageLayout::DenseArena,
                &edges, Some(&w), Some(source), shards, true, PlacementPolicy::None);
            let off = observe::<remo_algos::IncSssp, _>(
                || remo_algos::IncSssp, transport, StorageLayout::DenseArena,
                &edges, Some(&w), Some(source), shards, false, PlacementPolicy::None);
            prop_assert_eq!(&on.fixpoint, &off.fixpoint,
                "adaptive changed the fixpoint ({:?}, P={})", transport, shards);
            prop_assert_eq!(&on.snapshot, &off.snapshot,
                "adaptive changed the snapshot view ({:?}, P={})", transport, shards);
            prop_assert_eq!(&on.fires, &off.fires,
                "adaptive changed trigger fires ({:?}, P={})", transport, shards);
        }
    }
}

/// The lane mesh is no longer capped at 64 shards: at 96 shards the
/// multi-word pending-senders bitmaps must carry the mesh and the
/// fixpoint must stay identical to the channel transport. (Plain test,
/// one deterministic stream — 2×96 threads per case is too heavy for a
/// proptest axis.)
/// Pinning is a physical choice exactly like the transport: Compact and
/// Scatter placement must be observationally identical to an unpinned run
/// — byte-identical fixpoints, snapshot views, and trigger fire sets —
/// across transports, storage layouts, and 1–4 shards. Shard counts the
/// host cannot seat on distinct cores are skipped with a note: pinning
/// two shards to one core is legal but proves nothing extra here.
/// (Plain test, one deterministic stream — the combo grid already runs
/// dozens of engines per invocation.)
#[test]
fn pinned_placement_is_observationally_identity() {
    let edges = rmat_edges(0x919_5eed);
    let w = weighted(&edges);
    let source = edges[0].0;
    let cores = remo_core::placement::host().num_cpus();
    for shards in 1usize..=4 {
        if cores < shards {
            eprintln!(
                "note: skipping placement identity at P={shards} \
                 (host has {cores} cores)"
            );
            continue;
        }
        for (transport, layout) in [
            (TransportMode::Lanes, StorageLayout::DenseArena),
            (TransportMode::Lanes, StorageLayout::RhhRecord),
            (TransportMode::Channel, StorageLayout::DenseArena),
        ] {
            let base = observe::<remo_algos::IncBfs, _>(
                || remo_algos::IncBfs,
                transport,
                layout,
                &edges,
                None,
                Some(source),
                shards,
                false,
                PlacementPolicy::None,
            );
            for policy in [PlacementPolicy::Compact, PlacementPolicy::Scatter] {
                let pinned = observe::<remo_algos::IncBfs, _>(
                    || remo_algos::IncBfs,
                    transport,
                    layout,
                    &edges,
                    None,
                    Some(source),
                    shards,
                    false,
                    policy.clone(),
                );
                let ctx = format!("{policy} vs none ({transport:?}, {layout:?}, P={shards})");
                assert_eq!(pinned.fixpoint, base.fixpoint, "fixpoint diverged: {ctx}");
                assert_eq!(pinned.snapshot, base.snapshot, "snapshot diverged: {ctx}");
                assert_eq!(pinned.fires, base.fires, "trigger fires diverged: {ctx}");
            }
        }
        // One weighted pass so the min-plus lattice rides pinned lanes too.
        let base = observe::<remo_algos::IncSssp, _>(
            || remo_algos::IncSssp,
            TransportMode::Lanes,
            StorageLayout::DenseArena,
            &edges,
            Some(&w),
            Some(source),
            shards,
            false,
            PlacementPolicy::None,
        );
        let pinned = observe::<remo_algos::IncSssp, _>(
            || remo_algos::IncSssp,
            TransportMode::Lanes,
            StorageLayout::DenseArena,
            &edges,
            Some(&w),
            Some(source),
            shards,
            false,
            PlacementPolicy::Compact,
        );
        assert_eq!(
            pinned.fixpoint, base.fixpoint,
            "weighted fixpoint diverged under compact (P={shards})"
        );
    }
}

/// A [`PlacementPolicy::Explicit`] seating that names a CPU the host does
/// not have — or the wrong number of CPUs — is a configuration error:
/// engine construction must fail loudly, never pin arbitrarily or fall
/// back silently.
#[test]
fn explicit_placement_misconfiguration_fails_engine_build() {
    let bogus = remo_core::placement::host().num_cpus() + 4096;
    for cpus in [vec![bogus], vec![0, 0]] {
        let config =
            EngineConfig::undirected(1).with_placement(PlacementPolicy::Explicit(cpus.clone()));
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Engine::new(remo_algos::IncCc, config)
        }));
        assert!(
            built.is_err(),
            "engine build accepted bad explicit seating {cpus:?}"
        );
    }
}

#[test]
fn lanes_beyond_64_shards_match_channel() {
    let edges = rmat_edges(0x96_5eed);
    let source = edges[0].0;
    assert_transports_agree::<remo_algos::IncBfs, _>(
        || remo_algos::IncBfs,
        StorageLayout::DenseArena,
        &edges,
        None,
        Some(source),
        96,
        false,
    )
    .unwrap();
}
