//! # remo-algos — the paper's incremental REMO algorithms
//!
//! Implementations of every algorithm in §IV of *Incremental Graph
//! Processing for On-Line Analytics*, in the paper's event-centric
//! programming model, plus the extensions its discussion sketches:
//!
//! | Module | Paper | What |
//! |---|---|---|
//! | [`bfs`] | Algorithm 4 | incremental BFS (+ deterministic-tree and cache-suppressing variants) |
//! | [`sssp`] | Algorithm 5 | incremental single-source shortest path |
//! | [`cc`] | Algorithm 6 | incremental connected components (label domination) |
//! | [`stcon`] | Algorithm 7 | multi S-T connectivity (u64 bitmap + wide BitSet) |
//! | [`degree`] | §II-A example | live degree tracking |
//! | [`generational`] | §VI-B | delete support via state generations |
//! | [`widest`] | (extension) | incremental widest path — the REMO class generalizes |
//!
//! All algorithms share the REMO shape: a base case hooked on edge events
//! and a recursive update step, with state converging monotonically to the
//! deterministic fixpoint regardless of event order, stream splits, or
//! shard count — the integration and property tests assert exactly that
//! against the static oracles in `remo-baseline`.

pub mod bfs;
pub mod cc;
pub mod degree;
pub mod generational;
pub mod sssp;
pub mod stcon;
pub mod temporal;
pub mod widest;

pub use bfs::{IncBfs, IncBfsDeterministic, IncBfsSuppressed, LevelParent};
pub use cc::{cc_label, IncCc};
pub use degree::{DegreeCount, OutDegreeCount};
pub use generational::{GenBfs, GenCc, GenLabel, GenLevel, GenerationHandle};
pub use sssp::IncSssp;
pub use stcon::{IncStCon, IncStConWide};
pub use temporal::IncTemporal;
pub use widest::IncWidest;

/// Level/cost value for unreached vertices (shared across algorithms).
pub const UNREACHED: u64 = u64::MAX;
