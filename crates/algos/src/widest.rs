//! Incremental Widest Path (maximum-bottleneck bandwidth) — an additional
//! member of the REMO class beyond the paper's four algorithms.
//!
//! Every REMO ingredient from §II-B is present: the vertex state is the
//! best bottleneck bandwidth of any path from the source (the minimum edge
//! weight along the path, maximized over paths); adding edges can only
//! *increase* it (monotone, convex, upper-bounded by the source's ∞), and
//! the recursive update step is the usual relax-and-propagate. This is the
//! "network capacity" query: *what is the fattest pipe between the source
//! and everything else, right now?* — a natural on-line analytics question
//! for communication or payment networks.

use remo_core::algorithm::codec;
use remo_core::{AlgoCtx, Algorithm, VertexId, Weight};

/// Bottleneck value of the source itself (an "infinite" pipe).
pub const SOURCE_CAPACITY: u64 = u64::MAX;

/// Bottleneck for vertices with no path from the source yet (the bottom).
pub const UNREACHED: u64 = 0;

/// Incremental widest path. Initiate the source with
/// [`remo_core::Engine::try_init_vertex`]; ingest weighted edges (weights =
/// capacities).
#[derive(Debug, Default, Clone, Copy)]
pub struct IncWidest;

#[inline]
fn raise_to(candidate: u64) -> impl Fn(&mut u64) -> bool {
    move |s: &mut u64| {
        if *s < candidate {
            *s = candidate;
            true
        } else {
            false
        }
    }
}

impl Algorithm for IncWidest {
    type State = u64;
    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        codec::put_u64(*state, out);
    }

    fn decode_state(bytes: &[u8]) -> u64 {
        codec::get_u64(bytes)
    }

    /// The source has unbounded capacity to itself.
    fn init(&self, ctx: &mut impl AlgoCtx<u64>) {
        if ctx.apply(raise_to(SOURCE_CAPACITY)) {
            ctx.update_nbrs(&SOURCE_CAPACITY);
        }
    }

    /// Same logic as update (the paper's reverse-add pattern).
    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<u64>,
        visitor: VertexId,
        value: &u64,
        w: Weight,
    ) {
        self.on_update(ctx, visitor, value, w);
    }

    /// Relax over the bottleneck: `candidate = min(their_bottleneck, edge)`.
    fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, w: Weight) {
        let mine = *ctx.state();
        let theirs = *value;
        let candidate = theirs.min(w);
        if candidate > mine {
            if ctx.apply(raise_to(candidate)) {
                let s = *ctx.state();
                ctx.update_nbrs(&s);
            }
        } else if mine.min(w) > theirs {
            // We could improve the visitor over this same edge: notify back.
            let s = *ctx.state();
            ctx.update_single_nbr(visitor, &s);
        }
    }

    fn encode_cache(state: &u64) -> u64 {
        *state
    }

    /// Bottlenecks form a max-lattice (0 = unreached bottom): pending
    /// updates for the same target merge to the wider bandwidth.
    fn join(into: &mut u64, from: &u64) -> bool {
        if *from > *into {
            *into = *from;
        }
        true
    }

    /// Wider bottleneck = closer to the upper bound, so invert.
    fn priority(state: &u64) -> Option<u64> {
        Some(u64::MAX - *state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remo_core::{Engine, EngineConfig};

    fn run(edges: &[(u64, u64, u64)], source: u64, shards: usize) -> Vec<(u64, u64)> {
        let engine = Engine::new(IncWidest, EngineConfig::undirected(shards));
        engine.try_init_vertex(source).unwrap();
        engine.try_ingest_weighted(edges).unwrap();
        engine.try_finish().unwrap().states.into_vec()
    }

    fn get(states: &[(u64, u64)], v: u64) -> Option<u64> {
        states.iter().find(|&&(id, _)| id == v).map(|&(_, s)| s)
    }

    #[test]
    fn single_edge_bottleneck_is_edge_weight() {
        let states = run(&[(0, 1, 7)], 0, 2);
        assert_eq!(get(&states, 0), Some(SOURCE_CAPACITY));
        assert_eq!(get(&states, 1), Some(7));
    }

    #[test]
    fn prefers_wider_indirect_path() {
        // Direct 0-2 capacity 3; 0-1-2 capacity min(10, 8) = 8.
        let states = run(&[(0, 2, 3), (0, 1, 10), (1, 2, 8)], 0, 2);
        assert_eq!(get(&states, 2), Some(8));
    }

    #[test]
    fn bottleneck_is_path_minimum() {
        let states = run(&[(0, 1, 10), (1, 2, 4), (2, 3, 9)], 0, 2);
        assert_eq!(get(&states, 1), Some(10));
        assert_eq!(get(&states, 2), Some(4));
        assert_eq!(get(&states, 3), Some(4));
    }

    #[test]
    fn late_fat_edge_raises_downstream() {
        let engine = Engine::new(IncWidest, EngineConfig::undirected(2));
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_weighted(&[(0, 1, 2), (1, 2, 9)]).unwrap();
        engine.try_await_quiescence().unwrap();
        let before = engine.try_collect_live().unwrap();
        assert_eq!(before.get(2), Some(&2));
        engine.try_ingest_weighted(&[(0, 1, 20)]).unwrap(); // a fatter pipe appears
        let states = engine.try_finish().unwrap().states;
        assert_eq!(states.get(1), Some(&20));
        assert_eq!(states.get(2), Some(&9), "downstream bottleneck re-widens");
    }

    #[test]
    fn lattice_run_matches_fifo() {
        // Weight depends only on the endpoints so duplicate edges in the
        // stream agree — differing weights would make the fixpoint
        // order-dependent regardless of coalescing.
        let edges: Vec<(u64, u64, u64)> = (0..80u64)
            .map(|i| (i % 30, (i * 11 + 2) % 30))
            .map(|(a, b)| (a, b, ((a + b) % 13) + 1))
            .collect();
        let fifo = run(&edges, 0, 4);
        let engine = Engine::new(IncWidest, EngineConfig::undirected(4).with_lattice());
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_weighted(&edges).unwrap();
        let result = engine.try_finish().unwrap();
        assert_eq!(fifo, result.states.into_vec());
    }

    #[test]
    fn unreached_component_stays_bottom() {
        let states = run(&[(0, 1, 5), (7, 8, 5)], 0, 2);
        assert_eq!(get(&states, 7), Some(UNREACHED));
        assert_eq!(get(&states, 8), Some(UNREACHED));
    }
}
