//! Incremental Connected Components (paper Algorithm 6).
//!
//! "The CC algorithm does not require an initiating vertex": every vertex
//! assumes it dominates its component and label propagation settles the
//! fight. State: the dominating label of the component the vertex can reach,
//! where a vertex's own label is `hash(ID)` (Algorithm 6 line 5) and the
//! comparison keeps the **larger** value (lines 17-26: smaller adopts
//! larger). The fixpoint is therefore `max over component members of
//! hash(id)` — convex, monotone increasing per vertex.
//!
//! One deliberate deviation from the paper's pseudocode: Algorithm 6 labels
//! a vertex with its own hash only on `add` (first-endpoint) events, letting
//! `reverse_add` blindly adopt the visitor's label. Under multiple
//! concurrent streams the same vertex can appear first as a source in one
//! stream and as a destination in another, making "who self-labels" — and
//! hence the final labelling — order-dependent. We self-label on *every*
//! first touch, which restores the determinism §II-D promises and makes the
//! fixpoint exactly the static oracle's
//! `remo_baseline::components_dominator_label`.

use remo_core::algorithm::codec;
use remo_core::{AlgoCtx, Algorithm, VertexId, Weight};
use remo_store::hash::mix64;

/// A vertex's own component label: a well-mixed hash of its id, with 0
/// reserved as the "unlabelled" sentinel.
#[inline]
pub fn cc_label(v: VertexId) -> u64 {
    mix64(v).max(1)
}

/// Incremental Connected Components. No initiation required; just ingest.
#[derive(Debug, Default, Clone, Copy)]
pub struct IncCc;

#[inline]
fn raise_to(candidate: u64) -> impl Fn(&mut u64) -> bool {
    move |s: &mut u64| {
        if *s < candidate {
            *s = candidate;
            true
        } else {
            false
        }
    }
}

impl Algorithm for IncCc {
    type State = u64;
    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        codec::put_u64(*state, out);
    }

    fn decode_state(bytes: &[u8]) -> u64 {
        codec::get_u64(bytes)
    }

    /// Label any new vertex added to the graph (Algorithm 6 lines 3-5).
    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _visitor: VertexId, _value: &u64, _w: Weight) {
        let label = cc_label(ctx.vertex());
        ctx.apply(raise_to(label));
    }

    /// Self-label, then run the update logic against the visitor's label.
    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<u64>,
        visitor: VertexId,
        value: &u64,
        w: Weight,
    ) {
        let label = cc_label(ctx.vertex());
        ctx.apply(raise_to(label));
        self.on_update(ctx, visitor, value, w);
    }

    /// Label domination (lines 16-26).
    fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, _w: Weight) {
        let mine = *ctx.state();
        let theirs = *value;
        // Our component dominates: notify the visitor back.
        if mine > theirs {
            ctx.update_single_nbr(visitor, &mine);
        }
        // Their component dominates: adopt and recursively apply the new
        // minimum-state (here: maximum-label) into our component.
        else if mine < theirs && ctx.apply(raise_to(theirs)) {
            ctx.update_nbrs(&theirs);
        }
    }

    fn encode_cache(state: &u64) -> u64 {
        *state
    }

    /// Labels form a max-lattice (smaller adopts larger, 0 = unlabelled):
    /// pending updates for the same target merge to the dominating label.
    fn join(into: &mut u64, from: &u64) -> bool {
        if *from > *into {
            *into = *from;
        }
        true
    }

    /// Larger label = closer to the component's fixpoint (the upper bound),
    /// so invert for the min-heap.
    fn priority(state: &u64) -> Option<u64> {
        Some(u64::MAX - *state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remo_core::{Engine, EngineConfig};

    fn run(edges: &[(u64, u64)], shards: usize) -> Vec<(u64, u64)> {
        let engine = Engine::new(IncCc, EngineConfig::undirected(shards));
        engine.try_ingest_pairs(edges).unwrap();
        engine.try_finish().unwrap().states.into_vec()
    }

    fn label_of(states: &[(u64, u64)], v: u64) -> u64 {
        states
            .iter()
            .find(|&&(id, _)| id == v)
            .map(|&(_, s)| s)
            .unwrap()
    }

    #[test]
    fn one_component_one_label() {
        let states = run(&[(0, 1), (1, 2), (2, 3)], 2);
        let expect = (0..4u64).map(cc_label).max().unwrap();
        for v in 0..4 {
            assert_eq!(label_of(&states, v), expect, "vertex {v}");
        }
    }

    #[test]
    fn two_components_two_labels() {
        let states = run(&[(0, 1), (10, 11)], 2);
        let a = cc_label(0).max(cc_label(1));
        let b = cc_label(10).max(cc_label(11));
        assert_eq!(label_of(&states, 0), a);
        assert_eq!(label_of(&states, 1), a);
        assert_eq!(label_of(&states, 10), b);
        assert_eq!(label_of(&states, 11), b);
    }

    #[test]
    fn merging_components_floods_dominator() {
        let engine = Engine::new(IncCc, EngineConfig::undirected(2));
        engine.try_ingest_pairs(&[(0, 1), (10, 11)]).unwrap();
        engine.try_await_quiescence().unwrap();
        engine.try_ingest_pairs(&[(1, 10)]).unwrap(); // case (ii): bridge two components
        let states = engine.try_finish().unwrap().states.into_vec();
        let dominator = [0u64, 1, 10, 11]
            .iter()
            .map(|&v| cc_label(v))
            .max()
            .unwrap();
        for v in [0u64, 1, 10, 11] {
            assert_eq!(label_of(&states, v), dominator, "vertex {v}");
        }
    }

    #[test]
    fn internal_edge_is_trivial_no_label_change() {
        // Case (i): an edge within a component must not disturb the label.
        let engine = Engine::new(IncCc, EngineConfig::undirected(2));
        engine.try_ingest_pairs(&[(0, 1), (1, 2)]).unwrap();
        engine.try_await_quiescence().unwrap();
        let before = engine.try_collect_live().unwrap();
        engine.try_ingest_pairs(&[(0, 2)]).unwrap();
        let after = engine.try_finish().unwrap().states;
        for v in 0..3u64 {
            assert_eq!(before.get(v), after.get(v), "vertex {v}");
        }
    }

    #[test]
    fn lattice_run_matches_fifo() {
        let edges: Vec<(u64, u64)> = (0..100).map(|i| (i % 40, (i * 7 + 1) % 40)).collect();
        let fifo = run(&edges, 4);
        let engine = Engine::new(IncCc, EngineConfig::undirected(4).with_lattice());
        engine.try_ingest_pairs(&edges).unwrap();
        let result = engine.try_finish().unwrap();
        assert_eq!(fifo, result.states.into_vec());
    }

    #[test]
    fn matches_static_oracle_on_random_graph() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        let n = 300u64;
        let edges: Vec<(u64, u64)> = (0..600)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .filter(|&(a, b)| a != b)
            .collect();
        let states = run(&edges, 4);

        let sym = remo_baseline::symmetrize(&edges);
        let csr = remo_store::Csr::from_edges(n as usize, &sym);
        let oracle = remo_baseline::components_dominator_label(&csr, cc_label);
        for &(v, label) in &states {
            assert_eq!(label, oracle[v as usize], "vertex {v}");
        }
    }
}
