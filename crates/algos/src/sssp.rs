//! Incremental Single Source Shortest Path (paper Algorithm 5).
//!
//! "SSSP is similar to BFS, and unsurprisingly, uses almost identical code.
//! The notable difference is the implication of edge weights": a vertex's
//! state is the minimum cost of a path to the source (source cost = 1,
//! following the paper's init), where the cost of traversing an edge is its
//! weight. State is monotone decreasing with a lower bound, so the solution
//! space is convex and convergence under asynchrony follows (§II-B).
//!
//! "The actual execution path of an instantiated algorithm is more data
//! dependant [than BFS], as the edge weights play a key role" — the fig5
//! bench shows exactly that: identical code, different amplification.

use remo_core::algorithm::codec;
use remo_core::{AlgoCtx, Algorithm, VertexId, Weight};

/// Cost for vertices that exist but are not (yet) reached.
pub const UNREACHED: u64 = u64::MAX;

/// Incremental SSSP. Initiate the source with
/// [`remo_core::Engine::try_init_vertex`]; ingest weighted edges.
#[derive(Debug, Default, Clone, Copy)]
pub struct IncSssp;

#[inline]
fn lower_to(candidate: u64) -> impl Fn(&mut u64) -> bool {
    move |s: &mut u64| {
        if *s == 0 || *s > candidate {
            *s = candidate;
            true
        } else {
            false
        }
    }
}

#[inline]
fn effective(cost: u64) -> u64 {
    if cost == 0 {
        UNREACHED
    } else {
        cost
    }
}

impl Algorithm for IncSssp {
    type State = u64;
    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        codec::put_u64(*state, out);
    }

    fn decode_state(bytes: &[u8]) -> u64 {
        codec::get_u64(bytes)
    }

    /// Begin the traversal from this vertex (cost 1, Algorithm 5 line 3).
    fn init(&self, ctx: &mut impl AlgoCtx<u64>) {
        if ctx.apply(lower_to(1)) {
            ctx.update_nbrs(&1);
        }
    }

    /// A new vertex ensures its cost is "infinity" (line 8).
    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _visitor: VertexId, _value: &u64, _w: Weight) {
        ctx.apply(lower_to(UNREACHED));
    }

    /// Same logic as the update step (lines 11-16).
    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<u64>,
        visitor: VertexId,
        value: &u64,
        w: Weight,
    ) {
        ctx.apply(lower_to(UNREACHED));
        self.on_update(ctx, visitor, value, w);
    }

    /// The weighted recursive step (lines 18-28).
    fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, w: Weight) {
        let mine = effective(*ctx.state());
        let theirs = effective(*value);
        // We are cheaper by more than the edge: notify the visitor back.
        if mine.saturating_add(w) < theirs {
            let state = *ctx.state();
            ctx.update_single_nbr(visitor, &state);
        }
        // They offer a cheaper path: adopt, propagate.
        else if theirs.saturating_add(w) < mine {
            let new_cost = theirs + w;
            if ctx.apply(lower_to(new_cost)) {
                ctx.update_nbrs(&new_cost);
            }
        }
    }

    fn encode_cache(state: &u64) -> u64 {
        *state
    }

    /// Costs form a min-lattice under `effective`: pending updates for
    /// the same target over the same edge merge to the cheaper cost.
    fn join(into: &mut u64, from: &u64) -> bool {
        if effective(*from) < effective(*into) {
            *into = *from;
        }
        true
    }

    /// Cheaper cost = closer to the lower bound: drain best-first.
    fn priority(state: &u64) -> Option<u64> {
        Some(effective(*state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remo_core::{Engine, EngineConfig};

    fn run(edges: &[(u64, u64, u64)], source: u64, shards: usize) -> Vec<(u64, u64)> {
        let engine = Engine::new(IncSssp, EngineConfig::undirected(shards));
        engine.try_init_vertex(source).unwrap();
        engine.try_ingest_weighted(edges).unwrap();
        engine.try_finish().unwrap().states.into_vec()
    }

    fn get(states: &[(u64, u64)], v: u64) -> Option<u64> {
        states.iter().find(|&&(id, _)| id == v).map(|&(_, s)| s)
    }

    #[test]
    fn weighted_path_costs() {
        let states = run(&[(0, 1, 5), (1, 2, 3)], 0, 2);
        assert_eq!(get(&states, 0), Some(1));
        assert_eq!(get(&states, 1), Some(6));
        assert_eq!(get(&states, 2), Some(9));
    }

    #[test]
    fn cheaper_indirect_path_wins() {
        // Direct 0-2 costs 10; 0-1-2 costs 3.
        let states = run(&[(0, 2, 10), (0, 1, 1), (1, 2, 2)], 0, 2);
        assert_eq!(get(&states, 2), Some(4)); // 1 + 1 + 2
    }

    #[test]
    fn late_cheap_edge_repairs_downstream() {
        let engine = Engine::new(IncSssp, EngineConfig::undirected(2));
        engine.try_init_vertex(0).unwrap();
        engine
            .try_ingest_weighted(&[(0, 1, 100), (1, 2, 1)])
            .unwrap();
        engine.try_await_quiescence().unwrap();
        // A cheap bypass to vertex 1 must also lower vertex 2.
        engine.try_ingest_weighted(&[(0, 1, 2)]).unwrap();
        let states = engine.try_finish().unwrap().states.into_vec();
        assert_eq!(get(&states, 1), Some(3));
        assert_eq!(get(&states, 2), Some(4));
    }

    #[test]
    fn edge_weight_update_to_lower_applies() {
        // §II-B: "Similar logic applies for edge updates limited only to
        // reducing edge weight" — re-adding an edge with a lower weight.
        let engine = Engine::new(IncSssp, EngineConfig::undirected(1));
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_weighted(&[(0, 1, 50)]).unwrap();
        engine.try_await_quiescence().unwrap();
        engine.try_ingest_weighted(&[(0, 1, 5)]).unwrap();
        let states = engine.try_finish().unwrap().states.into_vec();
        assert_eq!(get(&states, 1), Some(6));
    }

    #[test]
    fn lattice_run_matches_fifo() {
        let edges: Vec<(u64, u64, u64)> = (0..80u64)
            .map(|i| (i, (i * 13 + 3) % 80, (i % 9) + 1))
            .collect();
        let fifo = run(&edges, 0, 4);
        let engine = Engine::new(IncSssp, EngineConfig::undirected(4).with_lattice());
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_weighted(&edges).unwrap();
        let result = engine.try_finish().unwrap();
        assert_eq!(fifo, result.states.into_vec());
    }

    #[test]
    fn unit_weights_match_bfs_semantics() {
        let edges: Vec<(u64, u64, u64)> = vec![(0, 1, 1), (1, 2, 1), (0, 2, 1)];
        let states = run(&edges, 0, 2);
        assert_eq!(get(&states, 2), Some(2));
    }
}
