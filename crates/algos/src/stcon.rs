//! Incremental Multi S-T Connectivity (paper Algorithm 7).
//!
//! Each vertex stores the set of sources it is connected to; "the same
//! argument can be extended to multi S-T connectivity by using a bitmap"
//! (§II-B). When two vertices meet over an edge they compare sets: equal →
//! nothing; pure superset → notify back; pure subset → adopt and broadcast;
//! mixed → union and broadcast (eventually exchanging sets). The state only
//! ever gains bits — a convex, monotone lattice — so the "When is T
//! connected to S?" trigger fires at most once and never falsely (§III-E).
//!
//! Two implementations: [`IncStCon`] packs up to 64 sources in a `u64`
//! (the configuration of the paper's Fig. 7, which sweeps 0..64 sources),
//! and [`IncStConWide`] uses a growable [`BitSet`] for arbitrarily many.

use remo_core::algorithm::codec;
use remo_core::{AlgoCtx, Algorithm, VertexId, Weight};
use remo_store::BitSet;

/// Multi S-T connectivity over at most 64 sources (u64 bitmask state).
///
/// The source list fixes each source's bit index. Call
/// [`remo_core::Engine::try_init_vertex`] for each source to start its flow.
#[derive(Debug, Clone)]
pub struct IncStCon {
    sources: Vec<VertexId>,
}

impl IncStCon {
    /// Creates the algorithm for the given sources (at most 64).
    pub fn new(sources: Vec<VertexId>) -> Self {
        assert!(sources.len() <= 64, "u64 mask supports at most 64 sources");
        IncStCon { sources }
    }

    /// Bit index of `v` in the source list, if it is a source.
    fn source_bit(&self, v: VertexId) -> Option<u32> {
        self.sources.iter().position(|&s| s == v).map(|i| i as u32)
    }
}

#[inline]
fn union_mask(bits: u64) -> impl Fn(&mut u64) -> bool {
    move |s: &mut u64| {
        let merged = *s | bits;
        let changed = merged != *s;
        *s = merged;
        changed
    }
}

impl Algorithm for IncStCon {
    type State = u64;
    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        codec::put_u64(*state, out);
    }

    fn decode_state(bytes: &[u8]) -> u64 {
        codec::get_u64(bytes)
    }

    /// Begin a source flow from this vertex (Algorithm 7 lines 2-4).
    fn init(&self, ctx: &mut impl AlgoCtx<u64>) {
        if let Some(bit) = self.source_bit(ctx.vertex()) {
            if ctx.apply(union_mask(1u64 << bit)) {
                let s = *ctx.state();
                ctx.update_nbrs(&s);
            }
        }
    }

    // "Do nothing but wait" on add (line 7).

    /// Same logic as the update step (lines 9-11).
    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<u64>,
        visitor: VertexId,
        value: &u64,
        w: Weight,
    ) {
        self.on_update(ctx, visitor, value, w);
    }

    /// Set comparison: superset / subset / mixed (lines 13-30).
    fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, _w: Weight) {
        let mine = *ctx.state();
        let theirs = *value;
        if mine == theirs {
            // Identical connectivity: nothing to exchange.
        } else if theirs & !mine == 0 {
            // We are a pure superset: notify the visitor back.
            ctx.update_single_nbr(visitor, &mine);
        } else {
            // Subset or mixed: union and broadcast. (The mixed case also
            // notifies the visitor implicitly, since it is among nbrs after
            // the reverse-add — and the broadcast carries the union.)
            if ctx.apply(union_mask(theirs)) {
                let s = *ctx.state();
                ctx.update_nbrs(&s);
            }
        }
    }

    fn encode_cache(state: &u64) -> u64 {
        *state
    }
}

/// Multi S-T connectivity with an unbounded source set (BitSet state):
/// the paper's bitmap, generalized past one machine word.
#[derive(Debug, Clone)]
pub struct IncStConWide {
    sources: Vec<VertexId>,
}

impl IncStConWide {
    /// Creates the algorithm for any number of sources.
    pub fn new(sources: Vec<VertexId>) -> Self {
        IncStConWide { sources }
    }

    fn source_bit(&self, v: VertexId) -> Option<usize> {
        self.sources.iter().position(|&s| s == v)
    }
}

impl Algorithm for IncStConWide {
    type State = BitSet;
    fn encode_state(state: &BitSet, out: &mut Vec<u8>) {
        for &w in state.as_words() {
            codec::put_u64(w, out);
        }
    }

    fn decode_state(bytes: &[u8]) -> BitSet {
        BitSet::from_words(bytes.chunks_exact(8).map(codec::get_u64).collect())
    }

    fn init(&self, ctx: &mut impl AlgoCtx<BitSet>) {
        if let Some(bit) = self.source_bit(ctx.vertex()) {
            if ctx.apply(move |s: &mut BitSet| s.insert(bit)) {
                let s = ctx.state().clone();
                ctx.update_nbrs(&s);
            }
        }
    }

    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<BitSet>,
        visitor: VertexId,
        value: &BitSet,
        w: Weight,
    ) {
        self.on_update(ctx, visitor, value, w);
    }

    fn on_update(
        &self,
        ctx: &mut impl AlgoCtx<BitSet>,
        visitor: VertexId,
        value: &BitSet,
        _w: Weight,
    ) {
        if ctx.state().same_elements(value) {
            return;
        }
        if value.is_subset(ctx.state()) {
            let s = ctx.state().clone();
            ctx.update_single_nbr(visitor, &s);
        } else if ctx.apply(|s: &mut BitSet| s.union_in_place(value)) {
            let s = ctx.state().clone();
            ctx.update_nbrs(&s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remo_core::{Engine, EngineConfig};

    fn run(sources: &[u64], edges: &[(u64, u64)], shards: usize) -> Vec<(u64, u64)> {
        let engine = Engine::new(
            IncStCon::new(sources.to_vec()),
            EngineConfig::undirected(shards),
        );
        for &s in sources {
            engine.try_init_vertex(s).unwrap();
        }
        engine.try_ingest_pairs(edges).unwrap();
        engine.try_finish().unwrap().states.into_vec()
    }

    fn mask(states: &[(u64, u64)], v: u64) -> u64 {
        states
            .iter()
            .find(|&&(id, _)| id == v)
            .map(|&(_, s)| s)
            .unwrap_or(0)
    }

    #[test]
    fn single_source_floods_component() {
        let states = run(&[0], &[(0, 1), (1, 2), (5, 6)], 2);
        assert_eq!(mask(&states, 0), 1);
        assert_eq!(mask(&states, 1), 1);
        assert_eq!(mask(&states, 2), 1);
        assert_eq!(mask(&states, 5), 0);
    }

    #[test]
    fn two_sources_exchange_sets() {
        // Sources 0 and 3 in one chain: everyone ends with both bits.
        let states = run(&[0, 3], &[(0, 1), (1, 2), (2, 3)], 2);
        for v in 0..4u64 {
            assert_eq!(mask(&states, v), 0b11, "vertex {v}");
        }
    }

    #[test]
    fn late_bridge_merges_flows() {
        let engine = Engine::new(IncStCon::new(vec![0, 10]), EngineConfig::undirected(2));
        engine.try_init_vertex(0).unwrap();
        engine.try_init_vertex(10).unwrap();
        engine.try_ingest_pairs(&[(0, 1), (10, 11)]).unwrap();
        engine.try_await_quiescence().unwrap();
        engine.try_ingest_pairs(&[(1, 11)]).unwrap();
        let states = engine.try_finish().unwrap().states.into_vec();
        for v in [0u64, 1, 10, 11] {
            assert_eq!(mask(&states, v), 0b11, "vertex {v}");
        }
    }

    #[test]
    fn init_before_edges_is_fine() {
        let engine = Engine::new(IncStCon::new(vec![7]), EngineConfig::undirected(1));
        engine.try_init_vertex(7).unwrap(); // source exists before any topology
        engine.try_await_quiescence().unwrap();
        engine.try_ingest_pairs(&[(7, 8)]).unwrap();
        let states = engine.try_finish().unwrap().states.into_vec();
        assert_eq!(mask(&states, 8), 1);
    }

    #[test]
    fn wide_variant_matches_narrow() {
        let sources = vec![0u64, 5, 9];
        let edges: Vec<(u64, u64)> = (0..30).map(|i| (i, (i + 3) % 30)).collect();
        let narrow = run(&sources, &edges, 2);

        let engine = Engine::new(
            IncStConWide::new(sources.clone()),
            EngineConfig::undirected(2),
        );
        for &s in &sources {
            engine.try_init_vertex(s).unwrap();
        }
        engine.try_ingest_pairs(&edges).unwrap();
        let wide = engine.try_finish().unwrap().states.into_vec();
        for &(v, m) in &narrow {
            let w: &BitSet = &wide.iter().find(|&&(id, _)| id == v).unwrap().1;
            let as_mask: u64 = w.iter().map(|b| 1u64 << b).sum();
            assert_eq!(as_mask, m, "vertex {v}");
        }
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_sources_rejected() {
        IncStCon::new((0..65).collect());
    }
}
