//! Incremental temporal reachability (earliest arrival) — a REMO algorithm
//! for *timestamped* streams, beyond the paper's four.
//!
//! Interpret each edge's weight as a timestamp: "u and v interacted at time
//! τ". Information starting at the source at time 0 spreads along
//! time-respecting paths — it can cross an interaction at time τ only if it
//! arrived at the endpoint no later than τ. The vertex state is the
//! *earliest arrival time* of information from the source; adding
//! interactions can only make arrival earlier or equal, never later, so the
//! state is monotone decreasing with a lower bound — exactly the §II-B
//! recipe. This is the natural "rumour/contagion reach" query on the social
//! and financial streams the paper's introduction motivates.
//!
//! Arrival convention: the source has arrival 0; a vertex reached via an
//! interaction at time τ has arrival τ; unreached vertices hold
//! `u64::MAX`. The fresh-vertex bottom `0` is disambiguated by context (a
//! non-source vertex becomes `UNREACHED` on its add event, as in the
//! paper's Algorithm 4/5 pattern).

use remo_core::algorithm::codec;
use remo_core::{AlgoCtx, Algorithm, VertexId, Weight};

/// Arrival time of unreached vertices.
pub const UNREACHED: u64 = u64::MAX;

/// Sentinel stored at the source (arrival "before everything"). 1 rather
/// than 0 so the fresh-vertex `0` bottom stays unambiguous; timestamps in
/// streams must therefore be `>= 2`.
pub const SOURCE_ARRIVAL: u64 = 1;

/// Incremental earliest-arrival reachability. Initiate the source with
/// [`remo_core::Engine::try_init_vertex`]; ingest edges whose weights are
/// interaction timestamps (`>= 2`).
#[derive(Debug, Default, Clone, Copy)]
pub struct IncTemporal;

#[inline]
fn effective(a: u64) -> u64 {
    if a == 0 {
        UNREACHED
    } else {
        a
    }
}

#[inline]
fn lower_to(candidate: u64) -> impl Fn(&mut u64) -> bool {
    move |s: &mut u64| {
        if *s == 0 || *s > candidate {
            *s = candidate;
            true
        } else {
            false
        }
    }
}

impl Algorithm for IncTemporal {
    type State = u64;
    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        codec::put_u64(*state, out);
    }

    fn decode_state(bytes: &[u8]) -> u64 {
        codec::get_u64(bytes)
    }

    fn init(&self, ctx: &mut impl AlgoCtx<u64>) {
        if ctx.apply(lower_to(SOURCE_ARRIVAL)) {
            ctx.update_nbrs(&SOURCE_ARRIVAL);
        }
    }

    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _visitor: VertexId, _value: &u64, _w: Weight) {
        ctx.apply(lower_to(UNREACHED));
    }

    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<u64>,
        visitor: VertexId,
        value: &u64,
        w: Weight,
    ) {
        ctx.apply(lower_to(UNREACHED));
        self.on_update(ctx, visitor, value, w);
    }

    /// Time-respecting relaxation: the interaction at time `w` carries
    /// information from whichever endpoint had it by then.
    fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, w: Weight) {
        let mine = effective(*ctx.state());
        let theirs = effective(*value);
        // They can improve through this interaction if we arrived by `w`.
        if mine <= w && theirs > w {
            let s = *ctx.state();
            ctx.update_single_nbr(visitor, &s);
        }
        // We can improve if they arrived by `w`. When our arrival changes,
        // some incident interactions may now be usable; re-examine all
        // neighbours.
        else if theirs <= w && mine > w && ctx.apply(lower_to(w)) {
            let s = *ctx.state();
            ctx.update_nbrs(&s);
        }
    }

    fn encode_cache(state: &u64) -> u64 {
        *state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remo_core::{Engine, EngineConfig};

    fn run(edges: &[(u64, u64, u64)], source: u64, shards: usize) -> Vec<(u64, u64)> {
        let engine = Engine::new(IncTemporal, EngineConfig::undirected(shards));
        engine.try_init_vertex(source).unwrap();
        engine.try_ingest_weighted(edges).unwrap();
        engine.try_finish().unwrap().states.into_vec()
    }

    fn get(states: &[(u64, u64)], v: u64) -> Option<u64> {
        states.iter().find(|&&(id, _)| id == v).map(|&(_, s)| s)
    }

    #[test]
    fn time_respecting_chain() {
        // 0 -(t=5)- 1 -(t=9)- 2: reachable; arrival times are the
        // interaction timestamps.
        let states = run(&[(0, 1, 5), (1, 2, 9)], 0, 2);
        assert_eq!(get(&states, 0), Some(SOURCE_ARRIVAL));
        assert_eq!(get(&states, 1), Some(5));
        assert_eq!(get(&states, 2), Some(9));
    }

    #[test]
    fn time_violating_chain_blocks() {
        // 0 -(t=9)- 1 -(t=5)- 2: information reaches 1 at 9, but the 1-2
        // interaction happened at 5 — too early to carry it.
        let states = run(&[(0, 1, 9), (1, 2, 5)], 0, 2);
        assert_eq!(get(&states, 1), Some(9));
        assert_eq!(get(&states, 2), Some(UNREACHED));
    }

    #[test]
    fn earlier_alternative_wins() {
        // Two routes to 2: via 1 (arrival 20) and direct at 7.
        let states = run(&[(0, 1, 3), (1, 2, 20), (0, 2, 7)], 0, 2);
        assert_eq!(get(&states, 2), Some(7));
    }

    #[test]
    fn late_early_edge_unlocks_downstream() {
        // After an early interaction appears, a previously time-blocked
        // path becomes traversable — the incremental repair case.
        let engine = Engine::new(IncTemporal, EngineConfig::undirected(2));
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_weighted(&[(0, 1, 9), (1, 2, 5)]).unwrap();
        engine.try_await_quiescence().unwrap();
        assert_eq!(engine.try_local_state(2).unwrap(), Some(UNREACHED));
        engine.try_ingest_weighted(&[(0, 1, 2)]).unwrap(); // earlier interaction surfaces
        let states = engine.try_finish().unwrap().states;
        assert_eq!(states.get(1), Some(&2));
        assert_eq!(states.get(2), Some(&5), "1-2 at t=5 is now usable");
    }

    #[test]
    fn order_of_ingestion_is_irrelevant() {
        let edges = vec![
            (0u64, 1u64, 4u64),
            (1, 2, 6),
            (2, 3, 8),
            (0, 3, 30),
            (3, 4, 31),
        ];
        let a = run(&edges, 0, 3);
        let mut rev = edges.clone();
        rev.reverse();
        let b = run(&rev, 0, 3);
        assert_eq!(a, b);
    }
}
