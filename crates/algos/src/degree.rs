//! Live degree tracking — the paper's §II-A motivating example.
//!
//! "In an event-centric design, we simply implement a callback on edge
//! insertion ...: if an edge is added, increment a counter tracking the
//! vertex degree ... resulting in a real-time analysis of a specific
//! vertices degree or enabling a user-defined callback if the degree exceeds
//! a certain threshold." State is a plain counter — monotone increasing in
//! an add-only world.

use remo_core::algorithm::codec;
use remo_core::{AlgoCtx, Algorithm, VertexId, Weight};

/// Tracks total degree (both endpoints count) on undirected graphs.
#[derive(Debug, Default, Clone, Copy)]
pub struct DegreeCount;

impl Algorithm for DegreeCount {
    type State = u64;
    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        codec::put_u64(*state, out);
    }

    fn decode_state(bytes: &[u8]) -> u64 {
        codec::get_u64(bytes)
    }

    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _visitor: VertexId, _value: &u64, _w: Weight) {
        ctx.apply(|d| {
            *d += 1;
            true
        });
    }

    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<u64>,
        _visitor: VertexId,
        _value: &u64,
        _w: Weight,
    ) {
        ctx.apply(|d| {
            *d += 1;
            true
        });
    }

    /// Degree never emits `Update` envelopes on its own, but under
    /// [`remo_core::Pair`] its counter rides along in the composed state.
    /// The counter is monotone increasing, so two snapshots merge to the
    /// larger — letting the *pair* coalesce when the partner can.
    fn join(into: &mut u64, from: &u64) -> bool {
        if *from > *into {
            *into = *from;
        }
        true
    }
}

/// Tracks only out-degree (add events), for directed graphs.
#[derive(Debug, Default, Clone, Copy)]
pub struct OutDegreeCount;

impl Algorithm for OutDegreeCount {
    type State = u64;
    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        codec::put_u64(*state, out);
    }

    fn decode_state(bytes: &[u8]) -> u64 {
        codec::get_u64(bytes)
    }

    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _visitor: VertexId, _value: &u64, _w: Weight) {
        ctx.apply(|d| {
            *d += 1;
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remo_core::{Engine, EngineBuilder, EngineConfig};

    #[test]
    fn undirected_degrees() {
        let engine = Engine::new(DegreeCount, EngineConfig::undirected(2));
        engine.try_ingest_pairs(&[(0, 1), (0, 2), (0, 3)]).unwrap();
        let states = engine.try_finish().unwrap().states;
        assert_eq!(states.get(0), Some(&3));
        assert_eq!(states.get(1), Some(&1));
    }

    #[test]
    fn directed_out_degrees() {
        let engine = Engine::new(OutDegreeCount, EngineConfig::directed(2));
        engine.try_ingest_pairs(&[(0, 1), (0, 2), (1, 2)]).unwrap();
        let states = engine.try_finish().unwrap().states;
        assert_eq!(states.get(0), Some(&2));
        assert_eq!(states.get(1), Some(&1));
        // Vertex 2 never appears as a source: no record, i.e. degree 0.
        assert_eq!(states.get(2), None);
    }

    #[test]
    fn duplicate_edges_count_as_events() {
        // The degree example counts edge *events* (the paper's callback has
        // no dedup); duplicates in the stream increment again.
        let engine = Engine::new(DegreeCount, EngineConfig::undirected(1));
        engine.try_ingest_pairs(&[(0, 1), (0, 1)]).unwrap();
        let states = engine.try_finish().unwrap().states;
        assert_eq!(states.get(0), Some(&2));
    }

    #[test]
    fn threshold_trigger_fires_once() {
        // "Enabling a user-defined callback if the degree exceeds a certain
        // threshold" (§II-A).
        let mut builder = EngineBuilder::new(DegreeCount, EngineConfig::undirected(2));
        builder.trigger("degree>=3", |_, d: &u64| *d >= 3);
        let engine = builder.build();
        engine
            .try_ingest_pairs(&[(7, 1), (7, 2), (7, 3), (7, 4), (7, 5)])
            .unwrap();
        engine.try_await_quiescence().unwrap();
        let fires: Vec<_> = engine.trigger_events().try_iter().collect();
        assert_eq!(fires.len(), 1, "monotone trigger must fire exactly once");
        assert_eq!(fires[0].vertex, 7);
        let result = engine.try_finish().unwrap();
        assert_eq!(result.metrics.total().triggers_fired, 1);
    }
}
