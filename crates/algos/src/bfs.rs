//! Incremental Breadth First Search (paper Algorithm 4).
//!
//! State: the vertex's BFS level — the minimum number of hops from the
//! source, where the source itself has level 1. `0` means "no state yet"
//! (new vertex), `u64::MAX` means "not reached". State is monotone: after
//! initialization it only ever *decreases* (§II-B, "Convex Monotonicity"),
//! which is what guarantees convergence to the deterministic answer under
//! asynchronous, concurrent event processing.
//!
//! The recursive step doubles as the incremental update: on an edge addition
//! that exposes a shorter path (case (iii) of §II-B), the update event
//! repairs the tree downstream; cases (i) and (ii) generate no work.

use remo_core::algorithm::codec;
use remo_core::{AlgoCtx, Algorithm, VertexId, Weight};

/// Level value for vertices that exist but are not (yet) reached.
pub const UNREACHED: u64 = u64::MAX;

/// Incremental BFS. Attach with [`remo_core::Engine::try_init_vertex`] on the
/// source ("can be initiated at any time").
#[derive(Debug, Default, Clone, Copy)]
pub struct IncBfs;

/// Monotone transition: take `candidate` if it improves (lowers) the level.
#[inline]
fn lower_to(candidate: u64) -> impl Fn(&mut u64) -> bool {
    move |s: &mut u64| {
        if *s == 0 || *s > candidate {
            *s = candidate;
            true
        } else {
            false
        }
    }
}

/// Treats the paper's `0 = fresh vertex` sentinel as infinity.
#[inline]
fn effective(level: u64) -> u64 {
    if level == 0 {
        UNREACHED
    } else {
        level
    }
}

impl Algorithm for IncBfs {
    type State = u64;
    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        codec::put_u64(*state, out);
    }

    fn decode_state(bytes: &[u8]) -> u64 {
        codec::get_u64(bytes)
    }

    /// `init()`: begin the traversal from this vertex (Algorithm 4 line 2).
    fn init(&self, ctx: &mut impl AlgoCtx<u64>) {
        if ctx.apply(lower_to(1)) {
            ctx.update_nbrs(&1);
        }
    }

    /// A new vertex ensures its level is "infinity" (line 6).
    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _visitor: VertexId, _value: &u64, _w: Weight) {
        ctx.apply(lower_to(UNREACHED));
    }

    /// Reverse-add carries the other endpoint's level: same logic as update
    /// (lines 11-16).
    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<u64>,
        visitor: VertexId,
        value: &u64,
        w: Weight,
    ) {
        ctx.apply(lower_to(UNREACHED));
        self.on_update(ctx, visitor, value, w);
    }

    /// The recursive step (lines 18-28).
    fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, _w: Weight) {
        let mine = effective(*ctx.state());
        let theirs = effective(*value);
        // Case: we are lower — notify the visitor back so *they* improve
        // (this is also how an unreached endpoint learns its level).
        if mine.saturating_add(1) < theirs {
            let state = *ctx.state();
            ctx.update_single_nbr(visitor, &state);
        }
        // Case: they are lower — adopt and propagate to all neighbours.
        else if theirs.saturating_add(1) < mine {
            let new_level = theirs + 1;
            if ctx.apply(lower_to(new_level)) {
                ctx.update_nbrs(&new_level);
            }
        }
        // Same level (±1): the current solution remains valid; no events.
    }

    /// Levels fit in the per-edge cache; used by the suppressing variant.
    fn encode_cache(state: &u64) -> u64 {
        *state
    }

    /// Levels form a min-lattice under `effective`: two pending updates
    /// for the same target merge to the lower (better) level. Always
    /// mergeable, so a burst of corrections ships as one envelope.
    fn join(into: &mut u64, from: &u64) -> bool {
        if effective(*from) < effective(*into) {
            *into = *from;
        }
        true
    }

    /// Lower level = closer to the lower bound: drain best-first, which is
    /// the incremental analogue of Dijkstra's priority queue.
    fn priority(state: &u64) -> Option<u64> {
        Some(effective(*state))
    }
}

/// Cache-suppressing BFS: identical semantics to [`IncBfs`], but when
/// propagating it skips neighbours whose cached level already proves they
/// cannot improve (they are at most `new_level + 1`... i.e. their cached
/// value is `<= new_level + 1`). This is the optimization the per-edge
/// neighbour cache of Algorithm 3 enables; `ablate_store` measures it.
#[derive(Debug, Default, Clone, Copy)]
pub struct IncBfsSuppressed;

impl Algorithm for IncBfsSuppressed {
    type State = u64;
    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        codec::put_u64(*state, out);
    }

    fn decode_state(bytes: &[u8]) -> u64 {
        codec::get_u64(bytes)
    }

    fn init(&self, ctx: &mut impl AlgoCtx<u64>) {
        if ctx.apply(lower_to(1)) {
            ctx.update_nbrs(&1);
        }
    }

    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _visitor: VertexId, _value: &u64, _w: Weight) {
        ctx.apply(lower_to(UNREACHED));
    }

    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<u64>,
        visitor: VertexId,
        value: &u64,
        w: Weight,
    ) {
        ctx.apply(lower_to(UNREACHED));
        self.on_update(ctx, visitor, value, w);
    }

    fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, _w: Weight) {
        let mine = effective(*ctx.state());
        let theirs = effective(*value);
        if mine.saturating_add(1) < theirs {
            let state = *ctx.state();
            ctx.update_single_nbr(visitor, &state);
        } else if theirs.saturating_add(1) < mine {
            let new_level = theirs + 1;
            if ctx.apply(lower_to(new_level)) {
                // Suppress sends to neighbours whose cached level shows they
                // already have a level <= ours + 1 (cache 0 = unknown).
                ctx.update_nbrs_filtered(&new_level, |_, meta| {
                    meta.cached == 0 || effective(meta.cached) > new_level + 1
                });
            }
        }
    }

    fn encode_cache(state: &u64) -> u64 {
        *state
    }
}

/// Deterministic-tree BFS (§II-D): state is `(level, parent)`. Where two
/// parents offer the same level, the lower parent id wins — "choosing the
/// parent with the lowest vertex ID" — making the *entire tree*, not just
/// the levels, independent of event ordering.
#[derive(Debug, Default, Clone, Copy)]
pub struct IncBfsDeterministic;

/// State of [`IncBfsDeterministic`]: `(level, parent)`; `(0, _)` = fresh,
/// parent is meaningless until `level >= 2`. The lattice order is
/// lexicographic: lower level wins, then lower parent id.
pub type LevelParent = (u64, VertexId);

#[inline]
fn lp_effective(s: LevelParent) -> LevelParent {
    if s.0 == 0 {
        (UNREACHED, VertexId::MAX)
    } else {
        s
    }
}

#[inline]
fn lp_lower_to(candidate: LevelParent) -> impl Fn(&mut LevelParent) -> bool {
    move |s: &mut LevelParent| {
        if lp_effective(*s) > candidate {
            *s = candidate;
            true
        } else {
            false
        }
    }
}

impl Algorithm for IncBfsDeterministic {
    type State = LevelParent;
    fn encode_state(state: &LevelParent, out: &mut Vec<u8>) {
        codec::put_u64(state.0, out);
        codec::put_u64(state.1, out);
    }

    fn decode_state(bytes: &[u8]) -> LevelParent {
        (codec::get_u64(&bytes[..8]), codec::get_u64(&bytes[8..]))
    }

    fn init(&self, ctx: &mut impl AlgoCtx<LevelParent>) {
        let me = ctx.vertex();
        if ctx.apply(lp_lower_to((1, me))) {
            let s = *ctx.state();
            ctx.update_nbrs(&s);
        }
    }

    fn on_add(
        &self,
        ctx: &mut impl AlgoCtx<LevelParent>,
        _visitor: VertexId,
        _value: &LevelParent,
        _w: Weight,
    ) {
        ctx.apply(lp_lower_to((UNREACHED, VertexId::MAX)));
    }

    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<LevelParent>,
        visitor: VertexId,
        value: &LevelParent,
        w: Weight,
    ) {
        ctx.apply(lp_lower_to((UNREACHED, VertexId::MAX)));
        self.on_update(ctx, visitor, value, w);
    }

    fn on_update(
        &self,
        ctx: &mut impl AlgoCtx<LevelParent>,
        visitor: VertexId,
        value: &LevelParent,
        _w: Weight,
    ) {
        let (my_level, _) = lp_effective(*ctx.state());
        let (their_level, _) = lp_effective(*value);
        // Notify back on `<=`, not `<`: at equal distance the visitor may
        // still prefer us as a lower-id parent (the §II-D tie-break), and it
        // can only learn our level from this reply. Without the equality
        // case the final tree depends on whether the edge arrived before or
        // after we settled — exactly the nondeterminism the deterministic
        // variant exists to remove. The `my_level != UNREACHED` guard is
        // load-bearing: two unreached endpoints otherwise satisfy
        // `MAX <= MAX` and ping-pong replies forever.
        if my_level != UNREACHED && my_level.saturating_add(1) <= their_level {
            let state = *ctx.state();
            ctx.update_single_nbr(visitor, &state);
        } else if their_level != UNREACHED {
            // Candidate: become the visitor's child. The lexicographic order
            // also settles equal-level parent contention deterministically.
            let candidate = (their_level + 1, visitor);
            if candidate < lp_effective(*ctx.state()) && ctx.apply(lp_lower_to(candidate)) {
                let s = *ctx.state();
                ctx.update_nbrs(&s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remo_core::{Engine, EngineConfig};

    fn run_bfs(edges: &[(u64, u64)], source: u64, shards: usize) -> Vec<(u64, u64)> {
        let engine = Engine::new(IncBfs, EngineConfig::undirected(shards));
        engine.try_init_vertex(source).unwrap();
        engine.try_ingest_pairs(edges).unwrap();
        engine.try_finish().unwrap().states.into_vec()
    }

    #[test]
    fn path_levels() {
        let states = run_bfs(&[(0, 1), (1, 2), (2, 3)], 0, 2);
        let get = |v: u64| states.iter().find(|&&(id, _)| id == v).map(|&(_, s)| s);
        assert_eq!(get(0), Some(1));
        assert_eq!(get(1), Some(2));
        assert_eq!(get(2), Some(3));
        assert_eq!(get(3), Some(4));
    }

    #[test]
    fn init_after_ingest_still_converges() {
        let engine = Engine::new(IncBfs, EngineConfig::undirected(2));
        engine.try_ingest_pairs(&[(0, 1), (1, 2)]).unwrap();
        engine.try_await_quiescence().unwrap();
        engine.try_init_vertex(0).unwrap(); // late initiation (§IV.1)
        let states = engine.try_finish().unwrap().states;
        assert_eq!(states.get(2), Some(&3));
    }

    #[test]
    fn shortcut_edge_lowers_levels() {
        // Long path first, then a shortcut from the source.
        let engine = Engine::new(IncBfs, EngineConfig::undirected(2));
        engine.try_init_vertex(0).unwrap();
        engine
            .try_ingest_pairs(&[(0, 1), (1, 2), (2, 3), (3, 4)])
            .unwrap();
        engine.try_await_quiescence().unwrap();
        engine.try_ingest_pairs(&[(0, 4)]).unwrap(); // case (iii): shorter path appears
        let states = engine.try_finish().unwrap().states;
        assert_eq!(states.get(4), Some(&2));
        assert_eq!(states.get(3), Some(&3), "repair must flow backwards too");
    }

    #[test]
    fn disconnected_component_unreached() {
        let states = run_bfs(&[(0, 1), (5, 6)], 0, 2);
        let get = |v: u64| states.iter().find(|&&(id, _)| id == v).map(|&(_, s)| s);
        assert_eq!(get(5), Some(UNREACHED));
        assert_eq!(get(6), Some(UNREACHED));
    }

    #[test]
    fn deterministic_variant_picks_lowest_parent() {
        // Vertex 3 reachable at level 3 via parent 1 or 2; the tie-break
        // clause (§II-D) must choose the lower parent id, 1.
        let engine = Engine::new(IncBfsDeterministic, EngineConfig::undirected(2));
        engine.try_init_vertex(0).unwrap();
        engine
            .try_ingest_pairs(&[(0, 1), (0, 2), (1, 3), (2, 3)])
            .unwrap();
        let states = engine.try_finish().unwrap().states;
        assert_eq!(states.get(3), Some(&(3, 1)));
    }

    #[test]
    fn deterministic_variant_quiesces_without_source() {
        // Regression: two unreached endpoints must not ping-pong replies
        // forever (the `MAX <= MAX` livelock). No init: everything stays
        // unreached and the engine must still reach quiescence.
        let engine = Engine::new(IncBfsDeterministic, EngineConfig::undirected(2));
        engine.try_ingest_pairs(&[(0, 1), (1, 2), (2, 0)]).unwrap();
        engine.try_await_quiescence().unwrap();
        let r = engine.try_finish().unwrap();
        for (v, &(l, _)) in r.states.iter() {
            // Raw 0 is the fresh sentinel; both mean "unreached".
            assert!(l == UNREACHED || l == 0, "vertex {v} has level {l}");
        }
    }

    #[test]
    fn deterministic_variant_equal_level_parent_improves_late() {
        // The confluence case that motivated the <= notify-back: vertex 3
        // settles at level 3 via parent 2, then a *late* edge to the
        // already-settled, lower-id vertex 1 (also level 2) must flip the
        // parent to 1 even though 1's state never changes again.
        let engine = Engine::new(IncBfsDeterministic, EngineConfig::undirected(2));
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_pairs(&[(0, 1), (0, 2), (2, 3)]).unwrap();
        engine.try_await_quiescence().unwrap();
        assert_eq!(engine.try_local_state(3).unwrap(), Some((3, 2)));
        engine.try_ingest_pairs(&[(1, 3)]).unwrap(); // late edge to the lower-id parent
        let states = engine.try_finish().unwrap().states;
        assert_eq!(states.get(3), Some(&(3, 1)));
    }

    #[test]
    fn lattice_run_matches_fifo() {
        // Coalescing + dominance + priority draining must not change the
        // fixpoint — only how much work it takes to get there.
        let edges: Vec<(u64, u64)> = (0..80).map(|i| (i, (i * 13 + 3) % 80)).collect();
        let fifo = run_bfs(&edges, 0, 4);
        let engine = Engine::new(IncBfs, EngineConfig::undirected(4).with_lattice());
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_pairs(&edges).unwrap();
        let result = engine.try_finish().unwrap();
        assert_eq!(fifo, result.states.into_vec());
    }

    #[test]
    fn suppressed_variant_matches_plain() {
        let edges: Vec<(u64, u64)> = (0..50).map(|i| (i, (i * 7 + 1) % 50)).collect();
        let plain = run_bfs(&edges, 0, 2);
        let engine = Engine::new(IncBfsSuppressed, EngineConfig::undirected(2));
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_pairs(&edges).unwrap();
        let supp = engine.try_finish().unwrap().states.into_vec();
        assert_eq!(plain, supp);
    }
}
