//! Decremental support via **state generations** (paper §VI-B).
//!
//! Edge deletions break the monotonicity REMO relies on (removing an edge
//! can *increase* a BFS distance). The paper's proposed fix: "define the new
//! monotonic state to be determined (i) firstly by the generation of the
//! algorithmic state, and only secondly by (ii) the actual algorithmic
//! state. ... if an algorithmic action would break monotonicity we move the
//! state into a new generation", which sits convexly below every state of
//! the older generation.
//!
//! [`GenBfs`] implements that design for BFS. State is `(generation,
//! level)`; the lattice order is lexicographic — higher generation always
//! dominates, and within a generation the level decreases as usual. A
//! deletion bumps the shared current-generation counter; re-initiating the
//! source floods `(g+1, 1)` and rebuilds the tree, while stale
//! lower-generation values lose every comparison. "While deletion events
//! done in this generational fashion may have a high overhead ... this
//! provides a correct solution as a starting point" — the
//! `ablate_generational` measurements quantify that overhead.
//!
//! Reading results: a vertex whose stored generation is older than the
//! current one is **unreached** in the current world (its value predates the
//! deletion).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use remo_core::algorithm::codec;
use remo_core::{AlgoCtx, Algorithm, VertexId, Weight};

/// Level value for unreached vertices.
pub const UNREACHED: u64 = u64::MAX;

/// `(generation, level)`; `(0, 0)` is the fresh-vertex bottom.
pub type GenLevel = (u32, u64);

/// Shared handle to the algorithm's generation counter. Bump it after
/// streaming deletions, then re-initiate the source.
#[derive(Debug, Clone, Default)]
pub struct GenerationHandle(Arc<AtomicU32>);

impl GenerationHandle {
    /// Current generation.
    pub fn current(&self) -> u32 {
        self.0.load(Ordering::SeqCst)
    }

    /// Opens a new generation (after deletions); returns it.
    pub fn bump(&self) -> u32 {
        self.0.fetch_add(1, Ordering::SeqCst) + 1
    }
}

/// Generational BFS: incremental BFS that stays correct under edge
/// deletions via the §VI-B generation scheme.
#[derive(Debug, Clone, Default)]
pub struct GenBfs {
    gen: GenerationHandle,
}

impl GenBfs {
    /// Creates the algorithm plus the user-side generation handle.
    pub fn new() -> (Self, GenerationHandle) {
        let handle = GenerationHandle::default();
        (
            GenBfs {
                gen: handle.clone(),
            },
            handle,
        )
    }
}

#[inline]
fn effective(s: GenLevel) -> GenLevel {
    if s.1 == 0 {
        (s.0, UNREACHED)
    } else {
        s
    }
}

/// Candidate dominates iff its generation is higher, or equal-generation
/// with a lower level (the lexicographic order of §VI-B).
#[inline]
fn dominates(candidate: GenLevel, over: GenLevel) -> bool {
    let over = effective(over);
    candidate.0 > over.0 || (candidate.0 == over.0 && candidate.1 < over.1)
}

#[inline]
fn adopt(candidate: GenLevel) -> impl Fn(&mut GenLevel) -> bool {
    move |s: &mut GenLevel| {
        if dominates(candidate, *s) {
            *s = candidate;
            true
        } else {
            false
        }
    }
}

impl Algorithm for GenBfs {
    type State = GenLevel;
    fn encode_state(state: &GenLevel, out: &mut Vec<u8>) {
        codec::put_u32(state.0, out);
        codec::put_u64(state.1, out);
    }

    fn decode_state(bytes: &[u8]) -> GenLevel {
        (codec::get_u32(&bytes[..4]), codec::get_u64(&bytes[4..]))
    }

    /// Initiates (or re-initiates, after a bump) the source at the current
    /// generation.
    fn init(&self, ctx: &mut impl AlgoCtx<GenLevel>) {
        let g = self.gen.current();
        if ctx.apply(adopt((g, 1))) {
            let s = *ctx.state();
            ctx.update_nbrs(&s);
        }
    }

    fn on_add(
        &self,
        ctx: &mut impl AlgoCtx<GenLevel>,
        _visitor: VertexId,
        _value: &GenLevel,
        _w: Weight,
    ) {
        // Fresh vertices sit at the bottom; nothing to do (the bottom is
        // dominated by any real value of any generation).
        let _ = ctx;
    }

    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<GenLevel>,
        visitor: VertexId,
        value: &GenLevel,
        w: Weight,
    ) {
        self.on_update(ctx, visitor, value, w);
    }

    fn on_update(
        &self,
        ctx: &mut impl AlgoCtx<GenLevel>,
        visitor: VertexId,
        value: &GenLevel,
        _w: Weight,
    ) {
        let mine = effective(*ctx.state());
        let theirs = effective(*value);
        // Their value is stale (older generation): send ours back so they
        // catch up — only over a still-existing edge (see GenCc's on_update
        // for why replies must be topology-guarded in a decremental world).
        if mine.0 > theirs.0 {
            if ctx.edge_weight(visitor).is_some() {
                let s = *ctx.state();
                ctx.update_single_nbr(visitor, &s);
            }
            return;
        }
        // We are stale or same-generation BFS logic applies.
        if theirs.1 != UNREACHED {
            let candidate = (theirs.0, theirs.1 + 1);
            if dominates(candidate, mine) {
                if ctx.apply(adopt(candidate)) {
                    let s = *ctx.state();
                    ctx.update_nbrs(&s);
                }
                return;
            }
        }
        // Same generation, we are closer: notify back (plain BFS rule),
        // topology-guarded.
        if mine.0 == theirs.0
            && mine.1.saturating_add(1) < theirs.1
            && ctx.edge_weight(visitor).is_some()
        {
            let s = *ctx.state();
            ctx.update_single_nbr(visitor, &s);
        }
    }
}

/// Convenience view: the level of `s` in generation `g` (`UNREACHED` if the
/// state predates `g` or is the bottom).
pub fn level_in_generation(s: GenLevel, g: u32) -> u64 {
    if s.0 == g && s.1 != 0 {
        s.1
    } else {
        UNREACHED
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remo_core::{Engine, EngineConfig};

    #[test]
    fn behaves_like_bfs_without_deletions() {
        let (algo, _gen) = GenBfs::new();
        let engine = Engine::new(algo, EngineConfig::undirected(2));
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_pairs(&[(0, 1), (1, 2), (0, 3)]).unwrap();
        let states = engine.try_finish().unwrap().states;
        assert_eq!(states.get(0), Some(&(0, 1)));
        assert_eq!(states.get(1), Some(&(0, 2)));
        assert_eq!(states.get(2), Some(&(0, 3)));
        assert_eq!(states.get(3), Some(&(0, 2)));
    }

    #[test]
    fn deletion_then_new_generation_rebuilds() {
        let (algo, gen) = GenBfs::new();
        let engine = Engine::new(algo, EngineConfig::undirected(2));
        engine.try_init_vertex(0).unwrap();
        // Short path 0-1-4 and long path 0-2-3-4.
        engine
            .try_ingest_pairs(&[(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)])
            .unwrap();
        engine.try_await_quiescence().unwrap();

        // Delete the shortcut, open a new generation, re-seed.
        engine.try_delete_pairs(&[(0, 1), (1, 4)]).unwrap();
        engine.try_await_quiescence().unwrap();
        let g = gen.bump();
        engine.try_init_vertex(0).unwrap();
        let states = engine.try_finish().unwrap().states;

        // Vertex 4 now only reachable via the long path: level 4.
        assert_eq!(level_in_generation(*states.get(4).unwrap(), g), 4);
        // Vertex 1 is disconnected: must remain at the old generation.
        assert_eq!(level_in_generation(*states.get(1).unwrap(), g), UNREACHED);
        assert_eq!(level_in_generation(*states.get(2).unwrap(), g), 2);
    }

    #[test]
    fn incremental_adds_after_regeneration_work() {
        let (algo, gen) = GenBfs::new();
        let engine = Engine::new(algo, EngineConfig::undirected(1));
        engine.try_init_vertex(0).unwrap();
        engine.try_ingest_pairs(&[(0, 1)]).unwrap();
        engine.try_await_quiescence().unwrap();
        engine.try_delete_pairs(&[(0, 1)]).unwrap();
        engine.try_await_quiescence().unwrap();
        let g = gen.bump();
        engine.try_init_vertex(0).unwrap();
        engine.try_await_quiescence().unwrap();
        // New edge in the new generation propagates normally.
        engine.try_ingest_pairs(&[(0, 5)]).unwrap();
        let states = engine.try_finish().unwrap().states;
        assert_eq!(level_in_generation(*states.get(5).unwrap(), g), 2);
        assert_eq!(level_in_generation(*states.get(1).unwrap(), g), UNREACHED);
    }

    #[test]
    fn stale_generation_values_lose_every_comparison() {
        assert!(
            dominates((1, 50), (0, 2)),
            "new gen dominates despite worse level"
        );
        assert!(!dominates((0, 1), (1, 50)));
        assert!(dominates((1, 2), (1, 3)));
        assert!(!dominates((1, 3), (1, 2)));
    }
}

/// Generational Connected Components: delete-capable CC via the same §VI-B
/// generation scheme, but **self-healing** — CC has no initiation vertex,
/// so instead of an explicit re-seed the deletion itself opens the new
/// generation and floods it epidemically.
///
/// On an edge removal, both endpoints bump their generation and re-label
/// themselves; any neighbour that sees a higher-generation value resets to
/// its own hash label in that generation, joins the incoming label, and
/// re-broadcasts. The flood covers exactly the component(s) touching the
/// deleted edge (both halves, if it was a bridge), and within the new
/// generation ordinary CC label domination converges to the dominator of
/// each *remaining* component. Untouched components keep their old
/// generation — their labels were never invalidated.
///
/// State: `(generation, label)`. Two vertices are in the same component iff
/// their full `(generation, label)` pairs are equal at quiescence.
///
/// ## Exactness contract
///
/// Separating deletions by quiescence (`delete → await_quiescence → delete
/// → …`, the paper's "trivial, yet costly" synchronous regime — though here
/// the repair cost is proportional to the affected component, not a
/// stop-the-world recompute) gives **exact** results: the per-channel FIFO
/// order fences every message that could cross the deleted edge. Under
/// fully concurrent deletion storms the algorithm remains convergent and
/// complete (vertices of one component always agree), but a flood sent over
/// an edge that a *different* concurrent deletion later removed can
/// transiently equate the states of components that are in fact separate —
/// resolved by the next quiesced deletion touching them. The extension
/// tests pin down both regimes.
#[derive(Debug, Default, Clone, Copy)]
pub struct GenCc;

/// `(generation, label)`; `(0, 0)` is the fresh-vertex bottom.
pub type GenLabel = (u32, u64);

use crate::cc::cc_label;

#[inline]
fn gcc_join(me: remo_core::VertexId, incoming: GenLabel) -> impl Fn(&mut GenLabel) -> bool {
    move |s: &mut GenLabel| {
        if incoming.0 > s.0 {
            // Entering a newer generation: restart from our own label, then
            // join the incoming one (CC join is max).
            *s = (incoming.0, cc_label(me).max(incoming.1));
            true
        } else if incoming.0 == s.0 && incoming.1 > s.1 {
            s.1 = incoming.1;
            true
        } else {
            false
        }
    }
}

impl Algorithm for GenCc {
    type State = GenLabel;
    fn encode_state(state: &GenLabel, out: &mut Vec<u8>) {
        codec::put_u32(state.0, out);
        codec::put_u64(state.1, out);
    }

    fn decode_state(bytes: &[u8]) -> GenLabel {
        (codec::get_u32(&bytes[..4]), codec::get_u64(&bytes[4..]))
    }

    /// Label any new vertex (Algorithm 6's add behaviour, generation-aware:
    /// the self-label joins within whatever generation the vertex is in).
    fn on_add(
        &self,
        ctx: &mut impl AlgoCtx<GenLabel>,
        _visitor: VertexId,
        _value: &GenLabel,
        _w: Weight,
    ) {
        let me = ctx.vertex();
        ctx.apply(move |s: &mut GenLabel| {
            let label = cc_label(me);
            if s.1 < label {
                s.1 = label;
                true
            } else {
                false
            }
        });
    }

    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<GenLabel>,
        visitor: VertexId,
        value: &GenLabel,
        w: Weight,
    ) {
        self.on_add(ctx, visitor, value, w);
        self.on_update(ctx, visitor, value, w);
    }

    fn on_update(
        &self,
        ctx: &mut impl AlgoCtx<GenLabel>,
        visitor: VertexId,
        value: &GenLabel,
        _w: Weight,
    ) {
        let me = ctx.vertex();
        let mine = *ctx.state();
        let theirs = *value;
        if mine.0 > theirs.0 || (mine.0 == theirs.0 && mine.1 > theirs.1) {
            // We dominate (newer generation or bigger label): notify back —
            // but ONLY over a still-existing edge. An unguarded reply to an
            // in-flight message from a since-deleted neighbour would leak
            // our generation across the removed edge and merge components
            // that are no longer connected. (FIFO ordering makes every
            // other cross-deleted-edge path impossible: the reverse-remove
            // follows the sender's last legitimate flood.)
            if ctx.edge_weight(visitor).is_some() {
                ctx.update_single_nbr(visitor, &mine);
            }
        } else if ctx.apply(gcc_join(me, theirs)) {
            let s = *ctx.state();
            ctx.update_nbrs(&s);
        }
    }

    /// A removal opens a new generation at both endpoints; the flood does
    /// the rest.
    fn on_remove(
        &self,
        ctx: &mut impl AlgoCtx<GenLabel>,
        _visitor: VertexId,
        _value: &GenLabel,
        _w: Weight,
    ) {
        let me = ctx.vertex();
        ctx.apply(move |s: &mut GenLabel| {
            *s = (s.0 + 1, cc_label(me));
            true
        });
        let s = *ctx.state();
        ctx.update_nbrs(&s);
    }

    fn on_reverse_remove(
        &self,
        ctx: &mut impl AlgoCtx<GenLabel>,
        visitor: VertexId,
        value: &GenLabel,
        w: Weight,
    ) {
        self.on_remove(ctx, visitor, value, w);
    }

    fn encode_cache(state: &GenLabel) -> u64 {
        state.1
    }
}
