//! Quiescence / termination detection.
//!
//! "Processing completes when all visitors have completed, which is
//! determined by a distributed quiescence detection algorithm" (§III-F,
//! citing Pearce et al. \[24\]). Two detectors are provided:
//!
//! - **Counter** (default): Mattern's *four-counter method*. Every shard
//!   owns monotone `sent` / `processed` counters (per snapshot-epoch
//!   parity) on its own padded cache line, published with plain atomic
//!   stores — there is **no shared read-modify-write on the data path**.
//!   The controller probes in two waves: first it sums `processed` (R),
//!   then `sent` (S); because a shard publishes `sent` *before* an envelope
//!   becomes receivable, published S ≥ published R always, and `S == R`
//!   proves no envelope is in flight or buffered. Stream ingestion is
//!   covered by a third monotone counter pair (`injected` by the
//!   controller, `ingested` by shards).
//! - **Safra**: the classic Dijkstra–Feijen–van Gasteren/Safra token-ring
//!   algorithm — per-shard message counts and colours, a token circulating
//!   `0 → 1 → … → P-1 → 0`, termination when a white token returns to a
//!   white shard 0 with a zero global count. Fully decentralized; the
//!   detector a distributed deployment would run. The `ablate_termination`
//!   bench measures the cost difference.
//!
//! The per-parity split is what the snapshot protocol (§III-D) uses to know
//! when all events of the *previous* epoch have drained without pausing the
//! new epoch's stream.

use crate::event::Epoch;
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A soft deadline for supervised waits. `None` never expires — the
/// seed's original block-forever behaviour, kept as the default so
/// existing callers are unaffected until they opt into deadlines via
/// [`EngineConfig`](crate::EngineConfig).
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    limit: Option<Duration>,
}

impl Deadline {
    /// Starts a deadline clock now; `limit: None` never expires.
    pub fn new(limit: Option<Duration>) -> Self {
        Deadline {
            start: Instant::now(),
            limit,
        }
    }

    /// True once the limit has elapsed (never, for `None`).
    #[inline]
    pub fn expired(&self) -> bool {
        match self.limit {
            Some(d) => self.start.elapsed() >= d,
            None => false,
        }
    }

    /// Time spent waiting so far.
    pub fn waited(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Capped exponential backoff for controller wait loops: starts near a
/// busy-wait for snappy short waits, doubles toward `cap` so an idle
/// controller stops burning a core on fixed-interval probing.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    cur: Duration,
    cap: Duration,
}

impl Backoff {
    /// Starts at `start`, doubling up to `cap`.
    pub fn new(start: Duration, cap: Duration) -> Self {
        Backoff { cur: start, cap }
    }

    /// Default controller probe backoff: 20µs doubling to 1ms.
    pub fn probe() -> Self {
        Self::new(Duration::from_micros(20), Duration::from_millis(1))
    }

    /// The next wait duration (doubles toward the cap).
    pub fn next_wait(&mut self) -> Duration {
        let d = self.cur;
        self.cur = (self.cur * 2).min(self.cap);
        d
    }
}

/// Wall-clock meter for quiescence-detection latency: started when the
/// controller enters a detection wait, read when the probe first succeeds.
/// Lives here so the latency definition sits next to the detectors it
/// measures; samples land in the telemetry `quiesce` histogram and surface
/// as p50/p99/p999 in [`RunMetrics`](crate::RunMetrics).
#[derive(Debug, Clone, Copy)]
pub struct DetectionTimer {
    start: Instant,
}

impl DetectionTimer {
    /// Starts the clock (call on entry to the detection wait).
    pub fn begin() -> Self {
        DetectionTimer {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since the wait began (saturating).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Which detector the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TerminationMode {
    /// Four-counter probing over per-shard published counters (fast path).
    #[default]
    Counter,
    /// Safra's token-ring algorithm (fully decentralized).
    Safra,
}

/// One participant's published monotone counters. Each lives on its own
/// cache line; only the owner writes it (plain stores), only the controller
/// reads it.
#[derive(Debug, Default)]
pub struct ShardSlots {
    /// Envelopes created, by epoch parity. Published **before** the
    /// envelope can be received anywhere (the four-counter soundness
    /// condition).
    pub sent: [AtomicU64; 2],
    /// Envelopes fully processed (including the publication of any derived
    /// envelopes), by epoch parity.
    pub processed: [AtomicU64; 2],
    /// Topology events pulled from this shard's input streams.
    pub ingested: AtomicU64,
    /// Last epoch this shard has observed (snapshot barrier ack).
    pub epoch_ack: AtomicU32,
}

/// Engine-wide bookkeeping: the epoch cell, the controller's injection
/// count, and one padded [`ShardSlots`] per shard plus one extra slot
/// (index `P`) for envelopes the controller itself creates (`init_vertex`).
#[derive(Debug)]
pub struct SharedCounters {
    /// Current snapshot epoch; stream events are tagged with this.
    pub epoch: AtomicU32,
    /// Total topology events handed to shards (controller-written).
    pub injected: AtomicU64,
    /// Shards currently between a custody sweep and the end of their
    /// WAL replay. The sweep retires every swept envelope against the
    /// books (they balance) *before* replay has regenerated the swept
    /// work, so the four-counter reading alone is no longer a fixpoint
    /// witness in that window — the probe refuses while this is nonzero.
    recovering: AtomicU64,
    slots: Vec<CachePadded<ShardSlots>>,
}

impl SharedCounters {
    /// Counters for `shards` shards (plus the controller slot).
    pub fn new(shards: usize) -> Self {
        SharedCounters {
            epoch: AtomicU32::new(0),
            injected: AtomicU64::new(0),
            recovering: AtomicU64::new(0),
            slots: (0..=shards)
                .map(|_| CachePadded::new(ShardSlots::default()))
                .collect(),
        }
    }

    /// A shard enters recovery (custody sweep about to retire envelopes,
    /// or a cold start about to replay). Must be published before the
    /// first sweep retirement so a probe that observes swept-balanced
    /// books also observes the gate (the increment is sequenced before
    /// the sweep's counter stores).
    pub fn recovery_begin(&self) {
        self.recovering.fetch_add(1, Ordering::SeqCst);
    }

    /// The shard finished replay; every swept envelope's effects have
    /// been re-derived and re-counted, so the books are trustworthy again.
    pub fn recovery_end(&self) {
        self.recovering.fetch_sub(1, Ordering::SeqCst);
    }

    /// The slot owned by `id` (shards use their index; the controller uses
    /// `num_shards`).
    #[inline]
    pub fn slot(&self, id: usize) -> &ShardSlots {
        &self.slots[id]
    }

    /// Index of the controller's slot.
    #[inline]
    pub fn controller_slot(&self) -> usize {
        self.slots.len() - 1
    }

    fn sum_processed(&self, parity: usize) -> u64 {
        self.slots
            .iter()
            .map(|s| s.processed[parity].load(Ordering::SeqCst))
            .sum()
    }

    fn sum_sent(&self, parity: usize) -> u64 {
        self.slots
            .iter()
            .map(|s| s.sent[parity].load(Ordering::SeqCst))
            .sum()
    }

    fn sum_ingested(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.ingested.load(Ordering::SeqCst))
            .sum()
    }

    /// One four-counter quiescence probe. Sound (no false positives):
    /// `processed` for an envelope is only ever published after its `sent`
    /// was published, so with R read strictly before S, `S == R` implies no
    /// envelope is unprocessed; `ingested == injected` implies no stream
    /// event is pending. May return false negatives (probe again).
    pub fn quiescent_probe(&self) -> bool {
        if self.sum_ingested() != self.injected.load(Ordering::SeqCst) {
            return false;
        }
        // Wave 1: received/processed counts (R).
        let r = [self.sum_processed(0), self.sum_processed(1)];
        // Wave 2: sent counts (S) — strictly after wave 1.
        let s = [self.sum_sent(0), self.sum_sent(1)];
        if s != r {
            return false;
        }
        // Recovery gate, read strictly after the counters: if the balance
        // we just read includes a custody sweep's retirements, that
        // sweep's stores synchronize-with our reads, which makes the
        // sweeping shard's earlier `recovery_begin` visible here — so a
        // mid-recovery balance is always rejected. (A nonzero reading is
        // a false negative at worst; the probe retries.)
        self.recovering.load(Ordering::SeqCst) == 0
    }

    /// Four-counter probe restricted to one epoch's parity class — used by
    /// the snapshot protocol to wait for the old epoch to drain. Only sound
    /// once no *new* events of that parity can be born (the epoch-ack
    /// barrier guarantees that for stream events; cascades of the old epoch
    /// are covered by the counters themselves).
    pub fn drained_probe(&self, epoch: Epoch) -> bool {
        let p = (epoch & 1) as usize;
        let r = self.sum_processed(p);
        let s = self.sum_sent(p);
        // Same recovery gate as `quiescent_probe`: a sweep retires the
        // old parity's swept envelopes too, so a mid-recovery "drained"
        // reading would let a snapshot cut before replay re-derives them.
        s == r && self.recovering.load(Ordering::SeqCst) == 0
    }
}

/// The circulating Safra token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Accumulated message-count sum of the shards visited this round.
    pub q: i64,
    /// True if any visited shard was black.
    pub black: bool,
}

/// What a shard should do with a token it processed while passive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenAction {
    /// Forward this token to the next shard in the ring.
    Forward(Token),
    /// Ring 0 determined global quiescence.
    Quiescent,
    /// Ring 0 must start a fresh probe round.
    Restart(Token),
}

/// Per-shard Safra bookkeeping.
#[derive(Debug, Default)]
pub struct SafraState {
    /// Messages sent minus messages received (data envelopes only).
    pub count: i64,
    /// Black after receiving any data message since last token pass.
    pub black: bool,
    /// A token received while the shard was still active, parked until the
    /// shard goes passive.
    pub held: Option<Token>,
    /// Shard 0 only: a probe round is in flight.
    pub round_active: bool,
    /// Shard 0 only: quiescence was announced and no activity has occurred
    /// since (suppresses redundant probe rounds).
    pub announced: bool,
}

impl SafraState {
    /// Bookkeeping for sending one data message.
    #[inline]
    pub fn on_send(&mut self) {
        self.count += 1;
    }

    /// Bookkeeping for receiving one data message (Safra: receipt blackens).
    #[inline]
    pub fn on_receive(&mut self) {
        self.count -= 1;
        self.black = true;
        self.announced = false;
    }

    /// Shard 0 starts a probe: emits a fresh white token and whitens itself.
    pub fn start_round(&mut self) -> Token {
        self.round_active = true;
        self.black = false;
        Token { q: 0, black: false }
    }

    /// Processes a held token at a **passive** shard. `is_ring_zero`
    /// selects the evaluation rule.
    pub fn process_token(&mut self, token: Token, is_ring_zero: bool) -> TokenAction {
        if is_ring_zero {
            // Round complete: evaluate Safra's termination condition.
            if !token.black && !self.black && token.q + self.count == 0 {
                self.round_active = false;
                self.announced = true;
                TokenAction::Quiescent
            } else {
                TokenAction::Restart(self.start_round())
            }
        } else {
            let fwd = Token {
                q: token.q + self.count,
                black: token.black || self.black,
            };
            self.black = false;
            TokenAction::Forward(fwd)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates the publication discipline for one shard.
    struct Sim<'a> {
        c: &'a SharedCounters,
        id: usize,
        sent: [u64; 2],
        processed: [u64; 2],
    }

    impl<'a> Sim<'a> {
        fn new(c: &'a SharedCounters, id: usize) -> Self {
            Sim {
                c,
                id,
                sent: [0; 2],
                processed: [0; 2],
            }
        }
        fn send(&mut self, epoch: Epoch) {
            let p = (epoch & 1) as usize;
            self.sent[p] += 1;
            self.c.slot(self.id).sent[p].store(self.sent[p], Ordering::SeqCst);
        }
        fn process(&mut self, epoch: Epoch) {
            let p = (epoch & 1) as usize;
            self.processed[p] += 1;
            self.c.slot(self.id).processed[p].store(self.processed[p], Ordering::SeqCst);
        }
    }

    #[test]
    fn deadline_none_never_expires() {
        let d = Deadline::new(None);
        assert!(!d.expired());
        let d = Deadline::new(Some(Duration::ZERO));
        assert!(d.expired());
        let d = Deadline::new(Some(Duration::from_secs(3600)));
        assert!(!d.expired());
        assert!(d.waited() < Duration::from_secs(3600));
    }

    #[test]
    fn detection_timer_measures_elapsed() {
        let t = DetectionTimer::begin();
        let first = t.elapsed_ns();
        std::thread::sleep(Duration::from_millis(1));
        let second = t.elapsed_ns();
        assert!(second > first);
        assert!(second >= 1_000_000, "slept at least 1ms, got {second}ns");
    }

    #[test]
    fn backoff_doubles_to_cap() {
        let mut b = Backoff::new(Duration::from_micros(100), Duration::from_micros(350));
        assert_eq!(b.next_wait(), Duration::from_micros(100));
        assert_eq!(b.next_wait(), Duration::from_micros(200));
        assert_eq!(b.next_wait(), Duration::from_micros(350));
        assert_eq!(b.next_wait(), Duration::from_micros(350), "stays at cap");
    }

    #[test]
    fn four_counter_basics() {
        let c = SharedCounters::new(2);
        assert!(c.quiescent_probe(), "empty system is quiescent");
        let mut s0 = Sim::new(&c, 0);
        s0.send(0);
        assert!(!c.quiescent_probe(), "in-flight envelope detected");
        s0.process(0);
        assert!(c.quiescent_probe());
    }

    #[test]
    fn parity_classes_are_independent() {
        let c = SharedCounters::new(1);
        let mut s = Sim::new(&c, 0);
        s.send(2); // parity 0
        s.send(3); // parity 1
        assert!(!c.drained_probe(2));
        assert!(!c.drained_probe(3));
        s.process(2);
        assert!(c.drained_probe(2));
        assert!(!c.drained_probe(3));
        s.process(3);
        assert!(c.drained_probe(3));
    }

    #[test]
    fn stream_injection_blocks_quiescence() {
        let c = SharedCounters::new(1);
        c.injected.store(5, Ordering::SeqCst);
        assert!(!c.quiescent_probe(), "uningested stream events pending");
        c.slot(0).ingested.store(5, Ordering::SeqCst);
        assert!(c.quiescent_probe());
    }

    #[test]
    fn controller_slot_counts() {
        let c = SharedCounters::new(2);
        let ctl = c.controller_slot();
        assert_eq!(ctl, 2);
        c.slot(ctl).sent[0].store(1, Ordering::SeqCst);
        assert!(!c.quiescent_probe());
        let mut s1 = Sim::new(&c, 1);
        s1.process(0); // the shard that received the init retires it
        assert!(c.quiescent_probe());
    }

    /// Simulates a 3-shard ring with no outstanding messages: the first
    /// probe round must conclude quiescence.
    #[test]
    fn safra_clean_ring_terminates_first_round() {
        let mut shards: Vec<SafraState> = (0..3).map(|_| SafraState::default()).collect();
        let mut token = shards[0].start_round();
        for shard in shards.iter_mut().skip(1) {
            match shard.process_token(token, false) {
                TokenAction::Forward(t) => token = t,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(shards[0].process_token(token, true), TokenAction::Quiescent);
    }

    /// A message in flight (sent but not yet received) makes the count sum
    /// nonzero: the round must restart, and must succeed after delivery and
    /// one extra (whitening) round.
    #[test]
    fn safra_detects_in_flight_message() {
        let mut shards: Vec<SafraState> = (0..2).map(|_| SafraState::default()).collect();
        shards[0].on_send(); // 0 sent to 1; not yet received

        let mut token = shards[0].start_round();
        match shards[1].process_token(token, false) {
            TokenAction::Forward(t) => token = t,
            other => panic!("unexpected {other:?}"),
        }
        // q = 0 (shard1 count 0), shard0 count = +1 -> sum 1 != 0: restart.
        let t2 = match shards[0].process_token(token, true) {
            TokenAction::Restart(t) => t,
            other => panic!("expected restart, got {other:?}"),
        };

        // Message now delivered: shard 1 receives and turns black.
        shards[1].on_receive();
        let mut token = t2;
        match shards[1].process_token(token, false) {
            TokenAction::Forward(t) => token = t,
            other => panic!("unexpected {other:?}"),
        }
        // Counts now sum to zero but shard 1 was black: restart again.
        let t3 = match shards[0].process_token(token, true) {
            TokenAction::Restart(t) => t,
            other => panic!("expected restart (black), got {other:?}"),
        };

        // Clean round: terminates.
        let mut token = t3;
        match shards[1].process_token(token, false) {
            TokenAction::Forward(t) => token = t,
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(shards[0].process_token(token, true), TokenAction::Quiescent);
    }

    #[test]
    fn safra_self_ring_single_shard() {
        // P = 1: shard 0 sends itself a message, receives it, then probes.
        let mut s = SafraState::default();
        s.on_send();
        s.on_receive();
        let token = s.start_round();
        // Token returns immediately (ring of one): start_round whitened the
        // shard, so the round is clean and counts cancel.
        assert_eq!(s.process_token(token, true), TokenAction::Quiescent);
        assert!(s.announced);
    }

    #[test]
    fn safra_announcement_resets_on_activity() {
        let mut s = SafraState::default();
        let token = s.start_round();
        assert_eq!(s.process_token(token, true), TokenAction::Quiescent);
        assert!(s.announced);
        s.on_send();
        s.on_receive();
        assert!(!s.announced, "new activity must re-arm the announcer");
    }
}
