//! Multi-query registry: N live algorithms over one topology for ~1× cost.
//!
//! The paper's §I vision — "multiple algorithms can be executed
//! simultaneously on the same underlying dynamic data structure" — is
//! realised statically by [`crate::compose::Pair`]: two algorithms fused at
//! compile time into one tuple state. Pair has two structural costs that
//! grow with the number of co-resident queries:
//!
//! 1. **Tuple fan-out.** Every `update_nbrs` of *either* component sends
//!    the *whole* tuple, so a change in one query ships (and re-applies)
//!    every other query's unchanged state — O(total state) per envelope.
//! 2. **Static shape.** Adding or removing a query means a different
//!    `Pair<..>` type: stop the engine, rebuild, re-ingest the stream.
//!
//! A [`QueryRegistry`] replaces the tuple with a *column store*: each
//! vertex's state is a `Vec` of per-query cells ([`RegPayload::Columns`]),
//! topology events are applied once to the shared adjacency and fanned out
//! to every attached query, and propagation envelopes carry a
//! [`RegPayload::Delta`] tagged with the one query whose cell changed.
//! Deltas compose with the lattice layers per query: the tag carries the
//! query's own `join`/`priority` functions, so coalescing and dominance
//! filtering work exactly as they do for a solo run of that algorithm.
//!
//! ## Live attach / detach
//!
//! Queries attach to a *running* engine without re-ingesting the stream.
//! [`QueryRegistry::attach`] publishes the query's slot, then drives a
//! two-phase backfill over the engine's control plane (see
//! [`crate::Algorithm::on_control`] and DESIGN.md §17):
//!
//! - **Prime** — every shard rebuilds the new column from its *stored
//!   adjacency*: per vertex, reset the cell to bottom, run `init` if the
//!   vertex is a source, and replay one muted `on_add` per stored edge.
//!   Sends are muted, so priming is embarrassingly local.
//! - **Flood** — once *every* shard has primed, each shard propagates every
//!   non-bottom cell to its neighbours. This recovers any delta that was
//!   dropped while some shard had not yet primed: a cell's value at flood
//!   time dominates every delta it ever emitted (monotonicity), so
//!   re-sending the cell re-derives the lost information.
//!
//! Until a shard's primed bit for a slot is set, that slot's callbacks are
//! gated off on that shard — events still retire normally against the
//! termination books, they just do not touch the unborn column.
//! [`QueryRegistry::detach`] unpublishes the slot (new events stop
//! dispatching), then a **Clear** sweep resets the column for reuse;
//! in-flight deltas of the old query die on a generation check.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use remo_store::{EdgeMeta, VertexId, Weight};

use crate::algorithm::{codec, AlgoCtx, Algorithm};
use crate::engine::Engine;
use crate::event::{ControlKind, ControlOp, Epoch};
use crate::metrics::LatencyHistogram;
use crate::snapshot::Snapshot;
use crate::supervision::EngineError;
use crate::telemetry::{QueryStatsRow, QueryStatsSource};

/// Slot capacity of one registry: the progress masks are single `u64`s.
pub const MAX_QUERIES: usize = 64;

/// Monotone join of one query's cell: fold `from` into `into`, return
/// whether `into` changed. Carried by [`RegPayload::Delta`] so the engine's
/// lattice layers (coalescing, dominance, priority) act per query.
pub type CellJoin<C> = fn(&mut C, &C) -> bool;

/// Drain priority of one query's cell (`None` = FIFO).
pub type CellPriority<C> = fn(&C) -> Option<u64>;

fn stub_join<C>(_into: &mut C, _from: &C) -> bool {
    false
}

fn stub_prio<C>(_cell: &C) -> Option<u64> {
    None
}

/// One query's per-vertex state inside a registry — the element type of the
/// column store. `Default` must be the lattice bottom, exactly as for
/// [`Algorithm::State`]. The codec hooks mirror
/// [`Algorithm::encode_state`]: required only under durability.
pub trait Cell:
    Clone + Default + Send + Sync + PartialEq + fmt::Debug + 'static
{
    /// Serializes one cell (durability only; default panics).
    fn encode(_cell: &Self, _out: &mut Vec<u8>) {
        panic!("Cell::encode is required when durability is enabled");
    }

    /// Inverse of [`Cell::encode`] (durability only; default panics).
    fn decode(_bytes: &[u8]) -> Self {
        panic!("Cell::decode is required when durability is enabled");
    }
}

/// The common case: every core REMO lattice state (BFS level, CC label,
/// SSSP distance, reachability bitmask, degree count) is a `u64`.
impl Cell for u64 {
    fn encode(cell: &Self, out: &mut Vec<u8>) {
        codec::put_u64(*cell, out);
    }

    fn decode(bytes: &[u8]) -> Self {
        codec::get_u64(bytes)
    }
}

/// The registry's vertex state / envelope payload.
///
/// Stored vertex states are always `Columns` (one cell per attached query,
/// lazily grown). Propagation envelopes are `Delta`s: the one changed cell,
/// tagged with its slot and attach generation, carrying the owning query's
/// join/priority functions so the engine's lattice machinery composes per
/// query. This is the structural win over [`crate::compose::Pair`], whose
/// envelopes carry the whole tuple.
#[derive(Clone, Debug)]
pub enum RegPayload<C: Cell> {
    /// Per-slot cells of one vertex; missing tail slots are at bottom.
    Columns(Vec<C>),
    /// One query's changed cell in flight.
    Delta {
        /// Registry slot the cell belongs to.
        slot: u32,
        /// Attach generation of the slot when the delta was born — a delta
        /// from a detached query dies on this check instead of feeding a
        /// successor that reused the slot.
        gen: u32,
        /// The changed cell value.
        cell: C,
        /// The owning query's lattice join (drives coalescing/dominance).
        join: CellJoin<C>,
        /// The owning query's drain priority.
        prio: CellPriority<C>,
    },
}

impl<C: Cell> Default for RegPayload<C> {
    fn default() -> Self {
        RegPayload::Columns(Vec::new())
    }
}

/// Manual equality over the *data* fields only: two deltas for the same
/// (slot, gen, cell) are the same delta regardless of which codegen unit's
/// copy of the join/priority fn their pointers name (fn addresses are not
/// unique across codegen units, so deriving `PartialEq` would be
/// unsound-ish flakiness, not semantics).
impl<C: Cell> PartialEq for RegPayload<C> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (RegPayload::Columns(a), RegPayload::Columns(b)) => a == b,
            (
                RegPayload::Delta {
                    slot: s1,
                    gen: g1,
                    cell: c1,
                    ..
                },
                RegPayload::Delta {
                    slot: s2,
                    gen: g2,
                    cell: c2,
                    ..
                },
            ) => s1 == s2 && g1 == g2 && c1 == c2,
            _ => false,
        }
    }
}

impl<C: Cell> RegPayload<C> {
    /// The cell at `slot`, if materialized (stored states only).
    pub fn cell(&self, slot: usize) -> Option<&C> {
        match self {
            RegPayload::Columns(cols) => cols.get(slot),
            RegPayload::Delta { .. } => None,
        }
    }
}

/// Normalizes a payload to `Columns` and returns the backing vector.
fn columns_mut<C: Cell>(s: &mut RegPayload<C>) -> &mut Vec<C> {
    if !matches!(s, RegPayload::Columns(_)) {
        *s = RegPayload::Columns(Vec::new());
    }
    match s {
        RegPayload::Columns(cols) => cols,
        RegPayload::Delta { .. } => unreachable!("normalized to Columns above"),
    }
}

/// Object-safe slice of [`AlgoCtx`] over one query's cell. The adapter
/// layer ([`ShimCtx`]) turns this back into a full `AlgoCtx<C>` for the
/// user algorithm; keeping the dynamic boundary object-safe is what lets
/// the registry hold `dyn` queries while the shard loop stays monomorphic.
trait CellCtx<C: Cell> {
    fn vertex(&self) -> VertexId;
    fn epoch(&self) -> Epoch;
    fn shard(&self) -> usize;
    fn cell(&self) -> &C;
    fn apply_cell(&mut self, f: &dyn Fn(&mut C) -> bool) -> bool;
    fn degree(&self) -> usize;
    fn edge_weight(&self, nbr: VertexId) -> Option<Weight>;
    fn for_each_nbr(&self, f: &mut dyn FnMut(VertexId, EdgeMeta));
    fn send_cells(&mut self, value: &C);
    fn send_cells_filtered(&mut self, value: &C, keep: &dyn Fn(VertexId, &EdgeMeta) -> bool);
    fn send_cell(&mut self, target: VertexId, value: &C, weight: Weight);
}

/// `AlgoCtx<C>` view over a `dyn CellCtx<C>` — what a registered
/// algorithm's callbacks actually receive.
struct ShimCtx<'a, 'b, C: Cell>(&'a mut (dyn CellCtx<C> + 'b));

impl<'a, 'b, C: Cell> AlgoCtx<C> for ShimCtx<'a, 'b, C> {
    fn vertex(&self) -> VertexId {
        self.0.vertex()
    }

    fn epoch(&self) -> Epoch {
        self.0.epoch()
    }

    fn shard_hint(&self) -> usize {
        self.0.shard()
    }

    fn state(&self) -> &C {
        self.0.cell()
    }

    fn apply(&mut self, f: impl Fn(&mut C) -> bool) -> bool {
        self.0.apply_cell(&f)
    }

    fn degree(&self) -> usize {
        self.0.degree()
    }

    fn edge_weight(&self, nbr: VertexId) -> Option<Weight> {
        self.0.edge_weight(nbr)
    }

    /// The shared per-edge cache is written by *every* attached query
    /// (whichever value arrived last), so no single query may trust it.
    fn nbr_cached(&self, _nbr: VertexId) -> Option<u64> {
        None
    }

    fn for_each_nbr(&self, f: &mut dyn FnMut(VertexId, EdgeMeta)) {
        self.0.for_each_nbr(f)
    }

    fn update_nbrs(&mut self, value: &C) {
        self.0.send_cells(value)
    }

    fn update_nbrs_filtered(&mut self, value: &C, keep: impl Fn(VertexId, &EdgeMeta) -> bool) {
        self.0.send_cells_filtered(value, &keep)
    }

    fn send_update(&mut self, target: VertexId, value: &C, weight: Weight) {
        self.0.send_cell(target, value, weight)
    }
}

/// Object-safe form of one registered algorithm: every callback re-expressed
/// over `dyn CellCtx`, plus the lattice hooks reified as function pointers
/// (trait-static `fn`s cannot live behind `dyn`; coerced items can).
trait DynQuery<C: Cell>: Send + Sync {
    fn init(&self, ctx: &mut dyn CellCtx<C>);
    fn on_add(&self, ctx: &mut dyn CellCtx<C>, visitor: VertexId, value: &C, weight: Weight);
    fn on_reverse_add(
        &self,
        ctx: &mut dyn CellCtx<C>,
        visitor: VertexId,
        value: &C,
        weight: Weight,
    );
    fn on_update(&self, ctx: &mut dyn CellCtx<C>, visitor: VertexId, value: &C, weight: Weight);
    fn on_remove(&self, ctx: &mut dyn CellCtx<C>, visitor: VertexId, value: &C, weight: Weight);
    fn on_reverse_remove(
        &self,
        ctx: &mut dyn CellCtx<C>,
        visitor: VertexId,
        value: &C,
        weight: Weight,
    );
    fn join_ptr(&self) -> CellJoin<C>;
    fn prio_ptr(&self) -> CellPriority<C>;
}

/// Adapts any `Algorithm<State = C>` into a [`DynQuery`].
struct QueryAdapter<A>(A);

impl<C: Cell, A: Algorithm<State = C>> DynQuery<C> for QueryAdapter<A> {
    fn init(&self, ctx: &mut dyn CellCtx<C>) {
        self.0.init(&mut ShimCtx(ctx));
    }

    fn on_add(&self, ctx: &mut dyn CellCtx<C>, visitor: VertexId, value: &C, weight: Weight) {
        self.0.on_add(&mut ShimCtx(ctx), visitor, value, weight);
    }

    fn on_reverse_add(
        &self,
        ctx: &mut dyn CellCtx<C>,
        visitor: VertexId,
        value: &C,
        weight: Weight,
    ) {
        self.0.on_reverse_add(&mut ShimCtx(ctx), visitor, value, weight);
    }

    fn on_update(&self, ctx: &mut dyn CellCtx<C>, visitor: VertexId, value: &C, weight: Weight) {
        self.0.on_update(&mut ShimCtx(ctx), visitor, value, weight);
    }

    fn on_remove(&self, ctx: &mut dyn CellCtx<C>, visitor: VertexId, value: &C, weight: Weight) {
        self.0.on_remove(&mut ShimCtx(ctx), visitor, value, weight);
    }

    fn on_reverse_remove(
        &self,
        ctx: &mut dyn CellCtx<C>,
        visitor: VertexId,
        value: &C,
        weight: Weight,
    ) {
        self.0.on_reverse_remove(&mut ShimCtx(ctx), visitor, value, weight);
    }

    fn join_ptr(&self) -> CellJoin<C> {
        A::join
    }

    fn prio_ptr(&self) -> CellPriority<C> {
        A::priority
    }
}

/// Per-query live counters (telemetry satellite; relaxed — observability,
/// not accounting).
#[derive(Debug, Default)]
pub struct QueryStats {
    /// Update envelopes this query asked the engine to send.
    pub envelopes_sent: AtomicU64,
    /// State changes applied to this query's column.
    pub updates_applied: AtomicU64,
}

/// Bridges one query slot into a full [`AlgoCtx`]: reads and writes
/// `cols[slot]`, turns sends into tagged [`RegPayload::Delta`]s, and mutes
/// sends entirely during the prime sweep.
struct SlotCtx<'a, C: Cell, X: AlgoCtx<RegPayload<C>>> {
    inner: &'a mut X,
    slot: usize,
    gen: u32,
    join: CellJoin<C>,
    prio: CellPriority<C>,
    muted: bool,
    bottom: C,
    stats: &'a QueryStats,
}

impl<'a, C: Cell, X: AlgoCtx<RegPayload<C>>> SlotCtx<'a, C, X> {
    fn new(inner: &'a mut X, slot: usize, q: &'a QuerySlot<C>, muted: bool) -> Self {
        SlotCtx {
            inner,
            slot,
            gen: q.gen,
            join: q.query.join_ptr(),
            prio: q.query.prio_ptr(),
            muted,
            bottom: C::default(),
            stats: &q.stats,
        }
    }

    fn delta(&self, value: &C) -> RegPayload<C> {
        RegPayload::Delta {
            slot: self.slot as u32,
            gen: self.gen,
            cell: value.clone(),
            join: self.join,
            prio: self.prio,
        }
    }
}

impl<'a, C: Cell, X: AlgoCtx<RegPayload<C>>> CellCtx<C> for SlotCtx<'a, C, X> {
    fn vertex(&self) -> VertexId {
        self.inner.vertex()
    }

    fn epoch(&self) -> Epoch {
        self.inner.epoch()
    }

    fn shard(&self) -> usize {
        self.inner.shard_hint()
    }

    fn cell(&self) -> &C {
        match self.inner.state() {
            RegPayload::Columns(cols) => cols.get(self.slot).unwrap_or(&self.bottom),
            RegPayload::Delta { .. } => &self.bottom,
        }
    }

    fn apply_cell(&mut self, f: &dyn Fn(&mut C) -> bool) -> bool {
        let slot = self.slot;
        // The closure may run twice (live + snapshot fork) and must stay a
        // pure function of its argument — growing the column vector to
        // `slot` is deterministic, so the contract holds.
        let changed = self.inner.apply(|s| {
            let cols = columns_mut(s);
            if cols.len() <= slot {
                cols.resize_with(slot + 1, C::default);
            }
            f(&mut cols[slot])
        });
        if changed {
            self.stats.updates_applied.fetch_add(1, Ordering::Relaxed);
        }
        changed
    }

    fn degree(&self) -> usize {
        self.inner.degree()
    }

    fn edge_weight(&self, nbr: VertexId) -> Option<Weight> {
        self.inner.edge_weight(nbr)
    }

    fn for_each_nbr(&self, f: &mut dyn FnMut(VertexId, EdgeMeta)) {
        self.inner.for_each_nbr(f)
    }

    fn send_cells(&mut self, value: &C) {
        if self.muted {
            return;
        }
        let d = self.delta(value);
        let deg = self.inner.degree() as u64;
        self.inner.update_nbrs(&d);
        self.stats.envelopes_sent.fetch_add(deg, Ordering::Relaxed);
    }

    fn send_cells_filtered(&mut self, value: &C, keep: &dyn Fn(VertexId, &EdgeMeta) -> bool) {
        if self.muted {
            return;
        }
        let mut targets: Vec<(VertexId, Weight)> = Vec::new();
        self.inner.for_each_nbr(&mut |n, m| {
            if keep(n, &m) {
                targets.push((n, m.weight));
            }
        });
        let d = self.delta(value);
        let n = targets.len() as u64;
        for (t, w) in targets {
            self.inner.send_update(t, &d, w);
        }
        self.stats.envelopes_sent.fetch_add(n, Ordering::Relaxed);
    }

    fn send_cell(&mut self, target: VertexId, value: &C, weight: Weight) {
        if self.muted {
            return;
        }
        let d = self.delta(value);
        self.inner.send_update(target, &d, weight);
        self.stats.envelopes_sent.fetch_add(1, Ordering::Relaxed);
    }
}

/// One occupied registry slot.
#[derive(Clone)]
struct QuerySlot<C: Cell> {
    query: Arc<dyn DynQuery<C>>,
    /// Attach generation (bumped on every attach; stale deltas die on it).
    gen: u32,
    /// Vertices to `init` (the query's sources), re-initiated on attach.
    sources: Vec<VertexId>,
    stats: Arc<QueryStats>,
    name: String,
}

/// Immutable published view of the slots (copy-on-write: callbacks take one
/// read-lock + `Arc` clone, attach/detach republish a fresh table).
struct QueryTable<C: Cell> {
    slots: Vec<Option<QuerySlot<C>>>,
}

impl<C: Cell> QueryTable<C> {
    fn empty() -> Self {
        QueryTable { slots: Vec::new() }
    }

    fn get(&self, slot: usize) -> Option<&QuerySlot<C>> {
        self.slots.get(slot).and_then(|s| s.as_ref())
    }

    fn occupied(&self) -> impl Iterator<Item = (usize, &QuerySlot<C>)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|q| (i, q)))
    }

    fn live_mask(&self) -> u64 {
        self.occupied().fold(0u64, |m, (i, _)| m | (1 << i))
    }

    fn first_free(&self) -> Option<usize> {
        (0..MAX_QUERIES).find(|&i| self.slots.get(i).is_none_or(|s| s.is_none()))
    }
}

/// Per-shard backfill progress, one bit per slot. `primed[s]` gates slot
/// dispatch on shard `s`; `flooded[s]` makes the flood sweep idempotent
/// across WAL replay and control-op resends.
struct ShardMasks {
    primed: Vec<AtomicU64>,
    flooded: Vec<AtomicU64>,
    /// Published column-store footprint of shard `s` in bytes (capacity of
    /// every vertex's column vector), recomputed by the Prime and Clear
    /// sweeps — the only moments the whole column store is walked anyway.
    col_bytes: Vec<AtomicU64>,
    /// In-flight accumulator for one sweep's recount (zeroed at claim time,
    /// published into `col_bytes` at commit time).
    col_acc: Vec<AtomicU64>,
}

impl ShardMasks {
    fn new(shards: usize) -> Self {
        ShardMasks {
            primed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            flooded: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            col_bytes: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            col_acc: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

struct RegistryShared<C: Cell> {
    table: RwLock<Arc<QueryTable<C>>>,
    /// Sized on first attach from the engine's shard count.
    masks: OnceLock<ShardMasks>,
    /// Serializes attach/detach (one backfill in flight at a time).
    admin: Mutex<u32>,
    backfill: Mutex<LatencyHistogram>,
}

impl<C: Cell> RegistryShared<C> {
    fn read_table(&self) -> Arc<QueryTable<C>> {
        Arc::clone(&self.table.read().unwrap_or_else(|p| p.into_inner()))
    }

    fn publish(&self, f: impl FnOnce(&mut Vec<Option<QuerySlot<C>>>)) {
        let mut guard = self.table.write().unwrap_or_else(|p| p.into_inner());
        let mut slots = guard.slots.clone();
        f(&mut slots);
        *guard = Arc::new(QueryTable { slots });
    }

    fn primed(&self, shard: usize) -> u64 {
        self.masks
            .get()
            .and_then(|m| m.primed.get(shard))
            .map_or(0, |p| p.load(Ordering::Acquire))
    }
}

/// Stable handle to one attached query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryId {
    slot: u32,
    gen: u32,
}

impl QueryId {
    /// The registry slot this query occupies (telemetry label).
    pub fn slot(&self) -> usize {
        self.slot as usize
    }
}

/// The engine-facing registry: an [`Algorithm`] whose state is a column
/// store of per-query cells, plus the attach/detach control surface. Clones
/// share one registry — build the engine with one clone, keep another to
/// drive [`QueryRegistry::attach`] / [`QueryRegistry::detach`].
pub struct QueryRegistry<C: Cell = u64> {
    shared: Arc<RegistryShared<C>>,
}

impl<C: Cell> Clone for QueryRegistry<C> {
    fn clone(&self) -> Self {
        QueryRegistry {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<C: Cell> fmt::Debug for QueryRegistry<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryRegistry")
            .field("attached", &self.attached())
            .finish()
    }
}

impl<C: Cell> Default for QueryRegistry<C> {
    fn default() -> Self {
        Self::new()
    }
}

/// Which topology callback a dispatch fans out (one body, six entry
/// points).
#[derive(Clone, Copy)]
enum TopoCb {
    Add,
    ReverseAdd,
    Remove,
    ReverseRemove,
    Update,
}

impl<C: Cell> QueryRegistry<C> {
    /// An empty registry (no queries attached).
    pub fn new() -> Self {
        QueryRegistry {
            shared: Arc::new(RegistryShared {
                table: RwLock::new(Arc::new(QueryTable::empty())),
                masks: OnceLock::new(),
                admin: Mutex::new(0),
                backfill: Mutex::new(LatencyHistogram::default()),
            }),
        }
    }

    /// Number of queries currently attached.
    pub fn attached(&self) -> usize {
        self.shared.read_table().occupied().count()
    }

    /// Attaches `algo` as a live query on a running engine. Publishes the
    /// query's slot, then backfills its column from the shards' stored
    /// adjacency (prime + flood sweeps — no stream re-ingest), and finally
    /// initiates `sources`. Returns once the backfill is acknowledged by
    /// every live shard; the query converges to the same fixpoint a solo
    /// run over the same stream would (DESIGN.md §17).
    pub fn attach<A>(
        &self,
        engine: &Engine<Self>,
        algo: A,
        sources: &[VertexId],
        name: &str,
    ) -> Result<QueryId, EngineError>
    where
        A: Algorithm<State = C>,
    {
        let mut admin = self.shared.admin.lock().unwrap_or_else(|p| p.into_inner());
        let shards = engine.num_shards();
        let masks = self.shared.masks.get_or_init(|| ShardMasks::new(shards));
        if masks.primed.len() != shards {
            return Err(EngineError::Registry {
                message: format!(
                    "registry first attached on a {}-shard engine; this engine has {shards}",
                    masks.primed.len()
                ),
            });
        }
        let slot = match self.shared.read_table().first_free() {
            Some(s) => s,
            None => {
                return Err(EngineError::Registry {
                    message: format!("all {MAX_QUERIES} query slots are occupied"),
                })
            }
        };
        *admin = admin.wrapping_add(1);
        let gen = *admin;
        let stats = Arc::new(QueryStats::default());
        let record = QuerySlot {
            query: Arc::new(QueryAdapter(algo)),
            gen,
            sources: sources.to_vec(),
            stats,
            name: name.to_string(),
        };
        // Publish before priming: the sweeps and the gated dispatch both
        // resolve the slot through the table.
        self.shared.publish(|slots| {
            if slots.len() <= slot {
                slots.resize_with(slot + 1, || None);
            }
            slots[slot] = Some(record);
        });
        engine.telemetry().set_query_source(Arc::new(self.clone()));

        let bit = 1u64 << slot;
        let t0 = Instant::now();
        let swept = engine
            .control(ControlOp {
                kind: ControlKind::Prime,
                mask: bit,
                token: u64::from(gen),
            })
            .and_then(|_| {
                engine.control(ControlOp {
                    kind: ControlKind::Flood,
                    mask: bit,
                    token: u64::from(gen),
                })
            });
        if let Err(e) = swept {
            // Roll back: unpublish the slot and scrub any progress bits so
            // the slot can be reused cleanly.
            self.shared.publish(|slots| slots[slot] = None);
            for s in 0..shards {
                masks.primed[s].fetch_and(!bit, Ordering::AcqRel);
                masks.flooded[s].fetch_and(!bit, Ordering::AcqRel);
            }
            return Err(e);
        }
        // Sources last: init is idempotent for monotone REMO algorithms,
        // and a source vertex not yet in the graph gets interned here.
        for &s in sources {
            engine.try_init_vertex(s)?;
        }
        self.shared
            .backfill
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .record(t0.elapsed().as_nanos() as u64);
        Ok(QueryId {
            slot: slot as u32,
            gen,
        })
    }

    /// Detaches a query: unpublishes its slot (new events stop dispatching
    /// immediately), then clears its column on every shard so the slot can
    /// be reattached. In-flight deltas of the detached query are discarded
    /// by the generation check. Fails with [`EngineError::Registry`] on a
    /// stale handle.
    pub fn detach(&self, engine: &Engine<Self>, id: QueryId) -> Result<(), EngineError> {
        let _admin = self.shared.admin.lock().unwrap_or_else(|p| p.into_inner());
        let slot = id.slot as usize;
        {
            let table = self.shared.read_table();
            match table.get(slot) {
                Some(q) if q.gen == id.gen => {}
                _ => {
                    return Err(EngineError::Registry {
                        message: format!("query slot {slot} gen {} is not attached", id.gen),
                    })
                }
            }
        }
        self.shared.publish(|slots| slots[slot] = None);
        let bit = 1u64 << slot;
        let res = engine.control(ControlOp {
            kind: ControlKind::Clear,
            mask: bit,
            token: u64::from(id.gen),
        });
        // Scrub progress bits controller-side too: a shard that died before
        // acking Clear must not leave the slot poisoned for reattach (the
        // next prime resets the column anyway).
        if let Some(masks) = self.shared.masks.get() {
            for s in 0..masks.primed.len() {
                masks.primed[s].fetch_and(!bit, Ordering::AcqRel);
                masks.flooded[s].fetch_and(!bit, Ordering::AcqRel);
            }
        }
        res.map(|_| ())
    }

    /// Projects one query's column out of a registry snapshot: every vertex
    /// in the snapshot, paired with its cell (bottom where the column never
    /// materialized). The result is shape-identical to the snapshot a solo
    /// run of the same algorithm over the same stream produces.
    pub fn project(&self, snap: &Snapshot<RegPayload<C>>, id: QueryId) -> Snapshot<C> {
        let slot = id.slot as usize;
        let states = snap
            .iter()
            .map(|(v, s)| (v, s.cell(slot).cloned().unwrap_or_default()))
            .collect();
        Snapshot::from_fragments(snap.epoch, states)
    }

    /// Live counters of one attached query: `(envelopes_sent,
    /// updates_applied)`. `None` on a stale handle.
    pub fn query_counters(&self, id: QueryId) -> Option<(u64, u64)> {
        let table = self.shared.read_table();
        let q = table.get(id.slot as usize)?;
        if q.gen != id.gen {
            return None;
        }
        Some((
            q.stats.envelopes_sent.load(Ordering::Relaxed),
            q.stats.updates_applied.load(Ordering::Relaxed),
        ))
    }

    fn dispatch(
        &self,
        ctx: &mut impl AlgoCtx<RegPayload<C>>,
        visitor: VertexId,
        value: &RegPayload<C>,
        weight: Weight,
        which: TopoCb,
    ) {
        let table = self.shared.read_table();
        let primed = self.shared.primed(ctx.shard_hint());
        if primed == 0 {
            return;
        }
        if let RegPayload::Delta {
            slot, gen, cell, ..
        } = value
        {
            // A delta feeds exactly its own query — the structural win
            // over Pair's whole-tuple fan-out.
            debug_assert!(matches!(which, TopoCb::Update), "deltas only travel as updates");
            let idx = *slot as usize;
            if primed & (1u64 << idx) == 0 {
                return;
            }
            let Some(q) = table.get(idx) else { return };
            if q.gen != *gen {
                return; // stale: the slot was detached (and maybe reused)
            }
            let mut sc = SlotCtx::new(ctx, idx, q, false);
            q.query.on_update(&mut sc, visitor, cell, weight);
            return;
        }
        // Columns payload (topology events, init-default values, defensive
        // post-replay updates): fan out to every primed slot with its own
        // cell — bottom where the sender had none.
        let bottom = C::default();
        for (idx, q) in table.occupied() {
            if primed & (1u64 << idx) == 0 {
                continue;
            }
            let cell = value.cell(idx).unwrap_or(&bottom);
            let mut sc = SlotCtx::new(ctx, idx, q, false);
            match which {
                TopoCb::Add => q.query.on_add(&mut sc, visitor, cell, weight),
                TopoCb::ReverseAdd => q.query.on_reverse_add(&mut sc, visitor, cell, weight),
                TopoCb::Remove => q.query.on_remove(&mut sc, visitor, cell, weight),
                TopoCb::ReverseRemove => {
                    q.query.on_reverse_remove(&mut sc, visitor, cell, weight)
                }
                TopoCb::Update => q.query.on_update(&mut sc, visitor, cell, weight),
            }
        }
    }

    /// Resets the masked cells to bottom (prime's clean slate, clear's
    /// reclaim). With `compact`, also drops the trailing run of bottom
    /// cells and shrinks the vector — detach-time memory reclaim: a
    /// detached high slot otherwise pins `slot + 1` cells on *every* vertex
    /// forever. Missing tail slots read as bottom everywhere
    /// ([`RegPayload::cell`] returns `None` → callers substitute bottom),
    /// so truncation is value-preserving. Pure in the `apply` sense: the
    /// same input vector always compacts to the same output, so
    /// dual-applying to a snapshot fork converges.
    fn reset_cells(ctx: &mut impl AlgoCtx<RegPayload<C>>, mask: u64, compact: bool) {
        ctx.apply(|s| {
            let cols = columns_mut(s);
            let mut changed = false;
            let mut m = mask;
            while m != 0 {
                let idx = m.trailing_zeros() as usize;
                m &= m - 1;
                if let Some(c) = cols.get_mut(idx) {
                    if *c != C::default() {
                        *c = C::default();
                        changed = true;
                    }
                }
            }
            if compact {
                let bottom = C::default();
                let keep = cols
                    .iter()
                    .rposition(|c| *c != bottom)
                    .map_or(0, |i| i + 1);
                if keep < cols.len() {
                    cols.truncate(keep);
                    changed = true;
                }
                cols.shrink_to_fit();
            }
            changed
        });
    }

    /// Adds this vertex's column-store footprint to the owning shard's
    /// sweep accumulator (recount protocol: zeroed in
    /// [`Algorithm::on_control`], published in
    /// [`Algorithm::on_control_commit`]).
    fn account_columns(&self, ctx: &impl AlgoCtx<RegPayload<C>>) {
        let Some(masks) = self.shared.masks.get() else {
            return;
        };
        let Some(acc) = masks.col_acc.get(ctx.shard_hint()) else {
            return;
        };
        let bytes = match ctx.state() {
            RegPayload::Columns(cols) => {
                (cols.capacity() * std::mem::size_of::<C>()) as u64
            }
            RegPayload::Delta { .. } => 0,
        };
        acc.fetch_add(bytes, Ordering::Relaxed);
    }

    fn sweep_prime(&self, ctx: &mut impl AlgoCtx<RegPayload<C>>, mask: u64) {
        Self::reset_cells(ctx, mask, false);
        let table = self.shared.read_table();
        // The stored adjacency is the replay source: one muted on_add per
        // stored edge reconstructs the topology-derived part of the cell
        // (degree counts, self-labels) exactly once per edge.
        let mut edges: Vec<(VertexId, Weight)> = Vec::new();
        ctx.for_each_nbr(&mut |n, m| edges.push((n, m.weight)));
        let v = ctx.vertex();
        let bottom = C::default();
        let mut m = mask;
        while m != 0 {
            let idx = m.trailing_zeros() as usize;
            m &= m - 1;
            // A slot can vanish between claim and sweep only during WAL
            // replay of a pre-detach control record: skip, Clear follows.
            let Some(q) = table.get(idx) else { continue };
            let mut sc = SlotCtx::new(ctx, idx, q, true);
            if q.sources.contains(&v) {
                q.query.init(&mut sc);
            }
            for &(nbr, w) in &edges {
                q.query.on_add(&mut sc, nbr, &bottom, w);
            }
        }
        self.account_columns(ctx);
    }

    fn sweep_flood(&self, ctx: &mut impl AlgoCtx<RegPayload<C>>, mask: u64) {
        let table = self.shared.read_table();
        let bottom = C::default();
        let mut m = mask;
        while m != 0 {
            let idx = m.trailing_zeros() as usize;
            m &= m - 1;
            let Some(q) = table.get(idx) else { continue };
            let cell = match ctx.state() {
                RegPayload::Columns(cols) => cols.get(idx).cloned().unwrap_or_default(),
                RegPayload::Delta { .. } => C::default(),
            };
            if cell == bottom {
                continue;
            }
            let mut sc = SlotCtx::new(ctx, idx, q, false);
            sc.send_cells(&cell);
        }
    }
}

impl<C: Cell> Algorithm for QueryRegistry<C> {
    type State = RegPayload<C>;

    fn init(&self, ctx: &mut impl AlgoCtx<Self::State>) {
        let table = self.shared.read_table();
        let primed = self.shared.primed(ctx.shard_hint());
        let v = ctx.vertex();
        for (idx, q) in table.occupied() {
            if primed & (1u64 << idx) == 0 || !q.sources.contains(&v) {
                continue;
            }
            let mut sc = SlotCtx::new(ctx, idx, q, false);
            q.query.init(&mut sc);
        }
    }

    fn on_add(
        &self,
        ctx: &mut impl AlgoCtx<Self::State>,
        visitor: VertexId,
        value: &Self::State,
        weight: Weight,
    ) {
        self.dispatch(ctx, visitor, value, weight, TopoCb::Add);
    }

    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<Self::State>,
        visitor: VertexId,
        value: &Self::State,
        weight: Weight,
    ) {
        self.dispatch(ctx, visitor, value, weight, TopoCb::ReverseAdd);
    }

    fn on_update(
        &self,
        ctx: &mut impl AlgoCtx<Self::State>,
        visitor: VertexId,
        value: &Self::State,
        weight: Weight,
    ) {
        self.dispatch(ctx, visitor, value, weight, TopoCb::Update);
    }

    fn on_remove(
        &self,
        ctx: &mut impl AlgoCtx<Self::State>,
        visitor: VertexId,
        value: &Self::State,
        weight: Weight,
    ) {
        self.dispatch(ctx, visitor, value, weight, TopoCb::Remove);
    }

    fn on_reverse_remove(
        &self,
        ctx: &mut impl AlgoCtx<Self::State>,
        visitor: VertexId,
        value: &Self::State,
        weight: Weight,
    ) {
        self.dispatch(ctx, visitor, value, weight, TopoCb::ReverseRemove);
    }

    /// Per-slot lattice join, keyed by the delta's tag. `Columns ⊔ Delta`
    /// (the receiver-dominance probe) grows the column vector and applies
    /// the carried join; `Delta ⊔ Delta` (sender coalescing) merges only
    /// same-slot same-generation values.
    fn join(into: &mut Self::State, from: &Self::State) -> bool {
        match (into, from) {
            (
                RegPayload::Delta {
                    slot: s1,
                    gen: g1,
                    cell: c1,
                    join,
                    ..
                },
                RegPayload::Delta {
                    slot: s2,
                    gen: g2,
                    cell: c2,
                    ..
                },
            ) if s1 == s2 && g1 == g2 => join(c1, c2),
            (
                RegPayload::Columns(cols),
                RegPayload::Delta {
                    slot, cell, join, ..
                },
            ) => {
                let idx = *slot as usize;
                if cols.len() <= idx {
                    cols.resize_with(idx + 1, C::default);
                }
                join(&mut cols[idx], cell)
            }
            _ => false,
        }
    }

    fn priority(state: &Self::State) -> Option<u64> {
        match state {
            RegPayload::Delta { cell, prio, .. } => prio(cell),
            RegPayload::Columns(_) => None,
        }
    }

    fn encode_state(state: &Self::State, out: &mut Vec<u8>) {
        let mut buf = Vec::new();
        match state {
            RegPayload::Columns(cols) => {
                out.push(0);
                codec::put_u32(cols.len() as u32, out);
                for c in cols {
                    buf.clear();
                    C::encode(c, &mut buf);
                    codec::put_u32(buf.len() as u32, out);
                    out.extend_from_slice(&buf);
                }
            }
            RegPayload::Delta {
                slot, gen, cell, ..
            } => {
                out.push(1);
                codec::put_u32(*slot, out);
                codec::put_u32(*gen, out);
                C::encode(cell, &mut buf);
                codec::put_u32(buf.len() as u32, out);
                out.extend_from_slice(&buf);
            }
        }
    }

    /// Inverse of [`QueryRegistry::encode_state`][Algorithm::encode_state].
    /// Replayed deltas carry stub join/priority hooks — they lose the
    /// coalescing/priority *hints*, never information: the monotone
    /// fixpoint is unaffected (the hooks only merge or reorder work).
    fn decode_state(bytes: &[u8]) -> Self::State {
        let tag = bytes[0];
        let mut off = 1usize;
        match tag {
            0 => {
                let n = codec::get_u32(&bytes[off..]) as usize;
                off += 4;
                let mut cols = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = codec::get_u32(&bytes[off..]) as usize;
                    off += 4;
                    cols.push(C::decode(&bytes[off..off + len]));
                    off += len;
                }
                RegPayload::Columns(cols)
            }
            1 => {
                let slot = codec::get_u32(&bytes[off..]);
                off += 4;
                let gen = codec::get_u32(&bytes[off..]);
                off += 4;
                let len = codec::get_u32(&bytes[off..]) as usize;
                off += 4;
                RegPayload::Delta {
                    slot,
                    gen,
                    cell: C::decode(&bytes[off..off + len]),
                    join: stub_join::<C>,
                    prio: stub_prio::<C>,
                }
            }
            t => panic!("registry: unknown durable payload tag {t}"),
        }
    }

    fn on_control(&self, shard: usize, op: &ControlOp) -> u64 {
        let Some(masks) = self.shared.masks.get() else {
            return 0;
        };
        let (Some(primed), Some(flooded)) = (masks.primed.get(shard), masks.flooded.get(shard))
        else {
            return 0;
        };
        let live = self.shared.read_table().live_mask();
        let primed = primed.load(Ordering::Acquire);
        let flooded = flooded.load(Ordering::Acquire);
        let claimed = match op.kind {
            // Idempotent claims: a resent or replayed op claims only what
            // is still unswept, so duplicate delivery converges to 0 work.
            ControlKind::Prime => op.mask & live & !primed,
            ControlKind::Flood => op.mask & live & primed & !flooded,
            ControlKind::Clear => op.mask,
        };
        // Prime and Clear sweeps double as a column-footprint recount:
        // reset this shard's accumulator before the sweep starts.
        if claimed != 0 && !matches!(op.kind, ControlKind::Flood) {
            if let Some(acc) = masks.col_acc.get(shard) {
                acc.store(0, Ordering::Relaxed);
            }
        }
        claimed
    }

    fn on_sweep(&self, ctx: &mut impl AlgoCtx<Self::State>, kind: ControlKind, mask: u64) {
        match kind {
            ControlKind::Prime => self.sweep_prime(ctx, mask),
            ControlKind::Flood => self.sweep_flood(ctx, mask),
            ControlKind::Clear => {
                // Detach reclaim: zero the column *and* compact the tail,
                // then recount what this vertex still pins.
                Self::reset_cells(ctx, mask, true);
                self.account_columns(ctx);
            }
        }
    }

    fn on_control_commit(&self, shard: usize, kind: ControlKind, claimed: u64) {
        let Some(masks) = self.shared.masks.get() else {
            return;
        };
        let (Some(primed), Some(flooded)) = (masks.primed.get(shard), masks.flooded.get(shard))
        else {
            return;
        };
        match kind {
            ControlKind::Prime => {
                primed.fetch_or(claimed, Ordering::AcqRel);
            }
            ControlKind::Flood => {
                flooded.fetch_or(claimed, Ordering::AcqRel);
            }
            ControlKind::Clear => {
                primed.fetch_and(!claimed, Ordering::AcqRel);
                flooded.fetch_and(!claimed, Ordering::AcqRel);
            }
        }
        // Publish the recount taken during the sweep (Prime/Clear only).
        if claimed != 0 && !matches!(kind, ControlKind::Flood) {
            if let (Some(acc), Some(pub_bytes)) =
                (masks.col_acc.get(shard), masks.col_bytes.get(shard))
            {
                pub_bytes.store(acc.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
    }
}

impl<C: Cell> QueryStatsSource for QueryRegistry<C> {
    fn queries_attached(&self) -> usize {
        self.attached()
    }

    fn query_rows(&self) -> Vec<QueryStatsRow> {
        self.shared
            .read_table()
            .occupied()
            .map(|(slot, q)| QueryStatsRow {
                name: q.name.clone(),
                slot,
                envelopes_sent: q.stats.envelopes_sent.load(Ordering::Relaxed),
                updates_applied: q.stats.updates_applied.load(Ordering::Relaxed),
            })
            .collect()
    }

    fn backfill_histogram(&self) -> LatencyHistogram {
        self.shared
            .backfill
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Column-store footprint across all shards, as of the last Prime or
    /// Clear sweep (those sweeps walk every vertex anyway, so the recount
    /// is free; between sweeps the gauge is a lower bound — columns only
    /// grow outside sweeps).
    fn column_bytes(&self) -> u64 {
        self.shared.masks.get().map_or(0, |m| {
            m.col_bytes
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .sum()
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::algorithm::EventCtx;
    use crate::storage::VertexParts;
    use crate::vertex_state::VertexState;
    use remo_store::VertexRecord;

    /// Max-lattice test algorithm over u64 cells.
    struct MaxAlgo;

    impl Algorithm for MaxAlgo {
        type State = u64;

        fn on_update(
            &self,
            ctx: &mut impl AlgoCtx<u64>,
            _visitor: VertexId,
            value: &u64,
            _weight: Weight,
        ) {
            let v = *value;
            if ctx.apply(|s| {
                if v > *s {
                    *s = v;
                    true
                } else {
                    false
                }
            }) {
                let now = *ctx.state();
                ctx.update_nbrs(&now);
            }
        }

        fn join(into: &mut u64, from: &u64) -> bool {
            if *from > *into {
                *into = *from;
                true
            } else {
                false
            }
        }

        fn priority(state: &u64) -> Option<u64> {
            Some(u64::MAX - *state)
        }
    }

    fn slot_record(slot_gen: u32) -> QuerySlot<u64> {
        QuerySlot {
            query: Arc::new(QueryAdapter(MaxAlgo)),
            gen: slot_gen,
            sources: vec![],
            stats: Arc::new(QueryStats::default()),
            name: "max".into(),
        }
    }

    fn delta(slot: u32, gen: u32, cell: u64) -> RegPayload<u64> {
        RegPayload::Delta {
            slot,
            gen,
            cell,
            join: MaxAlgo::join,
            prio: MaxAlgo::priority,
        }
    }

    #[test]
    fn join_merges_same_slot_same_gen_deltas() {
        let mut a = delta(2, 7, 5);
        assert!(QueryRegistry::<u64>::join(&mut a, &delta(2, 7, 9)));
        assert_eq!(a, delta(2, 7, 9));
        // Different slot or generation: no merge.
        assert!(!QueryRegistry::<u64>::join(&mut a, &delta(3, 7, 11)));
        assert!(!QueryRegistry::<u64>::join(&mut a, &delta(2, 8, 11)));
        assert_eq!(a, delta(2, 7, 9));
    }

    #[test]
    fn join_grows_columns_and_applies_slot_join() {
        let mut cols = RegPayload::Columns(vec![1u64]);
        assert!(QueryRegistry::<u64>::join(&mut cols, &delta(2, 1, 9)));
        assert_eq!(cols, RegPayload::Columns(vec![1, 0, 9]));
        // Dominated delta: join declines — the dominance filter retires it.
        assert!(!QueryRegistry::<u64>::join(&mut cols, &delta(2, 1, 4)));
        // Columns ⊔ Columns never merges (only updates coalesce).
        assert!(!QueryRegistry::<u64>::join(
            &mut cols,
            &RegPayload::Columns(vec![100])
        ));
    }

    #[test]
    fn priority_follows_the_tagged_query() {
        assert_eq!(
            QueryRegistry::<u64>::priority(&delta(0, 1, 10)),
            Some(u64::MAX - 10)
        );
        assert_eq!(
            QueryRegistry::<u64>::priority(&RegPayload::Columns(vec![])),
            None
        );
    }

    #[test]
    fn payload_codec_roundtrips() {
        let cols: RegPayload<u64> = RegPayload::Columns(vec![3, 0, 77]);
        let mut bytes = Vec::new();
        QueryRegistry::<u64>::encode_state(&cols, &mut bytes);
        assert_eq!(QueryRegistry::<u64>::decode_state(&bytes), cols);

        let d = delta(5, 3, 42);
        bytes.clear();
        QueryRegistry::<u64>::encode_state(&d, &mut bytes);
        // Decoded deltas carry stub hooks, so compare fields not the enum.
        match QueryRegistry::<u64>::decode_state(&bytes) {
            RegPayload::Delta {
                slot, gen, cell, ..
            } => {
                assert_eq!((slot, gen, cell), (5, 3, 42));
            }
            other => panic!("expected delta, got {other:?}"),
        }
    }

    #[test]
    fn slot_ctx_writes_its_column_and_tags_sends() {
        let mut rec: VertexRecord<VertexState<RegPayload<u64>>> = VertexRecord {
            state: VertexState::default(),
            adj: remo_store::Adjacency::new(),
        };
        rec.adj.insert(9, EdgeMeta::weighted(4));
        let mut out = Vec::new();
        let mut ctx = EventCtx::new(
            1,
            VertexParts::from_record(&mut rec, 0),
            &mut out,
            0,
        );
        let q = slot_record(6);
        {
            let mut sc = SlotCtx::new(&mut ctx, 2, &q, false);
            q.query.on_update(&mut sc, 9, &50, 4);
        }
        // Column 2 materialized (0 and 1 back-filled with bottom).
        assert_eq!(
            rec.state.live,
            RegPayload::Columns(vec![0, 0, 50]),
            "slot 2 cell must hold the joined value"
        );
        // The cascade went out as a slot-tagged delta with the real hooks.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].target, 9);
        assert_eq!(out[0].weight, 4);
        match &out[0].value {
            RegPayload::Delta {
                slot, gen, cell, ..
            } => assert_eq!((*slot, *gen, *cell), (2, 6, 50)),
            other => panic!("expected delta, got {other:?}"),
        }
        assert_eq!(q.stats.updates_applied.load(Ordering::Relaxed), 1);
        assert_eq!(q.stats.envelopes_sent.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn muted_slot_ctx_applies_but_never_sends() {
        let mut rec: VertexRecord<VertexState<RegPayload<u64>>> = VertexRecord {
            state: VertexState::default(),
            adj: remo_store::Adjacency::new(),
        };
        rec.adj.insert(3, EdgeMeta::unweighted());
        let mut out = Vec::new();
        let mut ctx = EventCtx::new(
            1,
            VertexParts::from_record(&mut rec, 0),
            &mut out,
            0,
        );
        let q = slot_record(1);
        {
            let mut sc = SlotCtx::new(&mut ctx, 0, &q, true);
            q.query.on_update(&mut sc, 3, &8, 1);
        }
        assert_eq!(rec.state.live, RegPayload::Columns(vec![8]));
        assert!(out.is_empty(), "muted context must drop sends");
        assert_eq!(q.stats.envelopes_sent.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn clear_compacts_trailing_bottom_columns() {
        let mut rec: VertexRecord<VertexState<RegPayload<u64>>> = VertexRecord {
            state: VertexState::default(),
            adj: remo_store::Adjacency::new(),
        };
        rec.state.live = RegPayload::Columns(vec![0, 5, 0, 7, 0, 0]);
        let mut out = Vec::new();
        let mut ctx = EventCtx::new(
            1,
            VertexParts::from_record(&mut rec, 0),
            &mut out,
            0,
        );
        // Clearing slot 3 zeroes it and truncates the trailing bottom run.
        QueryRegistry::<u64>::reset_cells(&mut ctx, 1 << 3, true);
        assert_eq!(
            rec.state.live,
            RegPayload::Columns(vec![0, 5]),
            "detach must reclaim the trailing bottom cells"
        );
        // Without compaction the length is preserved (prime's clean slate).
        rec.state.live = RegPayload::Columns(vec![0, 0, 9]);
        let mut out = Vec::new();
        let mut ctx = EventCtx::new(
            1,
            VertexParts::from_record(&mut rec, 0),
            &mut out,
            0,
        );
        QueryRegistry::<u64>::reset_cells(&mut ctx, 1 << 2, false);
        assert_eq!(rec.state.live, RegPayload::Columns(vec![0, 0, 0]));
    }

    #[test]
    fn registry_handle_reports_attachments() {
        let reg: QueryRegistry<u64> = QueryRegistry::new();
        assert_eq!(reg.attached(), 0);
        reg.shared.publish(|slots| {
            slots.resize_with(3, || None);
            slots[1] = Some(slot_record(1));
        });
        assert_eq!(reg.attached(), 1);
        assert_eq!(reg.shared.read_table().live_mask(), 0b10);
        assert_eq!(reg.shared.read_table().first_free(), Some(0));
        let rows = reg.query_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].slot, 1);
        assert_eq!(rows[0].name, "max");
        let dbg = format!("{reg:?}");
        assert!(dbg.contains("attached"));
    }
}
