//! Data-plane transports: how visitor-message batches move between shards.
//!
//! The seed transport is one unbounded crossbeam MPMC channel per shard —
//! every inbound batch, from any of the P−1 peers plus the controller,
//! funnels through the same contended queue, every `flush()` ships a
//! freshly allocated `Vec<Envelope>` that the receiver drops, and an idle
//! shard burns a fixed `recv_timeout` poll. [`TransportMode::Lanes`]
//! replaces the *data* path with a P×P mesh of bounded lock-free SPSC
//! rings (`LaneMesh`):
//!
//! - **Data lanes** carry `Vec<Envelope>` batches from one sender to one
//!   receiver, so the receive path is an uncontended per-lane poll — no
//!   MPMC dequeue, no lock, two atomic words per lane.
//! - **Recycle lanes** flow drained batch buffers back to their sender, so
//!   steady-state batch shipping is allocation-free: `flush()` pulls the
//!   next buffer from the pool instead of `Vec::new`.
//! - A **full** data lane never blocks the sender: the batch falls back to
//!   the existing channel path (see `Message::LaneFallback` and the
//!   per-pair FIFO handshake documented on `LaneMesh::fallback_consumed`).
//! - Idle shards **park** (`ParkBoard`) instead of timeout-polling:
//!   senders unpark the receiver after publishing into its lane, and
//!   `EngineConfig::idle_park` degrades to a fallback heartbeat rather
//!   than the wake latency.
//!
//! Control traffic (Stream/Collect/Query/Token/Shutdown) stays on the
//! crossbeam channel in both modes — it is rare, and the channel's
//! blocking-receive semantics are exactly right for it.
//!
//! Like `StorageLayout`, the transport is a runtime choice so differential
//! tests (`prop_transport`) and the `ablate_transport` bench can run both
//! transports in one process and assert byte-identical fixpoints.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crossbeam::utils::CachePadded;

use crate::event::Envelope;

/// Which data-plane transport moves envelope batches between shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TransportMode {
    /// P×P mesh of bounded SPSC ring lanes with pooled batch buffers and
    /// event-driven parking (the default).
    #[default]
    Lanes,
    /// The seed transport: every batch through the receiver's MPMC channel.
    Channel,
}

/// Batches a data lane can hold before the sender falls back to the
/// channel path. Bounded so a stalled receiver exerts backpressure-by-
/// fallback instead of accumulating unbounded lane memory; kept small so
/// the pool of circulating batch buffers (primed with `LANE_CAP` per
/// pair, see [`LaneMesh::new`]) covers the lane's worst-case depth and
/// steady-state flushes stay allocation-free.
const LANE_CAP: usize = 32;

/// Bits per word of a [`PendingSet`] (and of its summary word).
const PENDING_WORD_BITS: usize = 64;

/// The pending-senders set is a multi-word bitmap with one hierarchical
/// `u64` summary word (bit `w` of the summary covers word `w`), so the
/// lane mesh scales to `64 × 64 = 4096` shards — far past any engine this
/// crate will ever spawn as threads. Engines configured beyond even that
/// fall back to the channel transport at build time, with a visible
/// warning (see `EngineBuilder::build`); they no longer do so silently.
pub(crate) const MAX_LANE_SHARDS: usize = PENDING_WORD_BITS * PENDING_WORD_BITS;

/// A multi-word pending-senders bitmap with a hierarchical summary word.
///
/// Bit `from` (word `from / 64`, bit `from % 64`) says "sender `from` has
/// published work for this receiver". With more than one word, a `u64`
/// summary keeps the receiver's empty-probe to a single load: bit `w` of
/// the summary means "word `w` may be non-zero". Senders set word first,
/// then summary (both Release); the receiver claims summary first, then
/// the flagged words (both `swap(0, Acquire)`). A sender racing a claim
/// either lands its word bit before the word swap (the claim takes it) or
/// after (its subsequent summary `fetch_or` re-arms the summary, so the
/// next claim finds it) — a flag is never stranded. A stale summary bit
/// over an already-claimed word is harmless: the claim finds the word
/// zero and moves on.
///
/// The single-word case (≤ 64 shards) skips the summary entirely, so the
/// small-engine hot path is exactly the one-word bitmap it was before the
/// cap was lifted.
pub(crate) struct PendingSet {
    /// One bit per potential sender, `ceil(shards / 64)` words.
    words: Box<[CachePadded<AtomicU64>]>,
    /// Hierarchical "word may be non-zero" bits; unused when `words.len() == 1`.
    summary: CachePadded<AtomicU64>,
}

impl PendingSet {
    pub(crate) fn new(shards: usize) -> Self {
        assert!(shards <= MAX_LANE_SHARDS);
        let nwords = shards.div_ceil(PENDING_WORD_BITS).max(1);
        PendingSet {
            words: (0..nwords)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            summary: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Sender side: flags `from` as pending. Release on both levels so a
    /// receiver that observes the flag (Acquire) also observes the lane
    /// push that preceded this call.
    #[inline]
    pub(crate) fn set(&self, from: usize) {
        let (w, b) = (from / PENDING_WORD_BITS, from % PENDING_WORD_BITS);
        self.words[w].fetch_or(1 << b, Ordering::Release);
        if self.words.len() > 1 {
            self.summary.fetch_or(1 << w, Ordering::Release);
        }
    }

    /// Receiver/observer probe: true when no sender is flagged. One load
    /// in both layouts (the summary may be stale-set, never stale-clear,
    /// so "empty" answers are exact and "non-empty" answers at worst cost
    /// one wasted claim).
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        if self.words.len() == 1 {
            self.words[0].load(Ordering::Acquire) == 0
        } else {
            self.summary.load(Ordering::Acquire) == 0
        }
    }

    /// Receiver side: claims every flagged sender (clearing the flags),
    /// appending their ids to `out` in ascending order. The cheap Relaxed
    /// probe keeps the empty case to a single load. Returns how many
    /// senders were claimed.
    #[inline]
    pub(crate) fn claim_into(&self, out: &mut Vec<usize>) -> usize {
        let before = out.len();
        if self.words.len() == 1 {
            if self.words[0].load(Ordering::Relaxed) != 0 {
                let mut bits = self.words[0].swap(0, Ordering::Acquire);
                while bits != 0 {
                    out.push(bits.trailing_zeros() as usize);
                    bits &= bits - 1;
                }
            }
            return out.len() - before;
        }
        if self.summary.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        let mut sum = self.summary.swap(0, Ordering::Acquire);
        while sum != 0 {
            let w = sum.trailing_zeros() as usize;
            sum &= sum - 1;
            let mut bits = self.words[w].swap(0, Ordering::Acquire);
            while bits != 0 {
                out.push(w * PENDING_WORD_BITS + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
        out.len() - before
    }

    /// Clears `from`'s flag without claiming the rest (dead-receiver lane
    /// reclaim). The possibly-stale summary bit is left alone — the next
    /// claim finds the word empty and moves on.
    #[inline]
    pub(crate) fn clear(&self, from: usize) {
        let (w, b) = (from / PENDING_WORD_BITS, from % PENDING_WORD_BITS);
        self.words[w].fetch_and(!(1u64 << b), Ordering::Relaxed);
    }
}

/// A bounded single-producer single-consumer ring.
///
/// Monotone head/tail indices over a power-of-two slot array: `tail` is
/// written only by the producer, `head` only by the consumer, each on its
/// own cache line. `push`/`pop` are lock-free and wait-free — one Acquire
/// load of the opposite index, one slot access, one Release store.
///
/// The single-producer/single-consumer discipline is enforced by
/// convention, not by types: within [`LaneMesh`], lane `(s, r)` is pushed
/// only by shard thread `s` and popped only by shard thread `r` (see
/// [`LaneMesh::reclaim`] for the one documented exception). Violating the
/// discipline is a data race on the slot array.
pub(crate) struct SpscRing<T> {
    mask: usize,
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to pop (consumer-owned; producer reads to detect full).
    head: CachePadded<AtomicUsize>,
    /// Next slot to push (producer-owned; consumer reads to detect empty).
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring moves `T` values across threads (producer writes a
// slot, consumer takes it), which is exactly the `T: Send` contract; the
// head/tail protocol guarantees a slot is never accessed by both sides at
// once, so no `&T` is ever shared.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// `cap` must be a power of two (the index mask depends on it).
    pub(crate) fn with_capacity(cap: usize) -> Self {
        assert!(
            cap.is_power_of_two(),
            "ring capacity must be a power of two"
        );
        SpscRing {
            mask: cap - 1,
            buf: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Producer side: appends `value`, or returns it when the ring is full.
    pub(crate) fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        // Acquire pairs with the consumer's Release in `pop`: a freed slot
        // must be observed freed before we overwrite it.
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return Err(value);
        }
        // SAFETY: `tail - head <= mask` means slot `tail & mask` is not
        // occupied, and only this (sole) producer writes slots at `tail`.
        unsafe { (*self.buf[tail & self.mask].get()).write(value) };
        // Release publishes the slot write before the index advance.
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: takes the oldest value, if any.
    pub(crate) fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        // Acquire pairs with the producer's Release in `push`.
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head != tail` means slot `head & mask` holds an
        // initialized value the producer published (Acquire above), and
        // only this (sole) consumer reads slots at `head`.
        let value = unsafe { (*self.buf[head & self.mask].get()).assume_init_read() };
        // Release frees the slot for the producer's full-check.
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// True when nothing is buffered (either side may probe).
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }

    /// Approximate occupancy (either side or an observer may probe; the
    /// two independent loads make it momentarily stale, never unsafe).
    /// Feeds the telemetry lane-occupancy gauge.
    pub(crate) fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // `&mut self`: both roles are ours now; release leftover values.
        while self.pop().is_some() {}
    }
}

/// One receiver's inbound lane column: its data and recycle rings for
/// every potential sender, allocated as a unit.
///
/// Lazily initialized ([`LaneMesh::init_column`]) by the **owning shard
/// thread at its startup** so the ring slot arrays are first-touch
/// allocated on the receiver's core/NUMA node (pages land on the node of
/// the first-writing thread). The `OnceLock` gives senders an
/// acquire-load view of the fully built rings, makes a respawned shard's
/// re-init a no-op, and keeps the eager constructor
/// ([`LaneMesh::new`] — unit tests, single-threaded fixtures) on the
/// same code path.
struct LaneColumn<S> {
    rings: OnceLock<ColumnRings<S>>,
}

struct ColumnRings<S> {
    /// `data[from]`: envelope batches in flight from `from` to the
    /// column's owner.
    data: Box<[SpscRing<Vec<Envelope<S>>>]>,
    /// `recycle[from]`: empty buffers returning to `from`.
    recycle: Box<[SpscRing<Vec<Envelope<S>>>]>,
}

impl<S> ColumnRings<S> {
    fn build(shards: usize) -> Self {
        ColumnRings {
            data: (0..shards)
                .map(|_| SpscRing::with_capacity(LANE_CAP))
                .collect(),
            // Recycle lanes are primed with `LANE_CAP` empty buffers so the
            // pool feeds `flush()` from the first batch (each buffer grows
            // to its working capacity once, then circulates), and get 2×
            // headroom so a burst of returns is never dropped while the
            // primed stock still sits unconsumed.
            recycle: (0..shards)
                .map(|_| {
                    let ring = SpscRing::with_capacity(LANE_CAP * 2);
                    for _ in 0..LANE_CAP {
                        let _ = ring.push(Vec::new());
                    }
                    ring
                })
                .collect(),
        }
    }
}

/// The P×P lane mesh: data lanes, recycle lanes, and the per-pair
/// fallback handshake counters. One per engine, shared by every shard.
///
/// All methods name a pair as `(from, to)` = (sending shard, receiving
/// shard). Data lane `(from, to)` is produced by `from` and consumed by
/// `to`; the recycle lane of the same pair flows the *opposite* way
/// (produced by `to`, consumed by `from`) carrying drained batch buffers
/// home for reuse.
///
/// Rings are grouped into per-receiver [`LaneColumn`]s. Under the engine
/// ([`LaneMesh::new_deferred`]) a column is allocated by its owning shard
/// thread at startup — first-touch placement — and until then every send
/// to it reports "full", diverting batches onto the existing channel
/// fallback. That is sound by construction: "column not yet allocated"
/// is indistinguishable from "lane full" to a sender, and the fallback
/// handshake already preserves per-pair FIFO across any lane-unavailable
/// window (see [`LaneMesh::fallback_consumed`]).
pub(crate) struct LaneMesh<S> {
    shards: usize,
    /// `columns[to]`: receiver `to`'s inbound data + recycle rings.
    columns: Vec<LaneColumn<S>>,
    /// `fallback_consumed[from * shards + to]`: how many of the pair's
    /// channel-fallback batches the receiver has fully admitted.
    ///
    /// The per-pair FIFO handshake: when a data lane fills, the sender
    /// ships the batch as `Message::LaneFallback` on the channel, bumps
    /// its private `fallback_sent[to]`, and stays on the channel path for
    /// that pair while `fallback_sent != fallback_consumed`. The receiver,
    /// on a `LaneFallback{from}`, first drains data lane `(from, to)` —
    /// every batch found there predates the fallback — then admits the
    /// fallback batch, then bumps this counter (Release, strictly after
    /// admission). The sender's later Acquire read of the equal count
    /// therefore happens-after the fallback batch was admitted, so the
    /// batches it subsequently pushes onto the lane are admitted after it:
    /// the pair's FIFO survives the lane→channel→lane round trip.
    fallback_consumed: Vec<CachePadded<AtomicU64>>,
    /// `inbound[to]`: multi-word bitmap of senders with batches parked in
    /// their data lane to `to` (bit `from` set by the sender *after* its
    /// lane push, Release; claimed wholesale by the receiver's drain). Lets
    /// the receiver's hot loop probe "anything for me?" with one load
    /// instead of scanning P lanes, and tells it exactly which lanes to
    /// drain. A stale set bit over an already-drained lane is harmless (the
    /// drain finds it empty); a cleared bit is always re-set by the next
    /// push. See [`PendingSet`] for the word/summary protocol.
    inbound: Vec<PendingSet>,
}

impl<S> LaneMesh<S> {
    /// Eager mesh: every column allocated by the calling thread. Unit
    /// tests and single-threaded fixtures drive workers by hand without a
    /// startup phase, so their lanes must exist up front; the engine uses
    /// [`Self::new_deferred`] for first-touch placement instead.
    #[cfg_attr(not(test), allow(dead_code))] // test fixtures
    pub(crate) fn new(shards: usize) -> Self {
        let mesh = Self::new_deferred(shards);
        for to in 0..shards {
            mesh.init_column(to);
        }
        mesh
    }

    /// Mesh with no columns allocated yet: each receiver calls
    /// [`Self::init_column`] for its own id at shard startup, so its ring
    /// memory is first-touch allocated on its pinned core/node. Until
    /// then, sends to it divert to the channel fallback.
    pub(crate) fn new_deferred(shards: usize) -> Self {
        assert!(
            shards <= MAX_LANE_SHARDS,
            "lane mesh is capped at {MAX_LANE_SHARDS} shards"
        );
        let n = shards * shards;
        LaneMesh {
            shards,
            columns: (0..shards)
                .map(|_| LaneColumn {
                    rings: OnceLock::new(),
                })
                .collect(),
            fallback_consumed: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            inbound: (0..shards).map(|_| PendingSet::new(shards)).collect(),
        }
    }

    /// Allocates receiver `to`'s inbound column (data rings + primed
    /// recycle pools). Idempotent — a respawned shard re-running its
    /// startup is a no-op — and the `OnceLock` publish gives senders an
    /// acquire view of the fully built rings.
    pub(crate) fn init_column(&self, to: usize) {
        let shards = self.shards;
        let _ = self.columns[to].rings.get_or_init(|| ColumnRings::build(shards));
    }

    #[inline]
    fn column(&self, to: usize) -> Option<&ColumnRings<S>> {
        debug_assert!(to < self.shards);
        self.columns[to].rings.get()
    }

    #[inline]
    fn at(&self, from: usize, to: usize) -> usize {
        debug_assert!(from < self.shards && to < self.shards);
        from * self.shards + to
    }

    /// Sender `from`: ships a batch to `to`, or hands it back when the
    /// lane is full — or not yet allocated by its receiver (caller falls
    /// back to the channel either way; the two cases are deliberately
    /// indistinguishable). On success the sender's bit in the receiver's
    /// pending bitmap is set *after* the push, so a receiver that
    /// observes the bit will find the batch.
    #[inline]
    pub(crate) fn send(
        &self,
        from: usize,
        to: usize,
        batch: Vec<Envelope<S>>,
    ) -> Result<(), Vec<Envelope<S>>> {
        let Some(col) = self.column(to) else {
            return Err(batch);
        };
        col.data[from].push(batch)?;
        self.inbound[to].set(from);
        Ok(())
    }

    /// Receiver `to`: next in-flight batch from `from`, if any.
    #[inline]
    pub(crate) fn recv(&self, from: usize, to: usize) -> Option<Vec<Envelope<S>>> {
        self.column(to)?.data[from].pop()
    }

    /// Sender `from`: pulls one pooled buffer home from the pair's recycle
    /// lane (allocation-free steady state for `flush`).
    #[inline]
    pub(crate) fn take_recycled(&self, from: usize, to: usize) -> Option<Vec<Envelope<S>>> {
        self.column(to)?.recycle[from].pop()
    }

    /// Receiver `to`: returns a drained (cleared) batch buffer to `from`'s
    /// pool. A full recycle lane just drops the buffer — the pool is an
    /// optimization, never a liveness dependency.
    #[inline]
    pub(crate) fn give_recycled(&self, from: usize, to: usize, buf: Vec<Envelope<S>>) {
        debug_assert!(buf.is_empty());
        if let Some(col) = self.column(to) {
            let _ = col.recycle[from].push(buf);
        }
    }

    /// Sender `from`: the pair's admitted-fallback count (Acquire — see
    /// [`LaneMesh::fallback_consumed`] for the handshake it closes).
    #[inline]
    pub(crate) fn fallback_consumed(&self, from: usize, to: usize) -> u64 {
        self.fallback_consumed[self.at(from, to)].load(Ordering::Acquire)
    }

    /// Receiver `to`: marks one of the pair's fallback batches fully
    /// admitted. Release: must happen strictly after the admission.
    #[inline]
    pub(crate) fn note_fallback_consumed(&self, from: usize, to: usize) {
        self.fallback_consumed[self.at(from, to)].fetch_add(1, Ordering::Release);
    }

    /// True when any sender has flagged a batch for `to` — one load, no
    /// lane scan. May briefly lag a push whose flag is not yet set; the
    /// Dekker parking protocol covers that window (the sender's `wake`
    /// comes after the flag).
    #[inline]
    pub(crate) fn has_inbound(&self, to: usize) -> bool {
        !self.inbound[to].is_empty()
    }

    /// Receiver `to`: claims the current pending-senders set (clearing
    /// it), appending the flagged sender ids to `out` in ascending order —
    /// the caller drains exactly those lanes. Returns how many senders
    /// were claimed; the empty case stays a single Relaxed load.
    #[inline]
    pub(crate) fn claim_pending_into(&self, to: usize, out: &mut Vec<usize>) -> usize {
        self.inbound[to].claim_into(out)
    }

    /// Observer: batches currently parked in `to`'s inbound data lanes,
    /// summed over all senders — the telemetry lane-occupancy gauge. Each
    /// lane's occupancy is an independent racy probe; the sum is a
    /// point-in-time estimate, which is all a gauge needs.
    pub(crate) fn inbound_occupancy(&self, to: usize) -> usize {
        let Some(col) = self.column(to) else {
            return 0;
        };
        (0..self.shards).map(|from| col.data[from].len()).sum()
    }

    /// Sender `from`: drains its own data lane to a **dead** receiver so
    /// the in-flight envelopes can be retired into the undeliverable
    /// accounting (a dead shard can never pop them, and quiescence over
    /// the survivors is unreachable while they count as in flight).
    ///
    /// This is the one sanctioned breach of the SPSC role split: the
    /// producer pops its own lane. Sound only because the caller observed
    /// the consumer's death through its channel disconnecting or the
    /// failure board — both of which are published strictly after the
    /// consumer thread's last pop.
    pub(crate) fn reclaim(&self, from: usize, to: usize) -> Vec<Vec<Envelope<S>>> {
        let mut batches = Vec::new();
        if let Some(col) = self.column(to) {
            while let Some(b) = col.data[from].pop() {
                batches.push(b);
            }
        }
        self.inbound[to].clear(from);
        batches
    }
}

/// Per-shard sleep flags + thread handles for event-driven wakeups.
///
/// The protocol (Dekker-style, SeqCst on both sides):
///
/// - Receiver, before parking: store `asleep = true`, then re-check its
///   inbound lanes and channel; only park if both are empty.
/// - Sender, after publishing work: read-and-clear `asleep`; if it was
///   set, `unpark` the receiver.
///
/// The SeqCst orderings guarantee at least one side sees the other: either
/// the sender's publish precedes the receiver's re-check (work is found,
/// no park), or the receiver's `asleep` store precedes the sender's swap
/// (the sender unparks). `std::thread::park` carries a wake token, so an
/// unpark landing before the park is not lost — and even a missed wake
/// only costs one `idle_park` heartbeat, never a stall: parking is always
/// `park_timeout`.
pub(crate) struct ParkBoard {
    slots: Vec<CachePadded<ParkSlot>>,
    /// Fallback park timeout — `EngineConfig::idle_park` threaded through
    /// at engine build ([`LaneHandles::for_engine`]) rather than a magic
    /// constant at each park site.
    heartbeat: Duration,
    /// How many spin iterations a *pinned* shard burns re-probing its
    /// inbound work before announcing sleep and parking. A pinned shard
    /// that parks instantly donates its core to nobody — it owns the core
    /// either way — so a short bounded spin converts the common
    /// work-arrives-immediately case from a park/unpark round trip into a
    /// cache-hit probe. Unpinned shards skip the spin entirely (the OS
    /// can use their core).
    spin_budget: u32,
}

/// Spin iterations before park for pinned shards (see
/// [`ParkBoard::spin_budget`]). Each iteration is a couple of atomic
/// loads plus `spin_loop`; 512 keeps the worst-case pre-park burn in the
/// low microseconds.
const DEFAULT_SPIN_BUDGET: u32 = 512;

struct ParkSlot {
    asleep: AtomicBool,
    /// Set once by the shard thread itself at startup; a `wake` arriving
    /// before registration is safely skipped (the shard is provably awake).
    thread: OnceLock<std::thread::Thread>,
}

impl ParkBoard {
    #[cfg_attr(not(test), allow(dead_code))] // test fixtures
    pub(crate) fn new(shards: usize) -> Self {
        Self::with_timing(shards, Duration::from_micros(200), DEFAULT_SPIN_BUDGET)
    }

    /// Board with an explicit fallback heartbeat (the engine passes
    /// `EngineConfig::idle_park`) and spin budget.
    pub(crate) fn with_timing(shards: usize, heartbeat: Duration, spin_budget: u32) -> Self {
        ParkBoard {
            slots: (0..shards)
                .map(|_| {
                    CachePadded::new(ParkSlot {
                        asleep: AtomicBool::new(false),
                        thread: OnceLock::new(),
                    })
                })
                .collect(),
            heartbeat,
            spin_budget,
        }
    }

    /// The configured fallback heartbeat.
    #[cfg_attr(not(test), allow(dead_code))] // test fixtures
    pub(crate) fn heartbeat(&self) -> Duration {
        self.heartbeat
    }

    /// Spin iterations a pinned shard burns before parking.
    pub(crate) fn spin_budget(&self) -> u32 {
        self.spin_budget
    }

    /// Parks the calling thread for at most the configured heartbeat.
    /// The caller must have announced sleep and re-checked its inbound
    /// work first (the Dekker protocol documented on the type).
    pub(crate) fn park_current(&self) {
        std::thread::park_timeout(self.heartbeat);
    }

    /// Called once by shard `id` on its own thread before the first park.
    pub(crate) fn register(&self, id: usize) {
        let _ = self.slots[id].thread.set(std::thread::current());
    }

    /// Shard `id` announces it is about to park. The caller must re-check
    /// its inbound queues *after* this call and before parking.
    pub(crate) fn announce_sleep(&self, id: usize) {
        self.slots[id].asleep.store(true, Ordering::SeqCst);
    }

    /// Shard `id` is awake again (after a park, or after finding work in
    /// the post-announce re-check).
    pub(crate) fn clear_sleep(&self, id: usize) {
        self.slots[id].asleep.store(false, Ordering::SeqCst);
    }

    /// Wakes shard `id` if it announced sleep; the caller must have
    /// already published the work being signalled. Returns whether an
    /// unpark actually fired (the `unparks` metric).
    pub(crate) fn wake(&self, id: usize) -> bool {
        let slot = &self.slots[id];
        if slot.asleep.swap(false, Ordering::SeqCst) {
            if let Some(t) = slot.thread.get() {
                t.unpark();
                return true;
            }
        }
        false
    }
}

/// The per-shard bundle a Lanes-mode worker carries: the shared mesh and
/// park board (`None` of this exists under [`TransportMode::Channel`]).
pub(crate) struct LaneHandles<S> {
    pub mesh: Arc<LaneMesh<S>>,
    pub parks: Arc<ParkBoard>,
}

impl<S> Clone for LaneHandles<S> {
    fn clone(&self) -> Self {
        LaneHandles {
            mesh: Arc::clone(&self.mesh),
            parks: Arc::clone(&self.parks),
        }
    }
}

impl<S> LaneHandles<S> {
    /// Eager handles for tests/fixtures that drive workers by hand:
    /// every lane column exists up front, default park timing.
    #[cfg_attr(not(test), allow(dead_code))] // test fixtures
    pub(crate) fn new(shards: usize) -> Self {
        LaneHandles {
            mesh: Arc::new(LaneMesh::new(shards)),
            parks: Arc::new(ParkBoard::new(shards)),
        }
    }

    /// Handles as the engine builds them: columns deferred so each shard
    /// first-touch allocates its own at startup, park heartbeat taken
    /// from `EngineConfig::idle_park`.
    pub(crate) fn for_engine(shards: usize, heartbeat: Duration) -> Self {
        LaneHandles {
            mesh: Arc::new(LaneMesh::new_deferred(shards)),
            parks: Arc::new(ParkBoard::with_timing(
                shards,
                heartbeat,
                DEFAULT_SPIN_BUDGET,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Envelope, EventKind};

    fn env(target: u64) -> Envelope<u64> {
        Envelope {
            target,
            visitor: 0,
            value: 0,
            weight: 1,
            kind: EventKind::Update,
            epoch: 0,
            tag: 0,
        }
    }

    #[test]
    fn ring_fifo_and_capacity() {
        let ring = SpscRing::with_capacity(4);
        assert!(ring.is_empty());
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.push(99), Err(99), "full ring hands the value back");
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_wraparound_preserves_order() {
        // Interleave pushes and pops far past the capacity so head/tail
        // wrap the mask repeatedly.
        let ring = SpscRing::with_capacity(8);
        let mut expect = 0u64;
        for round in 0..100u64 {
            for i in 0..5 {
                ring.push(round * 5 + i).unwrap();
            }
            for _ in 0..5 {
                assert_eq!(ring.pop(), Some(expect));
                expect += 1;
            }
        }
    }

    #[test]
    fn ring_drop_releases_leftovers() {
        // Leak detection relies on the test allocator/moves: Box values
        // must drop cleanly when the ring drops non-empty.
        let ring = SpscRing::with_capacity(8);
        for i in 0..5 {
            ring.push(Box::new(i)).unwrap();
        }
        drop(ring);
    }

    #[test]
    fn ring_cross_thread_stress() {
        const N: u64 = 100_000;
        let ring = Arc::new(SpscRing::with_capacity(64));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..N {
                    let mut v = i;
                    loop {
                        match ring.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            })
        };
        let mut expect = 0u64;
        while expect < N {
            if let Some(v) = ring.pop() {
                assert_eq!(v, expect, "SPSC ring reordered or lost a value");
                expect += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(ring.is_empty());
    }

    #[test]
    fn mesh_data_and_recycle_roundtrip() {
        let mesh: LaneMesh<u64> = LaneMesh::new(3);
        assert!(!mesh.has_inbound(1));
        mesh.send(0, 1, vec![env(7), env(8)]).unwrap();
        assert!(mesh.has_inbound(1));
        assert!(!mesh.has_inbound(0));
        assert!(!mesh.has_inbound(2));

        let mut batch = mesh.recv(0, 1).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(mesh.recv(0, 1).is_none());
        // The pool is primed: LANE_CAP buffers are ready before any ever
        // flowed home, and a returned buffer lands behind them.
        for _ in 0..LANE_CAP {
            assert!(
                mesh.take_recycled(0, 1).is_some(),
                "primed pool feeds flush"
            );
        }
        assert!(mesh.take_recycled(0, 1).is_none());
        batch.clear();
        mesh.give_recycled(0, 1, batch);
        assert!(mesh.take_recycled(0, 1).is_some(), "buffer flowed home");
        assert!(mesh.take_recycled(0, 1).is_none());
    }

    #[test]
    fn mesh_pending_bitmap_tracks_senders() {
        let mesh: LaneMesh<u64> = LaneMesh::new(4);
        let mut claimed = Vec::new();
        assert_eq!(mesh.claim_pending_into(3, &mut claimed), 0);
        mesh.send(0, 3, vec![env(1)]).unwrap();
        mesh.send(2, 3, vec![env(2)]).unwrap();
        assert!(mesh.has_inbound(3));
        mesh.claim_pending_into(3, &mut claimed);
        assert_eq!(claimed, vec![0, 2], "one id per flagged sender, ascending");
        claimed.clear();
        assert_eq!(
            mesh.claim_pending_into(3, &mut claimed),
            0,
            "claim clears the bitmap"
        );
        // The claim only transfers the flags — the batches are still in
        // their lanes for the caller to drain.
        assert!(mesh.recv(0, 3).is_some());
        assert!(mesh.recv(2, 3).is_some());
    }

    #[test]
    fn pending_set_multi_word_roundtrip() {
        // 130 senders spans three words; flags straddle every word
        // boundary and must come back ascending.
        let set = PendingSet::new(130);
        assert!(set.is_empty());
        for from in [0usize, 63, 64, 65, 127, 128, 129] {
            set.set(from);
        }
        assert!(!set.is_empty());
        let mut got = Vec::new();
        assert_eq!(set.claim_into(&mut got), 7);
        assert_eq!(got, vec![0, 63, 64, 65, 127, 128, 129]);
        assert!(set.is_empty());
        got.clear();
        assert_eq!(set.claim_into(&mut got), 0, "claim cleared every level");

        // Re-arming after a claim works across words too.
        set.set(70);
        got.clear();
        set.claim_into(&mut got);
        assert_eq!(got, vec![70]);
    }

    #[test]
    fn pending_set_clear_drops_single_flag() {
        let set = PendingSet::new(96);
        set.set(3);
        set.set(80);
        set.clear(80);
        let mut got = Vec::new();
        set.claim_into(&mut got);
        assert_eq!(got, vec![3], "clear removed only the dead sender's flag");
    }

    #[test]
    fn pending_set_stale_summary_bit_is_harmless() {
        // `clear` leaves the summary bit set over a now-empty word; the
        // next claim must cope (find the word empty) and still deliver
        // flags from other words.
        let set = PendingSet::new(96);
        set.set(70);
        set.clear(70);
        assert!(!set.is_empty(), "summary is stale-set by design");
        let mut got = Vec::new();
        assert_eq!(set.claim_into(&mut got), 0);
        assert!(got.is_empty());
        assert!(set.is_empty(), "claim swept the stale summary");
    }

    #[test]
    fn pending_set_cross_thread_stress() {
        // Three senders spread across different words hammer flags while
        // the receiver claims; every set must eventually be claimed and no
        // id outside the senders' may ever appear.
        const ROUNDS: usize = 10_000;
        let set = Arc::new(PendingSet::new(200));
        let senders = [5usize, 77, 199];
        let handles: Vec<_> = senders
            .iter()
            .map(|&from| {
                let set = Arc::clone(&set);
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        set.set(from);
                    }
                })
            })
            .collect();
        let mut seen = std::collections::HashMap::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            set.claim_into(&mut buf);
            for &id in &buf {
                assert!(senders.contains(&id), "claimed a never-set id {id}");
                *seen.entry(id).or_insert(0usize) += 1;
            }
            if handles.iter().all(|h| h.is_finished()) {
                // One final sweep after the last set is published.
                buf.clear();
                set.claim_into(&mut buf);
                for &id in &buf {
                    *seen.entry(id).or_insert(0) += 1;
                }
                break;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(set.is_empty(), "no flag stranded after the final sweep");
        for &from in &senders {
            assert!(seen.contains_key(&from), "sender {from} never claimed");
        }
    }

    #[test]
    fn mesh_beyond_64_shards_tracks_high_senders() {
        // The lifted cap: a 96-shard mesh must route flags from senders
        // past bit 63 (second bitmap word) exactly like low ones.
        let mesh: LaneMesh<u64> = LaneMesh::new(96);
        assert!(!mesh.has_inbound(95));
        mesh.send(1, 95, vec![env(1)]).unwrap();
        mesh.send(64, 95, vec![env(2)]).unwrap();
        mesh.send(90, 95, vec![env(3)]).unwrap();
        assert!(mesh.has_inbound(95));
        let mut claimed = Vec::new();
        mesh.claim_pending_into(95, &mut claimed);
        assert_eq!(claimed, vec![1, 64, 90]);
        for &from in &claimed {
            assert!(mesh.recv(from, 95).is_some());
        }
        assert_eq!(mesh.inbound_occupancy(95), 0);
        // Reclaim from a high sender keeps the books straight too.
        mesh.send(70, 2, vec![env(4)]).unwrap();
        let batches = mesh.reclaim(70, 2);
        assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), 1);
        claimed.clear();
        assert_eq!(mesh.claim_pending_into(2, &mut claimed), 0);
    }

    #[test]
    fn mesh_occupancy_gauges_track_lanes() {
        let mesh: LaneMesh<u64> = LaneMesh::new(3);
        assert_eq!(mesh.inbound_occupancy(1), 0);
        mesh.send(0, 1, vec![env(1)]).unwrap();
        mesh.send(0, 1, vec![env(2)]).unwrap();
        mesh.send(2, 1, vec![env(3)]).unwrap();
        assert_eq!(mesh.inbound_occupancy(1), 3);
        assert_eq!(mesh.inbound_occupancy(0), 0);
        mesh.recv(0, 1).unwrap();
        assert_eq!(mesh.inbound_occupancy(1), 2);
    }

    #[test]
    fn mesh_full_lane_hands_batch_back() {
        let mesh: LaneMesh<u64> = LaneMesh::new(2);
        for _ in 0..LANE_CAP {
            mesh.send(0, 1, vec![env(1)]).unwrap();
        }
        let back = mesh.send(0, 1, vec![env(2)]).unwrap_err();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].target, 2);
    }

    #[test]
    fn mesh_fallback_handshake_counts() {
        let mesh: LaneMesh<u64> = LaneMesh::new(2);
        assert_eq!(mesh.fallback_consumed(0, 1), 0);
        mesh.note_fallback_consumed(0, 1);
        mesh.note_fallback_consumed(0, 1);
        assert_eq!(mesh.fallback_consumed(0, 1), 2);
        assert_eq!(mesh.fallback_consumed(1, 0), 0, "pairs are independent");
    }

    #[test]
    fn mesh_reclaim_drains_own_lane() {
        let mesh: LaneMesh<u64> = LaneMesh::new(2);
        mesh.send(0, 1, vec![env(1)]).unwrap();
        mesh.send(0, 1, vec![env(2), env(3)]).unwrap();
        let batches = mesh.reclaim(0, 1);
        assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), 3);
        assert!(!mesh.has_inbound(1));
    }

    #[test]
    fn park_board_wake_requires_announce() {
        let board = ParkBoard::new(2);
        board.register(0);
        assert!(!board.wake(0), "no announce, no unpark");
        board.announce_sleep(0);
        assert!(board.wake(0), "announced sleeper is woken");
        assert!(!board.wake(0), "wake consumed the announcement");
        board.announce_sleep(0);
        board.clear_sleep(0);
        assert!(!board.wake(0), "cleared announcement is not woken");
    }

    #[test]
    fn park_board_wake_before_register_is_skipped() {
        let board = ParkBoard::new(1);
        board.announce_sleep(0);
        // No thread registered: the flag clears but no unpark fires.
        assert!(!board.wake(0));
    }

    #[test]
    fn parked_thread_is_woken_by_board() {
        // The park goes through the board's configured heartbeat — no
        // magic timeout at the park site. A long heartbeat bounded by the
        // wake below (the test would otherwise take the full timeout and
        // still pass — the assert is on elapsed time).
        let heartbeat = std::time::Duration::from_secs(5);
        let board = Arc::new(ParkBoard::with_timing(1, heartbeat, 0));
        assert_eq!(board.heartbeat(), heartbeat);
        let b = Arc::clone(&board);
        let t = std::thread::spawn(move || {
            b.register(0);
            b.announce_sleep(0);
            let start = std::time::Instant::now();
            b.park_current();
            b.clear_sleep(0);
            start.elapsed()
        });
        // Spin until the sleeper announces, then wake it.
        loop {
            if board.wake(0) {
                break;
            }
            std::thread::yield_now();
        }
        let waited = t.join().unwrap();
        assert!(
            waited < heartbeat,
            "unpark cut the park short (waited {waited:?})"
        );
    }

    #[test]
    fn park_board_timing_defaults() {
        let board = ParkBoard::new(1);
        assert_eq!(board.heartbeat(), Duration::from_micros(200));
        assert_eq!(board.spin_budget(), DEFAULT_SPIN_BUDGET);
    }

    #[test]
    fn deferred_column_diverts_sends_until_init() {
        let mesh: LaneMesh<u64> = LaneMesh::new_deferred(2);
        // Receiver 1 hasn't started: a send to it is handed back exactly
        // like a full lane, and the observer probes read as empty.
        let back = mesh.send(0, 1, vec![env(9)]).unwrap_err();
        assert_eq!(back.len(), 1);
        assert!(!mesh.has_inbound(1));
        assert!(mesh.recv(0, 1).is_none());
        assert!(mesh.take_recycled(0, 1).is_none());
        assert_eq!(mesh.inbound_occupancy(1), 0);
        mesh.give_recycled(0, 1, Vec::new()); // dropped, not a panic
        assert!(mesh.reclaim(0, 1).is_empty());

        // After the receiver's startup init, the column behaves exactly
        // like an eager mesh — including the primed recycle pool.
        mesh.init_column(1);
        mesh.send(0, 1, vec![env(9)]).unwrap();
        assert!(mesh.has_inbound(1));
        assert_eq!(mesh.recv(0, 1).map(|b| b.len()), Some(1));
        assert!(mesh.take_recycled(0, 1).is_some(), "pool primed at init");
        // Re-init (a respawned shard re-running startup) is a no-op: the
        // pool state above survives.
        mesh.init_column(1);
        for _ in 0..LANE_CAP - 1 {
            assert!(mesh.take_recycled(0, 1).is_some());
        }
        assert!(
            mesh.take_recycled(0, 1).is_none(),
            "re-init did not rebuild the column"
        );
    }
}
