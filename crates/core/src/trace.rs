//! Causal update tracing: sampled end-to-end propagation trees.
//!
//! The paper's model is that one external topology event triggers a
//! bounded causal cascade of per-vertex reactions (§III). The aggregate
//! counters (PR 5) measure how *much* cascading happened; this module
//! answers *where it went*: a sampled external ingest mints a **trace
//! id**, every envelope it causes carries a compact [`TraceTag`]
//! (id + hop depth), and each shard appends bounded span records to a
//! per-shard ring as tagged envelopes move through it. Harvest
//! reconstructs per-update **propagation trees** — hops to fixpoint,
//! per-hop latency, amplification, cross-shard / cross-NUMA hop counts —
//! exposed via `Engine::traces_now()` and both telemetry exporters.
//!
//! ## Tag discipline (soundness)
//!
//! A tag never changes what the engine computes; it is cargo. The rules:
//!
//! - A sampled ingest's envelope carries `(id, hop 1)`; the ingest itself
//!   is hop 0 (the `Root` span).
//! - Every envelope generated while processing a tagged envelope inherits
//!   `(id, hop + 1)` — registry `Delta` fan-out included, since deltas are
//!   routed through the same outgoing path.
//! - Sender-side coalescing: when a tagged envelope is absorbed into a
//!   staged one, the absorber *inherits* the tag if it was untagged
//!   (the trace is not lost), and an `Absorb` span records the merge
//!   either way. When both are tagged the staged tag wins — one carrier,
//!   one count.
//! - Dominance retirement and sender-side suppression close a branch
//!   with a `Dominate` / `Suppress` span instead of silence.
//! - WAL envelope records carry the tag, so replay after a shard respawn
//!   re-processes the envelope under its original identity but records a
//!   `Replay` span — replayed work is visible without being double
//!   counted as fresh processing (amplification counts `Send` spans, and
//!   a replayed envelope's *re-derived* children are genuinely new
//!   traffic).
//!
//! ## Ring-overflow policy
//!
//! Span rings are bounded and overwrite oldest-first (same discipline as
//! the flight recorder); `trace_spans_dropped` counts evictions. A trace
//! whose `Root` span was evicted is dropped whole at reconstruction —
//! partial trees without an anchor would report garbage latencies.
//! Tracing is sampled precisely so rings don't wrap in practice.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use remo_store::VertexId;

use crate::metrics::LatencyHistogram;

/// Compact causal tag carried by every [`Envelope`](crate::Envelope):
/// `(trace_id << 8) | hop_depth`, or `0` for untraced envelopes (the
/// overwhelmingly common case — the untraced hot path pays one predictable
/// branch per observation point).
pub type TraceTag = u64;

/// Packs a trace id and hop depth into a [`TraceTag`].
#[inline]
pub(crate) fn pack(id: u64, hop: u8) -> TraceTag {
    (id << 8) | u64::from(hop)
}

/// The trace id half of a tag.
#[inline]
pub fn trace_id(tag: TraceTag) -> u64 {
    tag >> 8
}

/// The hop-depth half of a tag.
#[inline]
pub fn hop_of(tag: TraceTag) -> u8 {
    (tag & 0xFF) as u8
}

/// Tag inherited by an envelope generated while processing `tag`: same
/// id, hop + 1 (saturating — depth 255 is far beyond any REMO cascade we
/// measure, and saturation merely flattens the tree's tail). `0` stays
/// `0`.
#[inline]
pub(crate) fn child(tag: TraceTag) -> TraceTag {
    if tag == 0 {
        return 0;
    }
    let hop = (tag & 0xFF).min(0xFE);
    (tag & !0xFF) | (hop + 1)
}

/// Runtime tracing selection, carried by
/// [`EngineConfig`](crate::EngineConfig). Off by default; when off no
/// envelope is ever tagged and every observation point reduces to one
/// predictable branch — the same zero-cost-when-off discipline as
/// telemetry, WAL, and the adaptive controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch.
    pub enabled: bool,
    /// Sampling shift: every `2^shift`-th external topology ingest per
    /// shard mints a trace. `0` traces every ingest (test/forensics
    /// mode, not for benchmarking).
    pub sample_shift: u32,
    /// Per-shard span ring capacity (rounded up to a power of two,
    /// minimum 64). Overflow overwrites oldest.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl TraceConfig {
    /// Tracing disabled (the default): no tags, no spans, no rings.
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            sample_shift: 6,
            ring_capacity: 0,
        }
    }

    /// Tracing enabled at the default 1-in-64 ingest sampling with a
    /// 4096-span ring per shard.
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            sample_shift: 6,
            ring_capacity: 4096,
        }
    }

    /// Sets the ingest sampling shift (see [`TraceConfig::sample_shift`]).
    pub fn with_sample_shift(mut self, shift: u32) -> Self {
        self.sample_shift = shift.min(62);
        self
    }

    /// Sets the per-shard span ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Bitmask such that `ingests & mask == 0` selects sampled ingests.
    #[inline]
    pub(crate) fn sample_mask(&self) -> u64 {
        (1u64 << self.sample_shift.min(62)) - 1
    }
}

/// What one span record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// A sampled external ingest minted this trace (`a` = src, `b` = dst
    /// of the topology event). Hop 0 by construction.
    Root = 1,
    /// A tagged envelope was counted sent (`a` = target vertex, `b` =
    /// destination shard in the low word, cross-NUMA flag in bit 32).
    Send = 2,
    /// A tagged envelope was processed (`a` = target, `b` = children
    /// emitted by the callback, pre-coalescing).
    Process = 3,
    /// A tagged envelope was absorbed into an already-staged envelope by
    /// sender-side coalescing (`a` = target, `b` = absorbing trace id).
    Absorb = 4,
    /// A tagged envelope was retired by receiver-side dominance
    /// filtering (`a` = target).
    Dominate = 5,
    /// A tagged self-routed envelope was suppressed before sending
    /// (`a` = target).
    Suppress = 6,
    /// A tagged envelope was re-processed during WAL replay
    /// (`a` = target, `b` = children emitted).
    Replay = 7,
}

impl SpanKind {
    fn from_u8(v: u8) -> Option<SpanKind> {
        Some(match v {
            1 => SpanKind::Root,
            2 => SpanKind::Send,
            3 => SpanKind::Process,
            4 => SpanKind::Absorb,
            5 => SpanKind::Dominate,
            6 => SpanKind::Suppress,
            7 => SpanKind::Replay,
            _ => return None,
        })
    }
}

/// One decoded span record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// Shard whose ring recorded the span.
    pub shard: usize,
    pub kind: SpanKind,
    /// Full tag (id + hop) of the envelope the span describes.
    pub tag: TraceTag,
    /// Nanoseconds since engine start.
    pub t_ns: u64,
    /// First operand (see [`SpanKind`]).
    pub a: u64,
    /// Second operand (see [`SpanKind`]).
    pub b: u64,
}

/// Bounded lock-free ring of span records, single writer (the owning
/// shard) — the same benign-race seqlock-lite protocol as the flight
/// recorder: the reader re-checks the written count and discards windows
/// overwritten mid-read. Exact once the writer has stopped (harvest).
#[derive(Debug)]
pub(crate) struct SpanRing {
    mask: u64,
    written: AtomicU64,
    slots: Box<[[AtomicU64; 4]]>,
}

impl SpanRing {
    pub(crate) fn new(capacity: usize) -> Self {
        let cap = capacity.max(64).next_power_of_two();
        SpanRing {
            mask: cap as u64 - 1,
            written: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// Appends one span (single writer). Returns `true` when the append
    /// evicted an older span (ring overflow).
    #[inline]
    pub(crate) fn record(&self, kind: SpanKind, tag: TraceTag, t_ns: u64, a: u64, b: u64) -> bool {
        let n = self.written.load(Ordering::Relaxed);
        let slot = &self.slots[(n & self.mask) as usize];
        slot[0].store((t_ns << 8) | kind as u64, Ordering::Relaxed);
        slot[1].store(tag, Ordering::Relaxed);
        slot[2].store(a, Ordering::Relaxed);
        slot[3].store(b, Ordering::Relaxed);
        self.written.store(n.wrapping_add(1), Ordering::Release);
        n > self.mask
    }

    /// Decodes the retained window, oldest first. Lossy under concurrent
    /// writes, exact when the writer has stopped.
    pub(crate) fn dump(&self, shard: usize) -> Vec<TraceSpan> {
        let cap = self.mask + 1;
        for _ in 0..4 {
            let n1 = self.written.load(Ordering::Acquire);
            let start = n1.saturating_sub(cap);
            let mut out = Vec::with_capacity((n1 - start) as usize);
            for seq in start..n1 {
                let slot = &self.slots[(seq & self.mask) as usize];
                let w0 = slot[0].load(Ordering::Relaxed);
                let tag = slot[1].load(Ordering::Relaxed);
                let a = slot[2].load(Ordering::Relaxed);
                let b = slot[3].load(Ordering::Relaxed);
                if let Some(kind) = SpanKind::from_u8((w0 & 0xFF) as u8) {
                    out.push(TraceSpan {
                        shard,
                        kind,
                        tag,
                        t_ns: w0 >> 8,
                        a,
                        b,
                    });
                }
            }
            fence(Ordering::Acquire);
            let n2 = self.written.load(Ordering::Acquire);
            if n2 == n1 {
                return out;
            }
            let advanced = (n2 - n1) as usize;
            if advanced < out.len() {
                out.drain(..advanced);
            } else {
                out.clear();
            }
            if !out.is_empty() {
                return out;
            }
        }
        Vec::new()
    }
}

/// Per-hop statistics inside one propagation tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HopStats {
    /// Hop depth (1 = the envelope spawned directly by the ingest).
    pub hop: u8,
    /// Tagged envelopes counted sent at this depth.
    pub sent: u64,
    /// Tagged envelopes processed at this depth.
    pub processed: u64,
    /// Tagged envelopes absorbed by sender-side coalescing.
    pub absorbed: u64,
    /// Tagged envelopes retired by dominance filtering.
    pub dominated: u64,
    /// Tagged envelopes suppressed before sending.
    pub suppressed: u64,
    /// Tagged envelopes re-processed during WAL replay.
    pub replayed: u64,
    /// Earliest send timestamp at this depth (ns since engine start; 0
    /// when no send was observed).
    pub first_send_ns: u64,
    /// Earliest processing timestamp at this depth (0 when none).
    pub first_process_ns: u64,
    /// First-send → first-process latency at this depth: lane/channel
    /// transit plus queueing (0 when either side is missing).
    pub transit_ns: u64,
}

/// One reconstructed propagation tree: everything a sampled external
/// update caused, across all shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationTrace {
    /// Trace id (unique per engine run).
    pub id: u64,
    /// Shard that ingested the root topology event.
    pub root_shard: usize,
    /// Root topology event endpoints.
    pub src: VertexId,
    pub dst: VertexId,
    /// Root ingest timestamp (ns since engine start).
    pub started_ns: u64,
    /// Per-hop breakdown, ascending hop depth.
    pub hops: Vec<HopStats>,
    /// Deepest hop observed (hops to fixpoint).
    pub depth: u8,
    /// Envelopes this update caused (count of `Send` spans) — the
    /// per-update amplification factor.
    pub amplification: u64,
    /// Envelopes processed on behalf of this trace.
    pub processed: u64,
    /// Branches closed by coalescing absorption.
    pub absorbed: u64,
    /// Branches closed by dominance retirement.
    pub dominated: u64,
    /// Branches closed by sender-side suppression.
    pub suppressed: u64,
    /// Envelopes re-processed during WAL replay (marked, not
    /// double-counted in `amplification`).
    pub replayed: u64,
    /// Sends whose destination was a different shard.
    pub cross_shard_hops: u64,
    /// Sends that crossed NUMA nodes (both ends pinned).
    pub cross_numa_hops: u64,
    /// Root ingest → last observed span (ns): the update's propagation
    /// wall time.
    pub fixpoint_ns: u64,
}

/// Rebuilds propagation trees from the harvested span rings. Traces
/// whose `Root` span was evicted by ring overflow are dropped whole (see
/// the module docs for the overflow policy). Returned ascending by root
/// timestamp.
pub(crate) fn reconstruct(spans: &[TraceSpan]) -> Vec<PropagationTrace> {
    use std::collections::HashMap;
    let mut by_id: HashMap<u64, Vec<&TraceSpan>> = HashMap::new();
    for s in spans {
        by_id.entry(trace_id(s.tag)).or_default().push(s);
    }
    let mut out = Vec::new();
    for (id, group) in by_id {
        let Some(root) = group.iter().find(|s| s.kind == SpanKind::Root) else {
            continue;
        };
        let mut t = PropagationTrace {
            id,
            root_shard: root.shard,
            src: root.a,
            dst: root.b,
            started_ns: root.t_ns,
            hops: Vec::new(),
            depth: 0,
            amplification: 0,
            processed: 0,
            absorbed: 0,
            dominated: 0,
            suppressed: 0,
            replayed: 0,
            cross_shard_hops: 0,
            cross_numa_hops: 0,
            fixpoint_ns: 0,
        };
        let mut hops: HashMap<u8, HopStats> = HashMap::new();
        let mut last_ns = root.t_ns;
        for s in &group {
            last_ns = last_ns.max(s.t_ns);
            let hop = hop_of(s.tag);
            if s.kind == SpanKind::Root {
                continue;
            }
            t.depth = t.depth.max(hop);
            let h = hops.entry(hop).or_insert_with(|| HopStats {
                hop,
                ..Default::default()
            });
            match s.kind {
                SpanKind::Send => {
                    t.amplification += 1;
                    h.sent += 1;
                    if h.first_send_ns == 0 || s.t_ns < h.first_send_ns {
                        h.first_send_ns = s.t_ns;
                    }
                    let dest = (s.b & 0xFFFF_FFFF) as usize;
                    if dest != s.shard {
                        t.cross_shard_hops += 1;
                    }
                    if s.b & (1 << 32) != 0 {
                        t.cross_numa_hops += 1;
                    }
                }
                SpanKind::Process => {
                    t.processed += 1;
                    h.processed += 1;
                    if h.first_process_ns == 0 || s.t_ns < h.first_process_ns {
                        h.first_process_ns = s.t_ns;
                    }
                }
                SpanKind::Absorb => {
                    t.absorbed += 1;
                    h.absorbed += 1;
                }
                SpanKind::Dominate => {
                    t.dominated += 1;
                    h.dominated += 1;
                }
                SpanKind::Suppress => {
                    t.suppressed += 1;
                    h.suppressed += 1;
                }
                SpanKind::Replay => {
                    t.replayed += 1;
                    h.replayed += 1;
                    if h.first_process_ns == 0 || s.t_ns < h.first_process_ns {
                        h.first_process_ns = s.t_ns;
                    }
                }
                SpanKind::Root => unreachable!("filtered above"),
            }
        }
        let mut hops: Vec<HopStats> = hops.into_values().collect();
        hops.sort_by_key(|h| h.hop);
        for h in &mut hops {
            if h.first_send_ns != 0 && h.first_process_ns != 0 {
                h.transit_ns = h.first_process_ns.saturating_sub(h.first_send_ns);
            }
        }
        t.hops = hops;
        t.fixpoint_ns = last_ns.saturating_sub(root.t_ns);
        out.push(t);
    }
    out.sort_by_key(|t| (t.started_ns, t.id));
    out
}

/// Aggregate statistics over a set of propagation traces — what the
/// exporters render as summary families.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Traces reconstructed.
    pub observed: u64,
    /// Root-to-last-span propagation wall time, one sample per trace.
    pub fixpoint: LatencyHistogram,
    /// Hops to fixpoint, one sample per trace (unitless; histogram
    /// buckets reused for quantiles).
    pub hops: LatencyHistogram,
    /// Amplification factor (envelopes caused per update), one sample
    /// per trace.
    pub amplification: LatencyHistogram,
    /// Cross-shard sends, totalled over all traces.
    pub cross_shard_hops: u64,
    /// Cross-NUMA sends, totalled over all traces.
    pub cross_numa_hops: u64,
}

/// Summarizes reconstructed traces.
pub fn summarize(traces: &[PropagationTrace]) -> TraceSummary {
    let mut s = TraceSummary::default();
    for t in traces {
        s.observed += 1;
        s.fixpoint.record(t.fixpoint_ns);
        s.hops.record(u64::from(t.depth));
        s.amplification.record(t.amplification);
        s.cross_shard_hops += t.cross_shard_hops;
        s.cross_numa_hops += t.cross_numa_hops;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_packing_roundtrips() {
        let tag = pack(42, 3);
        assert_eq!(trace_id(tag), 42);
        assert_eq!(hop_of(tag), 3);
        assert_eq!(child(0), 0, "untraced stays untraced");
        assert_eq!(hop_of(child(tag)), 4);
        assert_eq!(trace_id(child(tag)), 42);
        // Saturation at depth 255.
        let deep = pack(7, 255);
        assert_eq!(hop_of(child(deep)), 255);
        assert_eq!(trace_id(child(deep)), 7);
    }

    #[test]
    fn config_defaults_off_and_masks() {
        let c = TraceConfig::default();
        assert!(!c.enabled);
        assert_eq!(TraceConfig::off(), TraceConfig::default());
        let on = TraceConfig::on();
        assert!(on.enabled);
        assert_eq!(on.sample_mask(), 63);
        assert_eq!(on.with_sample_shift(0).sample_mask(), 0);
    }

    #[test]
    fn ring_wraps_and_reports_drops() {
        let r = SpanRing::new(64);
        for i in 0..64u64 {
            assert!(!r.record(SpanKind::Send, pack(1, 1), i, 0, 0));
        }
        assert!(r.record(SpanKind::Send, pack(1, 1), 64, 0, 0), "65th evicts");
        let dump = r.dump(0);
        assert_eq!(dump.len(), 64);
        assert_eq!(dump[0].t_ns, 1, "oldest surviving span");
        assert_eq!(dump[63].t_ns, 64);
    }

    #[test]
    fn reconstruct_builds_tree_and_drops_rootless() {
        let spans = vec![
            TraceSpan {
                shard: 0,
                kind: SpanKind::Root,
                tag: pack(5, 0),
                t_ns: 100,
                a: 7,
                b: 9,
            },
            TraceSpan {
                shard: 0,
                kind: SpanKind::Send,
                tag: pack(5, 1),
                t_ns: 110,
                a: 7,
                b: 1, // dest shard 1: cross-shard
            },
            TraceSpan {
                shard: 1,
                kind: SpanKind::Process,
                tag: pack(5, 1),
                t_ns: 150,
                a: 7,
                b: 2,
            },
            TraceSpan {
                shard: 1,
                kind: SpanKind::Send,
                tag: pack(5, 2),
                t_ns: 160,
                a: 9,
                b: 1 | (1 << 32), // self-shard but cross-NUMA flagged
            },
            TraceSpan {
                shard: 1,
                kind: SpanKind::Dominate,
                tag: pack(5, 2),
                t_ns: 170,
                a: 9,
                b: 0,
            },
            // Rootless trace: must be dropped whole.
            TraceSpan {
                shard: 0,
                kind: SpanKind::Send,
                tag: pack(99, 1),
                t_ns: 500,
                a: 1,
                b: 0,
            },
        ];
        let traces = reconstruct(&spans);
        assert_eq!(traces.len(), 1, "rootless trace dropped");
        let t = &traces[0];
        assert_eq!(t.id, 5);
        assert_eq!((t.src, t.dst), (7, 9));
        assert_eq!(t.root_shard, 0);
        assert_eq!(t.depth, 2);
        assert_eq!(t.amplification, 2);
        assert_eq!(t.processed, 1);
        assert_eq!(t.dominated, 1);
        assert_eq!(t.cross_shard_hops, 1);
        assert_eq!(t.cross_numa_hops, 1);
        assert_eq!(t.fixpoint_ns, 70);
        assert_eq!(t.hops.len(), 2);
        assert_eq!(t.hops[0].hop, 1);
        assert_eq!(t.hops[0].transit_ns, 40, "first send 110 -> process 150");
        assert_eq!(t.hops[1].hop, 2);
        // Hop depths monotone by construction of the sort.
        assert!(t.hops.windows(2).all(|w| w[0].hop < w[1].hop));
    }

    #[test]
    fn summarize_aggregates() {
        let spans = vec![
            TraceSpan {
                shard: 0,
                kind: SpanKind::Root,
                tag: pack(1, 0),
                t_ns: 10,
                a: 0,
                b: 1,
            },
            TraceSpan {
                shard: 0,
                kind: SpanKind::Send,
                tag: pack(1, 1),
                t_ns: 20,
                a: 0,
                b: 0,
            },
        ];
        let traces = reconstruct(&spans);
        let s = summarize(&traces);
        assert_eq!(s.observed, 1);
        assert_eq!(s.fixpoint.count, 1);
        assert_eq!(s.hops.count, 1);
        assert_eq!(s.amplification.count, 1);
        assert!(s.amplification.quantile_ns(0.5) >= 1.0);
    }
}
