//! Event types: the wire format of the engine.
//!
//! The programming model (§III-A) defines three key events — Edge Add, Edge
//! Reverse-Add, and Update — plus Init for algorithms with an initiation
//! vertex (Algorithm 4's `init()`). An [`Envelope`] is one visitor message:
//! it identifies the vertex being visited (`target`), the vertex that
//! created the event (`visitor`, the paper's `vis_ID`), the visitor's value
//! at event-creation time (`vis_val`), the edge weight, and the snapshot
//! epoch the event belongs to (§III-D's version identifier).

use remo_store::{VertexId, Weight};

/// Snapshot version identifier carried by every event (§III-D).
pub type Epoch = u32;

/// The kind of an algorithmic event (Algorithm 3's `VISIT_TYPE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Algorithm initiation at a vertex (e.g. choose the BFS source).
    Init,
    /// Topology change: a directed edge `visitor <- target`... more
    /// precisely the edge `[target -> visitor]` materializes at `target`,
    /// the first endpoint of the edge (§III-A).
    Add,
    /// Second half of an undirected insertion: `target` learns of the edge
    /// back to `visitor` and of the visitor's current value.
    ReverseAdd,
    /// Algorithm-generated propagation (the recursive step).
    Update,
    /// Decremental topology change (§VI-B extension): the edge
    /// `[target -> visitor]` is removed at `target`.
    Remove,
    /// Second half of an undirected removal.
    ReverseRemove,
}

impl EventKind {
    /// Stable single-byte wire encoding (WAL envelope records).
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            EventKind::Init => 0,
            EventKind::Add => 1,
            EventKind::ReverseAdd => 2,
            EventKind::Update => 3,
            EventKind::Remove => 4,
            EventKind::ReverseRemove => 5,
        }
    }

    /// Inverse of [`EventKind::as_u8`]; `None` on an unknown byte (WAL
    /// from a future format version).
    pub(crate) fn from_u8(b: u8) -> Option<EventKind> {
        Some(match b {
            0 => EventKind::Init,
            1 => EventKind::Add,
            2 => EventKind::ReverseAdd,
            3 => EventKind::Update,
            4 => EventKind::Remove,
            5 => EventKind::ReverseRemove,
            _ => return None,
        })
    }
}

/// One visitor message.
#[derive(Debug, Clone)]
pub struct Envelope<S> {
    /// Vertex being visited (`this` in Algorithm 3).
    pub target: VertexId,
    /// Vertex that created the event (`vis_ID`).
    pub visitor: VertexId,
    /// The visitor's vertex value when it created the event (`vis_val`).
    /// Default-valued for `Add`/`Init`, where no meaningful value exists.
    pub value: S,
    /// Weight of the edge the event travelled over (1 for unweighted).
    pub weight: Weight,
    pub kind: EventKind,
    /// Snapshot epoch: inherited from the triggering event; stream events
    /// are tagged at ingestion time.
    pub epoch: Epoch,
    /// Causal trace tag (`0` = untraced, the common case): trace id plus
    /// hop depth, inherited with hop+1 by every envelope generated while
    /// processing this one. Pure cargo — never consulted by the
    /// computation. See [`crate::trace`].
    pub tag: crate::trace::TraceTag,
}

/// What a control sweep does to the claimed per-query columns (see
/// [`crate::registry`] and DESIGN.md §17).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlKind {
    /// Rebuild the claimed columns from the shard's stored adjacency with
    /// all sends muted (attach backfill, phase 1).
    Prime,
    /// Propagate every non-bottom primed cell to its neighbours (attach
    /// backfill, phase 2 — recovers deltas dropped before priming).
    Flood,
    /// Reset the claimed columns to bottom (detach reclaim).
    Clear,
}

impl ControlKind {
    /// Stable single-byte wire encoding (WAL control records).
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            ControlKind::Prime => 0,
            ControlKind::Flood => 1,
            ControlKind::Clear => 2,
        }
    }

    /// Inverse of [`ControlKind::as_u8`]; `None` on an unknown byte.
    pub(crate) fn from_u8(b: u8) -> Option<ControlKind> {
        Some(match b {
            0 => ControlKind::Prime,
            1 => ControlKind::Flood,
            2 => ControlKind::Clear,
            _ => return None,
        })
    }
}

/// A control-plane request broadcast to every shard: run one sweep of
/// `kind` over the query slots named by `mask`. The algorithm layer (the
/// registry) decides per shard which bits it actually claims — see
/// [`crate::Algorithm::on_control`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlOp {
    pub kind: ControlKind,
    /// Bitmask of query slots the operation targets.
    pub mask: u64,
    /// Opaque correlation token echoed in the ack (attach generation).
    pub token: u64,
}

/// One shard's acknowledgement of a [`ControlOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlAck {
    pub shard: usize,
    /// Number of vertices the sweep visited (0 if nothing was claimed).
    pub swept: u64,
    /// Wall nanoseconds the sweep took.
    pub nanos: u64,
}

/// Whether a topology event creates or removes an edge. The core paper is
/// add-only; removal implements the §VI-B decremental extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopoOp {
    #[default]
    Add,
    Remove,
}

/// A raw topology event from an input stream: "create (or remove) edge
/// src -> dst". For undirected runs the engine generates the
/// reverse-add/remove automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoEvent {
    pub src: VertexId,
    pub dst: VertexId,
    pub weight: Weight,
    pub op: TopoOp,
}

impl TopoEvent {
    /// Unweighted edge-add event.
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        TopoEvent {
            src,
            dst,
            weight: 1,
            op: TopoOp::Add,
        }
    }

    /// Weighted edge-add event.
    pub fn weighted(src: VertexId, dst: VertexId, weight: Weight) -> Self {
        TopoEvent {
            src,
            dst,
            weight,
            op: TopoOp::Add,
        }
    }

    /// Edge-removal event (§VI-B extension).
    pub fn removal(src: VertexId, dst: VertexId) -> Self {
        TopoEvent {
            src,
            dst,
            weight: 1,
            op: TopoOp::Remove,
        }
    }
}

/// Converts an unweighted pair stream into topology events.
pub fn events_from_pairs(pairs: &[(VertexId, VertexId)]) -> Vec<TopoEvent> {
    pairs.iter().map(|&(s, d)| TopoEvent::new(s, d)).collect()
}

/// Converts a weighted triple stream into topology events.
pub fn events_from_weighted(pairs: &[(VertexId, VertexId, Weight)]) -> Vec<TopoEvent> {
    pairs
        .iter()
        .map(|&(s, d, w)| TopoEvent::weighted(s, d, w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topo_event_constructors() {
        assert_eq!(TopoEvent::new(1, 2).weight, 1);
        assert_eq!(TopoEvent::weighted(1, 2, 9).weight, 9);
    }

    #[test]
    fn pair_conversions() {
        let evs = events_from_pairs(&[(1, 2), (3, 4)]);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0], TopoEvent::new(1, 2));
        let evs = events_from_weighted(&[(1, 2, 5)]);
        assert_eq!(evs[0].weight, 5);
    }
}
