//! Per-shard and aggregated run metrics.
//!
//! The paper's headline metric is topology events per second at ingestion
//! saturation (§V). These counters let the benches compute that, plus the
//! message-amplification statistics the per-algorithm comparisons need
//! (how many Update events did one topology event fan out into?).
//!
//! Since PR 5 the counter set is declared once through `shard_metrics!`
//! so that the struct, `merge`, and the word-array serialization used by
//! the live telemetry snapshot cells ([`crate::telemetry`]) can never
//! drift apart: every counter added here automatically shows up in
//! [`ShardMetrics::COUNTER_NAMES`], in `Engine::metrics_now()`, and in the
//! Prometheus/JSON exports.

/// Declares the shard counter set exactly once.
///
/// Expands to the `ShardMetrics` struct plus `merge`, `to_words`,
/// `from_words`, and the `COUNTER_NAMES` table — all index-aligned, so the
/// telemetry seqlock cells can ship counters as a flat `[u64; N]` and the
/// exporters can iterate names without a hand-maintained list.
macro_rules! shard_metrics {
    ($($(#[$meta:meta])* $field:ident),* $(,)?) => {
        /// Counters owned (unsynchronized) by one shard and merged at
        /// shutdown. Mid-run, each shard also publishes them through a
        /// seqlock snapshot cell (see [`crate::telemetry`]) at batch
        /// boundaries.
        #[derive(Debug, Default, Clone, PartialEq, Eq)]
        pub struct ShardMetrics {
            $($(#[$meta])* pub $field: u64,)*
        }

        impl ShardMetrics {
            /// Number of counters — the width of a telemetry snapshot
            /// payload in `u64` words.
            pub const COUNTER_WORDS: usize = [$(stringify!($field)),*].len();

            /// Snake-case counter names, index-aligned with
            /// [`ShardMetrics::to_words`]. The Prometheus exporter derives
            /// the `remo_<name>_total` family names from this table.
            pub const COUNTER_NAMES: [&'static str; Self::COUNTER_WORDS] =
                [$(stringify!($field)),*];

            /// Serializes every counter into `words` (index-aligned with
            /// [`ShardMetrics::COUNTER_NAMES`]).
            pub fn to_words(&self, words: &mut [u64; Self::COUNTER_WORDS]) {
                let mut i = 0;
                $(words[i] = self.$field; i += 1;)*
                let _ = i;
            }

            /// Rebuilds a metrics value from a snapshot word array.
            pub fn from_words(words: &[u64; Self::COUNTER_WORDS]) -> Self {
                let mut i = 0;
                $(let $field = words[i]; i += 1;)*
                let _ = i;
                ShardMetrics { $($field),* }
            }

            /// Merges `other` into `self`.
            pub fn merge(&mut self, other: &ShardMetrics) {
                $(self.$field += other.$field;)*
            }
        }
    };
}

shard_metrics! {
    /// Topology events pulled from this shard's input streams.
    topo_ingested,
    /// Envelope counts by kind, as processed.
    init_events,
    add_events,
    reverse_add_events,
    update_events,
    /// Decremental events processed (§VI-B extension).
    remove_events,
    /// Envelopes sent to other shards (or self) through channels.
    envelopes_sent,
    /// New edges inserted into this shard's tables.
    edges_inserted,
    /// Duplicate edge insertions observed.
    duplicate_edges,
    /// Edges removed from this shard's tables.
    edges_removed,
    /// Trigger callbacks fired from this shard.
    triggers_fired,
    /// Vertex state forks performed for snapshot epochs.
    snapshot_forks,
    /// Safra tokens forwarded (0 in counter mode).
    safra_tokens,
    /// Faults injected on this shard by the configured
    /// [`FaultPlan`](crate::FaultPlan) (0 outside chaos runs).
    faults_injected,
    /// Outbound envelopes deliberately lost by fault injection.
    envelopes_dropped,
    /// Envelopes retired because their destination channel was already
    /// closed (engine teardown, or the destination shard died).
    envelopes_undeliverable,
    /// `Update` envelopes absorbed into an already-pending envelope for the
    /// same (target, visitor, weight, epoch) via [`Algorithm::join`]
    /// (lattice coalescing; never counted as sent).
    ///
    /// [`Algorithm::join`]: crate::Algorithm::join
    envelopes_coalesced,
    /// Incoming `Update` envelopes retired without running the callback
    /// because their value could not improve the target's live state
    /// (lattice dominance filtering). These envelopes were sent and count
    /// toward [`RunMetrics::verify_balance`].
    updates_dominated,
    /// Self-routed `Update` envelopes suppressed *before* sending because
    /// the local live state already dominated them. Unlike
    /// `updates_dominated` these are never counted as sent.
    updates_suppressed,
    /// Pending `Update` envelopes the priority heap drained ahead of an
    /// earlier-staged envelope — how often best-first actually reordered.
    heap_reorders,
    /// Envelope batches shipped over an SPSC data lane (Lanes transport;
    /// 0 under the channel transport).
    lane_batches,
    /// `flush()` calls that reused a pooled batch buffer from a recycle
    /// lane instead of allocating — `batches_recycled / lane_batches` is
    /// the pool hit rate the transport ablation asserts on.
    batches_recycled,
    /// Batches diverted to the channel path because their pair's data
    /// lane was full (plus the pair's FIFO-handshake tail — see
    /// `LaneMesh::fallback_consumed`).
    lane_full_fallbacks,
    /// Times this shard actually unparked a sleeping peer after
    /// publishing work for it (event-driven wakeups that fired).
    unparks,
    /// Times this shard went to sleep in its idle loop (parked on the
    /// `ParkBoard` or timed out on the
    /// channel receive). `idle_parks / (idle_parks + events_processed)`
    /// is the park-ratio gauge.
    idle_parks,
    /// WAL records appended (accepted external envelopes + pulled topology
    /// events). 0 when durability is off.
    wal_records_appended,
    /// Bytes fsynced into the WAL, framing included.
    wal_bytes,
    /// Checkpoints staged *and* published by this shard.
    checkpoints_written,
    /// WAL records re-processed during recovery replay (warm respawn or
    /// cold restart).
    replayed_records,
    /// Times this shard was respawned in place after a contained panic.
    shard_respawns,
    /// Envelopes retired unprocessed by the post-panic custody sweep so the
    /// termination books stay balanced; replay re-derives their effects.
    envelopes_recovered,
    /// Idle passes where the shard deferred a partial-batch flush and
    /// re-drained its inbound paths instead (lane flush hysteresis; see
    /// `EngineConfig::flush_hysteresis`). Bounded per idle episode, so
    /// this never delays quiescence — buffered envelopes are already
    /// counted sent.
    flush_deferrals,
    /// Decision windows the adaptive data-path controller evaluated
    /// (including windows that changed nothing). 0 when adaptation is off.
    adaptive_decisions,
    /// Adaptive decisions that switched sender-side coalescing ON for this
    /// shard (observed redundancy crossed the enable threshold).
    adaptive_coalesce_on,
    /// Adaptive decisions that switched sender-side coalescing OFF (the
    /// measured coalesce hit-rate no longer paid for the staging cost).
    adaptive_coalesce_off,
    /// Adaptive decisions that grew this shard's effective envelope batch
    /// (batches were shipping full — amortize more per flush/wake).
    adaptive_batch_grow,
    /// Adaptive decisions that shrank this shard's effective envelope
    /// batch (batches shipped mostly empty at idle — flush sooner).
    adaptive_batch_shrink,
    /// Lane batches this shard shipped to a shard seated on a *different*
    /// NUMA node (placement telemetry: compact placement should drive
    /// this toward 0, scatter toward `(nodes-1)/nodes` of
    /// `lane_batches`). Purely informational — batches, not envelopes,
    /// and only counted when both ends are pinned — so it stays outside
    /// [`RunMetrics::verify_balance`]. 0 when placement is off.
    lane_cross_node_batches,
    /// Idle waits a *pinned* shard resolved inside its bounded pre-park
    /// spin (work arrived within the spin budget — no park/unpark round
    /// trip). 0 for unpinned shards, which never spin.
    spin_wakes,
    /// Control-plane sweeps executed (registry attach backfill, flood,
    /// and detach clears). 0 outside multi-query runs.
    control_sweeps,
    /// Vertices visited by control-plane sweeps (each sweep walks the
    /// shard's whole resident vertex set once).
    sweep_vertices,
    /// Nanoseconds spent draining inbound envelope paths that yielded no
    /// work (empty polls). Phase counters are 0 when
    /// `TelemetryConfig::phase_accounting` is off.
    phase_drain_ns,
    /// Nanoseconds spent servicing envelopes and ingesting topology
    /// (callback dispatch, routing, dominance filtering).
    phase_process_ns,
    /// Nanoseconds spent flushing outgoing batches, running the adaptive
    /// controller tick, and publishing telemetry.
    phase_flush_ns,
    /// Nanoseconds a pinned shard spent in its bounded pre-park spin and
    /// in flush-hysteresis yields.
    phase_spin_ns,
    /// Nanoseconds spent parked (or blocked on the channel receive)
    /// waiting for work.
    phase_park_ns,
    /// Nanoseconds spent staging and publishing durable checkpoints.
    phase_checkpoint_ns,
    /// Nanoseconds spent in WAL recovery replay (respawn or cold
    /// restart).
    phase_replay_ns,
    /// Total nanoseconds this shard's run loop was alive (the wall the
    /// other `phase_*_ns` counters decompose; park time included). The
    /// decomposition invariant — sum of phases ≤ busy — is checked by
    /// [`RunMetrics::verify_balance`].
    phase_busy_ns,
    /// Sampled external ingests that minted a propagation trace. 0 when
    /// tracing is off.
    trace_roots,
    /// Span records appended to this shard's trace ring (root, send,
    /// process, absorb, dominate, suppress, replay).
    trace_spans,
    /// Span records that evicted an older span because the bounded trace
    /// ring wrapped (see the ring-overflow policy in [`crate::trace`]).
    trace_spans_dropped,
}

impl ShardMetrics {
    /// Total algorithmic envelopes processed.
    pub fn events_processed(&self) -> u64 {
        self.init_events
            + self.add_events
            + self.reverse_add_events
            + self.update_events
            + self.remove_events
    }

    /// Sum of the attributed phase nanoseconds (everything except
    /// `phase_busy_ns`, which is the wall they decompose).
    pub fn phase_sum_ns(&self) -> u64 {
        self.phase_drain_ns
            + self.phase_process_ns
            + self.phase_flush_ns
            + self.phase_spin_ns
            + self.phase_park_ns
            + self.phase_checkpoint_ns
            + self.phase_replay_ns
    }
}

/// Number of log2 buckets in a [`LatencyHistogram`]: bucket `i` covers
/// latencies whose nanosecond value has bit-length `i` (i.e. `[2^(i-1),
/// 2^i)`), so 64 buckets span the full `u64` range allocation-free.
pub const HIST_BUCKETS: usize = 64;

/// Fixed-size log-bucketed latency histogram (HDR-style, allocation-free).
///
/// Buckets are powers of two in nanoseconds: a sample lands in the bucket
/// equal to its bit length, giving a constant ≤ 2× relative error on
/// quantiles — plenty for p50/p99/p999 service-time tracking — with zero
/// allocation and O(1) record. Each shard owns one per tracked latency;
/// they are merged on harvest and snapshotted by [`crate::telemetry`]
/// mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Bucket `i` counts samples with nanosecond bit-length `i`
    /// (bucket 0 is exactly the 0 ns samples).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded nanoseconds (mean = `sum_ns / count`).
    pub sum_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (usable in `const`/`static` contexts).
    pub const fn new() -> Self {
        LatencyHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }

    /// Bucket index for a nanosecond sample: its bit length, clamped.
    #[inline]
    pub fn bucket_index(ns: u64) -> usize {
        ((u64::BITS - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Records one sample. O(1), allocation-free.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds `other`'s samples into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Quantile estimate in nanoseconds, linearly interpolated inside the
    /// selected log2 bucket. `q` in `[0, 1]`; returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if i == 0 {
                    0.0
                } else {
                    (1u64 << (i - 1)) as f64
                };
                let hi = if i == 0 { 1.0 } else { (i as f64).exp2() };
                let frac = (rank - seen) as f64 / c as f64;
                return lo + frac * (hi - lo);
            }
            seen += c;
        }
        self.sum_ns as f64 / self.count as f64
    }

    /// `(p50, p99, p999)` in microseconds — the triple surfaced in
    /// `RunMetrics` and every `BENCH_*.json`.
    pub fn quantiles_us(&self) -> (f64, f64, f64) {
        (
            self.quantile_ns(0.50) / 1_000.0,
            self.quantile_ns(0.99) / 1_000.0,
            self.quantile_ns(0.999) / 1_000.0,
        )
    }
}

/// Aggregated metrics for a whole run.
#[derive(Debug, Default, Clone)]
pub struct RunMetrics {
    /// Per-shard breakdown, indexed by shard id. Shards listed in
    /// `lost_shards` hold the counters recovered from their last telemetry
    /// snapshot cell (zeros when telemetry counters were off): a panicked
    /// shard's work up to the batch boundary before its death still counts
    /// toward degraded-run throughput.
    pub per_shard: Vec<ShardMetrics>,
    /// Shards whose final counters could not be harvested directly because
    /// the shard failed before shutdown (failure accounting for degraded
    /// runs). Their `per_shard` slots hold last-snapshot values, which may
    /// trail the truth by up to one publish interval.
    pub lost_shards: Vec<usize>,
    /// Envelopes sent by the controller thread itself (vertex
    /// initialization via `Engine::try_init_vertex` / algorithm seeding) —
    /// sends that no shard's `envelopes_sent` covers, needed to close the
    /// conservation equation in [`RunMetrics::verify_balance`].
    pub controller_sent: u64,
    /// Event service time: callback dispatch through outgoing routing, per
    /// processed envelope (sampled; see `TelemetryConfig::sample_shift`).
    pub service: LatencyHistogram,
    /// Lane flush latency: one `flush()` of an outgoing batch (Lanes
    /// transport; empty under the channel transport).
    pub flush: LatencyHistogram,
    /// Quiescence-detection latency: entry into
    /// `Engine::try_await_quiescence` until the counters balanced.
    pub quiesce: LatencyHistogram,
    /// Ingest→fixpoint latency: first ingest after a quiescent point until
    /// the next detected quiescence (one sample per settled epoch).
    pub ingest_fixpoint: LatencyHistogram,
    /// Checkpoint duration: staging through publish of one durable
    /// checkpoint (empty when durability is off).
    pub checkpoint: LatencyHistogram,
}

impl RunMetrics {
    /// Sum over shards.
    pub fn total(&self) -> ShardMetrics {
        let mut t = ShardMetrics::default();
        for m in &self.per_shard {
            t.merge(m);
        }
        t
    }

    /// Update events generated per topology event — the algorithm's message
    /// amplification factor.
    pub fn amplification(&self) -> f64 {
        let t = self.total();
        if t.topo_ingested == 0 {
            0.0
        } else {
            t.update_events as f64 / t.topo_ingested as f64
        }
    }

    /// Checks envelope conservation: every envelope counted as sent must be
    /// accounted for exactly once —
    ///
    /// ```text
    /// envelopes_sent + controller_sent
    ///   == events_processed + updates_dominated
    ///    + envelopes_undeliverable + envelopes_dropped
    ///    + envelopes_recovered
    /// ```
    ///
    /// Coalesced envelopes are absorbed *before* sending and never counted
    /// as sent (the surviving carrier envelope is counted once); likewise
    /// `updates_suppressed` never enter the sent side. Dominance-retired
    /// envelopes were sent, so they appear on the right. Envelopes swept
    /// out of a panicked shard's queues before an in-place respawn were
    /// sent but never serviced; the custody sweep retires them under
    /// `envelopes_recovered` (their effects are re-derived from the WAL,
    /// and replay-generated traffic is fresh-counted on both sides).
    ///
    /// The equation only closes on runs that reached quiescence with all
    /// shards alive: a lost shard's last snapshot can trail its true
    /// counters, and in-flight envelopes at the moment of death are
    /// unaccounted. `try_finish` debug-asserts this on every clean
    /// harvest; chaos and property suites call it explicitly.
    ///
    /// Since PR 10 this also checks the phase-accounting decomposition
    /// (per shard, attributed phase nanoseconds ≤ busy wall plus 1 ms of
    /// `Instant` truncation slack) and trace-plane sanity
    /// (`trace_spans_dropped ≤ trace_spans`, `trace_roots ≤ trace_spans`).
    pub fn verify_balance(&self) -> Result<(), String> {
        let t = self.total();
        let sent = t.envelopes_sent + self.controller_sent;
        let accounted = t.events_processed()
            + t.updates_dominated
            + t.envelopes_undeliverable
            + t.envelopes_dropped
            + t.envelopes_recovered;
        // Phase accounting: the attributed phases must decompose the busy
        // wall they were carved out of. Each phase lap stops before the
        // busy charge, so per shard sum(phases) ≤ busy up to `Instant`
        // truncation drift; allow 1 ms of slack per shard for that drift.
        for (i, m) in self.per_shard.iter().enumerate() {
            let slack = 1_000_000;
            if m.phase_sum_ns() > m.phase_busy_ns + slack {
                return Err(format!(
                    "phase accounting violated on shard {i}: attributed {} ns \
                     exceeds busy wall {} ns",
                    m.phase_sum_ns(),
                    m.phase_busy_ns,
                ));
            }
        }
        // Trace plane: every drop is a recorded span that evicted another,
        // and every root minted a span.
        if t.trace_spans_dropped > t.trace_spans {
            return Err(format!(
                "trace accounting violated: {} spans dropped > {} recorded",
                t.trace_spans_dropped, t.trace_spans,
            ));
        }
        if t.trace_roots > t.trace_spans {
            return Err(format!(
                "trace accounting violated: {} roots > {} spans recorded",
                t.trace_roots, t.trace_spans,
            ));
        }
        if sent == accounted {
            Ok(())
        } else {
            Err(format!(
                "envelope balance violated: sent {} (shards {} + controller {}) \
                 != accounted {} (processed {} + dominated {} + undeliverable {} \
                 + dropped {} + recovered {})",
                sent,
                t.envelopes_sent,
                self.controller_sent,
                accounted,
                t.events_processed(),
                t.updates_dominated,
                t.envelopes_undeliverable,
                t.envelopes_dropped,
                t.envelopes_recovered,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = ShardMetrics {
            add_events: 2,
            update_events: 3,
            ..Default::default()
        };
        let b = ShardMetrics {
            add_events: 5,
            triggers_fired: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.add_events, 7);
        assert_eq!(a.update_events, 3);
        assert_eq!(a.triggers_fired, 1);
    }

    #[test]
    fn merge_adds_lattice_counters() {
        let mut a = ShardMetrics {
            envelopes_coalesced: 2,
            updates_dominated: 3,
            heap_reorders: 5,
            ..Default::default()
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.envelopes_coalesced, 4);
        assert_eq!(a.updates_dominated, 6);
        assert_eq!(a.heap_reorders, 10);
    }

    #[test]
    fn merge_adds_transport_counters() {
        let mut a = ShardMetrics {
            lane_batches: 10,
            batches_recycled: 9,
            lane_full_fallbacks: 2,
            unparks: 7,
            idle_parks: 3,
            ..Default::default()
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.lane_batches, 20);
        assert_eq!(a.batches_recycled, 18);
        assert_eq!(a.lane_full_fallbacks, 4);
        assert_eq!(a.unparks, 14);
        assert_eq!(a.idle_parks, 6);
    }

    #[test]
    fn events_processed_sums_kinds() {
        let m = ShardMetrics {
            init_events: 1,
            add_events: 2,
            reverse_add_events: 3,
            update_events: 4,
            ..Default::default()
        };
        assert_eq!(m.events_processed(), 10);
    }

    #[test]
    fn words_roundtrip_and_names_align() {
        assert_eq!(
            ShardMetrics::COUNTER_NAMES.len(),
            ShardMetrics::COUNTER_WORDS
        );
        // Every name unique.
        for (i, a) in ShardMetrics::COUNTER_NAMES.iter().enumerate() {
            for b in &ShardMetrics::COUNTER_NAMES[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Fill each counter with a distinct value through the words array
        // and verify the roundtrip is exact and index-aligned.
        let mut words = [0u64; ShardMetrics::COUNTER_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = (i as u64 + 1) * 7;
        }
        let m = ShardMetrics::from_words(&words);
        let mut back = [0u64; ShardMetrics::COUNTER_WORDS];
        m.to_words(&mut back);
        assert_eq!(words, back);
        // Spot-check alignment for a couple of known fields.
        let topo_idx = ShardMetrics::COUNTER_NAMES
            .iter()
            .position(|n| *n == "topo_ingested")
            .unwrap();
        assert_eq!(m.topo_ingested, words[topo_idx]);
        let parks_idx = ShardMetrics::COUNTER_NAMES
            .iter()
            .position(|n| *n == "idle_parks")
            .unwrap();
        assert_eq!(m.idle_parks, words[parks_idx]);
    }

    #[test]
    fn amplification_guards_division() {
        let r = RunMetrics {
            per_shard: vec![ShardMetrics::default()],
            ..Default::default()
        };
        assert_eq!(r.amplification(), 0.0);
        let r = RunMetrics {
            per_shard: vec![ShardMetrics {
                topo_ingested: 10,
                update_events: 30,
                ..Default::default()
            }],
            ..Default::default()
        };
        assert!((r.amplification() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn verify_balance_closes_and_reports() {
        let balanced = RunMetrics {
            per_shard: vec![ShardMetrics {
                envelopes_sent: 10,
                add_events: 6,
                update_events: 2,
                updates_dominated: 2,
                envelopes_coalesced: 3, // absorbed pre-send: not in equation
                updates_suppressed: 4,  // suppressed pre-send: not in equation
                ..Default::default()
            }],
            controller_sent: 0,
            ..Default::default()
        };
        assert!(balanced.verify_balance().is_ok());

        let unbalanced = RunMetrics {
            per_shard: vec![ShardMetrics {
                envelopes_sent: 10,
                add_events: 6,
                ..Default::default()
            }],
            controller_sent: 1,
            ..Default::default()
        };
        let err = unbalanced.verify_balance().unwrap_err();
        assert!(err.contains("sent 11"), "{err}");
    }

    #[test]
    fn verify_balance_checks_phase_and_trace_accounting() {
        let ok = RunMetrics {
            per_shard: vec![ShardMetrics {
                phase_process_ns: 600,
                phase_park_ns: 300,
                phase_busy_ns: 1_000,
                trace_roots: 1,
                trace_spans: 5,
                trace_spans_dropped: 2,
                ..Default::default()
            }],
            ..Default::default()
        };
        assert!(ok.verify_balance().is_ok());
        assert_eq!(ok.per_shard[0].phase_sum_ns(), 900);

        // Attributed phases exceeding busy beyond the 1 ms slack fail.
        let over = RunMetrics {
            per_shard: vec![ShardMetrics {
                phase_process_ns: 3_000_000,
                phase_busy_ns: 1_000_000,
                ..Default::default()
            }],
            ..Default::default()
        };
        let err = over.verify_balance().unwrap_err();
        assert!(err.contains("phase accounting violated"), "{err}");

        // More drops than spans is impossible by construction.
        let drops = RunMetrics {
            per_shard: vec![ShardMetrics {
                trace_spans: 1,
                trace_spans_dropped: 2,
                ..Default::default()
            }],
            ..Default::default()
        };
        let err = drops.verify_balance().unwrap_err();
        assert!(err.contains("spans dropped"), "{err}");

        // More roots than spans is impossible: each root records a span.
        let roots = RunMetrics {
            per_shard: vec![ShardMetrics {
                trace_roots: 3,
                trace_spans: 2,
                ..Default::default()
            }],
            ..Default::default()
        };
        let err = roots.verify_balance().unwrap_err();
        assert!(err.contains("roots"), "{err}");
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile_ns(0.99), 0.0);
        for _ in 0..90 {
            h.record(1_000); // bit length 10 -> bucket 10: [512, 1024)
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket 20: [524288, 1048576)
        }
        assert_eq!(h.count, 100);
        let p50 = h.quantile_ns(0.50);
        assert!((512.0..1024.0).contains(&p50), "p50={p50}");
        let p999 = h.quantile_ns(0.999);
        assert!((524_288.0..=1_048_576.0).contains(&p999), "p999={p999}");
        // Log-bucket estimate stays within 2x of the true value.
        assert!(p50 <= 2.0 * 1_000.0 && 2.0 * p50 >= 1_000.0);
        assert!(p999 <= 2.0 * 1_000_000.0 && 2.0 * p999 >= 1_000_000.0);
        let (p50_us, p99_us, p999_us) = h.quantiles_us();
        assert!(p50_us <= p99_us && p99_us <= p999_us);
    }

    #[test]
    fn histogram_merge_and_edges() {
        let mut a = LatencyHistogram::new();
        a.record(0);
        a.record(1);
        a.record(u64::MAX); // clamps to the top bucket
        let mut b = LatencyHistogram::new();
        b.record(7);
        b.merge(&a);
        assert_eq!(b.count, 4);
        assert_eq!(b.buckets[0], 1);
        assert_eq!(b.buckets[1], 1);
        assert_eq!(b.buckets[3], 1); // 7 has bit length 3
        assert_eq!(b.buckets[HIST_BUCKETS - 1], 1);
        assert!(b.mean_ns() > 0.0);
    }
}
