//! Per-shard and aggregated run metrics.
//!
//! The paper's headline metric is topology events per second at ingestion
//! saturation (§V). These counters let the benches compute that, plus the
//! message-amplification statistics the per-algorithm comparisons need
//! (how many Update events did one topology event fan out into?).

/// Counters owned (unsynchronized) by one shard and merged at shutdown.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Topology events pulled from this shard's input streams.
    pub topo_ingested: u64,
    /// Envelope counts by kind, as processed.
    pub init_events: u64,
    pub add_events: u64,
    pub reverse_add_events: u64,
    pub update_events: u64,
    /// Decremental events processed (§VI-B extension).
    pub remove_events: u64,
    /// Envelopes sent to other shards (or self) through channels.
    pub envelopes_sent: u64,
    /// New edges inserted into this shard's tables.
    pub edges_inserted: u64,
    /// Duplicate edge insertions observed.
    pub duplicate_edges: u64,
    /// Edges removed from this shard's tables.
    pub edges_removed: u64,
    /// Trigger callbacks fired from this shard.
    pub triggers_fired: u64,
    /// Vertex state forks performed for snapshot epochs.
    pub snapshot_forks: u64,
    /// Safra tokens forwarded (0 in counter mode).
    pub safra_tokens: u64,
    /// Faults injected on this shard by the configured
    /// [`FaultPlan`](crate::FaultPlan) (0 outside chaos runs).
    pub faults_injected: u64,
    /// Outbound envelopes deliberately lost by fault injection.
    pub envelopes_dropped: u64,
    /// Envelopes retired because their destination channel was already
    /// closed (engine teardown, or the destination shard died).
    pub envelopes_undeliverable: u64,
    /// `Update` envelopes absorbed into an already-pending envelope for the
    /// same (target, visitor, weight, epoch) via [`Algorithm::join`]
    /// (lattice coalescing; never counted as sent).
    ///
    /// [`Algorithm::join`]: crate::Algorithm::join
    pub envelopes_coalesced: u64,
    /// Incoming `Update` envelopes retired without running the callback
    /// because their value could not improve the target's live state
    /// (lattice dominance filtering).
    pub updates_dominated: u64,
    /// Pending `Update` envelopes the priority heap drained ahead of an
    /// earlier-staged envelope — how often best-first actually reordered.
    pub heap_reorders: u64,
    /// Envelope batches shipped over an SPSC data lane (Lanes transport;
    /// 0 under the channel transport).
    pub lane_batches: u64,
    /// `flush()` calls that reused a pooled batch buffer from a recycle
    /// lane instead of allocating — `batches_recycled / lane_batches` is
    /// the pool hit rate the transport ablation asserts on.
    pub batches_recycled: u64,
    /// Batches diverted to the channel path because their pair's data
    /// lane was full (plus the pair's FIFO-handshake tail — see
    /// `LaneMesh::fallback_consumed`).
    pub lane_full_fallbacks: u64,
    /// Times this shard actually unparked a sleeping peer after
    /// publishing work for it (event-driven wakeups that fired).
    pub unparks: u64,
}

impl ShardMetrics {
    /// Total algorithmic envelopes processed.
    pub fn events_processed(&self) -> u64 {
        self.init_events
            + self.add_events
            + self.reverse_add_events
            + self.update_events
            + self.remove_events
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &ShardMetrics) {
        self.topo_ingested += other.topo_ingested;
        self.init_events += other.init_events;
        self.add_events += other.add_events;
        self.reverse_add_events += other.reverse_add_events;
        self.update_events += other.update_events;
        self.remove_events += other.remove_events;
        self.edges_removed += other.edges_removed;
        self.envelopes_sent += other.envelopes_sent;
        self.edges_inserted += other.edges_inserted;
        self.duplicate_edges += other.duplicate_edges;
        self.triggers_fired += other.triggers_fired;
        self.snapshot_forks += other.snapshot_forks;
        self.safra_tokens += other.safra_tokens;
        self.faults_injected += other.faults_injected;
        self.envelopes_dropped += other.envelopes_dropped;
        self.envelopes_undeliverable += other.envelopes_undeliverable;
        self.envelopes_coalesced += other.envelopes_coalesced;
        self.updates_dominated += other.updates_dominated;
        self.heap_reorders += other.heap_reorders;
        self.lane_batches += other.lane_batches;
        self.batches_recycled += other.batches_recycled;
        self.lane_full_fallbacks += other.lane_full_fallbacks;
        self.unparks += other.unparks;
    }
}

/// Aggregated metrics for a whole run.
#[derive(Debug, Default, Clone)]
pub struct RunMetrics {
    /// Per-shard breakdown, indexed by shard id. Shards listed in
    /// `lost_shards` hold default (zero) metrics: their counters died with
    /// them.
    pub per_shard: Vec<ShardMetrics>,
    /// Shards whose metrics could not be harvested because the shard
    /// failed before shutdown (failure accounting for degraded runs).
    pub lost_shards: Vec<usize>,
}

impl RunMetrics {
    /// Sum over shards.
    pub fn total(&self) -> ShardMetrics {
        let mut t = ShardMetrics::default();
        for m in &self.per_shard {
            t.merge(m);
        }
        t
    }

    /// Update events generated per topology event — the algorithm's message
    /// amplification factor.
    pub fn amplification(&self) -> f64 {
        let t = self.total();
        if t.topo_ingested == 0 {
            0.0
        } else {
            t.update_events as f64 / t.topo_ingested as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = ShardMetrics {
            add_events: 2,
            update_events: 3,
            ..Default::default()
        };
        let b = ShardMetrics {
            add_events: 5,
            triggers_fired: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.add_events, 7);
        assert_eq!(a.update_events, 3);
        assert_eq!(a.triggers_fired, 1);
    }

    #[test]
    fn merge_adds_lattice_counters() {
        let mut a = ShardMetrics {
            envelopes_coalesced: 2,
            updates_dominated: 3,
            heap_reorders: 5,
            ..Default::default()
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.envelopes_coalesced, 4);
        assert_eq!(a.updates_dominated, 6);
        assert_eq!(a.heap_reorders, 10);
    }

    #[test]
    fn merge_adds_transport_counters() {
        let mut a = ShardMetrics {
            lane_batches: 10,
            batches_recycled: 9,
            lane_full_fallbacks: 2,
            unparks: 7,
            ..Default::default()
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.lane_batches, 20);
        assert_eq!(a.batches_recycled, 18);
        assert_eq!(a.lane_full_fallbacks, 4);
        assert_eq!(a.unparks, 14);
    }

    #[test]
    fn events_processed_sums_kinds() {
        let m = ShardMetrics {
            init_events: 1,
            add_events: 2,
            reverse_add_events: 3,
            update_events: 4,
            ..Default::default()
        };
        assert_eq!(m.events_processed(), 10);
    }

    #[test]
    fn amplification_guards_division() {
        let r = RunMetrics {
            per_shard: vec![ShardMetrics::default()],
            ..Default::default()
        };
        assert_eq!(r.amplification(), 0.0);
        let r = RunMetrics {
            per_shard: vec![ShardMetrics {
                topo_ingested: 10,
                update_events: 30,
                ..Default::default()
            }],
            ..Default::default()
        };
        assert!((r.amplification() - 3.0).abs() < 1e-9);
    }
}
