//! Local-state triggers: the "When" in graph processing (§II, §III-E).
//!
//! A trigger is a user-defined predicate over `(vertex, local state)`. The
//! engine evaluates the registered triggers for a vertex every time that
//! vertex's state changes, on the shard that owns the vertex — local state
//! "can be observed immediately, at a low cost, during algorithm execution".
//!
//! For REMO algorithms the paper guarantees (§III-E): no false positives
//! (monotone state never regresses out of a satisfied predicate) and
//! at-most-once firing. The engine enforces the at-most-once half with a
//! per-vertex fired bitmask; the no-false-positives half is a property of
//! the algorithm's monotone predicate, asserted by integration tests.

use remo_store::VertexId;

/// Maximum number of triggers per engine (fired flags live in a `u32`).
pub const MAX_TRIGGERS: usize = 32;

/// Boxed trigger predicate over `(vertex, state)`.
pub type TriggerPredicate<S> = Box<dyn Fn(VertexId, &S) -> bool + Send + Sync>;

/// A registered trigger: predicate over local state.
pub struct TriggerDef<S> {
    /// Human-readable label, carried into [`TriggerFire`] reports.
    pub label: String,
    /// Predicate over `(vertex, state)`. Must be monotone for REMO
    /// guarantees to hold: once true, forever true.
    pub predicate: TriggerPredicate<S>,
}

/// A trigger firing, delivered to the controller in real time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerFire {
    /// Index of the trigger (registration order).
    pub trigger: usize,
    /// Vertex whose local state satisfied the predicate.
    pub vertex: VertexId,
    /// Shard that observed the fire.
    pub shard: usize,
    /// The observing shard's event sequence number at fire time — a
    /// causally meaningful local timestamp ("when" in event-time).
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_def_evaluates() {
        let t = TriggerDef::<u64> {
            label: "level<=2".into(),
            predicate: Box::new(|_, s| *s <= 2),
        };
        assert!((t.predicate)(1, &2));
        assert!(!(t.predicate)(1, &3));
    }

    #[test]
    fn fire_equality() {
        let a = TriggerFire {
            trigger: 0,
            vertex: 5,
            shard: 1,
            seq: 10,
        };
        assert_eq!(a.clone(), a);
    }
}
