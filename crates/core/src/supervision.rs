//! Engine supervision: failure taxonomy, the shard failure board, and the
//! chaos-injection [`FaultPlan`].
//!
//! The paper's system (and the seed reproduction) assumes every process
//! stays alive for the whole run. This module supplies what a production
//! deployment needs instead: a shard that panics publishes a structured
//! [`ShardFailure`] to a shared [`FailureBoard`] rather than silently
//! dying, and every controller-side wait carries a deadline so the engine
//! surfaces [`EngineError`] instead of hanging. The [`FaultPlan`] hook lets
//! the chaos test-suite inject panics, delivery delays, and envelope loss
//! deterministically; with the default (empty) plan the per-shard cost is a
//! single predictable branch off the data path.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::event::Epoch;

/// Structured record of one shard's death, published to the controller by
/// the `catch_unwind` wrapper around the shard worker loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// The shard that died.
    pub id: usize,
    /// The panic payload, rendered to a string (or a synthetic description
    /// for non-panic losses such as an unresponsive shutdown).
    pub payload: String,
    /// The last snapshot epoch the shard acknowledged before dying —
    /// snapshots at or before this epoch were fully served by the shard.
    pub last_epoch: Epoch,
    /// Flight-recorder dump: the shard's most recent structured events
    /// (rendered, oldest first), captured by the `catch_unwind` wrapper on
    /// the dying shard's own thread — or by the harvest path for shards
    /// that stopped answering. Empty when the flight recorder is off
    /// (see [`TelemetryConfig`](crate::TelemetryConfig)).
    pub trace: Vec<String>,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} failed at epoch {}: {}",
            self.id, self.last_epoch, self.payload
        )?;
        if !self.trace.is_empty() {
            write!(f, " ({} flight-recorder entries)", self.trace.len())?;
        }
        Ok(())
    }
}

/// Failure taxonomy for supervised engine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// One or more shards panicked; the failures carry the panic payloads.
    ShardPanicked {
        /// Every failure recorded so far, in order of occurrence.
        failures: Vec<ShardFailure>,
    },
    /// A shard's channel was closed without a recorded panic (the shard
    /// exited some other way, or the engine is mid-teardown).
    ChannelClosed {
        /// The shard whose channel rejected the send.
        shard: usize,
    },
    /// A configured deadline expired before the engine reached the
    /// requested state (quiescence, snapshot barrier, or a query reply).
    QuiescenceTimeout {
        /// How long the caller waited before giving up.
        waited: Duration,
    },
    /// A collection completed only partially: some shards answered, others
    /// were lost or timed out. Surviving fragments were discarded; use
    /// [`Engine::try_finish`](crate::Engine::try_finish) to harvest
    /// surviving-shard state after a failure.
    Degraded {
        /// Every failure recorded so far.
        failures: Vec<ShardFailure>,
        /// Shards that did answer before the collection aborted.
        answered: usize,
        /// Shards that were asked.
        expected: usize,
    },
    /// The durable directory cannot back this engine: no durability in
    /// the config, an unreadable/malformed `MANIFEST`, or state written
    /// by an engine of a different shape (shard count, undirectedness).
    DurabilityMismatch {
        /// Human-readable description of the mismatch.
        message: String,
    },
    /// A multi-query registry operation failed: all 64 query slots are
    /// occupied, a [`QueryId`](crate::QueryId) is stale (already detached),
    /// or the engine shape does not match the registry's recorded shape.
    Registry {
        /// Human-readable description of the failure.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ShardPanicked { failures } => {
                write!(f, "{} shard(s) panicked:", failures.len())?;
                for fail in failures {
                    write!(f, " [{fail}]")?;
                }
                Ok(())
            }
            EngineError::ChannelClosed { shard } => {
                write!(f, "shard {shard}'s channel is closed")
            }
            EngineError::QuiescenceTimeout { waited } => {
                write!(f, "deadline expired after {waited:?} without quiescence")
            }
            EngineError::Degraded {
                failures,
                answered,
                expected,
            } => write!(
                f,
                "degraded collection: {answered}/{expected} shards answered, {} failure(s)",
                failures.len()
            ),
            EngineError::DurabilityMismatch { message } => {
                write!(f, "durability mismatch: {message}")
            }
            EngineError::Registry { message } => {
                write!(f, "registry: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    /// The failures carried by this error, if any.
    pub fn failures(&self) -> &[ShardFailure] {
        match self {
            EngineError::ShardPanicked { failures } | EngineError::Degraded { failures, .. } => {
                failures
            }
            _ => &[],
        }
    }
}

/// Shared controller-visible record of dead shards.
///
/// Writers are the per-shard `catch_unwind` wrappers (and the teardown path
/// for unresponsive shards); the reader is the controller, which probes
/// [`FailureBoard::any_failed`] inside every supervised wait loop. The
/// count is published *after* the failure record, so a reader that observes
/// a non-zero count always finds at least that many records.
#[derive(Debug, Default)]
pub struct FailureBoard {
    failures: Mutex<Vec<ShardFailure>>,
    /// Bit per shard id < 64 for O(1) `is_failed` on the query path.
    mask: AtomicU64,
    count: AtomicUsize,
}

impl FailureBoard {
    /// An empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one shard failure. Idempotence is not required: a shard dies
    /// at most once, and teardown only synthesizes records for shards with
    /// no prior entry.
    pub fn record(&self, failure: ShardFailure) {
        let id = failure.id;
        {
            let mut guard = self.failures.lock().unwrap_or_else(|p| p.into_inner());
            guard.push(failure);
        }
        if id < 64 {
            self.mask.fetch_or(1 << id, Ordering::SeqCst);
        }
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    /// True if any shard has failed. One atomic load — cheap enough for
    /// wait-loop polling.
    #[inline]
    pub fn any_failed(&self) -> bool {
        self.count.load(Ordering::SeqCst) > 0
    }

    /// True if shard `id` has failed.
    pub fn is_failed(&self, id: usize) -> bool {
        if id < 64 {
            self.mask.load(Ordering::SeqCst) & (1 << id) != 0
        } else {
            self.failures
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .iter()
                .any(|f| f.id == id)
        }
    }

    /// Number of recorded failures.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::SeqCst)
    }

    /// True when no failure has been recorded.
    pub fn is_empty(&self) -> bool {
        !self.any_failed()
    }

    /// A copy of every failure recorded so far.
    pub fn snapshot(&self) -> Vec<ShardFailure> {
        self.failures
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }
}

/// Renders a `catch_unwind` payload to a human-readable string.
pub(crate) fn panic_payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Deterministic fault injection for the chaos test-suite.
///
/// The default plan injects nothing, and the engine's happy path pays only
/// one precomputed boolean branch per shard event (`ShardWorker` caches
/// whether the plan targets it at spawn time), so the plan can stay a plain
/// runtime field of [`EngineConfig`](crate::EngineConfig) rather than a
/// compile-time feature.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Panic shard `.0` when it is about to process its `.1`-th
    /// algorithmic event (1-based): the classic fail-stop fault.
    pub panic_at: Option<(usize, u64)>,
    /// Sleep `.1` before each algorithmic event processed on shard `.0`:
    /// models a straggler / slow-delivery shard.
    pub delay: Option<(usize, Duration)>,
    /// On shard `.0`, silently drop outbound envelopes with probability
    /// `.1` (decided by a deterministic hash of the shard's send sequence).
    /// Dropped envelopes stay counted as *sent*: they model messages lost
    /// in transit, so quiescence is never reached — exercising the
    /// controller's deadline paths.
    pub drop_fraction: Option<(usize, f64)>,
    /// How many times `panic_at` fires in total (default 1): with
    /// durability enabled a respawned shard re-arms the same fault until
    /// this budget is spent, so a plan can kill the same shard repeatedly
    /// across recoveries.
    pub panic_repeats: u32,
    /// Panic shard `.0` while it is *replaying* its `.1`-th WAL record
    /// (1-based) during recovery: the twice-dying shard case. Fires once.
    pub panic_in_replay: Option<(usize, u64)>,
    /// Panic shard `.0` while writing its `.1`-th checkpoint (1-based),
    /// after staging but before publish: exercises checkpoint atomicity.
    /// Fires once.
    pub panic_in_checkpoint: Option<(usize, u64)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            panic_at: None,
            delay: None,
            drop_fraction: None,
            panic_repeats: 1,
            panic_in_replay: None,
            panic_in_checkpoint: None,
        }
    }
}

impl FaultPlan {
    /// A plan that panics `shard` at its `nth` processed event (1-based).
    pub fn panic_shard_at(shard: usize, nth: u64) -> Self {
        FaultPlan {
            panic_at: Some((shard, nth)),
            ..Default::default()
        }
    }

    /// A plan that delays every event on `shard` by `delay`.
    pub fn delay_shard(shard: usize, delay: Duration) -> Self {
        FaultPlan {
            delay: Some((shard, delay)),
            ..Default::default()
        }
    }

    /// A plan that drops `fraction` (0.0–1.0) of `shard`'s outbound
    /// envelopes.
    pub fn drop_on_shard(shard: usize, fraction: f64) -> Self {
        FaultPlan {
            drop_fraction: Some((shard, fraction)),
            ..Default::default()
        }
    }

    /// Re-arms `panic_at` to fire `repeats` times in total instead of once
    /// (each respawn under durability re-counts events from zero).
    pub fn repeat_panics(mut self, repeats: u32) -> Self {
        self.panic_repeats = repeats;
        self
    }

    /// A plan that panics `shard` while replaying its `nth` WAL record
    /// (1-based) during recovery.
    pub fn panic_in_replay_at(shard: usize, nth: u64) -> Self {
        FaultPlan {
            panic_in_replay: Some((shard, nth)),
            ..Default::default()
        }
    }

    /// A plan that panics `shard` while writing its `nth` checkpoint
    /// (1-based), after staging but before publish.
    pub fn panic_in_checkpoint_at(shard: usize, nth: u64) -> Self {
        FaultPlan {
            panic_in_checkpoint: Some((shard, nth)),
            ..Default::default()
        }
    }

    /// True when this plan injects at least one fault on shard `id` —
    /// precomputed by each worker so the clean path is one branch.
    pub(crate) fn targets(&self, id: usize) -> bool {
        self.panic_at.map(|(s, _)| s == id).unwrap_or(false)
            || self.delay.map(|(s, _)| s == id).unwrap_or(false)
            || self.drop_fraction.map(|(s, _)| s == id).unwrap_or(false)
            || self.panic_in_replay.map(|(s, _)| s == id).unwrap_or(false)
            || self
                .panic_in_checkpoint
                .map(|(s, _)| s == id)
                .unwrap_or(false)
    }

    /// Deterministic per-sequence-number drop decision.
    pub(crate) fn should_drop(&self, id: usize, seq: u64) -> bool {
        match self.drop_fraction {
            Some((shard, fraction)) if shard == id => {
                // SplitMix64-style scramble of the send sequence number:
                // reproducible across runs, uncorrelated with batch sizes.
                let mut x = seq.wrapping_add(0x9E37_79B9_7F4A_7C15);
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^= x >> 31;
                ((x >> 11) as f64 / (1u64 << 53) as f64) < fraction
            }
            _ => false,
        }
    }
}

/// Marker prefix for panics injected by [`FaultPlan::panic_at`], so chaos
/// tests can assert the failure they observed is the one they injected.
pub const CHAOS_PANIC_MARKER: &str = "remo-chaos: injected panic";

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn board_records_and_reports() {
        let board = FailureBoard::new();
        assert!(!board.any_failed());
        assert!(board.is_empty());
        assert!(!board.is_failed(1));
        board.record(ShardFailure {
            id: 1,
            payload: "boom".into(),
            last_epoch: 3,
            trace: vec!["#0 e0 park".into()],
        });
        assert!(board.any_failed());
        assert!(board.is_failed(1));
        assert!(!board.is_failed(0));
        assert_eq!(board.len(), 1);
        let snap = board.snapshot();
        assert_eq!(snap[0].id, 1);
        assert_eq!(snap[0].payload, "boom");
        assert_eq!(snap[0].last_epoch, 3);
    }

    #[test]
    fn board_handles_large_shard_ids() {
        let board = FailureBoard::new();
        board.record(ShardFailure {
            id: 100,
            payload: "big".into(),
            last_epoch: 0,
            trace: Vec::new(),
        });
        assert!(board.is_failed(100));
        assert!(!board.is_failed(99));
    }

    #[test]
    fn fault_plan_targets_only_chosen_shard() {
        let plan = FaultPlan::panic_shard_at(2, 5);
        assert!(plan.targets(2));
        assert!(!plan.targets(0));
        assert!(FaultPlan::default() == FaultPlan::default());
        assert!(!FaultPlan::default().targets(0));
    }

    #[test]
    fn drop_decision_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::drop_on_shard(0, 0.25);
        let first: Vec<bool> = (0..10_000).map(|s| plan.should_drop(0, s)).collect();
        let second: Vec<bool> = (0..10_000).map(|s| plan.should_drop(0, s)).collect();
        assert_eq!(first, second, "decisions must be reproducible");
        let dropped = first.iter().filter(|&&d| d).count();
        assert!(
            (1_500..=3_500).contains(&dropped),
            "~25% expected, got {dropped}/10000"
        );
        assert!(!plan.should_drop(1, 0), "other shards unaffected");
    }

    #[test]
    fn error_display_is_informative() {
        let err = EngineError::ShardPanicked {
            failures: vec![ShardFailure {
                id: 7,
                payload: "oops".into(),
                last_epoch: 2,
                trace: Vec::new(),
            }],
        };
        let s = err.to_string();
        assert!(s.contains("shard 7"));
        assert!(s.contains("oops"));
        assert_eq!(err.failures().len(), 1);
        let t = EngineError::ChannelClosed { shard: 3 }.to_string();
        assert!(t.contains("3"));
        assert!(EngineError::ChannelClosed { shard: 3 }
            .failures()
            .is_empty());
    }
}
