//! Global state collection (§III-D).
//!
//! A [`Snapshot`] is "the collective vertex and edge algorithm-related state
//! after a defined set of events have been ingested and processed": the
//! result of discretizing the continuous run at an epoch boundary using the
//! Chandy–Lamport-variant protocol (version-tagged events, per-vertex
//! `S_prev`/`S_new` forks) implemented in the engine.

use crate::event::Epoch;
use remo_store::VertexId;

/// A collected global state: every touched vertex's algorithm state as of
/// the end of the snapshot's epoch.
#[derive(Debug, Clone)]
pub struct Snapshot<S> {
    /// The epoch this snapshot closed (events tagged `<= epoch` are
    /// included; later events are not).
    pub epoch: Epoch,
    states: Vec<(VertexId, S)>,
}

impl<S> Snapshot<S> {
    /// Assembles a snapshot from shard fragments; sorts by vertex id for
    /// binary-search lookup and deterministic iteration.
    pub fn from_fragments(epoch: Epoch, mut states: Vec<(VertexId, S)>) -> Self {
        states.sort_unstable_by_key(|&(v, _)| v);
        Snapshot { epoch, states }
    }

    /// Number of vertices captured.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the snapshot holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// State of `v`, if the vertex existed at the snapshot point.
    pub fn get(&self, v: VertexId) -> Option<&S> {
        self.states
            .binary_search_by_key(&v, |&(id, _)| id)
            .ok()
            .map(|i| &self.states[i].1)
    }

    /// Iterates `(vertex, state)` in ascending vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &S)> + '_ {
        self.states.iter().map(|(v, s)| (*v, s))
    }

    /// Consumes the snapshot into its sorted backing vector.
    pub fn into_vec(self) -> Vec<(VertexId, S)> {
        self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragments_sorted_and_searchable() {
        let s = Snapshot::from_fragments(3, vec![(5u64, "e"), (1, "a"), (9, "i")]);
        assert_eq!(s.epoch, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(5), Some(&"e"));
        assert_eq!(s.get(2), None);
        let ids: Vec<VertexId> = s.iter().map(|(v, _)| v).collect();
        assert_eq!(ids, vec![1, 5, 9]);
    }

    #[test]
    fn empty_snapshot() {
        let s: Snapshot<u64> = Snapshot::from_fragments(0, vec![]);
        assert!(s.is_empty());
        assert_eq!(s.get(0), None);
    }
}
