//! The shard worker: one shared-nothing "process" of the engine.
//!
//! Each shard owns a partition of the vertices (consistent hashing,
//! §III-C), a [`VertexTable`] holding their adjacency and live algorithm
//! state, and an inbound FIFO channel of visitor messages (HavoqGT's visitor
//! queue, Figure 2). The worker loop:
//!
//! 1. drains and processes all queued algorithmic events (events that
//!    "impact the same vertex are ordered in the infrastructure layer by the
//!    built-in visitor queue in FIFO ordering", §IV);
//! 2. when no algorithmic work remains, pulls **one** topology event from
//!    its assigned input stream — the paper's saturation-test semantics,
//!    "each rank pulling a topology event as soon as local work is
//!    completed" (§V-A);
//! 3. when fully idle, participates in termination detection and parks
//!    briefly on its channel.
//!
//! Undirected edge serialization follows §III-C exactly: the `[a, b]` event
//! is routed to `owner(a)`, which inserts `a -> b` and then sends the
//! reverse-add for `[b, a]` to `owner(b)` over the FIFO channel, ensuring
//! the edge exists before either side uses it.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use remo_store::{EdgeMeta, VertexId, VertexTable};

use crate::algorithm::{AlgoCtx, Algorithm, EventCtx, Outgoing};
use crate::event::{Envelope, Epoch, EventKind, TopoEvent};
use crate::metrics::ShardMetrics;
use crate::partition::Partitioner;
use crate::storage::ShardStore;
use crate::supervision::{
    panic_payload_string, FailureBoard, FaultPlan, ShardFailure, CHAOS_PANIC_MARKER,
};
use crate::telemetry::{FlightTag, TelemetryConfig, TelemetryShared, PUBLISH_EVERY};
use crate::termination::{SafraState, SharedCounters, TerminationMode, Token, TokenAction};
use crate::transport::{LaneHandles, LaneMesh};
use crate::trigger::{TriggerDef, TriggerFire};
use crate::vertex_state::VertexState;

pub use crate::storage::StorageLayout;
pub use crate::transport::TransportMode;

/// Coalescing identity of a pending `Update`: merging is only sound between
/// envelopes that would invoke the same callback with the same visitor and
/// edge weight in the same epoch (an SSSP candidate is `value + weight`, so
/// folding values across different weights could manufacture a path that
/// does not exist; folding across epochs would corrupt parity accounting
/// and the snapshot dual-apply).
type PendKey = (VertexId, VertexId, remo_store::Weight, Epoch);

/// Integer hasher for the staging maps: accumulate written words with a
/// rotate-multiply and finalize with the store's `mix64` avalanche. The
/// keys are engine-internal (no untrusted input), and SipHash otherwise
/// dominates the per-envelope cost of the lattice layers.
#[derive(Default)]
struct MixHasher(u64);

impl std::hash::Hasher for MixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        remo_store::hash::mix64(self.0)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }
    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }
    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = self
            .0
            .rotate_left(29)
            .wrapping_add(x.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }
}

type PendMap<V> = HashMap<PendKey, V, std::hash::BuildHasherDefault<MixHasher>>;

/// A staged `Update` envelope awaiting local processing.
struct Pending<S> {
    env: Envelope<S>,
    /// Self-sent envelopes still owe the Safra receive at drain time;
    /// remote ones were receive-accounted when their batch arrived.
    from_self: bool,
}

/// Outcome of one coalescing attempt against an already-staged envelope.
enum Coalesce {
    /// Merged: the staged envelope now carries both values.
    Absorbed,
    /// An envelope with this key exists but [`Algorithm::join`] declined
    /// (algorithm without the hook): the caller must keep both.
    Declined,
    /// Nothing staged under this key.
    NoEntry,
}

/// One entry in the priority drain order. Self-routed envelopes live in the
/// `pending` map (so later local sends can coalesce into them) and are
/// referenced by key; received envelopes can never merge at the receiver —
/// the coalescing key contains the sending visitor and edge weight, which
/// differ per sender — so they are carried inline, skipping the map
/// entirely on the receive hot path.
enum DrainItem<S> {
    Key(PendKey),
    Env(Pending<S>),
}

/// Bucket count for the priority drain (Dial-style bucket queue). Priorities
/// are clamped into `0..PRIO_BUCKETS`; everything at or beyond the last
/// bucket shares it unordered. Algorithm priorities are small bound
/// distances (BFS depth, SSSP distance, inverted widest capacity), so the
/// clamp is rarely hit — and drain order is a work-saving heuristic, never a
/// correctness requirement (§II-B monotonicity).
const PRIO_BUCKETS: usize = 1024;

/// Which lattice-aware messaging layers are active — §II-B monotonicity put
/// to work in the transport. All off (the default) keeps the engine's exact
/// FIFO seed behaviour. The layers are independently switchable so the
/// `ablate_coalescing` bench can price each one separately; they only ever
/// act on `Update` envelopes of algorithms that implement
/// [`Algorithm::join`] / [`Algorithm::priority`] — `Add`/`ReverseAdd` and
/// topology events always keep their §III-C FIFO ordering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatticeConfig {
    /// Sender-side coalescing: a burst of corrections for one target merges
    /// into a single envelope (in the per-destination outbox, or in the
    /// local pending backlog) via [`Algorithm::join`] before it is counted
    /// as sent.
    pub coalesce: bool,
    /// Receiver-side dominance filtering: an incoming `Update` whose value
    /// cannot improve the target's live state is retired with a cheap
    /// `note_processed` instead of running callbacks, snapshot forks, and
    /// trigger evaluation.
    pub dominance: bool,
    /// Priority-aware draining: the local backlog of `Update` envelopes is
    /// processed best-first (bucket queue keyed by [`Algorithm::priority`]),
    /// so downstream work is seeded with values already near the bound.
    pub priority: bool,
}

impl LatticeConfig {
    /// All three layers on.
    pub fn all() -> Self {
        LatticeConfig {
            coalesce: true,
            dominance: true,
            priority: true,
        }
    }
}

/// Messages a shard can receive: data envelopes plus control traffic.
pub(crate) enum Message<S> {
    /// An algorithmic event (counted by termination detection).
    Event(Envelope<S>),
    /// A batch of algorithmic events (each counted individually).
    Batch(Vec<Envelope<S>>),
    /// A batch of topology events for this shard's input stream.
    Stream(Vec<TopoEvent>),
    /// Safra termination token.
    Token(Token),
    /// Collect states: the snapshot view at `old_epoch` (or live states).
    Collect {
        old_epoch: Epoch,
        live: bool,
        reply: Sender<Vec<(VertexId, S)>>,
    },
    /// Point query: one vertex's live local state (§VI-A: "any vertices'
    /// local state can be observed in constant time").
    Query {
        vertex: VertexId,
        reply: Sender<Option<S>>,
    },
    /// Lanes transport only: a data batch diverted to the channel because
    /// the pair's data lane was full (or the pair was already mid-
    /// fallback). The receiver must drain data lane `(from, self)` before
    /// admitting `batch` — every batch in the lane predates this one — and
    /// acknowledge via `LaneMesh::note_fallback_consumed` afterwards so
    /// the sender may resume the lane. That discipline is what keeps the
    /// pair's FIFO intact across the lane→channel→lane round trip.
    LaneFallback {
        from: usize,
        batch: Vec<Envelope<S>>,
    },
    /// Stop immediately and report.
    Shutdown,
}

/// How one idle wait ended (see [`ShardWorker::idle_wait`]).
enum IdleWait<S> {
    /// A control/data message arrived on the channel.
    Message(Message<S>),
    /// Woken (or timed out) with nothing on the channel: loop around and
    /// re-drain the lanes.
    Heartbeat,
    /// Every sender is gone: shut down.
    Disconnected,
}

/// Immutable engine configuration shared with every shard.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of shard threads (the paper's "processes"/"nodes").
    pub num_shards: usize,
    /// Undirected mode: every `Add` spawns the `ReverseAdd` (§III-A).
    pub undirected: bool,
    /// Which quiescence detector runs.
    pub termination: TerminationMode,
    /// How long an idle shard parks on its channel per wait.
    pub idle_park: Duration,
    /// Maximum time a supervised call waits for quiescence or for a
    /// snapshot barrier before returning
    /// [`EngineError::QuiescenceTimeout`](crate::EngineError). `None`
    /// (the default) waits indefinitely — but even then supervised calls
    /// still return promptly if a shard *panics*, because every wait loop
    /// also polls the failure board.
    pub quiescence_deadline: Option<Duration>,
    /// Maximum time a supervised call waits for one shard's reply to a
    /// point query or a state collection. `None` (the default) waits until
    /// the reply channel disconnects.
    pub query_deadline: Option<Duration>,
    /// Best-effort budget for joining shard threads during `Drop` and at
    /// the end of `try_finish`; threads still running afterwards are
    /// detached rather than blocking teardown.
    pub shutdown_deadline: Duration,
    /// Chaos-injection hook for the fault-tolerance test-suite. The
    /// default plan injects nothing and costs one cached branch per shard.
    pub fault_plan: FaultPlan,
    /// Envelopes buffered per destination shard before a batch ships
    /// (HavoqGT batches visitor messages the same way); partial batches
    /// flush whenever the shard goes idle, so no envelope waits for a full
    /// batch. A batch from one sender preserves its internal order, so
    /// per-pair FIFO is unaffected. Default 256.
    pub envelope_batch: usize,
    /// Lattice-aware messaging layers (all off = exact FIFO behaviour).
    pub lattice: LatticeConfig,
    /// Capacity hint: expected total vertex count across the whole graph
    /// (0 = unknown, start empty). Each shard pre-sizes its vertex store
    /// for its share, so large ingests stop paying rehash storms from
    /// empty tables. Benches set this from the known RMAT scale.
    pub expected_vertices: usize,
    /// Physical vertex-storage layout per shard (dense slabs by default;
    /// the seed's record map remains selectable for differential testing
    /// and the store ablation).
    pub storage: StorageLayout,
    /// Data-plane transport between shards: the SPSC lane mesh with
    /// pooled batch buffers and event-driven parking (default), or the
    /// seed's per-shard MPMC channel, kept selectable for differential
    /// testing and the transport ablation. Control traffic
    /// (Stream/Collect/Query/Token/Shutdown) rides the channel either
    /// way.
    pub transport: TransportMode,
    /// Live-telemetry configuration ([`crate::telemetry`]): seqlock
    /// counter cells, sampled latency histograms, and the per-shard
    /// flight recorder. Counters default on (their publish cost is one
    /// batched cell write per [`PUBLISH_EVERY`] events); histograms
    /// default to 1-in-64 sampling; [`TelemetryConfig::off`] removes
    /// every observation from the hot path for ablation baselines.
    pub telemetry: TelemetryConfig,
}

impl EngineConfig {
    /// `shards` shard threads, undirected, counter-based termination.
    pub fn undirected(shards: usize) -> Self {
        EngineConfig {
            num_shards: shards,
            undirected: true,
            termination: TerminationMode::Counter,
            idle_park: Duration::from_micros(200),
            quiescence_deadline: None,
            query_deadline: None,
            shutdown_deadline: Duration::from_secs(2),
            fault_plan: FaultPlan::default(),
            envelope_batch: 256,
            lattice: LatticeConfig::default(),
            expected_vertices: 0,
            storage: StorageLayout::default(),
            transport: TransportMode::default(),
            telemetry: TelemetryConfig::default(),
        }
    }

    /// `shards` shard threads, directed edges.
    pub fn directed(shards: usize) -> Self {
        EngineConfig {
            undirected: false,
            ..Self::undirected(shards)
        }
    }

    /// Same config with every lattice messaging layer enabled.
    pub fn with_lattice(mut self) -> Self {
        self.lattice = LatticeConfig::all();
        self
    }

    /// Same config with a different vertex-storage layout.
    pub fn with_storage(mut self, layout: StorageLayout) -> Self {
        self.storage = layout;
        self
    }

    /// Same config with a different data-plane transport.
    pub fn with_transport(mut self, mode: TransportMode) -> Self {
        self.transport = mode;
        self
    }

    /// Same config expecting roughly `vertices` vertices in total.
    pub fn with_expected_vertices(mut self, vertices: usize) -> Self {
        self.expected_vertices = vertices;
        self
    }

    /// Same config with a different telemetry configuration.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// What a shard hands back when it stops.
pub(crate) struct ShardReport<S> {
    pub id: usize,
    pub states: Vec<(VertexId, S)>,
    pub metrics: ShardMetrics,
    pub num_vertices: usize,
    pub num_edges: u64,
    pub adjacency_bytes: usize,
    /// Approximate total heap footprint of the shard's vertex store
    /// (index + state/meta slabs or records + adjacency + forks).
    pub store_bytes: usize,
    /// The shard's vertex table (dynamic store), for post-run static
    /// algorithms over the dynamic structure (paper Fig. 3 centre bar).
    /// The dense layout converts into this record form at report time.
    pub table: VertexTable<VertexState<S>>,
}

pub(crate) struct ShardWorker<A: Algorithm, St: ShardStore<A::State>> {
    id: usize,
    algo: Arc<A>,
    config: EngineConfig,
    part: Partitioner,
    rx: Receiver<Message<A::State>>,
    senders: Vec<Sender<Message<A::State>>>,
    shared: Arc<SharedCounters>,
    board: Arc<FailureBoard>,
    triggers: Arc<Vec<TriggerDef<A::State>>>,
    trigger_tx: Sender<TriggerFire>,
    quiesce_tx: Sender<()>,

    /// True iff `config.fault_plan` targets this shard — precomputed so the
    /// fault-free data path pays one predictable branch, not a plan scan.
    fault_armed: bool,
    store: St,
    /// Envelopes this shard sent to itself: bypass the channel, preserve
    /// FIFO (a local queue is trivially in-order per sender).
    local_q: VecDeque<Envelope<A::State>>,
    streams: VecDeque<std::vec::IntoIter<TopoEvent>>,
    out: Vec<Outgoing<A::State>>,
    /// Per-destination-shard buffers of unsent envelopes.
    outboxes: Vec<Vec<Envelope<A::State>>>,
    /// Copy of `config.lattice` (hot-path convenience).
    lattice: LatticeConfig,
    /// True when self-routed `Update` envelopes route through the pending
    /// backlog instead of `local_q` (received ones stage only under
    /// priority draining — see [`ShardWorker::admit`]).
    lattice_on: bool,
    /// Self-routed `Update` envelopes staged for sender-side local-backlog
    /// coalescing: a later local send to the same key folds in via
    /// [`Algorithm::join`] instead of existing separately. Drained by
    /// `pop_pending` via `pend_fifo` (insertion order) or the priority
    /// buckets; key-based drain entries use lazy deletion, with this map
    /// as the single source of truth. Received envelopes never enter this
    /// map — see [`DrainItem`].
    pending: PendMap<Pending<A::State>>,
    pend_fifo: VecDeque<PendKey>,
    /// Priority mode: Dial-style bucket queue — `pend_buckets[p]` holds the
    /// `(seq, item)` entries staged at (clamped) priority `p`. Push and pop
    /// are O(1); a comparison heap gives a globally strict order, but its
    /// per-entry sift costs more than strictness buys — update drain order
    /// is a heuristic, never a correctness requirement (§II-B
    /// monotonicity). Empty when priority draining is off.
    pend_buckets: Vec<Vec<(u64, DrainItem<A::State>)>>,
    /// Lowest possibly-non-empty bucket; every bucket below it is empty.
    /// Pushes pull it back down, pops advance it past drained buckets.
    pend_cursor: usize,
    /// Entries currently staged across `pend_buckets` (stale lazily-deleted
    /// key entries included — `pop_pending` consumes those too).
    pend_staged: usize,
    pend_seq: u64,
    pend_max_popped: u64,
    /// Per-destination index into `outboxes` for sender-side coalescing
    /// (cleared on every flush; empty when coalescing is off).
    outbox_index: Vec<PendMap<usize>>,
    /// Lanes transport: the shared SPSC mesh + park board (`None` under
    /// the channel transport — every lane branch keys off this).
    lanes: Option<LaneHandles<A::State>>,
    /// Per-destination count of batches this shard diverted to the
    /// channel path; compared against the mesh's `fallback_consumed` to
    /// decide when the pair may resume its data lane (FIFO handshake).
    fallback_sent: Vec<u64>,
    /// Local monotone counters, published to this shard's [`ShardSlots`].
    sent_local: [u64; 2],
    processed_local: [u64; 2],
    ingested_local: u64,
    pending_fires: Vec<TriggerFire>,
    metrics: ShardMetrics,
    safra: SafraState,
    edges: u64,
    seq: u64,

    /// Shared telemetry surface (seqlock cells, histograms, recorders).
    tele: Arc<TelemetryShared>,
    /// Cached `config.telemetry` toggles — the fault-free, telemetry-off
    /// data path pays one predictable branch per observation point, not
    /// a config deref.
    tele_counters: bool,
    tele_hist: bool,
    tele_rec: bool,
    /// `(seq & sample_mask) == 0` selects the histogram/recorder samples.
    sample_mask: u64,
    /// Events processed since the last snapshot-cell publish.
    pub_ticker: u32,
    /// Epoch last acked in phase 2 (flight-recorder epoch context and the
    /// `EpochAck` edge detector).
    cur_epoch: Epoch,
}

impl<A: Algorithm, St: ShardStore<A::State>> ShardWorker<A, St> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        algo: Arc<A>,
        config: EngineConfig,
        rx: Receiver<Message<A::State>>,
        senders: Vec<Sender<Message<A::State>>>,
        shared: Arc<SharedCounters>,
        board: Arc<FailureBoard>,
        triggers: Arc<Vec<TriggerDef<A::State>>>,
        trigger_tx: Sender<TriggerFire>,
        quiesce_tx: Sender<()>,
        lanes: Option<LaneHandles<A::State>>,
        tele: Arc<TelemetryShared>,
    ) -> Self {
        let part = Partitioner::new(config.num_shards);
        let num_shards = config.num_shards;
        let fault_armed = config.fault_plan.targets(id);
        let tele_counters = config.telemetry.counters;
        let tele_hist = config.telemetry.histograms;
        let tele_rec = config.telemetry.flight_recorder;
        let sample_mask = config.telemetry.sample_mask();
        let lattice = config.lattice;
        let lattice_on = lattice.coalesce || lattice.priority;
        // Per-shard share of the capacity hint, with 1/8 headroom for the
        // hash partitioner's imbalance (0 stays 0: start empty).
        let shard_cap = config.expected_vertices.div_ceil(num_shards);
        let shard_cap = shard_cap + shard_cap / 8;
        ShardWorker {
            id,
            algo,
            config,
            part,
            rx,
            senders,
            shared,
            board,
            triggers,
            trigger_tx,
            quiesce_tx,
            fault_armed,
            store: St::with_capacity(shard_cap),
            local_q: VecDeque::new(),
            streams: VecDeque::new(),
            out: Vec::new(),
            outboxes: (0..num_shards).map(|_| Vec::new()).collect(),
            lattice,
            lattice_on,
            pending: PendMap::default(),
            pend_fifo: VecDeque::new(),
            pend_buckets: if lattice.priority {
                (0..PRIO_BUCKETS).map(|_| Vec::new()).collect()
            } else {
                Vec::new()
            },
            pend_cursor: PRIO_BUCKETS,
            pend_staged: 0,
            pend_seq: 0,
            pend_max_popped: 0,
            outbox_index: (0..num_shards).map(|_| PendMap::default()).collect(),
            lanes,
            fallback_sent: vec![0; num_shards],
            sent_local: [0; 2],
            processed_local: [0; 2],
            ingested_local: 0,
            pending_fires: Vec::new(),
            metrics: ShardMetrics::default(),
            safra: SafraState::default(),
            edges: 0,
            seq: 0,
            tele,
            tele_counters,
            tele_hist,
            tele_rec,
            sample_mask,
            pub_ticker: 0,
            cur_epoch: 0,
        }
    }

    /// Supervised entry point: runs the worker loop under `catch_unwind`.
    /// A panicking shard publishes a structured [`ShardFailure`] to the
    /// engine's failure board instead of silently dying (and taking the
    /// whole run's liveness with it). Returns `None` on panic.
    pub(crate) fn run_supervised(self) -> Option<ShardReport<A::State>> {
        let id = self.id;
        let shared = Arc::clone(&self.shared);
        let board = Arc::clone(&self.board);
        let tele = Arc::clone(&self.tele);
        // The worker owns its whole world (table, queues, channels); a
        // panic aborts this shard only, so observing no state across the
        // unwind boundary is exactly right — hence AssertUnwindSafe.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run())) {
            Ok(report) => Some(report),
            Err(payload) => {
                use std::sync::atomic::Ordering;
                // The dying shard dumps its own recorder: the writer has
                // provably stopped, so the window is exact, not racy.
                board.record(ShardFailure {
                    id,
                    payload: panic_payload_string(payload),
                    last_epoch: shared.slot(id).epoch_ack.load(Ordering::SeqCst),
                    trace: tele.dump_flight(id),
                });
                None
            }
        }
    }

    /// Injects the configured faults for this shard ahead of processing one
    /// algorithmic event. Only called when `fault_armed` is set.
    #[cold]
    fn inject_faults(&mut self, epoch: Epoch) {
        let plan = self.config.fault_plan.clone();
        if let Some((shard, delay)) = plan.delay {
            if shard == self.id {
                self.metrics.faults_injected += 1;
                if self.tele_rec {
                    self.tele
                        .record_flight(self.id, FlightTag::Fault, epoch, 2, self.seq);
                }
                std::thread::sleep(delay);
            }
        }
        if let Some((shard, nth)) = plan.panic_at {
            // `seq` was incremented at the top of `process`, so it is the
            // 1-based index of the event being processed right now.
            if shard == self.id && self.seq >= nth {
                self.metrics.faults_injected += 1;
                // Last words: the fault entry makes the dump non-empty
                // even at the widest sampling, and the final cell publish
                // lets the engine fold this shard's counters into the
                // aggregate instead of losing them with the thread.
                if self.tele_rec {
                    self.tele
                        .record_flight(self.id, FlightTag::Fault, epoch, 1, self.seq);
                }
                if self.tele_counters {
                    self.publish_telemetry();
                }
                panic!(
                    "{CHAOS_PANIC_MARKER}: shard {} at event {}",
                    self.id, self.seq
                );
            }
        }
    }

    /// The worker loop. Returns the shard's final report on shutdown.
    pub(crate) fn run(mut self) -> ShardReport<A::State> {
        use std::sync::atomic::Ordering;
        if let Some(lanes) = &self.lanes {
            lanes.parks.register(self.id);
        }
        loop {
            // Phase 1: drain all queued messages (algorithm events first):
            // alternate between the inbound lanes, the inbound channel,
            // and the local queue until all are empty.
            let mut did_work = false;
            loop {
                let mut round = false;
                if self.drain_lanes() {
                    round = true;
                }
                while let Ok(msg) = self.rx.try_recv() {
                    round = true;
                    if self.dispatch(msg) {
                        return self.report();
                    }
                }
                while let Some(env) = self.local_q.pop_front() {
                    round = true;
                    self.safra.on_receive();
                    self.process(env);
                }
                while let Some(p) = self.pop_pending() {
                    round = true;
                    if p.from_self {
                        self.safra.on_receive();
                    }
                    self.process(p.env);
                }
                if !round {
                    break;
                }
                did_work = true;
            }

            // Phase 2: publish the epoch this iteration will tag pulls with
            // (the snapshot barrier ack — see Engine::snapshot).
            let epoch = self.shared.epoch.load(Ordering::SeqCst);
            self.shared
                .slot(self.id)
                .epoch_ack
                .store(epoch, Ordering::SeqCst);
            if epoch != self.cur_epoch {
                if self.tele_rec {
                    self.tele
                        .record_flight(self.id, FlightTag::EpochAck, epoch, u64::from(epoch), 0);
                }
                self.cur_epoch = epoch;
            }

            // Phase 3: pull one topology event, if any.
            if let Some(ev) = self.next_topo() {
                self.metrics.topo_ingested += 1;
                self.ingested_local += 1;
                self.shared
                    .slot(self.id)
                    .ingested
                    .store(self.ingested_local, Ordering::Release);
                if self.tele_rec && self.metrics.topo_ingested & self.sample_mask == 0 {
                    self.tele
                        .record_flight(self.id, FlightTag::TopoIngest, epoch, ev.src, ev.dst);
                }
                self.route_topo(ev, epoch);
                continue;
            }
            if did_work {
                continue;
            }

            // Phase 4: fully idle — flush buffered envelopes, publish the
            // counter cell (an idle shard's snapshot is otherwise up to
            // PUBLISH_EVERY-1 events stale), then termination detection,
            // then wait for work (event-driven park under the lane
            // transport, timeout poll otherwise).
            self.flush_all();
            if self.tele_counters {
                self.publish_telemetry();
            }
            self.idle_step();
            match self.idle_wait() {
                IdleWait::Message(msg) => {
                    if self.dispatch(msg) {
                        return self.report();
                    }
                }
                IdleWait::Heartbeat => {}
                IdleWait::Disconnected => return self.report(),
            }
        }
    }

    /// One idle wait. Under the channel transport this is the seed's
    /// `recv_timeout` poll. Under the lane transport the shard announces
    /// sleep, re-checks both inbound paths (the Dekker pairing with
    /// senders' post-publish [`crate::transport::ParkBoard::wake`]), and
    /// parks; `idle_park` degrades from the wake latency to a fallback
    /// heartbeat that keeps Safra tokens circulating and insures against
    /// the (latency-only) missed-wake window.
    fn idle_wait(&mut self) -> IdleWait<A::State> {
        let Some(lanes) = self.lanes.clone() else {
            return match self.rx.recv_timeout(self.config.idle_park) {
                Ok(msg) => IdleWait::Message(msg),
                Err(RecvTimeoutError::Timeout) => {
                    self.metrics.idle_parks += 1;
                    IdleWait::Heartbeat
                }
                Err(RecvTimeoutError::Disconnected) => IdleWait::Disconnected,
            };
        };
        lanes.parks.announce_sleep(self.id);
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        if lanes.mesh.has_inbound(self.id) {
            lanes.parks.clear_sleep(self.id);
            return IdleWait::Heartbeat;
        }
        match self.rx.try_recv() {
            Ok(msg) => {
                lanes.parks.clear_sleep(self.id);
                IdleWait::Message(msg)
            }
            Err(TryRecvError::Empty) => {
                self.metrics.idle_parks += 1;
                if self.tele_rec {
                    self.tele
                        .record_flight(self.id, FlightTag::Park, self.cur_epoch, 0, 0);
                }
                std::thread::park_timeout(self.config.idle_park);
                lanes.parks.clear_sleep(self.id);
                IdleWait::Heartbeat
            }
            Err(TryRecvError::Disconnected) => {
                lanes.parks.clear_sleep(self.id);
                IdleWait::Disconnected
            }
        }
    }

    /// Handles one message; returns true on shutdown.
    fn dispatch(&mut self, msg: Message<A::State>) -> bool {
        match msg {
            Message::Event(env) => {
                self.safra.on_receive();
                self.admit(env);
                false
            }
            Message::Batch(batch) => {
                for env in batch {
                    self.safra.on_receive();
                    self.admit(env);
                }
                false
            }
            Message::Stream(events) => {
                if self.tele_rec {
                    self.tele.record_flight(
                        self.id,
                        FlightTag::Stream,
                        self.cur_epoch,
                        events.len() as u64,
                        self.streams.len() as u64,
                    );
                }
                self.streams.push_back(events.into_iter());
                false
            }
            Message::Token(tok) => {
                self.safra.held = Some(tok);
                false
            }
            Message::Collect {
                old_epoch,
                live,
                reply,
            } => {
                if self.tele_rec {
                    self.tele.record_flight(
                        self.id,
                        FlightTag::Collect,
                        old_epoch,
                        u64::from(old_epoch),
                        u64::from(live),
                    );
                }
                let states = self.collect(old_epoch, live);
                let _ = reply.send(states);
                false
            }
            Message::Query { vertex, reply } => {
                let state = self
                    .store
                    .lookup(vertex)
                    .map(|h| self.store.live(h).clone());
                let _ = reply.send(state);
                false
            }
            Message::LaneFallback { from, mut batch } => {
                if self.tele_rec {
                    self.tele.record_flight(
                        self.id,
                        FlightTag::Fallback,
                        self.cur_epoch,
                        from as u64,
                        batch.len() as u64,
                    );
                }
                // Per-pair FIFO across the fallback: everything already in
                // the data lane predates this batch — admit the lane
                // first, then this batch, then acknowledge so the sender
                // may resume the lane (the ack's Release pairs with the
                // sender's Acquire read, ordering its next lane pushes
                // strictly after this admission).
                self.drain_lane_from(from);
                for env in batch.drain(..) {
                    self.safra.on_receive();
                    self.admit(env);
                }
                if let Some(lanes) = &self.lanes {
                    lanes.mesh.give_recycled(from, self.id, batch);
                    lanes.mesh.note_fallback_consumed(from, self.id);
                }
                false
            }
            Message::Shutdown => {
                if self.tele_rec {
                    self.tele
                        .record_flight(self.id, FlightTag::Shutdown, self.cur_epoch, 0, 0);
                }
                true
            }
        }
    }

    /// Drains every flagged inbound data lane (no-op under the channel
    /// transport). One bitmap probe covers the empty case — the hot loop
    /// never scans P lanes to find nothing. Returns whether anything was
    /// admitted.
    fn drain_lanes(&mut self) -> bool {
        let mesh = match &self.lanes {
            Some(lanes) => Arc::clone(&lanes.mesh),
            None => return false,
        };
        let mut bits = mesh.claim_pending(self.id);
        if bits == 0 {
            return false;
        }
        let mut any = false;
        while bits != 0 {
            let from = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if self.drain_one_lane(&mesh, from) {
                any = true;
            }
        }
        any
    }

    /// Drains the data lane from one peer, returning each emptied batch
    /// buffer to the sender's pool.
    fn drain_lane_from(&mut self, from: usize) -> bool {
        let mesh = match &self.lanes {
            Some(lanes) => Arc::clone(&lanes.mesh),
            None => return false,
        };
        self.drain_one_lane(&mesh, from)
    }

    fn drain_one_lane(&mut self, mesh: &LaneMesh<A::State>, from: usize) -> bool {
        let mut any = false;
        while let Some(mut batch) = mesh.recv(from, self.id) {
            any = true;
            for env in batch.drain(..) {
                self.safra.on_receive();
                self.admit(env);
            }
            mesh.give_recycled(from, self.id, batch);
        }
        any
    }

    /// Routes one *received* envelope: under dominance filtering, `Update`s
    /// that cannot improve their target are retired on the spot; under
    /// priority draining they are staged (inline — see [`DrainItem`]) into
    /// the best-first backlog. Everything else — and every envelope when
    /// the lattice layers are off — is processed immediately in arrival
    /// order, exactly as the seed engine did.
    fn admit(&mut self, env: Envelope<A::State>) {
        if env.kind == EventKind::Update {
            if self.is_dominated(env.target, env.epoch, &env.value) {
                // Retiring on arrival skips the staging churn entirely;
                // monotone states only advance, so dominated-now stays
                // dominated.
                self.metrics.updates_dominated += 1;
                self.note_processed(env.epoch);
                return;
            }
            if self.lattice.priority {
                let prio = A::priority(&env.value).unwrap_or(0);
                // Pass-through fast path: an arrival at least as good as
                // everything staged is what best-first draining would pick
                // next anyway — process it without the backlog round-trip
                // (deferring costs an envelope copy and a cold re-read).
                // Only worse-than-best arrivals get parked.
                if self.pend_staged > 0 && (prio as usize).min(PRIO_BUCKETS - 1) > self.pend_cursor
                {
                    self.stage_item(
                        prio,
                        DrainItem::Env(Pending {
                            env,
                            from_self: false,
                        }),
                    );
                    return;
                }
            }
        }
        self.process(env);
    }

    /// True when an `Update` carrying `value` cannot change `target`'s live
    /// state (the join is a no-op — the value is information the target
    /// already holds). Skipped when the event predates the vertex's
    /// snapshot fork: those must still dual-apply to the forked previous
    /// state. Algorithms without [`Algorithm::join`] are never filtered.
    /// Monotone states only advance, so a dominated update stays dominated
    /// no matter how long it waits.
    fn is_dominated(&self, target: VertexId, epoch: Epoch, value: &A::State) -> bool {
        if !self.lattice.dominance {
            return false;
        }
        let Some(h) = self.store.lookup(target) else {
            return false;
        };
        if self.store.applies_to_prev(h, epoch) {
            return false;
        }
        let live = self.store.live(h);
        let mut probe = live.clone();
        A::join(&mut probe, value) && probe == *live
    }

    /// Attempts to fold `env` into the self-routed envelope staged under
    /// the same coalescing key. On a merge under priority draining, the
    /// drain entry is re-pushed at the merged value's (possibly better)
    /// priority; the stale entry is lazily skipped on pop.
    fn try_absorb_pending(&mut self, env: &Envelope<A::State>) -> Coalesce {
        let key = (env.target, env.visitor, env.weight, env.epoch);
        let Some(p) = self.pending.get_mut(&key) else {
            return Coalesce::NoEntry;
        };
        if !A::join(&mut p.env.value, &env.value) {
            return Coalesce::Declined;
        }
        if self.lattice.priority {
            let prio = A::priority(&p.env.value).unwrap_or(0);
            self.stage_item(prio, DrainItem::Key(key));
        }
        Coalesce::Absorbed
    }

    /// Pushes one drain entry into the priority bucket queue.
    fn stage_item(&mut self, prio: u64, item: DrainItem<A::State>) {
        let bucket = (prio as usize).min(PRIO_BUCKETS - 1);
        self.pend_seq += 1;
        self.pend_cursor = self.pend_cursor.min(bucket);
        self.pend_staged += 1;
        self.pend_buckets[bucket].push((self.pend_seq, item));
    }

    /// Stages a self-routed `Update` envelope into the lattice backlog.
    /// Callers must have resolved coalescing first (the key slot is known
    /// free when coalescing is on).
    fn stage_pending(&mut self, env: Envelope<A::State>, from_self: bool) {
        if !self.lattice.coalesce {
            // Priority-only: nothing ever merges, so carry the envelope
            // inline and skip the map.
            let prio = A::priority(&env.value).unwrap_or(0);
            self.stage_item(prio, DrainItem::Env(Pending { env, from_self }));
            return;
        }
        let key = (env.target, env.visitor, env.weight, env.epoch);
        if self.lattice.priority {
            // Algorithms without `priority` fall back to a constant key,
            // which makes the bucket queue a plain stack of one bucket.
            let prio = A::priority(&env.value).unwrap_or(0);
            self.stage_item(prio, DrainItem::Key(key));
        } else {
            self.pend_seq += 1;
            self.pend_fifo.push_back(key);
        }
        self.pending.insert(key, Pending { env, from_self });
    }

    /// Next staged envelope in drain order (best-first under priority,
    /// insertion order otherwise), skipping lazily-deleted key entries.
    fn pop_pending(&mut self) -> Option<Pending<A::State>> {
        if self.lattice.priority {
            while self.pend_staged > 0 {
                // The cursor invariant (every bucket below it is empty)
                // plus staged > 0 guarantees this scan lands on an entry.
                while self.pend_buckets[self.pend_cursor].is_empty() {
                    self.pend_cursor += 1;
                }
                // The cursor scan above stopped on a non-empty bucket, so
                // this pop always yields; the else arm is unreachable but
                // keeps the loop panic-free.
                let Some((seq, item)) = self.pend_buckets[self.pend_cursor].pop() else {
                    continue;
                };
                self.pend_staged -= 1;
                let p = match item {
                    DrainItem::Env(p) => p,
                    // Stale key entries (from re-prioritized merges) fail
                    // the map removal and are skipped.
                    DrainItem::Key(key) => match self.pending.remove(&key) {
                        Some(p) => p,
                        None => continue,
                    },
                };
                if seq < self.pend_max_popped {
                    self.metrics.heap_reorders += 1;
                }
                self.pend_max_popped = self.pend_max_popped.max(seq);
                return Some(p);
            }
            return None;
        }
        while let Some(key) = self.pend_fifo.pop_front() {
            if let Some(p) = self.pending.remove(&key) {
                return Some(p);
            }
        }
        None
    }

    /// Processes one algorithmic envelope.
    fn process(&mut self, env: Envelope<A::State>) {
        self.seq += 1;
        if self.fault_armed {
            self.inject_faults(env.epoch);
        }
        // Telemetry sampling: 1-in-2^shift events pay two clock reads and
        // one flight-recorder slot; fault-armed shards record every event
        // so a chaos panic always has a dense trace behind it.
        let sampled = self.seq & self.sample_mask == 0;
        if self.tele_rec && (sampled || self.fault_armed) {
            self.tele.record_flight(
                self.id,
                FlightTag::Process,
                env.epoch,
                env.target,
                env.kind as u64,
            );
        }
        let t0 = if self.tele_hist && sampled {
            Some(Instant::now())
        } else {
            None
        };
        let target = env.target;
        // Receiver-side dominance filter: an `Update` whose value the live
        // state already absorbs (join is a no-op) cannot change anything —
        // retire it without the callback/fork/trigger machinery. Skipped
        // when the event predates the vertex's snapshot fork: those must
        // still dual-apply to the forked previous state. Algorithms
        // without `join` are never filtered (join returns false). The
        // neighbour-cache write (`set_cached`) is skipped too; that is
        // sound because a dominated value is information the target
        // already holds.
        if env.kind == EventKind::Update && self.is_dominated(target, env.epoch, &env.value) {
            self.metrics.updates_dominated += 1;
            self.note_processed(env.epoch);
            self.finish_service(t0);
            return;
        }
        // The storage probe of the hot path: intern once per envelope;
        // every access below is direct indexing off the handle.
        let h = self.store.intern(target);
        let (forked, parts) = self.store.fork_and_parts(h, env.epoch);
        if forked {
            self.metrics.snapshot_forks += 1;
        }

        // Topology maintenance is handled by the framework (Algorithm 3):
        // Add/ReverseAdd insert the edge before the user callback runs.
        match env.kind {
            EventKind::Add | EventKind::ReverseAdd => {
                let cached = if env.kind == EventKind::ReverseAdd {
                    A::encode_cache(&env.value)
                } else {
                    0
                };
                let new_edge = parts.adj.insert_weight_min(
                    env.visitor,
                    EdgeMeta {
                        weight: env.weight,
                        cached,
                    },
                );
                if new_edge {
                    self.edges += 1;
                    self.metrics.edges_inserted += 1;
                } else {
                    self.metrics.duplicate_edges += 1;
                }
            }
            EventKind::Update => {
                // Cache the visitor's value on our edge to it, if present
                // (`this.nbrs.set(vis_ID, vis_val)`).
                parts
                    .adj
                    .set_cached(env.visitor, A::encode_cache(&env.value));
            }
            EventKind::Remove | EventKind::ReverseRemove => {
                if parts.adj.remove(env.visitor).is_some() {
                    self.edges -= 1;
                    self.metrics.edges_removed += 1;
                }
            }
            EventKind::Init => {}
        }

        // User callback (single store borrow: reverse-add value capture and
        // trigger evaluation happen inside the same handle access).
        let mut reverse_value: Option<A::State> = None;
        {
            let mut ctx = EventCtx::new(target, parts, &mut self.out, env.epoch);
            match env.kind {
                EventKind::Init => {
                    self.metrics.init_events += 1;
                    self.algo.init(&mut ctx);
                }
                EventKind::Add => {
                    self.metrics.add_events += 1;
                    self.algo
                        .on_add(&mut ctx, env.visitor, &env.value, env.weight);
                }
                EventKind::ReverseAdd => {
                    self.metrics.reverse_add_events += 1;
                    self.algo
                        .on_reverse_add(&mut ctx, env.visitor, &env.value, env.weight);
                }
                EventKind::Update => {
                    self.metrics.update_events += 1;
                    self.algo
                        .on_update(&mut ctx, env.visitor, &env.value, env.weight);
                }
                EventKind::Remove => {
                    self.metrics.remove_events += 1;
                    self.algo
                        .on_remove(&mut ctx, env.visitor, &env.value, env.weight);
                }
                EventKind::ReverseRemove => {
                    self.metrics.remove_events += 1;
                    self.algo
                        .on_reverse_remove(&mut ctx, env.visitor, &env.value, env.weight);
                }
            }

            // For an undirected Add/Remove, the reverse event carries our
            // value *after* the callback ran (Algorithm 3 sends
            // `this.value`).
            if self.config.undirected && matches!(env.kind, EventKind::Add | EventKind::Remove) {
                reverse_value = Some(ctx.state().clone());
            }

            // Trigger evaluation on state change (§III-E): fire-once per
            // (trigger, vertex), observed on the owning shard.
            if ctx.state_changed && !self.triggers.is_empty() {
                let seq = self.seq;
                let shard = self.id;
                for (i, t) in self.triggers.iter().enumerate() {
                    let bit = 1u32 << i;
                    if ctx.fired_bits() & bit == 0 && (t.predicate)(target, ctx.state()) {
                        ctx.mark_fired(bit);
                        self.pending_fires.push(TriggerFire {
                            trigger: i,
                            vertex: target,
                            shard,
                            seq,
                        });
                    }
                }
            }
        }
        for fire in self.pending_fires.drain(..) {
            self.metrics.triggers_fired += 1;
            let _ = self.trigger_tx.send(fire);
        }

        if let Some(value) = reverse_value {
            let kind = if env.kind == EventKind::Add {
                EventKind::ReverseAdd
            } else {
                EventKind::ReverseRemove
            };
            self.send_envelope(Envelope {
                target: env.visitor,
                visitor: target,
                value,
                weight: env.weight,
                kind,
                epoch: env.epoch,
            });
        }

        // Route the callback's generated updates, keeping the buffer's
        // allocation for the next event.
        let mut outgoing = std::mem::take(&mut self.out);
        for o in outgoing.drain(..) {
            self.send_envelope(Envelope {
                target: o.target,
                visitor: target,
                value: o.value,
                weight: o.weight,
                kind: EventKind::Update,
                epoch: env.epoch,
            });
        }
        self.out = outgoing;

        // Retire the envelope only after its children's sends were
        // published (four-counter soundness).
        self.note_processed(env.epoch);
        self.finish_service(t0);
    }

    /// Closes a sampled service-time measurement opened in `process`.
    #[inline]
    fn finish_service(&mut self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.tele
                .record_service(self.id, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Publishes one processed envelope of `epoch`'s parity.
    #[inline]
    fn note_processed(&mut self, epoch: Epoch) {
        use std::sync::atomic::Ordering;
        let p = (epoch & 1) as usize;
        self.processed_local[p] += 1;
        self.shared.slot(self.id).processed[p].store(self.processed_local[p], Ordering::Release);
        if self.tele_counters {
            self.pub_ticker += 1;
            if self.pub_ticker >= PUBLISH_EVERY {
                self.publish_telemetry();
            }
        }
    }

    /// Publishes this shard's counters and live queue gauges into its
    /// seqlock snapshot cell (two fences + one cell write; amortized over
    /// [`PUBLISH_EVERY`] events on the hot path).
    fn publish_telemetry(&mut self) {
        self.pub_ticker = 0;
        let queue_depth =
            (self.rx.len() + self.local_q.len() + self.pend_staged + self.pend_fifo.len()) as u64;
        let lane_occupancy = match &self.lanes {
            Some(lanes) => lanes.mesh.inbound_occupancy(self.id) as u64,
            None => 0,
        };
        self.tele
            .publish_counters(self.id, &self.metrics, queue_depth, lane_occupancy);
    }

    /// Publishes one created envelope of `epoch`'s parity. Must happen
    /// before the envelope becomes receivable.
    #[inline]
    fn note_sent(&mut self, epoch: Epoch) {
        use std::sync::atomic::Ordering;
        let p = (epoch & 1) as usize;
        self.sent_local[p] += 1;
        self.shared.slot(self.id).sent[p].store(self.sent_local[p], Ordering::Release);
    }

    /// Routes a pulled topology event as an `Add`/`Remove` at `owner(src)`.
    fn route_topo(&mut self, ev: TopoEvent, epoch: Epoch) {
        let kind = match ev.op {
            crate::event::TopoOp::Add => EventKind::Add,
            crate::event::TopoOp::Remove => EventKind::Remove,
        };
        self.send_envelope(Envelope {
            target: ev.src,
            visitor: ev.dst,
            value: A::State::default(),
            weight: ev.weight,
            kind,
            epoch,
        });
    }

    /// Queues an envelope for its owner (possibly self), with termination
    /// accounting. Buffered envelopes are already counted as in flight;
    /// buffers flush when full or when the shard goes idle, so the
    /// in-flight counter can only reach zero once every buffer is empty.
    fn send_envelope(&mut self, env: Envelope<A::State>) {
        let owner = self.part.owner(env.target);
        // Self-routed `Update`s whose value the target's live state already
        // absorbs are dropped before any accounting: the envelope never
        // exists as far as termination detection is concerned, and it skips
        // the staging machinery entirely.
        if owner == self.id
            && env.kind == EventKind::Update
            && self.is_dominated(env.target, env.epoch, &env.value)
        {
            // Suppressed, not dominated: the envelope was never counted
            // as sent, so it must not enter the balance equation's
            // processed side either (see RunMetrics::verify_balance).
            self.metrics.updates_suppressed += 1;
            return;
        }
        // Sender-side coalescing: fold this `Update` into an envelope
        // already staged locally (self-route) or buffered in the outbox
        // (remote) for the same (target, visitor, weight, epoch). This
        // happens *before* any accounting, so an absorbed envelope never
        // exists as far as termination detection or the chaos plan are
        // concerned — the staged original remains counted exactly once.
        let mut key_occupied = false;
        if self.lattice.coalesce && env.kind == EventKind::Update {
            if owner == self.id {
                match self.try_absorb_pending(&env) {
                    Coalesce::Absorbed => {
                        self.metrics.envelopes_coalesced += 1;
                        return;
                    }
                    Coalesce::Declined => key_occupied = true,
                    Coalesce::NoEntry => {}
                }
            } else {
                let key = (env.target, env.visitor, env.weight, env.epoch);
                if let Some(&i) = self.outbox_index[owner].get(&key) {
                    if A::join(&mut self.outboxes[owner][i].value, &env.value) {
                        self.metrics.envelopes_coalesced += 1;
                        return;
                    }
                    key_occupied = true;
                }
            }
        }
        self.note_sent(env.epoch);
        self.safra.on_send();
        self.metrics.envelopes_sent += 1;
        // Chaos: lose this envelope "in transit" — after the sent counter
        // was published, exactly like a message a real network ate. The
        // imbalance is what the controller's deadline machinery must catch.
        if self.fault_armed
            && self
                .config
                .fault_plan
                .should_drop(self.id, self.metrics.envelopes_sent)
        {
            self.metrics.faults_injected += 1;
            self.metrics.envelopes_dropped += 1;
            return;
        }
        if owner == self.id {
            if self.lattice_on && env.kind == EventKind::Update && !key_occupied {
                self.stage_pending(env, true);
            } else {
                self.local_q.push_back(env);
            }
            return;
        }
        if self.lattice.coalesce && env.kind == EventKind::Update && !key_occupied {
            let key = (env.target, env.visitor, env.weight, env.epoch);
            self.outbox_index[owner].insert(key, self.outboxes[owner].len());
        }
        self.outboxes[owner].push(env);
        if self.outboxes[owner].len() >= self.config.envelope_batch {
            self.flush(owner);
        }
    }

    /// Ships one destination's buffered envelopes, timing the shipment
    /// when latency histograms are on (empty outboxes cost one branch).
    fn flush(&mut self, owner: usize) {
        if self.outboxes[owner].is_empty() {
            return;
        }
        if self.tele_rec {
            self.tele.record_flight(
                self.id,
                FlightTag::Flush,
                self.cur_epoch,
                owner as u64,
                self.outboxes[owner].len() as u64,
            );
        }
        if !self.tele_hist {
            self.do_flush(owner);
            return;
        }
        let t0 = Instant::now();
        self.do_flush(owner);
        self.tele
            .record_flush(self.id, t0.elapsed().as_nanos() as u64);
    }

    fn do_flush(&mut self, owner: usize) {
        self.outbox_index[owner].clear();
        let batch = std::mem::take(&mut self.outboxes[owner]);
        let Some(lanes) = &self.lanes else {
            // Channel transport: one MPMC send. A closed channel means the
            // receiver shut down mid-run (engine teardown, or the
            // destination shard died): retire the envelopes so counters
            // stay balanced, and account for the loss.
            if let Err(e) = self.senders[owner].send(Message::Batch(batch)) {
                if let Message::Batch(batch) = e.into_inner() {
                    self.retire_batch(batch);
                }
            }
            return;
        };
        let mesh = Arc::clone(&lanes.mesh);
        if self.board.is_failed(owner) {
            // A dead receiver can never pop its lanes: retire this batch
            // and whatever is still parked in the lane (quiescence over
            // the survivors is unreachable while either counts as in
            // flight).
            self.retire_batch(batch);
            self.reclaim_lane(owner);
            return;
        }
        // FIFO handshake tail: while any fallback batch is unacknowledged,
        // the pair stays on the channel path — a lane push now could
        // overtake the fallback still queued in the receiver's channel.
        if self.fallback_sent[owner] != mesh.fallback_consumed(self.id, owner) {
            self.metrics.lane_full_fallbacks += 1;
            self.send_fallback(owner, batch);
            return;
        }
        match mesh.send(self.id, owner, batch) {
            Ok(()) => {
                self.metrics.lane_batches += 1;
                // Pool a drained buffer for the next fill — steady-state
                // flushes allocate nothing.
                if let Some(buf) = mesh.take_recycled(self.id, owner) {
                    self.metrics.batches_recycled += 1;
                    self.outboxes[owner] = buf;
                }
                self.wake(owner);
            }
            Err(batch) => {
                self.metrics.lane_full_fallbacks += 1;
                self.send_fallback(owner, batch);
            }
        }
    }

    /// Lanes transport: ships a batch over the channel because the pair's
    /// data lane is full (or the pair is mid-handshake). Never blocks,
    /// never reorders: the receiver drains the lane before admitting it.
    fn send_fallback(&mut self, owner: usize, batch: Vec<Envelope<A::State>>) {
        self.fallback_sent[owner] += 1;
        let msg = Message::LaneFallback {
            from: self.id,
            batch,
        };
        match self.senders[owner].send(msg) {
            Ok(()) => self.wake(owner),
            Err(e) => {
                if let Message::LaneFallback { batch, .. } = e.into_inner() {
                    self.retire_batch(batch);
                }
                self.reclaim_lane(owner);
            }
        }
    }

    /// Retires envelopes whose receiver is gone: counted undeliverable
    /// and processed so the termination books stay balanced.
    fn retire_batch(&mut self, batch: Vec<Envelope<A::State>>) {
        self.metrics.envelopes_undeliverable += batch.len() as u64;
        for env in batch {
            self.safra.count -= 1;
            self.note_processed(env.epoch);
        }
    }

    /// Drains this shard's own data lane to a dead `owner`, retiring the
    /// in-flight envelopes. See [`crate::transport::LaneMesh::reclaim`]
    /// for why popping our own lane is sound only once the consumer is
    /// provably gone (channel disconnect or failure-board record, both
    /// published strictly after its last pop).
    fn reclaim_lane(&mut self, owner: usize) {
        let mesh = match &self.lanes {
            Some(lanes) => Arc::clone(&lanes.mesh),
            None => return,
        };
        for batch in mesh.reclaim(self.id, owner) {
            self.retire_batch(batch);
        }
    }

    /// Unparks `owner` if it announced sleep (lane transport only); the
    /// caller must have already published the work being signalled.
    fn wake(&mut self, owner: usize) {
        if let Some(lanes) = &self.lanes {
            if lanes.parks.wake(owner) {
                self.metrics.unparks += 1;
            }
        }
    }

    /// Ships every buffered envelope.
    fn flush_all(&mut self) {
        for owner in 0..self.outboxes.len() {
            self.flush(owner);
        }
        // Lanes: a dead destination never drains its inbound lanes, and
        // `flush` only notices on the next send — sweep here too, so a
        // panicked shard's lanes drain into the undeliverable accounting
        // even when nothing more is addressed to it and degraded runs can
        // settle their counters.
        if self.lanes.is_some() && self.board.any_failed() {
            for owner in 0..self.senders.len() {
                if owner != self.id && self.board.is_failed(owner) {
                    self.reclaim_lane(owner);
                }
            }
        }
    }

    /// Next topology event from the shard's pending streams.
    fn next_topo(&mut self) -> Option<TopoEvent> {
        loop {
            let front = self.streams.front_mut()?;
            match front.next() {
                Some(ev) => return Some(ev),
                None => {
                    self.streams.pop_front();
                }
            }
        }
    }

    /// Safra participation while idle (counter mode: no-op; the controller
    /// reads the shared counters directly).
    fn idle_step(&mut self) {
        if self.config.termination != TerminationMode::Safra {
            return;
        }
        // Passive: no local stream work (inbound known empty at this point).
        if !self.streams.is_empty() {
            return;
        }
        if let Some(tok) = self.safra.held.take() {
            self.metrics.safra_tokens += 1;
            match self.safra.process_token(tok, self.id == 0) {
                TokenAction::Forward(t) | TokenAction::Restart(t) => self.send_token(t),
                TokenAction::Quiescent => {
                    let _ = self.quiesce_tx.send(());
                }
            }
        } else if self.id == 0 && !self.safra.round_active && !self.safra.announced {
            let t = self.safra.start_round();
            self.send_token(t);
        }
    }

    fn send_token(&mut self, t: Token) {
        let next = (self.id + 1) % self.config.num_shards;
        let _ = self.senders[next].send(Message::Token(t));
        // A parked successor must see the token promptly or the ring
        // stalls for a heartbeat per hop.
        self.wake(next);
    }

    /// Collects this shard's contribution to a snapshot (or the live view).
    fn collect(&mut self, old_epoch: Epoch, live: bool) -> Vec<(VertexId, A::State)> {
        self.store.collect(old_epoch, live)
    }

    fn report(mut self) -> ShardReport<A::State> {
        // Final cell publish: metrics_now observers see the exact counters
        // this report carries, even after the thread is gone.
        if self.tele_counters {
            self.publish_telemetry();
        }
        let states = self.collect(u32::MAX, true);
        let num_vertices = self.store.num_vertices();
        let adjacency_bytes = self.store.adjacency_heap_bytes();
        let store_bytes = self.store.heap_bytes();
        ShardReport {
            id: self.id,
            states,
            metrics: self.metrics,
            num_vertices,
            num_edges: self.edges,
            adjacency_bytes,
            store_bytes,
            table: self.store.into_table(),
        }
    }
}

/// Direct regression coverage for the undeliverable-batch path and the
/// lane transport's sender-side machinery: these drive one `ShardWorker`
/// by hand (no engine, no threads), which is the only way to pin down the
/// exact counter movements — chaos runs exercise the same paths but only
/// observe the aggregate balance.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::DenseStore;
    use crate::transport::LaneHandles;
    use crossbeam::channel::unbounded;

    /// Minimal algorithm: default callbacks, `u64` state.
    struct Noop;
    impl Algorithm for Noop {
        type State = u64;
    }

    struct Fixture {
        worker: ShardWorker<Noop, DenseStore<u64>>,
        shared: Arc<SharedCounters>,
        board: Arc<FailureBoard>,
        /// Shard 1's inbound channel: dropping it simulates the receiver
        /// shutting down.
        peer_rx: Option<Receiver<Message<u64>>>,
        /// Keep the trigger/quiesce receivers alive for the fixture's
        /// lifetime (the worker ignores send failures, but a live channel
        /// matches the engine's wiring).
        _trigger_rx: Receiver<TriggerFire>,
        _quiesce_rx: Receiver<()>,
    }

    /// A two-shard world with shard 0 driven by hand and shard 1 absent
    /// (only its channel endpoint exists).
    fn fixture(mode: TransportMode) -> Fixture {
        let config = EngineConfig::undirected(2).with_transport(mode);
        let shared = Arc::new(SharedCounters::new(2));
        let board = Arc::new(FailureBoard::new());
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let (trigger_tx, trigger_rx) = unbounded();
        let (quiesce_tx, quiesce_rx) = unbounded();
        let lanes = match mode {
            TransportMode::Lanes => Some(LaneHandles::new(2)),
            TransportMode::Channel => None,
        };
        let tele = Arc::new(TelemetryShared::new(
            config.telemetry.clone(),
            2,
            Arc::clone(&shared),
            Arc::clone(&board),
        ));
        let worker = ShardWorker::new(
            0,
            Arc::new(Noop),
            config,
            rx0,
            vec![tx0, tx1],
            Arc::clone(&shared),
            Arc::clone(&board),
            Arc::new(Vec::new()),
            trigger_tx,
            quiesce_tx,
            lanes,
            tele,
        );
        Fixture {
            worker,
            shared,
            board,
            peer_rx: Some(rx1),
            _trigger_rx: trigger_rx,
            _quiesce_rx: quiesce_rx,
        }
    }

    /// First `n` vertex ids owned by shard 1 (of 2).
    fn peer_targets(n: usize) -> Vec<VertexId> {
        let part = Partitioner::new(2);
        (0u64..).filter(|v| part.owner(*v) == 1).take(n).collect()
    }

    fn env(target: VertexId) -> Envelope<u64> {
        Envelope {
            target,
            visitor: target,
            value: 1,
            weight: 1,
            kind: EventKind::Update,
            epoch: 0,
        }
    }

    #[test]
    fn undeliverable_batch_retires_and_balances() {
        let mut f = fixture(TransportMode::Channel);
        drop(f.peer_rx.take()); // receiver already shut down
        for v in peer_targets(10) {
            f.worker.send_envelope(env(v));
        }
        assert_eq!(f.worker.metrics.envelopes_sent, 10);
        assert!(!f.shared.quiescent_probe(), "buffered envelopes in flight");
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.envelopes_undeliverable, 10);
        assert_eq!(f.worker.safra.count, 0, "Safra count cancelled per envelope");
        assert_eq!(f.worker.sent_local[0], f.worker.processed_local[0]);
        assert!(
            f.shared.quiescent_probe(),
            "termination books balance after retirement"
        );
    }

    #[test]
    fn dead_receiver_lane_reclaims_into_undeliverable() {
        let mut f = fixture(TransportMode::Lanes);
        let targets = peer_targets(6);
        for &v in &targets[..3] {
            f.worker.send_envelope(env(v));
        }
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.lane_batches, 1);
        assert!(!f.shared.quiescent_probe(), "lane batch is in flight");

        // Shard 1 dies: failure recorded, channel endpoint dropped.
        f.board.record(ShardFailure {
            id: 1,
            payload: "test kill".into(),
            last_epoch: 0,
            trace: Vec::new(),
        });
        drop(f.peer_rx.take());

        // The idle sweep drains the dead shard's lane even with nothing
        // further addressed to it.
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.envelopes_undeliverable, 3);
        assert!(f.shared.quiescent_probe());

        // Later sends to the dead shard retire at flush.
        for &v in &targets[3..] {
            f.worker.send_envelope(env(v));
        }
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.envelopes_undeliverable, 6);
        assert_eq!(f.worker.safra.count, 0);
        assert!(f.shared.quiescent_probe());
    }

    #[test]
    fn full_lane_falls_back_and_handshake_resumes() {
        let mut f = fixture(TransportMode::Lanes);
        let mesh = match &f.worker.lanes {
            Some(lanes) => Arc::clone(&lanes.mesh),
            None => unreachable!(),
        };
        while mesh.send(0, 1, Vec::new()).is_ok() {} // fill the pair's lane
        let targets = peer_targets(2);
        f.worker.send_envelope(env(targets[0]));
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.lane_full_fallbacks, 1);
        {
            let rx = f.peer_rx.as_ref().expect("fixture holds shard 1's rx");
            match rx.try_recv() {
                Ok(Message::LaneFallback { from, batch }) => {
                    assert_eq!(from, 0);
                    assert_eq!(batch.len(), 1);
                }
                _ => panic!("expected a LaneFallback on the channel"),
            }
        }
        // Even with the lane drained, an unacknowledged fallback keeps the
        // pair on the channel path (lane batches must not overtake it).
        while mesh.recv(0, 1).is_some() {}
        f.worker.send_envelope(env(targets[1]));
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.lane_full_fallbacks, 2);
        {
            let rx = f.peer_rx.as_ref().expect("fixture holds shard 1's rx");
            assert!(matches!(rx.try_recv(), Ok(Message::LaneFallback { .. })));
        }
        // Both acknowledged: the pair resumes its data lane.
        mesh.note_fallback_consumed(0, 1);
        mesh.note_fallback_consumed(0, 1);
        f.worker.send_envelope(env(targets[0]));
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.lane_batches, 1);
        assert_eq!(f.worker.metrics.lane_full_fallbacks, 2);
    }

    #[test]
    fn flush_reuses_recycled_buffers() {
        let mut f = fixture(TransportMode::Lanes);
        let mesh = match &f.worker.lanes {
            Some(lanes) => Arc::clone(&lanes.mesh),
            None => unreachable!(),
        };
        let targets = peer_targets(2);
        f.worker.send_envelope(env(targets[0]));
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.lane_batches, 1);
        assert_eq!(
            f.worker.metrics.batches_recycled, 1,
            "the primed pool feeds the very first flush"
        );
        // Play the receiver: drain the batch, return the buffer home.
        let mut b = mesh.recv(0, 1).expect("batch was shipped on the lane");
        b.clear();
        mesh.give_recycled(0, 1, b);
        f.worker.send_envelope(env(targets[1]));
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.lane_batches, 2);
        assert_eq!(f.worker.metrics.batches_recycled, 2, "second flush hit the pool");
    }
}
