//! The shard worker: one shared-nothing "process" of the engine.
//!
//! Each shard owns a partition of the vertices (consistent hashing,
//! §III-C), a [`VertexTable`] holding their adjacency and live algorithm
//! state, and an inbound FIFO channel of visitor messages (HavoqGT's visitor
//! queue, Figure 2). The worker loop:
//!
//! 1. drains and processes all queued algorithmic events (events that
//!    "impact the same vertex are ordered in the infrastructure layer by the
//!    built-in visitor queue in FIFO ordering", §IV);
//! 2. when no algorithmic work remains, pulls **one** topology event from
//!    its assigned input stream — the paper's saturation-test semantics,
//!    "each rank pulling a topology event as soon as local work is
//!    completed" (§V-A);
//! 3. when fully idle, participates in termination detection and parks
//!    briefly on its channel.
//!
//! Undirected edge serialization follows §III-C exactly: the `[a, b]` event
//! is routed to `owner(a)`, which inserts `a -> b` and then sends the
//! reverse-add for `[b, a]` to `owner(b)` over the FIFO channel, ensuring
//! the edge exists before either side uses it.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use remo_store::{Adjacency, EdgeMeta, VertexId, VertexTable};

use crate::adaptive::{AdaptiveConfig, AdaptiveController};
use crate::algorithm::{AlgoCtx, Algorithm, EventCtx, Outgoing};
use crate::event::{ControlAck, ControlKind, ControlOp, Envelope, Epoch, EventKind, TopoEvent};
use crate::metrics::ShardMetrics;
use crate::partition::Partitioner;
use crate::placement::{self, PlacementPlan, PlacementPolicy, ShardSeat};
use crate::storage::ShardStore;
use crate::supervision::{
    panic_payload_string, FailureBoard, FaultPlan, ShardFailure, CHAOS_PANIC_MARKER,
};
use crate::telemetry::{FlightTag, TelemetryConfig, TelemetryShared, PUBLISH_EVERY};
use crate::termination::{SafraState, SharedCounters, TerminationMode, Token, TokenAction};
use crate::trace::{self, SpanKind, TraceConfig, TraceTag};
use crate::transport::{LaneHandles, LaneMesh};
use crate::trigger::{TriggerDef, TriggerFire};
use crate::vertex_state::{VertexMeta, VertexState};
use crate::wal::{self, DurabilityConfig, RawRecord, ShardWal};

pub use crate::storage::StorageLayout;
pub use crate::transport::TransportMode;

/// Coalescing identity of a pending `Update`: merging is only sound between
/// envelopes that would invoke the same callback with the same visitor and
/// edge weight in the same epoch (an SSSP candidate is `value + weight`, so
/// folding values across different weights could manufacture a path that
/// does not exist; folding across epochs would corrupt parity accounting
/// and the snapshot dual-apply).
type PendKey = (VertexId, VertexId, remo_store::Weight, Epoch);

/// Integer hasher for the staging maps: accumulate written words with a
/// rotate-multiply and finalize with the store's `mix64` avalanche. The
/// keys are engine-internal (no untrusted input), and SipHash otherwise
/// dominates the per-envelope cost of the lattice layers.
#[derive(Default)]
struct MixHasher(u64);

impl std::hash::Hasher for MixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        remo_store::hash::mix64(self.0)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }
    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }
    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = self
            .0
            .rotate_left(29)
            .wrapping_add(x.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }
}

type PendMap<V> = HashMap<PendKey, V, std::hash::BuildHasherDefault<MixHasher>>;

/// A staged `Update` envelope awaiting local processing.
struct Pending<S> {
    env: Envelope<S>,
    /// Self-sent envelopes still owe the Safra receive at drain time;
    /// remote ones were receive-accounted when their batch arrived.
    from_self: bool,
}

/// Outcome of one coalescing attempt against an already-staged envelope.
enum Coalesce {
    /// Merged: the staged envelope now carries both values.
    Absorbed,
    /// An envelope with this key exists but [`Algorithm::join`] declined
    /// (algorithm without the hook): the caller must keep both.
    Declined,
    /// Nothing staged under this key.
    NoEntry,
}

/// One entry in the priority drain order. Self-routed envelopes live in the
/// `pending` map (so later local sends can coalesce into them) and are
/// referenced by key; received envelopes can never merge at the receiver —
/// the coalescing key contains the sending visitor and edge weight, which
/// differ per sender — so they are carried inline, skipping the map
/// entirely on the receive hot path.
enum DrainItem<S> {
    Key(PendKey),
    Env(Pending<S>),
}

/// Bucket count for the priority drain (Dial-style bucket queue). Priorities
/// are clamped into `0..PRIO_BUCKETS`; everything at or beyond the last
/// bucket shares it unordered. Algorithm priorities are small bound
/// distances (BFS depth, SSSP distance, inverted widest capacity), so the
/// clamp is rarely hit — and drain order is a work-saving heuristic, never a
/// correctness requirement (§II-B monotonicity).
const PRIO_BUCKETS: usize = 1024;

/// Which lattice-aware messaging layers are active — §II-B monotonicity put
/// to work in the transport. All off (the default) keeps the engine's exact
/// FIFO seed behaviour. The layers are independently switchable so the
/// `ablate_coalescing` bench can price each one separately; they only ever
/// act on `Update` envelopes of algorithms that implement
/// [`Algorithm::join`] / [`Algorithm::priority`] — `Add`/`ReverseAdd` and
/// topology events always keep their §III-C FIFO ordering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatticeConfig {
    /// Sender-side coalescing: a burst of corrections for one target merges
    /// into a single envelope (in the per-destination outbox, or in the
    /// local pending backlog) via [`Algorithm::join`] before it is counted
    /// as sent.
    pub coalesce: bool,
    /// Receiver-side dominance filtering: an incoming `Update` whose value
    /// cannot improve the target's live state is retired with a cheap
    /// `note_processed` instead of running callbacks, snapshot forks, and
    /// trigger evaluation.
    pub dominance: bool,
    /// Priority-aware draining: the local backlog of `Update` envelopes is
    /// processed best-first (bucket queue keyed by [`Algorithm::priority`]),
    /// so downstream work is seeded with values already near the bound.
    pub priority: bool,
}

impl LatticeConfig {
    /// All three layers on.
    pub fn all() -> Self {
        LatticeConfig {
            coalesce: true,
            dominance: true,
            priority: true,
        }
    }
}

/// Messages a shard can receive: data envelopes plus control traffic.
pub(crate) enum Message<S> {
    /// An algorithmic event (counted by termination detection).
    Event(Envelope<S>),
    /// A batch of algorithmic events (each counted individually).
    Batch(Vec<Envelope<S>>),
    /// A batch of topology events for this shard's input stream.
    Stream(Vec<TopoEvent>),
    /// Safra termination token.
    Token(Token),
    /// Collect states: the snapshot view at `old_epoch` (or live states).
    Collect {
        old_epoch: Epoch,
        live: bool,
        reply: Sender<Vec<(VertexId, S)>>,
    },
    /// Point query: one vertex's live local state (§VI-A: "any vertices'
    /// local state can be observed in constant time").
    Query {
        vertex: VertexId,
        reply: Sender<Option<S>>,
    },
    /// Lanes transport only: a data batch diverted to the channel because
    /// the pair's data lane was full (or the pair was already mid-
    /// fallback). The receiver must drain data lane `(from, self)` before
    /// admitting `batch` — every batch in the lane predates this one — and
    /// acknowledge via `LaneMesh::note_fallback_consumed` afterwards so
    /// the sender may resume the lane. That discipline is what keeps the
    /// pair's FIFO intact across the lane→channel→lane round trip.
    LaneFallback {
        from: usize,
        batch: Vec<Envelope<S>>,
    },
    /// Control-plane operation (multi-query attach/detach): the shard
    /// claims the sub-mask it has not yet applied via
    /// [`Algorithm::on_control`], sweeps its resident vertices with
    /// [`Algorithm::on_sweep`], commits, and acknowledges. Idempotent —
    /// the controller may resend until acknowledged.
    Control {
        op: ControlOp,
        ack: Sender<ControlAck>,
    },
    /// Stop immediately and report.
    Shutdown,
}

/// How one idle wait ended (see [`ShardWorker::idle_wait`]).
enum IdleWait<S> {
    /// A control/data message arrived on the channel.
    Message(Message<S>),
    /// Woken (or timed out) with nothing on the channel: loop around and
    /// re-drain the lanes.
    Heartbeat,
    /// Every sender is gone: shut down.
    Disconnected,
}

/// Immutable engine configuration shared with every shard.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of shard threads (the paper's "processes"/"nodes").
    pub num_shards: usize,
    /// Undirected mode: every `Add` spawns the `ReverseAdd` (§III-A).
    pub undirected: bool,
    /// Which quiescence detector runs.
    pub termination: TerminationMode,
    /// How long an idle shard parks on its channel per wait.
    pub idle_park: Duration,
    /// Maximum time a supervised call waits for quiescence or for a
    /// snapshot barrier before returning
    /// [`EngineError::QuiescenceTimeout`](crate::EngineError). `None`
    /// (the default) waits indefinitely — but even then supervised calls
    /// still return promptly if a shard *panics*, because every wait loop
    /// also polls the failure board.
    pub quiescence_deadline: Option<Duration>,
    /// Maximum time a supervised call waits for one shard's reply to a
    /// point query or a state collection. `None` (the default) waits until
    /// the reply channel disconnects.
    pub query_deadline: Option<Duration>,
    /// Best-effort budget for joining shard threads during `Drop` and at
    /// the end of `try_finish`; threads still running afterwards are
    /// detached rather than blocking teardown.
    pub shutdown_deadline: Duration,
    /// Chaos-injection hook for the fault-tolerance test-suite. The
    /// default plan injects nothing and costs one cached branch per shard.
    pub fault_plan: FaultPlan,
    /// Envelopes buffered per destination shard before a batch ships
    /// (HavoqGT batches visitor messages the same way); partial batches
    /// flush whenever the shard goes idle, so no envelope waits for a full
    /// batch. A batch from one sender preserves its internal order, so
    /// per-pair FIFO is unaffected. Default 256.
    pub envelope_batch: usize,
    /// Lane-transport flush hysteresis: how many idle passes a shard with
    /// buffered partial batches re-drains its inbound paths (yielding the
    /// core between passes) before flushing them and parking. Short
    /// algorithm waves — BFS frontiers especially — otherwise degenerate
    /// into storms of near-empty lane batches and peer wakes: every shard
    /// goes briefly idle between waves, flushes a handful of envelopes,
    /// and unparks its peers for them. Deferring the partial flush for a
    /// bounded beat lets the next inbound batch refill the outbox first.
    /// Safe at any value: buffered envelopes are already counted as sent,
    /// so quiescence cannot falsely fire, and the flush always happens
    /// before the shard parks. 0 restores the immediate-flush seed
    /// behaviour; ignored under the channel transport. Default 32.
    pub flush_hysteresis: u32,
    /// Lattice-aware messaging layers (all off = exact FIFO behaviour).
    pub lattice: LatticeConfig,
    /// Adaptive data-path controller ([`crate::adaptive`]): per-shard
    /// feedback over the telemetry counters that auto-enables/disables
    /// sender-side coalescing and adapts the effective envelope batch at
    /// epoch/idle boundaries. Off by default (the static knobs rule);
    /// never changes results, only wall time.
    pub adaptive: AdaptiveConfig,
    /// Capacity hint: expected total vertex count across the whole graph
    /// (0 = unknown, start empty). Each shard pre-sizes its vertex store
    /// for its share, so large ingests stop paying rehash storms from
    /// empty tables. Benches set this from the known RMAT scale.
    pub expected_vertices: usize,
    /// Physical vertex-storage layout per shard (dense slabs by default;
    /// the seed's record map remains selectable for differential testing
    /// and the store ablation).
    pub storage: StorageLayout,
    /// Data-plane transport between shards: the SPSC lane mesh with
    /// pooled batch buffers and event-driven parking (default), or the
    /// seed's per-shard MPMC channel, kept selectable for differential
    /// testing and the transport ablation. Control traffic
    /// (Stream/Collect/Query/Token/Shutdown) rides the channel either
    /// way.
    pub transport: TransportMode,
    /// Live-telemetry configuration ([`crate::telemetry`]): seqlock
    /// counter cells, sampled latency histograms, and the per-shard
    /// flight recorder. Counters default on (their publish cost is one
    /// batched cell write per [`PUBLISH_EVERY`] events); histograms
    /// default to 1-in-64 sampling; [`TelemetryConfig::off`] removes
    /// every observation from the hot path for ablation baselines.
    pub telemetry: TelemetryConfig,
    /// Sampled causal tracing ([`crate::trace`]): every `2^sample_shift`-th
    /// external topology ingest mints a trace id, and the envelopes it
    /// causes carry a compact tag through coalescing, dominance
    /// filtering, registry fan-out, and WAL replay; each shard records
    /// bounded span rings that `Engine::traces_now` reconstructs into
    /// propagation trees. Off by default — when off no envelope is ever
    /// tagged and every observation point is one predictable branch.
    pub trace: TraceConfig,
    /// Per-shard durability (WAL + checkpoints + in-place respawn of
    /// panicked shards). `None` (the default) takes no code path through
    /// [`crate::wal`] — the data path is byte-identical to a
    /// durability-free build. See DESIGN.md §14.
    pub durability: Option<DurabilityConfig>,
    /// Shard-thread placement ([`crate::placement`]): pin each shard to a
    /// core chosen by topology (`Compact` packs a NUMA node before
    /// spilling, `Scatter` round-robins across nodes, `Explicit` gives
    /// the exact CPU list). The default `None` leaves scheduling to the
    /// OS — byte-identical to the pre-placement engine, zero cost. See
    /// DESIGN.md §16.
    pub placement: PlacementPolicy,
}

impl EngineConfig {
    /// `shards` shard threads, undirected, counter-based termination.
    pub fn undirected(shards: usize) -> Self {
        EngineConfig {
            num_shards: shards,
            undirected: true,
            termination: TerminationMode::Counter,
            idle_park: Duration::from_micros(200),
            quiescence_deadline: None,
            query_deadline: None,
            shutdown_deadline: Duration::from_secs(2),
            fault_plan: FaultPlan::default(),
            envelope_batch: 256,
            flush_hysteresis: 32,
            lattice: LatticeConfig::default(),
            adaptive: AdaptiveConfig::default(),
            expected_vertices: 0,
            storage: StorageLayout::default(),
            transport: TransportMode::default(),
            telemetry: TelemetryConfig::default(),
            trace: TraceConfig::off(),
            durability: None,
            placement: PlacementPolicy::None,
        }
    }

    /// `shards` shard threads, directed edges.
    pub fn directed(shards: usize) -> Self {
        EngineConfig {
            undirected: false,
            ..Self::undirected(shards)
        }
    }

    /// Same config with every lattice messaging layer enabled.
    pub fn with_lattice(mut self) -> Self {
        self.lattice = LatticeConfig::all();
        self
    }

    /// Same config with the adaptive data-path controller enabled at its
    /// default tuning (see [`AdaptiveConfig`]).
    pub fn with_adaptive(mut self) -> Self {
        self.adaptive = AdaptiveConfig::on();
        self
    }

    /// Same config with a different lane flush hysteresis (0 = flush
    /// partial batches immediately at idle, the pre-hysteresis behaviour).
    pub fn with_flush_hysteresis(mut self, passes: u32) -> Self {
        self.flush_hysteresis = passes;
        self
    }

    /// Same config with a different vertex-storage layout.
    pub fn with_storage(mut self, layout: StorageLayout) -> Self {
        self.storage = layout;
        self
    }

    /// Same config with a different data-plane transport.
    pub fn with_transport(mut self, mode: TransportMode) -> Self {
        self.transport = mode;
        self
    }

    /// Same config expecting roughly `vertices` vertices in total.
    pub fn with_expected_vertices(mut self, vertices: usize) -> Self {
        self.expected_vertices = vertices;
        self
    }

    /// Same config with a different telemetry configuration.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Same config with a different tracing configuration (see
    /// [`TraceConfig::on`] for the default-sampled preset).
    pub fn with_tracing(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Same config with durability enabled (WAL + checkpoints + in-place
    /// shard respawn). Requires the algorithm to implement
    /// [`Algorithm::encode_state`] / [`Algorithm::decode_state`].
    ///
    /// [`Algorithm::encode_state`]: crate::Algorithm::encode_state
    /// [`Algorithm::decode_state`]: crate::Algorithm::decode_state
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Same config with a chaos-injection plan (tests and fault drills).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Same config with a different shard-placement policy. `Explicit`
    /// lists are validated at engine build against the discovered host
    /// topology; build panics on an unknown CPU or a length mismatch.
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }
}

/// What a shard hands back when it stops.
pub(crate) struct ShardReport<S> {
    pub id: usize,
    pub states: Vec<(VertexId, S)>,
    pub metrics: ShardMetrics,
    pub num_vertices: usize,
    pub num_edges: u64,
    pub adjacency_bytes: usize,
    /// Approximate total heap footprint of the shard's vertex store
    /// (index + state/meta slabs or records + adjacency + forks).
    pub store_bytes: usize,
    /// The shard's vertex table (dynamic store), for post-run static
    /// algorithms over the dynamic structure (paper Fig. 3 centre bar).
    /// The dense layout converts into this record form at report time.
    pub table: VertexTable<VertexState<S>>,
}

pub(crate) struct ShardWorker<A: Algorithm, St: ShardStore<A::State>> {
    id: usize,
    algo: Arc<A>,
    config: EngineConfig,
    part: Partitioner,
    rx: Receiver<Message<A::State>>,
    senders: Vec<Sender<Message<A::State>>>,
    shared: Arc<SharedCounters>,
    board: Arc<FailureBoard>,
    triggers: Arc<Vec<TriggerDef<A::State>>>,
    trigger_tx: Sender<TriggerFire>,
    quiesce_tx: Sender<()>,

    /// True iff `config.fault_plan` targets this shard — precomputed so the
    /// fault-free data path pays one predictable branch, not a plan scan.
    fault_armed: bool,
    store: St,
    /// Envelopes this shard sent to itself: bypass the channel, preserve
    /// FIFO (a local queue is trivially in-order per sender).
    local_q: VecDeque<Envelope<A::State>>,
    streams: VecDeque<std::vec::IntoIter<TopoEvent>>,
    out: Vec<Outgoing<A::State>>,
    /// Per-destination-shard buffers of unsent envelopes.
    outboxes: Vec<Vec<Envelope<A::State>>>,
    /// Copy of `config.lattice` (hot-path convenience).
    lattice: LatticeConfig,
    /// True when self-routed `Update` envelopes route through the pending
    /// backlog instead of `local_q` (received ones stage only under
    /// priority draining — see [`ShardWorker::admit`]).
    lattice_on: bool,
    /// Self-routed `Update` envelopes staged for sender-side local-backlog
    /// coalescing: a later local send to the same key folds in via
    /// [`Algorithm::join`] instead of existing separately. Drained by
    /// `pop_pending` via `pend_fifo` (insertion order) or the priority
    /// buckets; key-based drain entries use lazy deletion, with this map
    /// as the single source of truth. Received envelopes never enter this
    /// map — see [`DrainItem`].
    pending: PendMap<Pending<A::State>>,
    pend_fifo: VecDeque<PendKey>,
    /// Priority mode: Dial-style bucket queue — `pend_buckets[p]` holds the
    /// `(seq, item)` entries staged at (clamped) priority `p`. Push and pop
    /// are O(1); a comparison heap gives a globally strict order, but its
    /// per-entry sift costs more than strictness buys — update drain order
    /// is a heuristic, never a correctness requirement (§II-B
    /// monotonicity). Empty when priority draining is off.
    pend_buckets: Vec<Vec<(u64, DrainItem<A::State>)>>,
    /// Lowest possibly-non-empty bucket; every bucket below it is empty.
    /// Pushes pull it back down, pops advance it past drained buckets.
    pend_cursor: usize,
    /// Entries currently staged across `pend_buckets` (stale lazily-deleted
    /// key entries included — `pop_pending` consumes those too).
    pend_staged: usize,
    pend_seq: u64,
    pend_max_popped: u64,
    /// Per-destination index into `outboxes` for sender-side coalescing
    /// (cleared on every flush; empty when coalescing is off).
    outbox_index: Vec<PendMap<usize>>,
    /// Lanes transport: the shared SPSC mesh + park board (`None` under
    /// the channel transport — every lane branch keys off this).
    lanes: Option<LaneHandles<A::State>>,
    /// The engine-wide placement plan (resolved from `config.placement`
    /// at build): this shard's seat plus every peer's NUMA node, for the
    /// cross-node lane-traffic counter.
    plan: Arc<PlacementPlan>,
    /// This shard's seat under the plan (`None` = unpinned). The pin
    /// itself happens at the top of the supervised region so a respawned
    /// shard re-pins on re-entry.
    seat: Option<ShardSeat>,
    /// Pinned to a core no other shard shares: only then does the
    /// bounded pre-park spin run (see [`PlacementPlan::oversubscribed`]).
    spin_eligible: bool,
    /// Per-destination count of batches this shard diverted to the
    /// channel path; compared against the mesh's `fallback_consumed` to
    /// decide when the pair may resume its data lane (FIFO handshake).
    fallback_sent: Vec<u64>,
    /// Reusable scratch for the sender ids claimed from the pending set
    /// each `drain_lanes` pass (allocation-free steady state).
    claim_buf: Vec<usize>,
    /// Idle passes spent deferring a partial-batch flush in the current
    /// idle episode (bounded by `config.flush_hysteresis`; reset whenever
    /// work arrives or the flush finally happens).
    idle_spins: u32,
    /// Effective per-destination batch threshold: starts at
    /// `config.envelope_batch`; the adaptive controller halves/doubles it
    /// within its configured bounds.
    eff_batch: usize,
    /// Adaptive data-path controller (`None` when `config.adaptive` is
    /// disabled — the static-knob path pays one predictable branch).
    adaptive: Option<AdaptiveController>,
    /// Local monotone counters, published to this shard's [`ShardSlots`].
    sent_local: [u64; 2],
    processed_local: [u64; 2],
    ingested_local: u64,
    pending_fires: Vec<TriggerFire>,
    metrics: ShardMetrics,
    safra: SafraState,
    edges: u64,
    seq: u64,

    /// Shared telemetry surface (seqlock cells, histograms, recorders).
    tele: Arc<TelemetryShared>,
    /// Cached `config.telemetry` toggles — the fault-free, telemetry-off
    /// data path pays one predictable branch per observation point, not
    /// a config deref.
    tele_counters: bool,
    tele_hist: bool,
    tele_rec: bool,
    /// `(seq & sample_mask) == 0` selects the histogram/recorder samples.
    sample_mask: u64,
    /// Events processed since the last snapshot-cell publish.
    pub_ticker: u32,
    /// Epoch last acked in phase 2 (flight-recorder epoch context and the
    /// `EpochAck` edge detector).
    cur_epoch: Epoch,

    // ---- tracing + phase accounting ----
    /// Cached `config.trace.enabled` — the tracing-off data path pays one
    /// predictable branch per observation point (an envelope tag compare
    /// against 0), nothing else.
    trace_on: bool,
    /// `(topo_ingested & trace_mask) == 0` selects the sampled ingests.
    trace_mask: u64,
    /// Trace ids minted by this shard so far (combined with the shard id
    /// into a run-unique trace id).
    trace_seq: u64,
    /// Cached `config.telemetry.phase_accounting`: when false the worker
    /// loop takes zero clock reads for attribution.
    phase_on: bool,

    // ---- durability (every field inert when `durable` is false) ----
    /// Cached `config.durability.is_some()` — the durability-off data path
    /// pays one predictable branch per custody point, nothing else.
    durable: bool,
    /// The shard's WAL append handle, opened inside the supervised region
    /// on the first (re)entry so open failures surface as a recorded
    /// [`ShardFailure`], not an engine-thread panic.
    wal: Option<ShardWal>,
    /// Scratch buffer for `Algorithm::encode_state` at WAL-append time.
    wal_scratch: Vec<u8>,
    /// Envelopes received but not yet admitted: custody is WAL-logged and
    /// committed *before* any of them is processed, so a record is durable
    /// before its effects can escape the shard.
    inbox: VecDeque<Envelope<A::State>>,
    /// Epoch of the envelope currently inside `process_inner` (set only
    /// for counted inputs): the post-panic custody sweep must retire that
    /// half-processed envelope too.
    mid_process: Option<Epoch>,
    /// Custody records since the last published checkpoint (drives
    /// `DurabilityConfig::checkpoint_every`).
    events_since_ckpt: u64,
    /// Set by the supervisor (panic respawn) or cold-start detection;
    /// cleared once `recover` finishes.
    needs_recovery: bool,
    /// True for the first recovery of a re-opened engine: the previous
    /// process's epoch timeline is meaningless here, so restore clears
    /// forks and replays everything at epoch 0.
    cold_start: bool,
    /// In-place respawns performed so far (bounded by
    /// `DurabilityConfig::max_respawns`).
    respawns_done: u32,
    /// `FaultPlan::panic_at` firings so far (bounded by
    /// `FaultPlan::panic_repeats` once respawn makes refiring possible).
    panics_fired: u32,
    /// Checkpoint attempts so far (drives `FaultPlan::panic_in_checkpoint`).
    ckpt_attempts: u64,
    /// One-shot latches for the replay/checkpoint fault injections.
    replay_fault_fired: bool,
    ckpt_fault_fired: bool,
}

/// One phase-accounting lap: nanoseconds since `t0`, re-arming `t0` at
/// the current instant for the next segment. `None` (phase accounting
/// off) stays `None` and costs no clock read. Used for the wholesale
/// replay attribution; the worker loop proper uses the run-merged
/// [`PhaseWindow`] scheme instead.
#[inline]
fn lap(t0: &mut Option<Instant>) -> Option<u64> {
    t0.as_mut().map(|t| {
        let now = Instant::now();
        let ns = now.duration_since(*t).as_nanos() as u64;
        *t = now;
        ns
    })
}

/// Which `phase_*_ns` counter a loop segment belongs to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PhaseLabel {
    Drain,
    Process,
    Flush,
    Spin,
    Park,
    Checkpoint,
}

/// The open window of run-merged phase accounting: `t0` is when the
/// current run of same-labeled segments began, `run` its label. See
/// `ShardWorker::phase_mark` for the scheme and its error bound.
struct PhaseWindow {
    t0: Instant,
    run: PhaseLabel,
}

impl<A: Algorithm, St: ShardStore<A::State>> ShardWorker<A, St> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        algo: Arc<A>,
        config: EngineConfig,
        rx: Receiver<Message<A::State>>,
        senders: Vec<Sender<Message<A::State>>>,
        shared: Arc<SharedCounters>,
        board: Arc<FailureBoard>,
        triggers: Arc<Vec<TriggerDef<A::State>>>,
        trigger_tx: Sender<TriggerFire>,
        quiesce_tx: Sender<()>,
        lanes: Option<LaneHandles<A::State>>,
        plan: Arc<PlacementPlan>,
        tele: Arc<TelemetryShared>,
    ) -> Self {
        let seat = plan.seat_of(id);
        // Pre-park spinning only pays when this shard *owns* its core: on
        // an oversubscribed plan (shards time-slicing a seat) the spin
        // burns exactly the cycles a co-resident shard needs to produce
        // the work being waited for.
        let spin_eligible = seat.is_some() && !plan.oversubscribed();
        let part = Partitioner::new(config.num_shards);
        let num_shards = config.num_shards;
        let fault_armed = config.fault_plan.targets(id);
        let tele_counters = config.telemetry.counters;
        let tele_hist = config.telemetry.histograms;
        let tele_rec = config.telemetry.flight_recorder;
        let sample_mask = config.telemetry.sample_mask();
        let trace_on = config.trace.enabled;
        let trace_mask = config.trace.sample_mask();
        let phase_on = config.telemetry.phase_accounting;
        let lattice = config.lattice;
        let lattice_on = lattice.coalesce || lattice.priority;
        let durable = config.durability.is_some();
        let eff_batch = config.envelope_batch;
        let adaptive = config
            .adaptive
            .enabled
            .then(|| AdaptiveController::new(config.adaptive.clone()));
        // Per-shard share of the capacity hint, with 1/8 headroom for the
        // hash partitioner's imbalance (0 stays 0: start empty).
        let shard_cap = config.expected_vertices.div_ceil(num_shards);
        let shard_cap = shard_cap + shard_cap / 8;
        ShardWorker {
            id,
            algo,
            config,
            part,
            rx,
            senders,
            shared,
            board,
            triggers,
            trigger_tx,
            quiesce_tx,
            fault_armed,
            store: St::with_capacity(shard_cap),
            local_q: VecDeque::new(),
            streams: VecDeque::new(),
            out: Vec::new(),
            outboxes: (0..num_shards).map(|_| Vec::new()).collect(),
            lattice,
            lattice_on,
            pending: PendMap::default(),
            pend_fifo: VecDeque::new(),
            pend_buckets: if lattice.priority {
                (0..PRIO_BUCKETS).map(|_| Vec::new()).collect()
            } else {
                Vec::new()
            },
            pend_cursor: PRIO_BUCKETS,
            pend_staged: 0,
            pend_seq: 0,
            pend_max_popped: 0,
            outbox_index: (0..num_shards).map(|_| PendMap::default()).collect(),
            lanes,
            plan,
            seat,
            spin_eligible,
            fallback_sent: vec![0; num_shards],
            claim_buf: Vec::new(),
            idle_spins: 0,
            eff_batch,
            adaptive,
            sent_local: [0; 2],
            processed_local: [0; 2],
            ingested_local: 0,
            pending_fires: Vec::new(),
            metrics: ShardMetrics::default(),
            safra: SafraState::default(),
            edges: 0,
            seq: 0,
            tele,
            tele_counters,
            tele_hist,
            tele_rec,
            sample_mask,
            pub_ticker: 0,
            cur_epoch: 0,
            trace_on,
            trace_mask,
            trace_seq: 0,
            phase_on,
            durable,
            wal: None,
            wal_scratch: Vec::new(),
            inbox: VecDeque::new(),
            mid_process: None,
            events_since_ckpt: 0,
            needs_recovery: false,
            cold_start: false,
            respawns_done: 0,
            panics_fired: 0,
            ckpt_attempts: 0,
            replay_fault_fired: false,
            ckpt_fault_fired: false,
        }
    }

    /// Supervised entry point: runs the worker loop under `catch_unwind`.
    ///
    /// Without durability this is the seed behaviour: a panicking shard
    /// publishes a structured [`ShardFailure`] to the engine's failure
    /// board (the run degrades to the survivors) and returns `None`.
    ///
    /// With durability on, a contained panic is *recoverable*: the worker
    /// sweeps the envelopes still in its custody (retiring them against
    /// the termination books), re-enters the supervised region, restores
    /// its latest checkpoint, replays the WAL tail, and resumes — same
    /// thread, same transport endpoints, nothing on the failure board, so
    /// peers never reclaim its lanes and supervised waits stay clean.
    /// Recovery itself runs *inside* `catch_unwind`, so a panic during
    /// replay or checkpointing consumes another respawn instead of
    /// wedging. Only an exhausted `max_respawns` budget records the
    /// permanent failure and degrades exactly as with durability off.
    pub(crate) fn run_supervised(mut self) -> Option<ShardReport<A::State>> {
        let id = self.id;
        let shared = Arc::clone(&self.shared);
        let board = Arc::clone(&self.board);
        let tele = Arc::clone(&self.tele);
        // Cold restart: durable state left by a previous process means
        // this engine is re-opening — restore before taking any new work.
        if self.durable && self.has_durable_state() {
            self.needs_recovery = true;
            self.cold_start = true;
            // Gate termination detection until the cold replay finishes
            // (see SharedCounters::recovery_begin).
            self.shared.recovery_begin();
        }
        loop {
            // The worker owns its whole world (table, queues, channels); a
            // panic aborts this shard only, so observing no state across
            // the unwind boundary is exactly right — hence
            // AssertUnwindSafe. On a recoverable panic the same `self`
            // re-enters here with `needs_recovery` set.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Pin first, before any allocation the supervised region
                // performs (lane columns, WAL buffers, the vertex store's
                // growth) — first-touch pages then land on the seat's
                // node. Idempotent, and deliberately *inside* the respawn
                // loop: a recovered shard re-pins on re-entry. A refused
                // mask (non-Linux, or a CPU hot-unplugged since
                // discovery) degrades to unpinned.
                if let Some(seat) = self.seat {
                    if !placement::pin_current_thread(seat.cpu) {
                        self.seat = None;
                    }
                }
                if self.durable && self.wal.is_none() {
                    self.open_wal();
                }
                if self.needs_recovery {
                    // Replay is attributed wholesale: restore + WAL replay
                    // + the backlog it spawns, one phase, one clock pair.
                    let mut t0 = self.phase_on.then(Instant::now);
                    self.recover();
                    if let Some(ns) = lap(&mut t0) {
                        self.metrics.phase_replay_ns += ns;
                        self.metrics.phase_busy_ns += ns;
                    }
                }
                self.run_loop()
            }));
            match outcome {
                Ok(()) => return Some(self.report()),
                Err(payload) => {
                    use std::sync::atomic::Ordering;
                    let budget = self
                        .config
                        .durability
                        .as_ref()
                        .map_or(0, |d| d.max_respawns);
                    if self.durable && self.respawns_done < budget {
                        // Transient: sweep custody, then loop back into
                        // the supervised region to restore + replay. The
                        // failure stays OFF the board — the shard is
                        // coming back.
                        self.respawns_done += 1;
                        self.prepare_recovery();
                        continue;
                    }
                    // Permanent (durability off, or budget exhausted):
                    // the dying shard dumps its own recorder — the writer
                    // has provably stopped, so the window is exact. Lift
                    // the recovery gate if one is pending — nobody will
                    // finish this recovery, and the degraded paths detect
                    // the loss through the failure board, not the probe.
                    if self.needs_recovery {
                        self.needs_recovery = false;
                        self.shared.recovery_end();
                    }
                    board.record(ShardFailure {
                        id,
                        payload: panic_payload_string(payload),
                        last_epoch: shared.slot(id).epoch_ack.load(Ordering::SeqCst),
                        trace: tele.dump_flight(id),
                    });
                    return None;
                }
            }
        }
    }

    /// Injects the configured faults for this shard ahead of processing one
    /// algorithmic event. Only called when `fault_armed` is set.
    #[cold]
    fn inject_faults(&mut self, epoch: Epoch) {
        let plan = self.config.fault_plan.clone();
        if let Some((shard, delay)) = plan.delay {
            if shard == self.id {
                self.metrics.faults_injected += 1;
                if self.tele_rec {
                    self.tele
                        .record_flight(self.id, FlightTag::Fault, epoch, 2, self.seq);
                }
                std::thread::sleep(delay);
            }
        }
        if let Some((shard, nth)) = plan.panic_at {
            // `seq` was incremented at the top of `process`, so it is the
            // 1-based index of the event being processed right now. A
            // respawned shard re-arms the same fault until the plan's
            // `panic_repeats` budget is spent (the counter moves *before*
            // the panic, so a recovered worker remembers the firing).
            if shard == self.id && self.seq >= nth && self.panics_fired < plan.panic_repeats {
                self.panics_fired += 1;
                self.metrics.faults_injected += 1;
                // Last words: the fault entry makes the dump non-empty
                // even at the widest sampling, and the final cell publish
                // lets the engine fold this shard's counters into the
                // aggregate instead of losing them with the thread.
                if self.tele_rec {
                    self.tele
                        .record_flight(self.id, FlightTag::Fault, epoch, 1, self.seq);
                }
                if self.tele_counters {
                    self.publish_telemetry();
                }
                panic!(
                    "{CHAOS_PANIC_MARKER}: shard {} at event {}",
                    self.id, self.seq
                );
            }
        }
    }

    /// Run-merged phase attribution: closes the open window and starts a
    /// new one *only* when the segment label changes — consecutive
    /// same-labeled segments merge into one window with zero clock
    /// reads, so the hot steady states (an ingest cascade that is all
    /// processing, a long park) cost nothing but a register compare per
    /// boundary. The price is precision at the transition itself: the
    /// boundary segment lands in the outgoing run, an error bounded by
    /// one loop segment per transition (call sites keep those segments
    /// at probe-sliver scale by marking *before* heavy work). Every
    /// charged nanosecond still lands in exactly one `phase_*_ns`
    /// counter and in `phase_busy_ns`, so the breakdown sums to the
    /// attributed wall by construction (`RunMetrics::verify_balance`
    /// checks the identity).
    #[inline]
    fn phase_mark(&mut self, seg: &mut Option<PhaseWindow>, label: PhaseLabel) {
        if let Some(w) = seg.as_mut() {
            if w.run != label {
                let now = Instant::now();
                let ns = now.duration_since(w.t0).as_nanos() as u64;
                w.t0 = now;
                let ended = w.run;
                w.run = label;
                self.charge_phase(ended, ns);
            }
        }
    }

    /// Closes the open window at a loop exit so the tail of the final
    /// run is attributed rather than dropped.
    #[cold]
    fn phase_close(&mut self, seg: &mut Option<PhaseWindow>) {
        if let Some(w) = seg.take() {
            let ns = Instant::now().duration_since(w.t0).as_nanos() as u64;
            self.charge_phase(w.run, ns);
        }
    }

    #[inline]
    fn charge_phase(&mut self, label: PhaseLabel, ns: u64) {
        *match label {
            PhaseLabel::Drain => &mut self.metrics.phase_drain_ns,
            PhaseLabel::Process => &mut self.metrics.phase_process_ns,
            PhaseLabel::Flush => &mut self.metrics.phase_flush_ns,
            PhaseLabel::Spin => &mut self.metrics.phase_spin_ns,
            PhaseLabel::Park => &mut self.metrics.phase_park_ns,
            PhaseLabel::Checkpoint => &mut self.metrics.phase_checkpoint_ns,
        } += ns;
        self.metrics.phase_busy_ns += ns;
    }

    /// The worker loop. Returns on shutdown (or when every sender is
    /// gone); the caller then consumes `self` into the final report.
    pub(crate) fn run_loop(&mut self) {
        use std::sync::atomic::Ordering;
        if let Some(lanes) = &self.lanes {
            lanes.parks.register(self.id);
            // First-touch: allocate this shard's inbound lane column on
            // its own (possibly just-pinned) core. Under the engine's
            // deferred mesh this is the first touch of those ring pages;
            // under an eager test mesh it is a no-op.
            lanes.mesh.init_column(self.id);
        }
        // Run-merged phase accounting (nothing at all when
        // `phase_accounting` is off): one window per run of same-labeled
        // segments, a clock read only at label transitions — see
        // `phase_mark`. The hot ingest cascade, whose every segment is
        // processing, therefore costs zero clock reads.
        let mut seg = self.phase_on.then(|| PhaseWindow {
            t0: Instant::now(),
            run: PhaseLabel::Drain,
        });
        loop {
            // Phase 1: drain all queued messages (algorithm events first):
            // alternate between the inbound lanes, the inbound channel,
            // and the local queue until all are empty.
            let mut did_work = false;
            loop {
                let mut round = false;
                if self.drain_lanes() {
                    round = true;
                }
                while let Ok(msg) = self.rx.try_recv() {
                    round = true;
                    if self.dispatch(msg) {
                        self.phase_mark(&mut seg, PhaseLabel::Checkpoint);
                        self.maybe_checkpoint(true);
                        self.phase_close(&mut seg);
                        return;
                    }
                }
                while let Some(env) = self.local_q.pop_front() {
                    round = true;
                    self.safra.on_receive();
                    self.process(env);
                }
                while let Some(p) = self.pop_pending() {
                    round = true;
                    if p.from_self {
                        self.safra.on_receive();
                    }
                    self.process(p.env);
                }
                if !round {
                    break;
                }
                did_work = true;
            }
            // A pass that admitted or processed anything is processing
            // time; a pass that merely probed empty queues is drain
            // overhead — the "looking for work" tax.
            self.phase_mark(
                &mut seg,
                if did_work {
                    PhaseLabel::Process
                } else {
                    PhaseLabel::Drain
                },
            );

            // Phase 2: publish the epoch this iteration will tag pulls with
            // (the snapshot barrier ack — see Engine::snapshot).
            let epoch = self.shared.epoch.load(Ordering::SeqCst);
            self.shared
                .slot(self.id)
                .epoch_ack
                .store(epoch, Ordering::SeqCst);
            if epoch != self.cur_epoch {
                if self.tele_rec {
                    self.tele.record_flight(
                        self.id,
                        FlightTag::EpochAck,
                        epoch,
                        u64::from(epoch),
                        0,
                    );
                }
                self.cur_epoch = epoch;
                // Epoch boundaries are decision boundaries: the local
                // backlog is drained (phase 1 just came up empty), so a
                // knob flip cannot split one wave across two policies.
                self.adaptive_tick();
            }

            // Phase 3: pull one topology event, if any.
            if let Some(ev) = self.next_topo() {
                // The pull is processing time from here on; the empty
                // probes before it stay with the previous run.
                self.phase_mark(&mut seg, PhaseLabel::Process);
                self.metrics.topo_ingested += 1;
                self.ingested_local += 1;
                if self.tele_rec && self.metrics.topo_ingested & self.sample_mask == 0 {
                    self.tele
                        .record_flight(self.id, FlightTag::TopoIngest, epoch, ev.src, ev.dst);
                }
                // Sampled causal tracing: every 2^shift-th external ingest
                // mints a trace. The ingest itself is hop 0 (the Root
                // span); the envelope it spawns carries hop 1 and every
                // descendant inherits hop+1 — see crate::trace.
                let mut tag: TraceTag = 0;
                if self.trace_on && self.metrics.topo_ingested & self.trace_mask == 0 {
                    self.trace_seq += 1;
                    let id = ((self.id as u64 + 1) << 40) | self.trace_seq;
                    self.metrics.trace_roots += 1;
                    self.trace_span(SpanKind::Root, trace::pack(id, 0), ev.src, ev.dst);
                    tag = trace::pack(id, 1);
                }
                if self.durable {
                    // Log the pull (with its ingestion epoch) before any
                    // envelope it spawns can leave the shard.
                    self.log_topo(&ev, epoch);
                    self.wal_commit();
                }
                self.route_topo(ev, epoch, tag);
                // Publish the pull only after `route_topo` published the
                // spawned envelope's `sent` count. The reverse order opens
                // a false-quiescence window: with `ingested == injected`
                // satisfied and the envelope not yet counted, a probe
                // between the two stores reads balanced books while work
                // is still materialising — and the WAL write above makes
                // that window syscall-wide. Publishing late only delays
                // the probe (a benign false negative).
                self.shared
                    .slot(self.id)
                    .ingested
                    .store(self.ingested_local, Ordering::Release);
                self.idle_spins = 0;
                continue;
            }
            if did_work {
                self.idle_spins = 0;
                continue;
            }

            // Phase 4 preamble — lane flush hysteresis: with partial
            // batches buffered, give inbound work a bounded number of
            // re-drain passes to refill them before shipping near-empty
            // batches and waking peers (the BFS short-wave pathology).
            // Deadlock-free: buffered envelopes are already counted sent,
            // so quiescence cannot fire under them, and the spin budget
            // guarantees the flush below runs before any park.
            if self.idle_spins < self.config.flush_hysteresis
                && self.lanes.is_some()
                && self.outboxes.iter().any(|b| !b.is_empty())
            {
                self.idle_spins += 1;
                self.metrics.flush_deferrals += 1;
                // Marked before the yield so the yield itself accrues to
                // the spin window.
                self.phase_mark(&mut seg, PhaseLabel::Spin);
                std::thread::yield_now();
                continue;
            }
            self.idle_spins = 0;

            // Phase 4: fully idle — flush buffered envelopes, publish the
            // counter cell (an idle shard's snapshot is otherwise up to
            // PUBLISH_EVERY-1 events stale), then termination detection,
            // then wait for work (event-driven park under the lane
            // transport, timeout poll otherwise).
            self.phase_mark(&mut seg, PhaseLabel::Flush);
            self.flush_all();
            self.adaptive_tick();
            if self.tele_counters {
                self.publish_telemetry();
            }
            // Durability: idle with every queue drained is the one moment
            // the store is a complete, self-consistent image — checkpoint
            // here if the WAL has grown past the configured interval.
            self.phase_mark(&mut seg, PhaseLabel::Checkpoint);
            self.maybe_checkpoint(false);
            // The whole wait — pre-park spin, park, heartbeat timeout —
            // is parked time: the clearest "this shard had nothing to do"
            // signal in the utilization breakdown.
            self.phase_mark(&mut seg, PhaseLabel::Park);
            self.idle_step();
            let waited = self.idle_wait();
            // Waking is the processing guess: a message wake goes straight
            // into dispatch and a lane wake into the next drain pass; a
            // bare heartbeat mislabels only the empty probe that follows.
            self.phase_mark(&mut seg, PhaseLabel::Process);
            match waited {
                IdleWait::Message(msg) => {
                    if self.dispatch(msg) {
                        self.phase_mark(&mut seg, PhaseLabel::Checkpoint);
                        self.maybe_checkpoint(true);
                        self.phase_close(&mut seg);
                        return;
                    }
                }
                IdleWait::Heartbeat => {}
                IdleWait::Disconnected => {
                    self.phase_mark(&mut seg, PhaseLabel::Checkpoint);
                    self.maybe_checkpoint(true);
                    self.phase_close(&mut seg);
                    return;
                }
            }
        }
    }

    /// One idle wait. Under the channel transport this is the seed's
    /// `recv_timeout` poll. Under the lane transport the shard announces
    /// sleep, re-checks both inbound paths (the Dekker pairing with
    /// senders' post-publish [`crate::transport::ParkBoard::wake`]), and
    /// parks; `idle_park` degrades from the wake latency to a fallback
    /// heartbeat that keeps Safra tokens circulating and insures against
    /// the (latency-only) missed-wake window.
    fn idle_wait(&mut self) -> IdleWait<A::State> {
        let Some(lanes) = self.lanes.clone() else {
            return match self.rx.recv_timeout(self.config.idle_park) {
                Ok(msg) => IdleWait::Message(msg),
                Err(RecvTimeoutError::Timeout) => {
                    self.metrics.idle_parks += 1;
                    IdleWait::Heartbeat
                }
                Err(RecvTimeoutError::Disconnected) => IdleWait::Disconnected,
            };
        };
        // Pinned shards spin briefly before the park machinery: the core
        // is theirs either way (nobody else is scheduled onto it by
        // design), so burning a bounded probe loop converts the common
        // work-arrives-immediately case into a cache-hit wake with no
        // park/unpark syscall round trip. Unpinned shards skip straight
        // to the park so the OS can reuse their core.
        if self.spin_eligible && self.seat.is_some() {
            for _ in 0..lanes.parks.spin_budget() {
                if lanes.mesh.has_inbound(self.id) || !self.rx.is_empty() {
                    self.metrics.spin_wakes += 1;
                    return IdleWait::Heartbeat;
                }
                std::hint::spin_loop();
            }
        }
        lanes.parks.announce_sleep(self.id);
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        if lanes.mesh.has_inbound(self.id) {
            lanes.parks.clear_sleep(self.id);
            return IdleWait::Heartbeat;
        }
        match self.rx.try_recv() {
            Ok(msg) => {
                lanes.parks.clear_sleep(self.id);
                IdleWait::Message(msg)
            }
            Err(TryRecvError::Empty) => {
                self.metrics.idle_parks += 1;
                if self.tele_rec {
                    self.tele
                        .record_flight(self.id, FlightTag::Park, self.cur_epoch, 0, 0);
                }
                // The board carries the configured heartbeat
                // (`EngineConfig::idle_park` threaded through at build).
                lanes.parks.park_current();
                lanes.parks.clear_sleep(self.id);
                IdleWait::Heartbeat
            }
            Err(TryRecvError::Disconnected) => {
                lanes.parks.clear_sleep(self.id);
                IdleWait::Disconnected
            }
        }
    }

    /// Handles one message; returns true on shutdown.
    fn dispatch(&mut self, msg: Message<A::State>) -> bool {
        match msg {
            Message::Event(env) => {
                self.safra.on_receive();
                if self.durable {
                    self.log_custody(&env);
                    self.inbox.push_back(env);
                    self.commit_and_admit_inbox();
                } else {
                    self.admit(env);
                }
                false
            }
            Message::Batch(batch) => {
                if self.durable {
                    // Memory-only first pass (panic-free), then one WAL
                    // commit for the whole batch, *then* processing: a
                    // record is durable before any effect escapes.
                    for env in batch {
                        self.safra.on_receive();
                        self.log_custody(&env);
                        self.inbox.push_back(env);
                    }
                    self.commit_and_admit_inbox();
                } else {
                    for env in batch {
                        self.safra.on_receive();
                        self.admit(env);
                    }
                }
                false
            }
            Message::Stream(events) => {
                if self.tele_rec {
                    self.tele.record_flight(
                        self.id,
                        FlightTag::Stream,
                        self.cur_epoch,
                        events.len() as u64,
                        self.streams.len() as u64,
                    );
                }
                self.streams.push_back(events.into_iter());
                false
            }
            Message::Token(tok) => {
                self.safra.held = Some(tok);
                false
            }
            Message::Collect {
                old_epoch,
                live,
                reply,
            } => {
                if self.tele_rec {
                    self.tele.record_flight(
                        self.id,
                        FlightTag::Collect,
                        old_epoch,
                        u64::from(old_epoch),
                        u64::from(live),
                    );
                }
                let states = self.collect(old_epoch, live);
                let _ = reply.send(states);
                false
            }
            Message::Query { vertex, reply } => {
                let state = self
                    .store
                    .lookup(vertex)
                    .map(|h| self.store.live(h).clone());
                let _ = reply.send(state);
                false
            }
            Message::LaneFallback { from, mut batch } => {
                if self.tele_rec {
                    self.tele.record_flight(
                        self.id,
                        FlightTag::Fallback,
                        self.cur_epoch,
                        from as u64,
                        batch.len() as u64,
                    );
                }
                // Per-pair FIFO across the fallback: everything already in
                // the data lane predates this batch — admit the lane
                // first, then this batch, then acknowledge so the sender
                // may resume the lane (the ack's Release pairs with the
                // sender's Acquire read, ordering its next lane pushes
                // strictly after this admission).
                self.drain_lane_from(from);
                if self.durable {
                    for env in batch.drain(..) {
                        self.safra.on_receive();
                        self.log_custody(&env);
                        self.inbox.push_back(env);
                    }
                    self.commit_and_admit_inbox();
                } else {
                    for env in batch.drain(..) {
                        self.safra.on_receive();
                        self.admit(env);
                    }
                }
                if let Some(lanes) = &self.lanes {
                    lanes.mesh.give_recycled(from, self.id, batch);
                    lanes.mesh.note_fallback_consumed(from, self.id);
                }
                false
            }
            Message::Control { op, ack } => {
                self.run_control(op, &ack);
                false
            }
            Message::Shutdown => {
                if self.tele_rec {
                    self.tele
                        .record_flight(self.id, FlightTag::Shutdown, self.cur_epoch, 0, 0);
                }
                true
            }
        }
    }

    /// Executes one control-plane operation: claim the not-yet-applied
    /// sub-mask, make it durable, sweep the resident vertex set, commit,
    /// and acknowledge. The claim step makes resends idempotent — a
    /// repeated op claims an empty mask and acks `swept = 0` immediately.
    fn run_control(&mut self, op: ControlOp, ack: &Sender<ControlAck>) {
        let start = Instant::now();
        let claimed = self.algo.on_control(self.id, &op);
        let mut swept = 0u64;
        if claimed != 0 {
            // Durable before effects: the sweep's outgoing envelopes must
            // never escape a shard whose WAL does not yet record why they
            // exist (recovery replays the control record to re-derive
            // them).
            if self.durable {
                if let Some(w) = self.wal.as_mut() {
                    w.append_control(op.kind.as_u8(), claimed);
                    self.metrics.wal_records_appended += 1;
                    self.events_since_ckpt += 1;
                }
                self.wal_commit();
            }
            swept = self.control_sweep(op.kind, claimed);
            self.algo.on_control_commit(self.id, op.kind, claimed);
        }
        let _ = ack.send(ControlAck {
            shard: self.id,
            swept,
            nanos: start.elapsed().as_nanos() as u64,
        });
    }

    /// Walks every vertex resident in this shard's table and hands it to
    /// [`Algorithm::on_sweep`], routing whatever the sweep emits as
    /// ordinary `Update` envelopes (fully accounted by termination
    /// detection). Returns the number of vertices visited.
    fn control_sweep(&mut self, kind: ControlKind, mask: u64) -> u64 {
        self.metrics.control_sweeps += 1;
        let mut swept = 0u64;
        for v in self.store.vertex_ids() {
            let Some(h) = self.store.lookup(v) else {
                continue;
            };
            self.seq += 1;
            let (forked, parts) = self.store.fork_and_parts(h, self.cur_epoch);
            if forked {
                self.metrics.snapshot_forks += 1;
            }
            {
                let mut ctx = EventCtx::new(v, parts, &mut self.out, self.cur_epoch);
                ctx.set_shard(self.id);
                self.algo.on_sweep(&mut ctx, kind, mask);
                // Trigger evaluation mirrors `process_inner`: a sweep that
                // changes state (attach backfill reaching a watched vertex)
                // fires triggers exactly like an envelope would.
                if ctx.state_changed && !self.triggers.is_empty() {
                    let seq = self.seq;
                    let shard = self.id;
                    for (i, t) in self.triggers.iter().enumerate() {
                        let bit = 1u32 << i;
                        if ctx.fired_bits() & bit == 0 && (t.predicate)(v, ctx.state()) {
                            ctx.mark_fired(bit);
                            self.pending_fires.push(TriggerFire {
                                trigger: i,
                                vertex: v,
                                shard,
                                seq,
                            });
                        }
                    }
                }
            }
            for fire in self.pending_fires.drain(..) {
                self.metrics.triggers_fired += 1;
                let _ = self.trigger_tx.send(fire);
            }
            // Route the sweep's generated updates as ordinary fresh sends.
            let mut outgoing = std::mem::take(&mut self.out);
            for o in outgoing.drain(..) {
                self.send_envelope(Envelope {
                    target: o.target,
                    visitor: v,
                    value: o.value,
                    weight: o.weight,
                    kind: EventKind::Update,
                    epoch: self.cur_epoch,
                    // Control sweeps are engine-initiated, not caused by
                    // any one external update: never traced.
                    tag: 0,
                });
            }
            self.out = outgoing;
            swept += 1;
        }
        self.metrics.sweep_vertices += swept;
        self.flush_all();
        swept
    }

    /// Drains every flagged inbound data lane (no-op under the channel
    /// transport). One bitmap probe covers the empty case — the hot loop
    /// never scans P lanes to find nothing. Returns whether anything was
    /// admitted.
    fn drain_lanes(&mut self) -> bool {
        let mesh = match &self.lanes {
            Some(lanes) => Arc::clone(&lanes.mesh),
            None => return false,
        };
        // The scratch is taken out of `self` for the drain calls below
        // (which need `&mut self`); its allocation is reused every pass.
        let mut claimed = std::mem::take(&mut self.claim_buf);
        claimed.clear();
        if mesh.claim_pending_into(self.id, &mut claimed) == 0 {
            self.claim_buf = claimed;
            return false;
        }
        let mut any = false;
        for &from in &claimed {
            if self.drain_one_lane(&mesh, from) {
                any = true;
            }
        }
        self.claim_buf = claimed;
        any
    }

    /// Drains the data lane from one peer, returning each emptied batch
    /// buffer to the sender's pool.
    fn drain_lane_from(&mut self, from: usize) -> bool {
        let mesh = match &self.lanes {
            Some(lanes) => Arc::clone(&lanes.mesh),
            None => return false,
        };
        self.drain_one_lane(&mesh, from)
    }

    fn drain_one_lane(&mut self, mesh: &LaneMesh<A::State>, from: usize) -> bool {
        let mut any = false;
        while let Some(mut batch) = mesh.recv(from, self.id) {
            any = true;
            if self.durable {
                for env in batch.drain(..) {
                    self.safra.on_receive();
                    self.log_custody(&env);
                    self.inbox.push_back(env);
                }
                mesh.give_recycled(from, self.id, batch);
                self.commit_and_admit_inbox();
            } else {
                for env in batch.drain(..) {
                    self.safra.on_receive();
                    self.admit(env);
                }
                mesh.give_recycled(from, self.id, batch);
            }
        }
        any
    }

    /// Routes one *received* envelope: under dominance filtering, `Update`s
    /// that cannot improve their target are retired on the spot; under
    /// priority draining they are staged (inline — see [`DrainItem`]) into
    /// the best-first backlog. Everything else — and every envelope when
    /// the lattice layers are off — is processed immediately in arrival
    /// order, exactly as the seed engine did.
    fn admit(&mut self, env: Envelope<A::State>) {
        if env.kind == EventKind::Update {
            if self.is_dominated(env.target, env.epoch, &env.value) {
                // Retiring on arrival skips the staging churn entirely;
                // monotone states only advance, so dominated-now stays
                // dominated.
                self.metrics.updates_dominated += 1;
                self.note_processed(env.epoch);
                if env.tag != 0 {
                    // A closed branch, not silence: the trace sees where
                    // its cascade was cut off.
                    self.trace_span(SpanKind::Dominate, env.tag, env.target, 0);
                }
                return;
            }
            if self.lattice.priority {
                let prio = A::priority(&env.value).unwrap_or(0);
                // Pass-through fast path: an arrival at least as good as
                // everything staged is what best-first draining would pick
                // next anyway — process it without the backlog round-trip
                // (deferring costs an envelope copy and a cold re-read).
                // Only worse-than-best arrivals get parked.
                if self.pend_staged > 0 && (prio as usize).min(PRIO_BUCKETS - 1) > self.pend_cursor
                {
                    self.stage_item(
                        prio,
                        DrainItem::Env(Pending {
                            env,
                            from_self: false,
                        }),
                    );
                    return;
                }
            }
        }
        self.process(env);
    }

    /// True when an `Update` carrying `value` cannot change `target`'s live
    /// state (the join is a no-op — the value is information the target
    /// already holds). Skipped when the event predates the vertex's
    /// snapshot fork: those must still dual-apply to the forked previous
    /// state. Algorithms without [`Algorithm::join`] are never filtered.
    /// Monotone states only advance, so a dominated update stays dominated
    /// no matter how long it waits.
    fn is_dominated(&self, target: VertexId, epoch: Epoch, value: &A::State) -> bool {
        if !self.lattice.dominance {
            return false;
        }
        let Some(h) = self.store.lookup(target) else {
            return false;
        };
        if self.store.applies_to_prev(h, epoch) {
            return false;
        }
        let live = self.store.live(h);
        let mut probe = live.clone();
        A::join(&mut probe, value) && probe == *live
    }

    /// Attempts to fold `env` into the self-routed envelope staged under
    /// the same coalescing key. On a merge under priority draining, the
    /// drain entry is re-pushed at the merged value's (possibly better)
    /// priority; the stale entry is lazily skipped on pop.
    fn try_absorb_pending(&mut self, env: &Envelope<A::State>) -> Coalesce {
        let key = (env.target, env.visitor, env.weight, env.epoch);
        let Some(p) = self.pending.get_mut(&key) else {
            return Coalesce::NoEntry;
        };
        if !A::join(&mut p.env.value, &env.value) {
            return Coalesce::Declined;
        }
        // Tag inheritance across the merge: an untagged absorber adopts
        // the absorbed envelope's tag so the trace keeps a carrier; a
        // tagged absorber keeps its own (one carrier, one count).
        if env.tag != 0 && p.env.tag == 0 {
            p.env.tag = env.tag;
        }
        let absorber = p.env.tag;
        if self.lattice.priority {
            let prio = A::priority(&p.env.value).unwrap_or(0);
            self.stage_item(prio, DrainItem::Key(key));
        }
        if env.tag != 0 {
            self.trace_span(
                SpanKind::Absorb,
                env.tag,
                env.target,
                trace::trace_id(absorber),
            );
        }
        Coalesce::Absorbed
    }

    /// Pushes one drain entry into the priority bucket queue.
    fn stage_item(&mut self, prio: u64, item: DrainItem<A::State>) {
        let bucket = (prio as usize).min(PRIO_BUCKETS - 1);
        self.pend_seq += 1;
        self.pend_cursor = self.pend_cursor.min(bucket);
        self.pend_staged += 1;
        self.pend_buckets[bucket].push((self.pend_seq, item));
    }

    /// Stages a self-routed `Update` envelope into the lattice backlog.
    /// Callers must have resolved coalescing first (the key slot is known
    /// free when coalescing is on).
    fn stage_pending(&mut self, env: Envelope<A::State>, from_self: bool) {
        if !self.lattice.coalesce {
            // Priority-only: nothing ever merges, so carry the envelope
            // inline and skip the map.
            let prio = A::priority(&env.value).unwrap_or(0);
            self.stage_item(prio, DrainItem::Env(Pending { env, from_self }));
            return;
        }
        let key = (env.target, env.visitor, env.weight, env.epoch);
        if self.lattice.priority {
            // Algorithms without `priority` fall back to a constant key,
            // which makes the bucket queue a plain stack of one bucket.
            let prio = A::priority(&env.value).unwrap_or(0);
            self.stage_item(prio, DrainItem::Key(key));
        } else {
            self.pend_seq += 1;
            self.pend_fifo.push_back(key);
        }
        self.pending.insert(key, Pending { env, from_self });
    }

    /// Next staged envelope in drain order (best-first under priority,
    /// insertion order otherwise), skipping lazily-deleted key entries.
    fn pop_pending(&mut self) -> Option<Pending<A::State>> {
        if self.lattice.priority {
            while self.pend_staged > 0 {
                // The cursor invariant (every bucket below it is empty)
                // plus staged > 0 guarantees this scan lands on an entry.
                while self.pend_buckets[self.pend_cursor].is_empty() {
                    self.pend_cursor += 1;
                }
                // The cursor scan above stopped on a non-empty bucket, so
                // this pop always yields; the else arm is unreachable but
                // keeps the loop panic-free.
                let Some((seq, item)) = self.pend_buckets[self.pend_cursor].pop() else {
                    continue;
                };
                self.pend_staged -= 1;
                let p = match item {
                    DrainItem::Env(p) => p,
                    // Stale key entries (from re-prioritized merges) fail
                    // the map removal and are skipped.
                    DrainItem::Key(key) => match self.pending.remove(&key) {
                        Some(p) => p,
                        None => continue,
                    },
                };
                if seq < self.pend_max_popped {
                    self.metrics.heap_reorders += 1;
                }
                self.pend_max_popped = self.pend_max_popped.max(seq);
                return Some(p);
            }
            return None;
        }
        while let Some(key) = self.pend_fifo.pop_front() {
            if let Some(p) = self.pending.remove(&key) {
                return Some(p);
            }
        }
        None
    }

    /// Processes one algorithmic envelope (live path: full accounting).
    fn process(&mut self, env: Envelope<A::State>) {
        self.process_inner(env, true);
    }

    /// The envelope-processing body. `count_input` is true on the live
    /// path. Recovery replay passes false: a replayed record was already
    /// accounted — its producer counted it sent, and either its original
    /// processing or the custody sweep counted it processed — so replay
    /// must re-derive its *effects* without re-counting the input
    /// (termination parity, per-kind event metrics, dominance retires) and
    /// without re-arming fault injection. Everything *generated* here
    /// (cascade updates, reverse events) is fresh on either path and is
    /// always fully counted.
    fn process_inner(&mut self, env: Envelope<A::State>, count_input: bool) {
        self.seq += 1;
        // Custody marker for the post-panic sweep: from here until the
        // closing `note_processed`, this envelope is held by nobody but
        // this frame.
        if self.durable && count_input {
            self.mid_process = Some(env.epoch);
        }
        if self.fault_armed && count_input {
            self.inject_faults(env.epoch);
        }
        // Telemetry sampling: 1-in-2^shift events pay two clock reads and
        // one flight-recorder slot; fault-armed shards record every event
        // so a chaos panic always has a dense trace behind it.
        let sampled = self.seq & self.sample_mask == 0;
        if self.tele_rec && (sampled || self.fault_armed) {
            self.tele.record_flight(
                self.id,
                FlightTag::Process,
                env.epoch,
                env.target,
                env.kind as u64,
            );
        }
        let t0 = if self.tele_hist && sampled {
            Some(Instant::now())
        } else {
            None
        };
        let target = env.target;
        // Receiver-side dominance filter: an `Update` whose value the live
        // state already absorbs (join is a no-op) cannot change anything —
        // retire it without the callback/fork/trigger machinery. Skipped
        // when the event predates the vertex's snapshot fork: those must
        // still dual-apply to the forked previous state. Algorithms
        // without `join` are never filtered (join returns false). The
        // neighbour-cache write (`set_cached`) is skipped too; that is
        // sound because a dominated value is information the target
        // already holds.
        if env.kind == EventKind::Update && self.is_dominated(target, env.epoch, &env.value) {
            if count_input {
                self.metrics.updates_dominated += 1;
                self.note_processed(env.epoch);
            }
            if env.tag != 0 {
                self.trace_span(SpanKind::Dominate, env.tag, target, 0);
            }
            self.mid_process = None;
            self.finish_service(t0);
            return;
        }
        // The storage probe of the hot path: intern once per envelope;
        // every access below is direct indexing off the handle.
        let h = self.store.intern(target);
        let (forked, parts) = self.store.fork_and_parts(h, env.epoch);
        if forked {
            self.metrics.snapshot_forks += 1;
        }

        // Topology maintenance is handled by the framework (Algorithm 3):
        // Add/ReverseAdd insert the edge before the user callback runs.
        match env.kind {
            EventKind::Add | EventKind::ReverseAdd => {
                let cached = if env.kind == EventKind::ReverseAdd {
                    A::encode_cache(&env.value)
                } else {
                    0
                };
                let new_edge = parts.adj.insert_weight_min(
                    env.visitor,
                    EdgeMeta {
                        weight: env.weight,
                        cached,
                    },
                );
                if new_edge {
                    self.edges += 1;
                    self.metrics.edges_inserted += 1;
                } else {
                    self.metrics.duplicate_edges += 1;
                }
            }
            EventKind::Update => {
                // Cache the visitor's value on our edge to it, if present
                // (`this.nbrs.set(vis_ID, vis_val)`).
                parts
                    .adj
                    .set_cached(env.visitor, A::encode_cache(&env.value));
            }
            EventKind::Remove | EventKind::ReverseRemove => {
                if parts.adj.remove(env.visitor).is_some() {
                    self.edges -= 1;
                    self.metrics.edges_removed += 1;
                }
            }
            EventKind::Init => {}
        }

        // User callback (single store borrow: reverse-add value capture and
        // trigger evaluation happen inside the same handle access).
        let mut reverse_value: Option<A::State> = None;
        {
            let mut ctx = EventCtx::new(target, parts, &mut self.out, env.epoch);
            ctx.set_shard(self.id);
            // Per-kind counters sit on the accounted side of the envelope
            // balance, so replayed inputs must not move them.
            match env.kind {
                EventKind::Init => {
                    if count_input {
                        self.metrics.init_events += 1;
                    }
                    self.algo.init(&mut ctx);
                }
                EventKind::Add => {
                    if count_input {
                        self.metrics.add_events += 1;
                    }
                    self.algo
                        .on_add(&mut ctx, env.visitor, &env.value, env.weight);
                }
                EventKind::ReverseAdd => {
                    if count_input {
                        self.metrics.reverse_add_events += 1;
                    }
                    self.algo
                        .on_reverse_add(&mut ctx, env.visitor, &env.value, env.weight);
                }
                EventKind::Update => {
                    if count_input {
                        self.metrics.update_events += 1;
                    }
                    self.algo
                        .on_update(&mut ctx, env.visitor, &env.value, env.weight);
                }
                EventKind::Remove => {
                    if count_input {
                        self.metrics.remove_events += 1;
                    }
                    self.algo
                        .on_remove(&mut ctx, env.visitor, &env.value, env.weight);
                }
                EventKind::ReverseRemove => {
                    if count_input {
                        self.metrics.remove_events += 1;
                    }
                    self.algo
                        .on_reverse_remove(&mut ctx, env.visitor, &env.value, env.weight);
                }
            }

            // For an undirected Add/Remove, the reverse event carries our
            // value *after* the callback ran (Algorithm 3 sends
            // `this.value`).
            if self.config.undirected && matches!(env.kind, EventKind::Add | EventKind::Remove) {
                reverse_value = Some(ctx.state().clone());
            }

            // Trigger evaluation on state change (§III-E): fire-once per
            // (trigger, vertex), observed on the owning shard.
            if ctx.state_changed && !self.triggers.is_empty() {
                let seq = self.seq;
                let shard = self.id;
                for (i, t) in self.triggers.iter().enumerate() {
                    let bit = 1u32 << i;
                    if ctx.fired_bits() & bit == 0 && (t.predicate)(target, ctx.state()) {
                        ctx.mark_fired(bit);
                        self.pending_fires.push(TriggerFire {
                            trigger: i,
                            vertex: target,
                            shard,
                            seq,
                        });
                    }
                }
            }
        }
        for fire in self.pending_fires.drain(..) {
            self.metrics.triggers_fired += 1;
            let _ = self.trigger_tx.send(fire);
        }

        // Tracing: one Process (live) / Replay (recovery) span per tagged
        // envelope, with the callback's fan-out before any coalescing or
        // suppression trims it. Every generated envelope below inherits
        // the tag at hop+1 — the registry's Delta fan-out rides the same
        // outgoing path, so multi-query traces come for free.
        let ctag = trace::child(env.tag);
        if env.tag != 0 {
            let fanout = u64::from(reverse_value.is_some()) + self.out.len() as u64;
            let kind = if count_input {
                SpanKind::Process
            } else {
                SpanKind::Replay
            };
            self.trace_span(kind, env.tag, target, fanout);
            if self.tele_rec {
                self.tele.record_flight(
                    self.id,
                    FlightTag::Trace,
                    env.epoch,
                    trace::trace_id(env.tag),
                    u64::from(trace::hop_of(env.tag)),
                );
            }
        }

        if let Some(value) = reverse_value {
            let kind = if env.kind == EventKind::Add {
                EventKind::ReverseAdd
            } else {
                EventKind::ReverseRemove
            };
            self.send_envelope(Envelope {
                target: env.visitor,
                visitor: target,
                value,
                weight: env.weight,
                kind,
                epoch: env.epoch,
                tag: ctag,
            });
        }

        // Route the callback's generated updates, keeping the buffer's
        // allocation for the next event.
        let mut outgoing = std::mem::take(&mut self.out);
        for o in outgoing.drain(..) {
            self.send_envelope(Envelope {
                target: o.target,
                visitor: target,
                value: o.value,
                weight: o.weight,
                kind: EventKind::Update,
                epoch: env.epoch,
                tag: ctag,
            });
        }
        self.out = outgoing;

        // Retire the envelope only after its children's sends were
        // published (four-counter soundness).
        if count_input {
            self.note_processed(env.epoch);
        }
        self.mid_process = None;
        self.finish_service(t0);
    }

    /// Appends one span to this shard's ring, moving the span counters
    /// (`trace_spans_dropped` counts ring evictions — see the overflow
    /// policy in [`crate::trace`]). Callers gate on `env.tag != 0` (or
    /// `trace_on` for roots), so the untraced path never lands here.
    #[inline]
    fn trace_span(&mut self, kind: SpanKind, tag: TraceTag, a: u64, b: u64) {
        self.metrics.trace_spans += 1;
        if self.tele.record_span(self.id, kind, tag, a, b) {
            self.metrics.trace_spans_dropped += 1;
        }
    }

    /// Closes a sampled service-time measurement opened in `process`.
    #[inline]
    fn finish_service(&mut self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.tele
                .record_service(self.id, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Publishes one processed envelope of `epoch`'s parity.
    #[inline]
    fn note_processed(&mut self, epoch: Epoch) {
        use std::sync::atomic::Ordering;
        let p = (epoch & 1) as usize;
        self.processed_local[p] += 1;
        self.shared.slot(self.id).processed[p].store(self.processed_local[p], Ordering::Release);
        if self.tele_counters {
            self.pub_ticker += 1;
            if self.pub_ticker >= PUBLISH_EVERY {
                self.publish_telemetry();
            }
        }
    }

    /// Publishes this shard's counters and live queue gauges into its
    /// seqlock snapshot cell (two fences + one cell write; amortized over
    /// [`PUBLISH_EVERY`] events on the hot path).
    fn publish_telemetry(&mut self) {
        self.pub_ticker = 0;
        let queue_depth =
            (self.rx.len() + self.local_q.len() + self.pend_staged + self.pend_fifo.len()) as u64;
        let lane_occupancy = match &self.lanes {
            Some(lanes) => lanes.mesh.inbound_occupancy(self.id) as u64,
            None => 0,
        };
        self.tele.publish_counters(
            self.id,
            &self.metrics,
            queue_depth,
            lane_occupancy,
            self.seat.map(|s| (s.cpu, s.node)),
        );
    }

    /// Publishes one created envelope of `epoch`'s parity. Must happen
    /// before the envelope becomes receivable.
    #[inline]
    fn note_sent(&mut self, epoch: Epoch) {
        use std::sync::atomic::Ordering;
        let p = (epoch & 1) as usize;
        self.sent_local[p] += 1;
        self.shared.slot(self.id).sent[p].store(self.sent_local[p], Ordering::Release);
    }

    /// Routes a pulled topology event as an `Add`/`Remove` at `owner(src)`,
    /// stamped with `tag` when the ingest was trace-sampled (hop 1).
    fn route_topo(&mut self, ev: TopoEvent, epoch: Epoch, tag: TraceTag) {
        let kind = match ev.op {
            crate::event::TopoOp::Add => EventKind::Add,
            crate::event::TopoOp::Remove => EventKind::Remove,
        };
        self.send_envelope(Envelope {
            target: ev.src,
            visitor: ev.dst,
            value: A::State::default(),
            weight: ev.weight,
            kind,
            epoch,
            tag,
        });
    }

    /// Queues an envelope for its owner (possibly self), with termination
    /// accounting. Buffered envelopes are already counted as in flight;
    /// buffers flush when full or when the shard goes idle, so the
    /// in-flight counter can only reach zero once every buffer is empty.
    fn send_envelope(&mut self, env: Envelope<A::State>) {
        let owner = self.part.owner(env.target);
        // Self-routed `Update`s whose value the target's live state already
        // absorbs are dropped before any accounting: the envelope never
        // exists as far as termination detection is concerned, and it skips
        // the staging machinery entirely.
        if owner == self.id
            && env.kind == EventKind::Update
            && self.is_dominated(env.target, env.epoch, &env.value)
        {
            // Suppressed, not dominated: the envelope was never counted
            // as sent, so it must not enter the balance equation's
            // processed side either (see RunMetrics::verify_balance).
            self.metrics.updates_suppressed += 1;
            if env.tag != 0 {
                self.trace_span(SpanKind::Suppress, env.tag, env.target, 0);
            }
            return;
        }
        // Sender-side coalescing: fold this `Update` into an envelope
        // already staged locally (self-route) or buffered in the outbox
        // (remote) for the same (target, visitor, weight, epoch). This
        // happens *before* any accounting, so an absorbed envelope never
        // exists as far as termination detection or the chaos plan are
        // concerned — the staged original remains counted exactly once.
        let mut key_occupied = false;
        if self.lattice.coalesce && env.kind == EventKind::Update {
            if owner == self.id {
                match self.try_absorb_pending(&env) {
                    Coalesce::Absorbed => {
                        self.metrics.envelopes_coalesced += 1;
                        return;
                    }
                    Coalesce::Declined => key_occupied = true,
                    Coalesce::NoEntry => {}
                }
            } else {
                let key = (env.target, env.visitor, env.weight, env.epoch);
                if let Some(&i) = self.outbox_index[owner].get(&key) {
                    if A::join(&mut self.outboxes[owner][i].value, &env.value) {
                        self.metrics.envelopes_coalesced += 1;
                        // Same tag-inheritance rule as the local backlog:
                        // the trace must survive outbox coalescing too.
                        if env.tag != 0 {
                            if self.outboxes[owner][i].tag == 0 {
                                self.outboxes[owner][i].tag = env.tag;
                            }
                            let absorber = trace::trace_id(self.outboxes[owner][i].tag);
                            self.trace_span(SpanKind::Absorb, env.tag, env.target, absorber);
                        }
                        return;
                    }
                    key_occupied = true;
                }
            }
        }
        self.note_sent(env.epoch);
        self.safra.on_send();
        self.metrics.envelopes_sent += 1;
        // A tagged envelope is counted sent here exactly once, so the
        // Send span is the amplification unit (cross-checkable against
        // `envelopes_sent`). Destination shard in the low word, cross-NUMA
        // flag in bit 32 (both ends pinned, different nodes).
        if env.tag != 0 {
            let cross = match self.seat {
                Some(seat) => self
                    .plan
                    .node_of_shard(owner)
                    .is_some_and(|n| n != seat.node),
                None => false,
            };
            let b = owner as u64 | (u64::from(cross) << 32);
            self.trace_span(SpanKind::Send, env.tag, env.target, b);
        }
        // Chaos: lose this envelope "in transit" — after the sent counter
        // was published, exactly like a message a real network ate. The
        // imbalance is what the controller's deadline machinery must catch.
        if self.fault_armed
            && self
                .config
                .fault_plan
                .should_drop(self.id, self.metrics.envelopes_sent)
        {
            self.metrics.faults_injected += 1;
            self.metrics.envelopes_dropped += 1;
            return;
        }
        if owner == self.id {
            if self.lattice_on && env.kind == EventKind::Update && !key_occupied {
                self.stage_pending(env, true);
            } else {
                self.local_q.push_back(env);
            }
            return;
        }
        if self.lattice.coalesce && env.kind == EventKind::Update && !key_occupied {
            let key = (env.target, env.visitor, env.weight, env.epoch);
            self.outbox_index[owner].insert(key, self.outboxes[owner].len());
        }
        self.outboxes[owner].push(env);
        if self.outboxes[owner].len() >= self.eff_batch {
            self.flush(owner);
        }
    }

    /// One adaptive decision boundary (no-op without a controller). The
    /// controller judges the window since its last decision from this
    /// shard's own counters and may flip sender-side coalescing or resize
    /// the effective batch — both identity-preserving (see
    /// [`crate::adaptive`]); envelopes already staged under the old policy
    /// drain normally. Every decision moves the `adaptive_*` counters, so
    /// the exporters and the bench JSON can show what the controller did.
    fn adaptive_tick(&mut self) {
        let Some(mut ctl) = self.adaptive.take() else {
            return;
        };
        let decision = ctl.decide(&self.metrics, self.lattice.coalesce, self.eff_batch);
        self.adaptive = Some(ctl);
        let Some(d) = decision else {
            return;
        };
        self.metrics.adaptive_decisions += 1;
        if let Some(on) = d.coalesce {
            if on != self.lattice.coalesce {
                self.lattice.coalesce = on;
                self.lattice_on = self.lattice.coalesce || self.lattice.priority;
                if on {
                    self.metrics.adaptive_coalesce_on += 1;
                } else {
                    self.metrics.adaptive_coalesce_off += 1;
                }
            }
        }
        if let Some(batch) = d.batch {
            if batch > self.eff_batch {
                self.metrics.adaptive_batch_grow += 1;
            } else if batch < self.eff_batch {
                self.metrics.adaptive_batch_shrink += 1;
            }
            self.eff_batch = batch.max(1);
        }
    }

    /// Ships one destination's buffered envelopes, timing the shipment
    /// when latency histograms are on (empty outboxes cost one branch).
    fn flush(&mut self, owner: usize) {
        if self.outboxes[owner].is_empty() {
            return;
        }
        if self.tele_rec {
            self.tele.record_flight(
                self.id,
                FlightTag::Flush,
                self.cur_epoch,
                owner as u64,
                self.outboxes[owner].len() as u64,
            );
        }
        if !self.tele_hist {
            self.do_flush(owner);
            return;
        }
        let t0 = Instant::now();
        self.do_flush(owner);
        self.tele
            .record_flush(self.id, t0.elapsed().as_nanos() as u64);
    }

    fn do_flush(&mut self, owner: usize) {
        self.outbox_index[owner].clear();
        let batch = std::mem::take(&mut self.outboxes[owner]);
        let Some(lanes) = &self.lanes else {
            // Channel transport: one MPMC send. A closed channel means the
            // receiver shut down mid-run (engine teardown, or the
            // destination shard died): retire the envelopes so counters
            // stay balanced, and account for the loss.
            if let Err(e) = self.senders[owner].send(Message::Batch(batch)) {
                if let Message::Batch(batch) = e.into_inner() {
                    self.retire_batch(batch);
                }
            }
            return;
        };
        let mesh = Arc::clone(&lanes.mesh);
        if self.board.is_failed(owner) {
            // A dead receiver can never pop its lanes: retire this batch
            // and whatever is still parked in the lane (quiescence over
            // the survivors is unreachable while either counts as in
            // flight).
            self.retire_batch(batch);
            self.reclaim_lane(owner);
            return;
        }
        // FIFO handshake tail: while any fallback batch is unacknowledged,
        // the pair stays on the channel path — a lane push now could
        // overtake the fallback still queued in the receiver's channel.
        if self.fallback_sent[owner] != mesh.fallback_consumed(self.id, owner) {
            self.metrics.lane_full_fallbacks += 1;
            self.send_fallback(owner, batch);
            return;
        }
        match mesh.send(self.id, owner, batch) {
            Ok(()) => {
                self.metrics.lane_batches += 1;
                // Placement telemetry: a batch that crossed NUMA nodes
                // (both ends pinned, different seats). Informational —
                // stays outside verify_balance.
                if let Some(seat) = self.seat {
                    if self.plan.node_of_shard(owner).is_some_and(|n| n != seat.node) {
                        self.metrics.lane_cross_node_batches += 1;
                    }
                }
                // Pool a drained buffer for the next fill — steady-state
                // flushes allocate nothing.
                if let Some(buf) = mesh.take_recycled(self.id, owner) {
                    self.metrics.batches_recycled += 1;
                    self.outboxes[owner] = buf;
                }
                self.wake(owner);
            }
            Err(batch) => {
                self.metrics.lane_full_fallbacks += 1;
                self.send_fallback(owner, batch);
            }
        }
    }

    /// Lanes transport: ships a batch over the channel because the pair's
    /// data lane is full (or the pair is mid-handshake). Never blocks,
    /// never reorders: the receiver drains the lane before admitting it.
    fn send_fallback(&mut self, owner: usize, batch: Vec<Envelope<A::State>>) {
        self.fallback_sent[owner] += 1;
        let msg = Message::LaneFallback {
            from: self.id,
            batch,
        };
        match self.senders[owner].send(msg) {
            Ok(()) => self.wake(owner),
            Err(e) => {
                if let Message::LaneFallback { batch, .. } = e.into_inner() {
                    self.retire_batch(batch);
                }
                self.reclaim_lane(owner);
            }
        }
    }

    /// Retires envelopes whose receiver is gone: counted undeliverable
    /// and processed so the termination books stay balanced.
    fn retire_batch(&mut self, batch: Vec<Envelope<A::State>>) {
        self.metrics.envelopes_undeliverable += batch.len() as u64;
        for env in batch {
            self.safra.count -= 1;
            self.note_processed(env.epoch);
        }
    }

    /// Drains this shard's own data lane to a dead `owner`, retiring the
    /// in-flight envelopes. See [`crate::transport::LaneMesh::reclaim`]
    /// for why popping our own lane is sound only once the consumer is
    /// provably gone (channel disconnect or failure-board record, both
    /// published strictly after its last pop).
    fn reclaim_lane(&mut self, owner: usize) {
        let mesh = match &self.lanes {
            Some(lanes) => Arc::clone(&lanes.mesh),
            None => return,
        };
        for batch in mesh.reclaim(self.id, owner) {
            self.retire_batch(batch);
        }
    }

    /// Unparks `owner` if it announced sleep (lane transport only); the
    /// caller must have already published the work being signalled.
    fn wake(&mut self, owner: usize) {
        if let Some(lanes) = &self.lanes {
            if lanes.parks.wake(owner) {
                self.metrics.unparks += 1;
            }
        }
    }

    /// Ships every buffered envelope.
    fn flush_all(&mut self) {
        for owner in 0..self.outboxes.len() {
            self.flush(owner);
        }
        // Lanes: a dead destination never drains its inbound lanes, and
        // `flush` only notices on the next send — sweep here too, so a
        // panicked shard's lanes drain into the undeliverable accounting
        // even when nothing more is addressed to it and degraded runs can
        // settle their counters.
        if self.lanes.is_some() && self.board.any_failed() {
            for owner in 0..self.senders.len() {
                if owner != self.id && self.board.is_failed(owner) {
                    self.reclaim_lane(owner);
                }
            }
        }
    }

    /// Next topology event from the shard's pending streams.
    fn next_topo(&mut self) -> Option<TopoEvent> {
        loop {
            let front = self.streams.front_mut()?;
            match front.next() {
                Some(ev) => return Some(ev),
                None => {
                    self.streams.pop_front();
                }
            }
        }
    }

    /// Safra participation while idle (counter mode: no-op; the controller
    /// reads the shared counters directly).
    fn idle_step(&mut self) {
        if self.config.termination != TerminationMode::Safra {
            return;
        }
        // Passive: no local stream work (inbound known empty at this point).
        if !self.streams.is_empty() {
            return;
        }
        if let Some(tok) = self.safra.held.take() {
            self.metrics.safra_tokens += 1;
            match self.safra.process_token(tok, self.id == 0) {
                TokenAction::Forward(t) | TokenAction::Restart(t) => self.send_token(t),
                TokenAction::Quiescent => {
                    let _ = self.quiesce_tx.send(());
                }
            }
        } else if self.id == 0 && !self.safra.round_active && !self.safra.announced {
            let t = self.safra.start_round();
            self.send_token(t);
        }
    }

    fn send_token(&mut self, t: Token) {
        let next = (self.id + 1) % self.config.num_shards;
        let _ = self.senders[next].send(Message::Token(t));
        // A parked successor must see the token promptly or the ring
        // stalls for a heartbeat per hop.
        self.wake(next);
    }

    /// Collects this shard's contribution to a snapshot (or the live view).
    fn collect(&mut self, old_epoch: Epoch, live: bool) -> Vec<(VertexId, A::State)> {
        self.store.collect(old_epoch, live)
    }

    // ---- durability: WAL custody, checkpoints, recovery ----------------
    //
    // Every method below is reached only when `self.durable` is true (the
    // callers gate on it), except the panic-free `prepare_recovery` sweep
    // which the supervisor invokes between unwind and re-entry.

    /// True when a previous process left durable state for this shard.
    fn has_durable_state(&self) -> bool {
        match &self.config.durability {
            Some(d) => wal::has_durable_state(&d.dir, self.id),
            None => false,
        }
    }

    /// Opens the WAL inside the supervised region (an IO failure becomes
    /// a recorded shard failure, not a silent death).
    fn open_wal(&mut self) {
        let Some(d) = &self.config.durability else {
            return;
        };
        match ShardWal::open(&d.dir, self.id, d.fsync) {
            Ok(w) => self.wal = Some(w),
            Err(e) => panic!("durability: failed to open WAL for shard {}: {e}", self.id),
        }
    }

    /// Buffers one accepted envelope into the WAL (custody point). The
    /// frame becomes durable at the next [`ShardWorker::wal_commit`].
    fn log_custody(&mut self, env: &Envelope<A::State>) {
        self.wal_scratch.clear();
        A::encode_state(&env.value, &mut self.wal_scratch);
        if let Some(w) = self.wal.as_mut() {
            w.append_envelope(
                env.kind.as_u8(),
                env.epoch,
                env.target,
                env.visitor,
                env.weight,
                env.tag,
                &self.wal_scratch,
            );
            self.metrics.wal_records_appended += 1;
            self.events_since_ckpt += 1;
        }
    }

    /// Buffers one pulled topology event into the WAL.
    fn log_topo(&mut self, ev: &TopoEvent, epoch: Epoch) {
        if let Some(w) = self.wal.as_mut() {
            w.append_topo(ev, epoch);
            self.metrics.wal_records_appended += 1;
            self.events_since_ckpt += 1;
        }
    }

    /// Writes (and under `DurabilityConfig::fsync`, syncs) the buffered
    /// WAL frames. Called at batch boundaries, before processing.
    fn wal_commit(&mut self) {
        if let Some(w) = self.wal.as_mut() {
            match w.commit() {
                Ok(n) => self.metrics.wal_bytes += n,
                Err(e) => panic!("durability: WAL commit failed on shard {}: {e}", self.id),
            }
        }
    }

    /// Durable receive tail: commit the batch's WAL frames, then admit the
    /// staged envelopes. Ordering is the whole point — a record is on disk
    /// before any of its effects can escape this shard.
    fn commit_and_admit_inbox(&mut self) {
        self.wal_commit();
        while let Some(env) = self.inbox.pop_front() {
            self.admit(env);
        }
    }

    /// All custody drained? (The checkpoint-at-idle precondition: with
    /// every queue empty the store is a complete description of this
    /// shard, so checkpoint + empty WAL ≡ current state.)
    fn custody_clear(&self) -> bool {
        self.local_q.is_empty()
            && self.inbox.is_empty()
            && self.pending.is_empty()
            && self.pend_staged == 0
            && self.pend_fifo.is_empty()
            && self.out.is_empty()
            && self.outboxes.iter().all(|b| b.is_empty())
    }

    /// Checkpoints if the WAL has grown past the configured interval (or
    /// unconditionally on `force`, the shutdown path) — but only from a
    /// fully drained state.
    fn maybe_checkpoint(&mut self, force: bool) {
        if !self.durable || self.events_since_ckpt == 0 {
            return;
        }
        let every = self
            .config
            .durability
            .as_ref()
            .map_or(u64::MAX, |d| d.checkpoint_every);
        if (!force && self.events_since_ckpt < every) || !self.custody_clear() {
            return;
        }
        self.write_checkpoint();
    }

    /// Serializes the store (both layouts stream through
    /// [`ShardStore::export_records`]) plus the small scalar tail.
    fn encode_checkpoint(&self) -> Vec<u8> {
        use crate::wal::{put_bytes, put_u32, put_u64};
        let mut body = Vec::with_capacity(64 + self.store.num_vertices() * 48);
        put_u64(&mut body, self.seq);
        put_u32(&mut body, self.cur_epoch);
        put_u64(&mut body, self.edges);
        put_u64(&mut body, self.store.num_vertices() as u64);
        let mut scratch = Vec::new();
        self.store.export_records(&mut |v, live, prev, meta, adj| {
            put_u64(&mut body, v);
            put_u32(&mut body, meta.forked_epoch);
            put_u32(&mut body, meta.fired);
            scratch.clear();
            A::encode_state(live, &mut scratch);
            put_bytes(&mut body, &scratch);
            match prev {
                Some(p) => {
                    body.push(1);
                    scratch.clear();
                    A::encode_state(p, &mut scratch);
                    put_bytes(&mut body, &scratch);
                }
                None => body.push(0),
            }
            put_u32(&mut body, adj.degree() as u32);
            for (nbr, m) in adj.iter() {
                put_u64(&mut body, nbr);
                put_u64(&mut body, m.weight);
                put_u64(&mut body, m.cached);
            }
        });
        body
    }

    /// Stage → (chaos window) → publish → truncate WAL. A crash anywhere
    /// in the sequence leaves a recoverable pair: old checkpoint + full
    /// WAL, or new checkpoint + (possibly still-full) WAL whose replay is
    /// idempotent.
    #[cold]
    fn write_checkpoint(&mut self) {
        let root = match &self.config.durability {
            Some(d) => d.dir.clone(),
            None => return,
        };
        let t0 = Instant::now();
        self.ckpt_attempts += 1;
        let body = self.encode_checkpoint();
        if let Err(e) = wal::stage_checkpoint(&root, self.id, &body) {
            panic!(
                "durability: checkpoint staging failed on shard {}: {e}",
                self.id
            );
        }
        if self.fault_armed {
            self.inject_checkpoint_fault();
        }
        if let Err(e) = wal::publish_checkpoint(&root, self.id) {
            panic!(
                "durability: checkpoint publish failed on shard {}: {e}",
                self.id
            );
        }
        if let Some(w) = self.wal.as_mut() {
            if let Err(e) = w.reset() {
                panic!("durability: WAL reset failed on shard {}: {e}", self.id);
            }
        }
        self.events_since_ckpt = 0;
        self.metrics.checkpoints_written += 1;
        self.tele.record_checkpoint(t0.elapsed().as_nanos() as u64);
        if self.tele_rec {
            self.tele.record_flight(
                self.id,
                FlightTag::Flush,
                self.cur_epoch,
                u64::MAX,
                body.len() as u64,
            );
        }
    }

    /// Chaos: die between checkpoint staging and publish (fires once).
    #[cold]
    fn inject_checkpoint_fault(&mut self) {
        if let Some((shard, nth)) = self.config.fault_plan.panic_in_checkpoint {
            if shard == self.id && self.ckpt_attempts >= nth && !self.ckpt_fault_fired {
                self.ckpt_fault_fired = true;
                self.metrics.faults_injected += 1;
                if self.tele_counters {
                    self.publish_telemetry();
                }
                panic!(
                    "{CHAOS_PANIC_MARKER}: shard {} during checkpoint {}",
                    self.id, self.ckpt_attempts
                );
            }
        }
    }

    /// Chaos: die while replaying the `nth` WAL record (fires once).
    #[cold]
    fn inject_replay_fault(&mut self, nth: u64) {
        if let Some((shard, at)) = self.config.fault_plan.panic_in_replay {
            if shard == self.id && nth >= at && !self.replay_fault_fired {
                self.replay_fault_fired = true;
                self.metrics.faults_injected += 1;
                if self.tele_counters {
                    self.publish_telemetry();
                }
                panic!(
                    "{CHAOS_PANIC_MARKER}: shard {} during replay record {nth}",
                    self.id
                );
            }
        }
    }

    /// Replaces the in-memory store with the latest published checkpoint
    /// (or an empty store when none exists yet). On a cold start the
    /// previous process's epoch timeline is void: forks are dropped and
    /// fork epochs zeroed; fired-trigger bits survive either way so
    /// at-most-once firing spans the restart.
    fn restore_checkpoint(&mut self, root: &std::path::Path, cold: bool) {
        let shard_cap = self
            .config
            .expected_vertices
            .div_ceil(self.config.num_shards);
        let shard_cap = shard_cap + shard_cap / 8;
        self.store = St::with_capacity(shard_cap);
        self.edges = 0;
        let body = match wal::read_checkpoint(root, self.id) {
            Ok(b) => b,
            Err(e) => panic!(
                "durability: checkpoint read failed on shard {}: {e}",
                self.id
            ),
        };
        let Some(body) = body else {
            return;
        };
        let mut r = wal::ByteReader::new(&body);
        let parsed = (|| -> std::io::Result<()> {
            let seq = r.u64()?;
            let _epoch = r.u32()?;
            let edges = r.u64()?;
            let vertices = r.u64()?;
            for _ in 0..vertices {
                let v = r.u64()?;
                let forked_epoch = r.u32()?;
                let fired = r.u32()?;
                let live = A::decode_state(r.bytes()?);
                let prev = if r.u8()? == 1 {
                    Some(A::decode_state(r.bytes()?))
                } else {
                    None
                };
                let degree = r.u32()?;
                let mut adj = Adjacency::new();
                for _ in 0..degree {
                    let nbr = r.u64()?;
                    let weight = r.u64()?;
                    let cached = r.u64()?;
                    adj.insert(nbr, EdgeMeta { weight, cached });
                }
                let meta = VertexMeta {
                    forked_epoch: if cold { 0 } else { forked_epoch },
                    fired,
                };
                self.store
                    .restore_record(v, live, if cold { None } else { prev }, meta, adj);
            }
            self.seq = self.seq.max(seq);
            self.edges = edges;
            Ok(())
        })();
        if let Err(e) = parsed {
            panic!("durability: malformed checkpoint on shard {}: {e}", self.id);
        }
    }

    /// Restore + replay, inside the supervised region (a panic here —
    /// chaos-injected or real — consumes another respawn). Replayed
    /// records run uncounted ([`ShardWorker::process_inner`] with
    /// `count_input = false`); the traffic they *generate* is fresh and
    /// fully counted, which is what keeps the four-counter books balanced
    /// over at-least-once replay.
    #[cold]
    fn recover(&mut self) {
        let cold = self.cold_start;
        self.cold_start = false;
        let root = match &self.config.durability {
            Some(d) => d.dir.clone(),
            None => return,
        };
        self.restore_checkpoint(&root, cold);
        let records = match wal::read_wal(&root, self.id) {
            Ok(r) => r,
            Err(e) => panic!("durability: WAL read failed on shard {}: {e}", self.id),
        };
        let total = records.len() as u64;
        let mut replayed = 0u64;
        for rec in records {
            replayed += 1;
            if self.fault_armed {
                self.inject_replay_fault(replayed);
            }
            match rec {
                RawRecord::Envelope {
                    kind,
                    epoch,
                    target,
                    visitor,
                    weight,
                    tag,
                    state,
                } => {
                    let Some(kind) = EventKind::from_u8(kind) else {
                        panic!(
                            "durability: unknown envelope kind {kind} in shard {} WAL",
                            self.id
                        );
                    };
                    // The tag rides the WAL frame, so a replayed envelope
                    // keeps its trace identity — process_inner records a
                    // Replay span for it (count_input = false), never a
                    // Process span, so replay is visible in the tree
                    // without inflating amplification.
                    let env = Envelope {
                        target,
                        visitor,
                        value: A::decode_state(&state),
                        weight,
                        kind,
                        epoch: if cold { 0 } else { epoch },
                        tag,
                    };
                    self.process_inner(env, false);
                }
                RawRecord::Topo { ev, epoch } => {
                    // Fresh sends (the pull itself was already counted
                    // ingested by the original run; replay must not move
                    // `ingested` or the stream books would overrun).
                    // Untagged: the original ingest's Root span (if it was
                    // sampled) already anchors the trace, and the replayed
                    // envelope chain is re-derived below it.
                    self.route_topo(ev, if cold { 0 } else { epoch }, 0);
                }
                RawRecord::Control { kind, mask } => {
                    // Re-derive the sweep's effects. Replaying a committed
                    // control record is monotone-safe: a duplicated prime
                    // rebuilds the same columns, a duplicated flood re-sends
                    // values the neighbours already dominate.
                    let Some(kind) = ControlKind::from_u8(kind) else {
                        panic!(
                            "durability: unknown control kind {kind} in shard {} WAL",
                            self.id
                        );
                    };
                    self.control_sweep(kind, mask);
                    self.algo.on_control_commit(self.id, kind, mask);
                }
            }
            self.metrics.replayed_records += 1;
            // Drain the cascades each replayed record spawns before the
            // next record, preserving the WAL's custody order the same
            // way the live loop drains local work between admissions.
            self.drain_replay_backlog();
        }
        // Everything replayed is still in the WAL (reset happens only at
        // checkpoint publish), so the next idle checkpoint covers it.
        self.events_since_ckpt = total;
        self.needs_recovery = false;
        // Replay is complete: every swept envelope's effects are
        // re-derived and re-counted, so lift the termination gate.
        self.shared.recovery_end();
        // Rejoin the transport mesh. `drain_lanes` claims (clears) the
        // pending bitmap before draining, so a panic that unwound between
        // the claim and the drain left delivered batches in the rings
        // with no bit to flag them — if no peer pushes on that lane
        // again, the bit-probe never finds them and their senders' books
        // stay open forever. One unconditional full-mesh sweep re-admits
        // them as ordinary live input.
        for from in 0..self.config.num_shards {
            if from != self.id {
                self.drain_lane_from(from);
            }
        }
        if self.tele_rec {
            self.tele.record_flight(
                self.id,
                FlightTag::Respawn,
                self.cur_epoch,
                u64::from(self.respawns_done),
                replayed,
            );
        }
        self.flush_all();
        if self.tele_counters {
            self.publish_telemetry();
        }
    }

    /// Drains self-routed work generated by replay (full accounting —
    /// this is live traffic, merely born during recovery).
    fn drain_replay_backlog(&mut self) {
        loop {
            let mut round = false;
            while let Some(env) = self.local_q.pop_front() {
                round = true;
                self.safra.on_receive();
                self.process(env);
            }
            while let Some(p) = self.pop_pending() {
                round = true;
                if p.from_self {
                    self.safra.on_receive();
                }
                self.process(p.env);
            }
            if !round {
                break;
            }
        }
    }

    /// Post-panic custody sweep, run *outside* the supervised region — it
    /// must be panic-free (queue drains, counter stores, no IO, no user
    /// code). Every envelope still held by this worker is retired against
    /// the termination books exactly once, mirroring
    /// [`ShardWorker::retire_batch`]'s counter motion: envelopes this
    /// shard *sent* but never received (outboxes, local queue, self-staged
    /// pending) cancel their Safra count and owe a processed mark;
    /// envelopes already receive-accounted at custody (inbox, staged
    /// received, the half-processed one) owe only the processed mark.
    /// Replay re-derives all of their effects from the WAL.
    fn prepare_recovery(&mut self) {
        use std::sync::atomic::Ordering;
        // Gate termination detection BEFORE the first retirement below:
        // the sweep balances the books without having re-derived the
        // swept work, and the probe must be able to tell. Idempotent
        // across a panic-during-replay (needs_recovery is still set).
        if !self.needs_recovery {
            self.needs_recovery = true;
            self.shared.recovery_begin();
        }
        self.metrics.shard_respawns += 1;
        if let Some(epoch) = self.mid_process.take() {
            self.retire_recovered(epoch, false);
        }
        // Un-routed callback output and un-sent trigger fires: never
        // entered any book, just dropped (replay regenerates them).
        self.out.clear();
        self.pending_fires.clear();
        for owner in 0..self.outboxes.len() {
            self.outbox_index[owner].clear();
            for env in std::mem::take(&mut self.outboxes[owner]) {
                self.retire_recovered(env.epoch, true);
            }
        }
        while let Some(env) = self.local_q.pop_front() {
            self.retire_recovered(env.epoch, true);
        }
        while let Some(env) = self.inbox.pop_front() {
            self.retire_recovered(env.epoch, false);
        }
        // The priority buckets carry received envelopes inline (plus
        // lazily-deleted keys); the pending map holds every self-staged
        // one. Collect first — the drains borrow the queues.
        let mut swept: Vec<(Epoch, bool)> = Vec::new();
        for bucket in &mut self.pend_buckets {
            for (_, item) in bucket.drain(..) {
                if let DrainItem::Env(p) = item {
                    swept.push((p.env.epoch, p.from_self));
                }
            }
        }
        for (_, p) in self.pending.drain() {
            swept.push((p.env.epoch, p.from_self));
        }
        self.pend_fifo.clear();
        self.pend_cursor = PRIO_BUCKETS;
        self.pend_staged = 0;
        self.pend_max_popped = 0;
        for (epoch, in_flight) in swept {
            self.retire_recovered(epoch, in_flight);
        }
        // WAL frames buffered but not committed belong to envelopes just
        // swept: discard them, replay must not see them.
        if let Some(w) = self.wal.as_mut() {
            w.discard_pending();
        }
        // A panic between a topo pull's local increment and its slot store
        // (the WAL write sits in that region) would otherwise leave the
        // published `ingested` permanently one behind — re-publish it.
        self.shared
            .slot(self.id)
            .ingested
            .store(self.ingested_local, Ordering::Release);
        // Invalidate any in-progress Safra round: counters moved while
        // the token was circulating.
        self.safra.black = true;
        if self.tele_counters {
            self.publish_telemetry();
        }
    }

    /// One swept envelope. `in_flight` marks sender-side custody (counted
    /// sent, the receive still owed) — those also cancel the Safra count,
    /// exactly as in [`ShardWorker::retire_batch`].
    fn retire_recovered(&mut self, epoch: Epoch, in_flight: bool) {
        if in_flight {
            self.safra.count -= 1;
        }
        self.metrics.envelopes_recovered += 1;
        self.note_processed(epoch);
    }

    fn report(mut self) -> ShardReport<A::State> {
        // Final cell publish: metrics_now observers see the exact counters
        // this report carries, even after the thread is gone.
        if self.tele_counters {
            self.publish_telemetry();
        }
        let states = self.collect(u32::MAX, true);
        let num_vertices = self.store.num_vertices();
        let adjacency_bytes = self.store.adjacency_heap_bytes();
        let store_bytes = self.store.heap_bytes();
        ShardReport {
            id: self.id,
            states,
            metrics: self.metrics,
            num_vertices,
            num_edges: self.edges,
            adjacency_bytes,
            store_bytes,
            table: self.store.into_table(),
        }
    }
}

/// Direct regression coverage for the undeliverable-batch path and the
/// lane transport's sender-side machinery: these drive one `ShardWorker`
/// by hand (no engine, no threads), which is the only way to pin down the
/// exact counter movements — chaos runs exercise the same paths but only
/// observe the aggregate balance.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::DenseStore;
    use crate::transport::LaneHandles;
    use crossbeam::channel::unbounded;

    /// Minimal algorithm: default callbacks, `u64` state.
    struct Noop;
    impl Algorithm for Noop {
        type State = u64;
    }

    struct Fixture {
        worker: ShardWorker<Noop, DenseStore<u64>>,
        shared: Arc<SharedCounters>,
        board: Arc<FailureBoard>,
        /// Shard 1's inbound channel: dropping it simulates the receiver
        /// shutting down.
        peer_rx: Option<Receiver<Message<u64>>>,
        /// Keep the trigger/quiesce receivers alive for the fixture's
        /// lifetime (the worker ignores send failures, but a live channel
        /// matches the engine's wiring).
        _trigger_rx: Receiver<TriggerFire>,
        _quiesce_rx: Receiver<()>,
    }

    /// A two-shard world with shard 0 driven by hand and shard 1 absent
    /// (only its channel endpoint exists).
    fn fixture(mode: TransportMode) -> Fixture {
        let config = EngineConfig::undirected(2).with_transport(mode);
        let shared = Arc::new(SharedCounters::new(2));
        let board = Arc::new(FailureBoard::new());
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let (trigger_tx, trigger_rx) = unbounded();
        let (quiesce_tx, quiesce_rx) = unbounded();
        let lanes = match mode {
            TransportMode::Lanes => Some(LaneHandles::new(2)),
            TransportMode::Channel => None,
        };
        let tele = Arc::new(TelemetryShared::new(
            config.telemetry.clone(),
            config.trace.clone(),
            2,
            Arc::clone(&shared),
            Arc::clone(&board),
        ));
        let worker = ShardWorker::new(
            0,
            Arc::new(Noop),
            config,
            rx0,
            vec![tx0, tx1],
            Arc::clone(&shared),
            Arc::clone(&board),
            Arc::new(Vec::new()),
            trigger_tx,
            quiesce_tx,
            lanes,
            Arc::new(PlacementPlan::unpinned(2)),
            tele,
        );
        Fixture {
            worker,
            shared,
            board,
            peer_rx: Some(rx1),
            _trigger_rx: trigger_rx,
            _quiesce_rx: quiesce_rx,
        }
    }

    /// First `n` vertex ids owned by shard 1 (of 2).
    fn peer_targets(n: usize) -> Vec<VertexId> {
        let part = Partitioner::new(2);
        (0u64..).filter(|v| part.owner(*v) == 1).take(n).collect()
    }

    fn env(target: VertexId) -> Envelope<u64> {
        Envelope {
            target,
            visitor: target,
            value: 1,
            weight: 1,
            kind: EventKind::Update,
            epoch: 0,
            tag: 0,
        }
    }

    #[test]
    fn undeliverable_batch_retires_and_balances() {
        let mut f = fixture(TransportMode::Channel);
        drop(f.peer_rx.take()); // receiver already shut down
        for v in peer_targets(10) {
            f.worker.send_envelope(env(v));
        }
        assert_eq!(f.worker.metrics.envelopes_sent, 10);
        assert!(!f.shared.quiescent_probe(), "buffered envelopes in flight");
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.envelopes_undeliverable, 10);
        assert_eq!(
            f.worker.safra.count, 0,
            "Safra count cancelled per envelope"
        );
        assert_eq!(f.worker.sent_local[0], f.worker.processed_local[0]);
        assert!(
            f.shared.quiescent_probe(),
            "termination books balance after retirement"
        );
    }

    #[test]
    fn dead_receiver_lane_reclaims_into_undeliverable() {
        let mut f = fixture(TransportMode::Lanes);
        let targets = peer_targets(6);
        for &v in &targets[..3] {
            f.worker.send_envelope(env(v));
        }
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.lane_batches, 1);
        assert!(!f.shared.quiescent_probe(), "lane batch is in flight");

        // Shard 1 dies: failure recorded, channel endpoint dropped.
        f.board.record(ShardFailure {
            id: 1,
            payload: "test kill".into(),
            last_epoch: 0,
            trace: Vec::new(),
        });
        drop(f.peer_rx.take());

        // The idle sweep drains the dead shard's lane even with nothing
        // further addressed to it.
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.envelopes_undeliverable, 3);
        assert!(f.shared.quiescent_probe());

        // Later sends to the dead shard retire at flush.
        for &v in &targets[3..] {
            f.worker.send_envelope(env(v));
        }
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.envelopes_undeliverable, 6);
        assert_eq!(f.worker.safra.count, 0);
        assert!(f.shared.quiescent_probe());
    }

    #[test]
    fn full_lane_falls_back_and_handshake_resumes() {
        let mut f = fixture(TransportMode::Lanes);
        let mesh = match &f.worker.lanes {
            Some(lanes) => Arc::clone(&lanes.mesh),
            None => unreachable!(),
        };
        while mesh.send(0, 1, Vec::new()).is_ok() {} // fill the pair's lane
        let targets = peer_targets(2);
        f.worker.send_envelope(env(targets[0]));
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.lane_full_fallbacks, 1);
        {
            let rx = f.peer_rx.as_ref().expect("fixture holds shard 1's rx");
            match rx.try_recv() {
                Ok(Message::LaneFallback { from, batch }) => {
                    assert_eq!(from, 0);
                    assert_eq!(batch.len(), 1);
                }
                _ => panic!("expected a LaneFallback on the channel"),
            }
        }
        // Even with the lane drained, an unacknowledged fallback keeps the
        // pair on the channel path (lane batches must not overtake it).
        while mesh.recv(0, 1).is_some() {}
        f.worker.send_envelope(env(targets[1]));
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.lane_full_fallbacks, 2);
        {
            let rx = f.peer_rx.as_ref().expect("fixture holds shard 1's rx");
            assert!(matches!(rx.try_recv(), Ok(Message::LaneFallback { .. })));
        }
        // Both acknowledged: the pair resumes its data lane.
        mesh.note_fallback_consumed(0, 1);
        mesh.note_fallback_consumed(0, 1);
        f.worker.send_envelope(env(targets[0]));
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.lane_batches, 1);
        assert_eq!(f.worker.metrics.lane_full_fallbacks, 2);
    }

    #[test]
    fn flush_reuses_recycled_buffers() {
        let mut f = fixture(TransportMode::Lanes);
        let mesh = match &f.worker.lanes {
            Some(lanes) => Arc::clone(&lanes.mesh),
            None => unreachable!(),
        };
        let targets = peer_targets(2);
        f.worker.send_envelope(env(targets[0]));
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.lane_batches, 1);
        assert_eq!(
            f.worker.metrics.batches_recycled, 1,
            "the primed pool feeds the very first flush"
        );
        // Play the receiver: drain the batch, return the buffer home.
        let mut b = mesh.recv(0, 1).expect("batch was shipped on the lane");
        b.clear();
        mesh.give_recycled(0, 1, b);
        f.worker.send_envelope(env(targets[1]));
        f.worker.flush_all();
        assert_eq!(f.worker.metrics.lane_batches, 2);
        assert_eq!(
            f.worker.metrics.batches_recycled, 2,
            "second flush hit the pool"
        );
    }
}
