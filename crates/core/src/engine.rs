//! The engine controller: spawns shards, routes streams, detects
//! quiescence, collects snapshots and final state.
//!
//! An [`Engine`] is the embodiment of Figure 1: an incoming stream of events
//! (1) modifies the graph (4) while the hooked algorithm (2,3) observes
//! events (5) and maintains its dynamic state. The controller thread is
//! *not* on the data path — shards exchange visitor messages directly over
//! their FIFO channels — it only injects streams, requests global state
//! collections, and harvests results.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use remo_store::{VertexId, Weight};

use crate::algorithm::Algorithm;
use crate::event::{Envelope, EventKind, TopoEvent};
use crate::metrics::RunMetrics;
use crate::shard::{EngineConfig, Message, ShardReport, ShardWorker};
use crate::snapshot::Snapshot;
use crate::termination::{SharedCounters, TerminationMode};
use crate::trigger::{TriggerDef, TriggerFire, MAX_TRIGGERS};

/// Builds an [`Engine`], registering triggers before the shards start.
pub struct EngineBuilder<A: Algorithm> {
    algo: A,
    config: EngineConfig,
    triggers: Vec<TriggerDef<A::State>>,
}

impl<A: Algorithm> EngineBuilder<A> {
    /// Starts a builder for `algo` under `config`.
    pub fn new(algo: A, config: EngineConfig) -> Self {
        EngineBuilder {
            algo,
            config,
            triggers: Vec::new(),
        }
    }

    /// Registers a "When" query (§III-E): `predicate` over `(vertex, local
    /// state)`, evaluated on the owning shard at every state change, firing
    /// at most once per vertex. Returns the trigger's index.
    pub fn trigger(
        &mut self,
        label: impl Into<String>,
        predicate: impl Fn(VertexId, &A::State) -> bool + Send + Sync + 'static,
    ) -> usize {
        assert!(
            self.triggers.len() < MAX_TRIGGERS,
            "at most {MAX_TRIGGERS} triggers per engine"
        );
        self.triggers.push(TriggerDef {
            label: label.into(),
            predicate: Box::new(predicate),
        });
        self.triggers.len() - 1
    }

    /// Spawns the shard threads and returns the running engine.
    pub fn build(self) -> Engine<A> {
        let config = self.config;
        let shards = config.num_shards;
        assert!(shards > 0, "need at least one shard");

        let shared = Arc::new(SharedCounters::new(shards));
        let algo = Arc::new(self.algo);
        let triggers = Arc::new(self.triggers);
        let (trigger_tx, trigger_rx) = unbounded();
        let (quiesce_tx, quiesce_rx) = unbounded();

        let channels: Vec<_> = (0..shards)
            .map(|_| unbounded::<Message<A::State>>())
            .collect();
        let senders: Vec<Sender<Message<A::State>>> =
            channels.iter().map(|(tx, _)| tx.clone()).collect();

        let mut handles = Vec::with_capacity(shards);
        for (id, (_, rx)) in channels.into_iter().enumerate() {
            let worker = ShardWorker::new(
                id,
                Arc::clone(&algo),
                config.clone(),
                rx,
                senders.clone(),
                Arc::clone(&shared),
                Arc::clone(&triggers),
                trigger_tx.clone(),
                quiesce_tx.clone(),
            );
            let handle = std::thread::Builder::new()
                .name(format!("remo-shard-{id}"))
                .spawn(move || worker.run())
                .expect("failed to spawn shard thread");
            handles.push(handle);
        }

        Engine {
            shared,
            senders,
            handles,
            trigger_rx,
            quiesce_rx,
            config,
        }
    }
}

/// Final results of a run.
pub struct RunResult<S> {
    /// Live algorithm state of every vertex (sorted by id).
    pub states: Snapshot<S>,
    /// Aggregated per-shard metrics.
    pub metrics: RunMetrics,
    /// Vertices materialized across all shards.
    pub num_vertices: usize,
    /// Distinct directed edges stored.
    pub num_edges: u64,
    /// Approximate heap footprint of adjacency storage.
    pub adjacency_bytes: usize,
    /// The per-shard dynamic stores (vertex tables), indexed by shard id.
    /// Lets callers run *static* algorithms over the dynamically built
    /// structure — the paper's Fig. 3 centre bar — or inspect topology.
    pub tables: Vec<remo_store::VertexTable<crate::vertex_state::VertexState<S>>>,
}

/// A running dynamic-graph engine (shards are live threads).
pub struct Engine<A: Algorithm> {
    shared: Arc<SharedCounters>,
    senders: Vec<Sender<Message<A::State>>>,
    handles: Vec<JoinHandle<ShardReport<A::State>>>,
    trigger_rx: Receiver<TriggerFire>,
    quiesce_rx: Receiver<()>,
    config: EngineConfig,
}

impl<A: Algorithm> Engine<A> {
    /// Convenience: build with no triggers.
    pub fn new(algo: A, config: EngineConfig) -> Self {
        EngineBuilder::new(algo, config).build()
    }

    /// Number of shard threads.
    pub fn num_shards(&self) -> usize {
        self.config.num_shards
    }

    /// Channel on which trigger firings arrive in real time.
    pub fn trigger_events(&self) -> &Receiver<TriggerFire> {
        &self.trigger_rx
    }

    /// Injects pre-split event streams: stream `i` becomes shard
    /// `i % P`'s in-order input. Streams may be injected at any time,
    /// including while previous streams are still draining.
    pub fn ingest(&self, streams: Vec<Vec<TopoEvent>>) {
        let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
        // Count *before* sending so quiescence cannot be observed between
        // the send and the shard's receipt.
        self.shared.injected.fetch_add(total, Ordering::SeqCst);
        for (i, stream) in streams.into_iter().enumerate() {
            let shard = i % self.config.num_shards;
            self.senders[shard]
                .send(Message::Stream(stream))
                .expect("shard channel closed");
        }
    }

    /// Convenience: split an unweighted pair list into one stream per shard
    /// and ingest (the paper's evaluation methodology, §V-A).
    pub fn ingest_pairs(&self, pairs: &[(VertexId, VertexId)]) {
        let k = self.config.num_shards;
        let mut streams: Vec<Vec<TopoEvent>> = (0..k).map(|_| Vec::new()).collect();
        for (i, &(s, d)) in pairs.iter().enumerate() {
            streams[i % k].push(TopoEvent::new(s, d));
        }
        self.ingest(streams);
    }

    /// Convenience: stream edge **removals** (§VI-B extension).
    pub fn delete_pairs(&self, pairs: &[(VertexId, VertexId)]) {
        let k = self.config.num_shards;
        let mut streams: Vec<Vec<TopoEvent>> = (0..k).map(|_| Vec::new()).collect();
        for (i, &(s, d)) in pairs.iter().enumerate() {
            streams[i % k].push(TopoEvent::removal(s, d));
        }
        self.ingest(streams);
    }

    /// Convenience: weighted variant of [`Self::ingest_pairs`].
    pub fn ingest_weighted(&self, triples: &[(VertexId, VertexId, Weight)]) {
        let k = self.config.num_shards;
        let mut streams: Vec<Vec<TopoEvent>> = (0..k).map(|_| Vec::new()).collect();
        for (i, &(s, d, w)) in triples.iter().enumerate() {
            streams[i % k].push(TopoEvent::weighted(s, d, w));
        }
        self.ingest(streams);
    }

    /// Sends an `Init` event to `v` — e.g. designate the BFS/SSSP source or
    /// an S-T connectivity source. "Can be initiated at any time" (§IV.1):
    /// before, during, or after ingestion.
    pub fn init_vertex(&self, v: VertexId) {
        let epoch = self.shared.epoch.load(Ordering::SeqCst);
        // The controller publishes its own sent counter (extra slot).
        let ctl = self.shared.controller_slot();
        self.shared.slot(ctl).sent[(epoch & 1) as usize].fetch_add(1, Ordering::SeqCst);
        let owner_shard = self.owner(v);
        self.senders[owner_shard]
            .send(Message::Event(Envelope {
                target: v,
                visitor: v,
                value: A::State::default(),
                weight: 1,
                kind: EventKind::Init,
                epoch,
            }))
            .expect("shard channel closed");
    }

    fn owner(&self, v: VertexId) -> usize {
        crate::partition::Partitioner::new(self.config.num_shards).owner(v)
    }

    /// Blocks until every injected stream is drained and no algorithmic
    /// event is in flight.
    pub fn await_quiescence(&self) {
        match self.config.termination {
            TerminationMode::Counter => {
                while !self.shared.quiescent_probe() {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
            TerminationMode::Safra => loop {
                if self.shared.quiescent_probe() {
                    // Drain any announcements for this quiet period.
                    while self.quiesce_rx.try_recv().is_ok() {}
                    return;
                }
                let _ = self.quiesce_rx.recv_timeout(Duration::from_millis(1));
            },
        }
    }

    /// Receiver of the Safra detector's quiescence announcements (for tests
    /// and the termination ablation).
    pub fn quiescence_announcements(&self) -> &Receiver<()> {
        &self.quiesce_rx
    }

    /// Collects a global snapshot **without pausing ingestion** (§III-D):
    /// opens a new epoch, waits for every shard to start tagging with it,
    /// waits for the old epoch's events to drain (they keep draining while
    /// new-epoch events are processed concurrently), then gathers each
    /// vertex's previous-epoch state.
    pub fn snapshot(&mut self) -> Snapshot<A::State> {
        let old = self.shared.epoch.fetch_add(1, Ordering::SeqCst);
        let new = old + 1;
        // Barrier: every shard must have observed the new epoch, so no
        // further old-epoch stream events can be born.
        for id in 0..self.config.num_shards {
            while self.shared.slot(id).epoch_ack.load(Ordering::SeqCst) < new {
                std::thread::yield_now();
            }
        }
        // Drain the old epoch (its cascades inherit its parity).
        while !self.shared.drained_probe(old) {
            std::thread::sleep(Duration::from_micros(50));
        }
        // Gather fragments.
        let (reply_tx, reply_rx) = bounded(self.config.num_shards);
        for s in &self.senders {
            s.send(Message::Collect {
                old_epoch: old,
                live: false,
                reply: reply_tx.clone(),
            })
            .expect("shard channel closed");
        }
        drop(reply_tx);
        let mut states = Vec::new();
        for _ in 0..self.config.num_shards {
            states.extend(reply_rx.recv().expect("shard died during collect"));
        }
        Snapshot::from_fragments(old, states)
    }

    /// Observes one vertex's **live local state** right now (§III-E,
    /// §VI-A): an O(1) read on the owning shard, answered in queue order
    /// with the events currently ahead of it. Returns `None` for vertices
    /// no event has touched. Does not wait for quiescence — the answer is
    /// the current monotone bound, exactly what local-state queries mean in
    /// this model.
    pub fn local_state(&self, v: VertexId) -> Option<A::State> {
        let (reply_tx, reply_rx) = bounded(1);
        let owner_shard = self.owner(v);
        self.senders[owner_shard]
            .send(Message::Query {
                vertex: v,
                reply: reply_tx,
            })
            .expect("shard channel closed");
        reply_rx.recv().expect("shard died during query")
    }

    /// Waits for quiescence, then collects every vertex's live state
    /// (equivalent to a snapshot at the end of all injected work).
    pub fn collect_live(&self) -> Snapshot<A::State> {
        self.await_quiescence();
        let (reply_tx, reply_rx) = bounded(self.config.num_shards);
        let epoch = self.shared.epoch.load(Ordering::SeqCst);
        for s in &self.senders {
            s.send(Message::Collect {
                old_epoch: epoch,
                live: true,
                reply: reply_tx.clone(),
            })
            .expect("shard channel closed");
        }
        drop(reply_tx);
        let mut states = Vec::new();
        for _ in 0..self.config.num_shards {
            states.extend(reply_rx.recv().expect("shard died during collect"));
        }
        Snapshot::from_fragments(epoch, states)
    }

    /// Waits for quiescence, stops the shards, and returns final state plus
    /// metrics.
    pub fn finish(mut self) -> RunResult<A::State> {
        self.await_quiescence();
        for s in &self.senders {
            let _ = s.send(Message::Shutdown);
        }
        let mut states = Vec::new();
        let mut metrics = RunMetrics::default();
        metrics
            .per_shard
            .resize(self.config.num_shards, Default::default());
        let mut num_vertices = 0;
        let mut num_edges = 0;
        let mut adjacency_bytes = 0;
        let mut tables: Vec<Option<remo_store::VertexTable<_>>> =
            (0..self.config.num_shards).map(|_| None).collect();
        for h in self.handles.drain(..) {
            let report = h.join().expect("shard thread panicked");
            states.extend(report.states);
            metrics.per_shard[report.id] = report.metrics;
            num_vertices += report.num_vertices;
            num_edges += report.num_edges;
            adjacency_bytes += report.adjacency_bytes;
            tables[report.id] = Some(report.table);
        }
        let epoch = self.shared.epoch.load(Ordering::SeqCst);
        RunResult {
            states: Snapshot::from_fragments(epoch, states),
            metrics,
            num_vertices,
            num_edges,
            adjacency_bytes,
            tables: tables
                .into_iter()
                .map(|t| t.expect("shard reported"))
                .collect(),
        }
    }
}

impl<A: Algorithm> Drop for Engine<A> {
    fn drop(&mut self) {
        // finish() drains handles; an un-finished engine tears down here.
        if !self.handles.is_empty() {
            for s in &self.senders {
                let _ = s.send(Message::Shutdown);
            }
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}
