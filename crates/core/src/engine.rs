//! The engine controller: spawns shards, routes streams, detects
//! quiescence, collects snapshots and final state.
//!
//! An [`Engine`] is the embodiment of Figure 1: an incoming stream of events
//! (1) modifies the graph (4) while the hooked algorithm (2,3) observes
//! events (5) and maintains its dynamic state. The controller thread is
//! *not* on the data path — shards exchange visitor messages directly over
//! their FIFO channels — it only injects streams, requests global state
//! collections, and harvests results.
//!
//! ## Supervision
//!
//! Every shard runs under `catch_unwind`: a panicking shard publishes a
//! structured [`ShardFailure`] to the engine's [`FailureBoard`] instead of
//! silently dying. The `try_*` methods form the supervised API: they return
//! `Result<_, EngineError>`, poll the failure board inside every wait loop
//! (so a dead shard surfaces as [`EngineError::ShardPanicked`] rather than
//! a hang), and honour the deadlines in [`EngineConfig`]
//! (`quiescence_deadline`, `query_deadline`, `shutdown_deadline`).
//! [`Engine::try_finish`] degrades gracefully: it harvests state, metrics,
//! and tables from surviving shards and reports the dead ones in
//! [`RunResult::failures`] instead of losing the whole run. The `try_*`
//! methods are the only public surface; the seed's infallible wrappers
//! (deprecated in the supervision PR) have been removed.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use remo_store::{VertexId, Weight};

use crate::algorithm::Algorithm;
use crate::event::{ControlAck, ControlOp, Envelope, EventKind, TopoEvent};
use crate::metrics::RunMetrics;
use crate::partition::Partitioner;
use crate::placement::{self, PlacementPlan};
use crate::shard::{EngineConfig, Message, ShardReport, ShardWorker, StorageLayout};
use crate::snapshot::Snapshot;
use crate::storage::{DenseStore, LegacyStore, ShardStore};
use crate::supervision::{EngineError, FailureBoard, ShardFailure};
use crate::telemetry::{TelemetryHub, TelemetryShared};
use crate::termination::{Backoff, Deadline, DetectionTimer, SharedCounters};
use crate::transport::{LaneHandles, ParkBoard, TransportMode, MAX_LANE_SHARDS};
use crate::trigger::{TriggerDef, TriggerFire, MAX_TRIGGERS};
use crate::wal;

/// Builds an [`Engine`], registering triggers before the shards start.
pub struct EngineBuilder<A: Algorithm> {
    algo: A,
    config: EngineConfig,
    triggers: Vec<TriggerDef<A::State>>,
}

impl<A: Algorithm> EngineBuilder<A> {
    /// Starts a builder for `algo` under `config`.
    pub fn new(algo: A, config: EngineConfig) -> Self {
        EngineBuilder {
            algo,
            config,
            triggers: Vec::new(),
        }
    }

    /// Registers a "When" query (§III-E): `predicate` over `(vertex, local
    /// state)`, evaluated on the owning shard at every state change, firing
    /// at most once per vertex. Returns the trigger's index.
    pub fn trigger(
        &mut self,
        label: impl Into<String>,
        predicate: impl Fn(VertexId, &A::State) -> bool + Send + Sync + 'static,
    ) -> usize {
        assert!(
            self.triggers.len() < MAX_TRIGGERS,
            "at most {MAX_TRIGGERS} triggers per engine"
        );
        self.triggers.push(TriggerDef {
            label: label.into(),
            predicate: Box::new(predicate),
        });
        self.triggers.len() - 1
    }

    /// Spawns the shard threads and returns the running engine.
    // Thread-spawn failure is unrecoverable resource exhaustion at startup,
    // before any run state exists — aborting via expect is the right call.
    #[allow(clippy::expect_used)]
    pub fn build(self) -> Engine<A> {
        let config = self.config;
        let shards = config.num_shards;
        assert!(shards > 0, "need at least one shard");

        // Durable engines stamp their shape into the root directory so a
        // later cold restart ([`Engine::open`]) can refuse a mismatched
        // config (vertex ownership is a function of the shard count — a
        // different count would silently misassign recovered vertices).
        if let Some(d) = &config.durability {
            match wal::read_manifest(&d.dir) {
                Ok(Some((s, u))) if s != shards || u != config.undirected => panic!(
                    "durability dir {} was written by a {s}-shard undirected={u} engine; \
                     refusing to reuse it with {shards} shards undirected={} \
                     (use Engine::open to validate, or point at a fresh directory)",
                    d.dir.display(),
                    config.undirected
                ),
                Err(e) => panic!(
                    "durability: cannot read MANIFEST under {}: {e}",
                    d.dir.display()
                ),
                _ => {}
            }
            if let Err(e) = wal::write_manifest(&d.dir, shards, config.undirected) {
                panic!(
                    "durability: cannot write MANIFEST under {}: {e}",
                    d.dir.display()
                );
            }
        }

        // Resolve placement against the discovered host topology before
        // anything spawns. An invalid `Explicit` list is a configuration
        // error on par with a durability-manifest mismatch: panic with
        // the rendered PlacementError rather than silently unpinning.
        let plan = match PlacementPlan::resolve(&config.placement, shards, placement::host()) {
            Ok(plan) => Arc::new(plan),
            Err(e) => panic!("placement: {e}"),
        };

        let shared = Arc::new(SharedCounters::new(shards));
        let board = Arc::new(FailureBoard::new());
        let tele = Arc::new(TelemetryShared::new(
            config.telemetry.clone(),
            config.trace.clone(),
            shards,
            Arc::clone(&shared),
            Arc::clone(&board),
        ));
        let algo = Arc::new(self.algo);
        let triggers = Arc::new(self.triggers);
        let (trigger_tx, trigger_rx) = unbounded();
        let (quiesce_tx, quiesce_rx) = unbounded();

        let channels: Vec<_> = (0..shards)
            .map(|_| unbounded::<Message<A::State>>())
            .collect();
        let senders: Vec<Sender<Message<A::State>>> =
            channels.iter().map(|(tx, _)| tx.clone()).collect();

        // The lane mesh + park board exist only under the lane transport;
        // `None` keeps every channel-mode branch in the shard loop free.
        // The multi-word pending bitmap carries the mesh to 4096 shards;
        // past even that the engine runs the channel transport — same
        // results, no mesh — and says so instead of degrading silently.
        // `for_engine`: lane columns are left unallocated here — each
        // shard first-touch allocates its own at startup (so ring pages
        // land on its pinned core's node), and the park board carries the
        // configured `idle_park` heartbeat.
        let lanes: Option<LaneHandles<A::State>> = match config.transport {
            TransportMode::Lanes if shards <= MAX_LANE_SHARDS => {
                Some(LaneHandles::for_engine(shards, config.idle_park))
            }
            TransportMode::Lanes => {
                eprintln!(
                    "remo: {shards} shards exceeds the {MAX_LANE_SHARDS}-shard lane mesh; \
                     falling back to the channel transport (results identical, no lanes)"
                );
                None
            }
            TransportMode::Channel => None,
        };

        let mut handles = Vec::with_capacity(shards);
        for (id, (_, rx)) in channels.into_iter().enumerate() {
            // The storage layout is a per-engine choice; each arm
            // monomorphizes the whole shard loop for its store, so the
            // hot path carries no dynamic dispatch.
            let handle = match config.storage {
                StorageLayout::DenseArena => spawn_shard::<A, DenseStore<A::State>>(
                    id,
                    Arc::clone(&algo),
                    config.clone(),
                    rx,
                    senders.clone(),
                    Arc::clone(&shared),
                    Arc::clone(&board),
                    Arc::clone(&triggers),
                    trigger_tx.clone(),
                    quiesce_tx.clone(),
                    lanes.clone(),
                    Arc::clone(&plan),
                    Arc::clone(&tele),
                ),
                StorageLayout::RhhRecord => spawn_shard::<A, LegacyStore<A::State>>(
                    id,
                    Arc::clone(&algo),
                    config.clone(),
                    rx,
                    senders.clone(),
                    Arc::clone(&shared),
                    Arc::clone(&board),
                    Arc::clone(&triggers),
                    trigger_tx.clone(),
                    quiesce_tx.clone(),
                    lanes.clone(),
                    Arc::clone(&plan),
                    Arc::clone(&tele),
                ),
            };
            handles.push(handle);
        }

        Engine {
            shared,
            board,
            senders,
            handles,
            trigger_rx,
            quiesce_rx,
            part: Partitioner::new(shards),
            parks: lanes.map(|l| l.parks),
            tele,
            config,
        }
    }
}

/// Spawns one shard thread monomorphized over its storage layout. The
/// join handle type is layout-independent (`ShardReport` carries a plain
/// [`remo_store::VertexTable`]), which is what lets [`Engine`] stay
/// non-generic over storage.
// Thread-spawn failure is unrecoverable resource exhaustion at startup.
#[allow(clippy::too_many_arguments, clippy::expect_used)]
fn spawn_shard<A, St>(
    id: usize,
    algo: Arc<A>,
    config: EngineConfig,
    rx: Receiver<Message<A::State>>,
    senders: Vec<Sender<Message<A::State>>>,
    shared: Arc<SharedCounters>,
    board: Arc<FailureBoard>,
    triggers: Arc<Vec<TriggerDef<A::State>>>,
    trigger_tx: Sender<TriggerFire>,
    quiesce_tx: Sender<()>,
    lanes: Option<LaneHandles<A::State>>,
    plan: Arc<PlacementPlan>,
    tele: Arc<TelemetryShared>,
) -> JoinHandle<Option<ShardReport<A::State>>>
where
    A: Algorithm,
    St: ShardStore<A::State>,
{
    let worker: ShardWorker<A, St> = ShardWorker::new(
        id, algo, config, rx, senders, shared, board, triggers, trigger_tx, quiesce_tx, lanes,
        plan, tele,
    );
    std::thread::Builder::new()
        .name(format!("remo-shard-{id}"))
        .spawn(move || worker.run_supervised())
        .expect("failed to spawn shard thread")
}

/// Final results of a run.
pub struct RunResult<S> {
    /// Live algorithm state of every vertex (sorted by id). On a degraded
    /// run, only vertices owned by surviving shards appear.
    pub states: Snapshot<S>,
    /// Aggregated per-shard metrics (`lost_shards` names the shards whose
    /// counters died with them).
    pub metrics: RunMetrics,
    /// Vertices materialized across surviving shards.
    pub num_vertices: usize,
    /// Distinct directed edges stored on surviving shards.
    pub num_edges: u64,
    /// Approximate heap footprint of adjacency storage.
    pub adjacency_bytes: usize,
    /// Approximate total heap footprint of the per-shard vertex stores
    /// (interning tables, state/meta slabs, adjacency, fork side maps) —
    /// the numerator of the bytes-per-edge metric in the store ablation.
    pub store_bytes: usize,
    /// The per-shard dynamic stores (vertex tables), indexed by shard id.
    /// Lets callers run *static* algorithms over the dynamically built
    /// structure — the paper's Fig. 3 centre bar — or inspect topology.
    /// A failed shard's slot holds an empty table.
    pub tables: Vec<remo_store::VertexTable<crate::vertex_state::VertexState<S>>>,
    /// Failure report: one entry per shard that died during the run.
    /// Empty on a clean run. Monotone REMO states harvested from surviving
    /// shards remain valid bounds (§IV) even when this is non-empty.
    pub failures: Vec<ShardFailure>,
}

impl<S> RunResult<S> {
    /// True when at least one shard was lost and the result covers only
    /// the survivors.
    pub fn is_degraded(&self) -> bool {
        !self.failures.is_empty()
    }
}

/// A running dynamic-graph engine (shards are live threads).
pub struct Engine<A: Algorithm> {
    shared: Arc<SharedCounters>,
    board: Arc<FailureBoard>,
    senders: Vec<Sender<Message<A::State>>>,
    handles: Vec<JoinHandle<Option<ShardReport<A::State>>>>,
    trigger_rx: Receiver<TriggerFire>,
    quiesce_rx: Receiver<()>,
    /// Cached owner map (construction hashes nothing, but per-call
    /// rebuilding was pure waste on the query paths).
    part: Partitioner,
    /// Lane transport only: unpark targets after controller sends.
    parks: Option<Arc<ParkBoard>>,
    /// Shared telemetry surface (snapshot cells, histograms, recorders).
    tele: Arc<TelemetryShared>,
    config: EngineConfig,
}

impl<A: Algorithm> Engine<A> {
    /// Convenience: build with no triggers.
    pub fn new(algo: A, config: EngineConfig) -> Self {
        EngineBuilder::new(algo, config).build()
    }

    /// Cold restart: opens an engine over an existing durable directory
    /// (`config.durability.dir`), validating its `MANIFEST` against the
    /// config before any shard starts. Each shard then restores its
    /// latest checkpoint and replays its WAL tail during startup, so the
    /// engine resumes from the last durable state — ingest more events,
    /// snapshot, or [`Engine::try_finish`] as usual. A fresh (empty)
    /// directory is also accepted, making `open` a drop-in for
    /// [`Engine::new`] on first boot.
    ///
    /// Fails with [`EngineError::DurabilityMismatch`] when the config has
    /// no durability, or when the directory was written by an engine of a
    /// different shape (shard count / undirectedness).
    pub fn open(algo: A, config: EngineConfig) -> Result<Self, EngineError> {
        let Some(d) = &config.durability else {
            return Err(EngineError::DurabilityMismatch {
                message: "Engine::open requires EngineConfig::with_durability".to_string(),
            });
        };
        match wal::read_manifest(&d.dir) {
            Ok(Some((shards, undirected))) => {
                if shards != config.num_shards || undirected != config.undirected {
                    return Err(EngineError::DurabilityMismatch {
                        message: format!(
                            "{} holds state from a {shards}-shard undirected={undirected} \
                             engine, but the config asks for {} shards undirected={}",
                            d.dir.display(),
                            config.num_shards,
                            config.undirected
                        ),
                    });
                }
            }
            Ok(None) => {} // fresh directory: first boot
            Err(e) => {
                return Err(EngineError::DurabilityMismatch {
                    message: format!("cannot read MANIFEST under {}: {e}", d.dir.display()),
                });
            }
        }
        Ok(EngineBuilder::new(algo, config).build())
    }

    /// Number of shard threads.
    pub fn num_shards(&self) -> usize {
        self.config.num_shards
    }

    /// Channel on which trigger firings arrive in real time.
    pub fn trigger_events(&self) -> &Receiver<TriggerFire> {
        &self.trigger_rx
    }

    /// Failures recorded so far (empty while every shard is healthy).
    pub fn failures(&self) -> Vec<ShardFailure> {
        self.board.snapshot()
    }

    /// A coherent cross-shard [`RunMetrics`] reading **right now**, without
    /// pausing or contending with the shards: each shard's last seqlock
    /// snapshot-cell publish (at most [`crate::PUBLISH_EVERY`] events
    /// stale, and exact whenever the shard is idle or finished). Zeros
    /// when `telemetry.counters` is off. Latency histograms reflect every
    /// sample recorded so far; `lost_shards` lists shards already dead.
    pub fn metrics_now(&self) -> RunMetrics {
        self.tele.snapshot_metrics()
    }

    /// Reconstructed propagation trees for every trace-sampled external
    /// update observed so far (empty unless the engine was built with
    /// [`EngineConfig::with_tracing`] enabled). Harvest-side work only:
    /// dumps each shard's span ring and stitches the trees — the shards
    /// never stop. See [`crate::trace`] for the tag discipline and the
    /// ring-overflow policy (rootless traces are dropped whole).
    pub fn traces_now(&self) -> Vec<crate::trace::PropagationTrace> {
        self.tele.traces()
    }

    /// Aggregate statistics over [`Engine::traces_now`]: fixpoint-latency,
    /// hops, and amplification quantiles plus cross-shard / cross-NUMA
    /// totals — the same families both exporters render.
    pub fn trace_summary(&self) -> crate::trace::TraceSummary {
        crate::trace::summarize(&self.traces_now())
    }

    /// A cloneable, thread-safe handle onto the engine's live telemetry:
    /// derived gauges ([`crate::EngineGauges`]), Prometheus text, and
    /// JSON rendering. The handle stays valid for the life of the engine
    /// (readers of an engine that has finished see its final counters).
    pub fn telemetry(&self) -> TelemetryHub {
        TelemetryHub::new(Arc::clone(&self.tele))
    }

    /// True once any shard has died; the engine keeps serving the
    /// survivors' partitions.
    pub fn is_degraded(&self) -> bool {
        self.board.any_failed()
    }

    /// Classifies a failed send to `shard`.
    fn send_error(&self, shard: usize) -> EngineError {
        if self.board.is_failed(shard) {
            EngineError::ShardPanicked {
                failures: self.board.snapshot(),
            }
        } else {
            EngineError::ChannelClosed { shard }
        }
    }

    fn send_to(&self, shard: usize, msg: Message<A::State>) -> Result<(), EngineError> {
        let sent = self.senders[shard]
            .send(msg)
            .map_err(|_| self.send_error(shard));
        // Lane transport: the shard may be parked — control traffic must
        // wake it or wait out a heartbeat.
        if sent.is_ok() {
            if let Some(parks) = &self.parks {
                parks.wake(shard);
            }
        }
        sent
    }

    /// Unparks every shard (after a broadcast such as a snapshot's epoch
    /// open or the shutdown fan-out).
    fn wake_all(&self) {
        if let Some(parks) = &self.parks {
            for id in 0..self.config.num_shards {
                parks.wake(id);
            }
        }
    }

    /// Injects pre-split event streams: stream `i` becomes shard
    /// `i % P`'s in-order input. Streams may be injected at any time,
    /// including while previous streams are still draining. Fails fast if
    /// a destination shard is dead; streams before the dead one were
    /// delivered.
    pub fn try_ingest(&self, streams: Vec<Vec<TopoEvent>>) -> Result<(), EngineError> {
        // Arm the ingest→fixpoint clock (no-op while already armed, so a
        // burst of ingests measures burst-start → quiescence).
        self.tele.mark_ingest();
        for (i, stream) in streams.into_iter().enumerate() {
            let shard = i % self.config.num_shards;
            let n = stream.len() as u64;
            // Count *before* sending so quiescence cannot be observed
            // between the send and the shard's receipt; uncount on failure
            // so a degraded engine can still quiesce over the survivors.
            self.shared.injected.fetch_add(n, Ordering::SeqCst);
            if let Err(e) = self.send_to(shard, Message::Stream(stream)) {
                self.shared.injected.fetch_sub(n, Ordering::SeqCst);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Splits `items` round-robin into one stream per shard and ingests —
    /// the shared body of every `try_ingest_*`/`try_delete_*` convenience
    /// method (they differ only in how an item becomes a [`TopoEvent`]).
    fn split_and_ingest<T: Copy>(
        &self,
        items: &[T],
        to_event: impl Fn(T) -> TopoEvent,
    ) -> Result<(), EngineError> {
        let k = self.config.num_shards;
        let mut streams: Vec<Vec<TopoEvent>> = (0..k)
            .map(|_| Vec::with_capacity(items.len().div_ceil(k)))
            .collect();
        for (i, &item) in items.iter().enumerate() {
            streams[i % k].push(to_event(item));
        }
        self.try_ingest(streams)
    }

    /// Convenience: split an unweighted pair list into one stream per shard
    /// and ingest (the paper's evaluation methodology, §V-A).
    pub fn try_ingest_pairs(&self, pairs: &[(VertexId, VertexId)]) -> Result<(), EngineError> {
        self.split_and_ingest(pairs, |(s, d)| TopoEvent::new(s, d))
    }

    /// Convenience: stream edge **removals** (§VI-B extension).
    pub fn try_delete_pairs(&self, pairs: &[(VertexId, VertexId)]) -> Result<(), EngineError> {
        self.split_and_ingest(pairs, |(s, d)| TopoEvent::removal(s, d))
    }

    /// Convenience: weighted variant of [`Self::try_ingest_pairs`].
    pub fn try_ingest_weighted(
        &self,
        triples: &[(VertexId, VertexId, Weight)],
    ) -> Result<(), EngineError> {
        self.split_and_ingest(triples, |(s, d, w)| TopoEvent::weighted(s, d, w))
    }

    /// Sends an `Init` event to `v` — e.g. designate the BFS/SSSP source or
    /// an S-T connectivity source. "Can be initiated at any time" (§IV.1):
    /// before, during, or after ingestion.
    pub fn try_init_vertex(&self, v: VertexId) -> Result<(), EngineError> {
        let epoch = self.shared.epoch.load(Ordering::SeqCst);
        let parity = (epoch & 1) as usize;
        // The controller publishes its own sent counter (extra slot).
        let ctl = self.shared.controller_slot();
        self.shared.slot(ctl).sent[parity].fetch_add(1, Ordering::SeqCst);
        let owner_shard = self.owner(v);
        let sent = self.send_to(
            owner_shard,
            Message::Event(Envelope {
                target: v,
                visitor: v,
                value: A::State::default(),
                weight: 1,
                kind: EventKind::Init,
                epoch,
                tag: 0,
            }),
        );
        if sent.is_err() {
            // Uncount: the envelope never became receivable.
            self.shared.slot(ctl).sent[parity].fetch_sub(1, Ordering::SeqCst);
        }
        sent
    }

    fn owner(&self, v: VertexId) -> usize {
        self.part.owner(v)
    }

    /// Broadcasts one control-plane operation (multi-query attach/detach)
    /// to every live shard and waits for all acknowledgements. Shard-side
    /// claims are idempotent, so the wait loop may resend the op to
    /// laggards without double-applying; a resend after the sweep ran
    /// simply claims an empty mask and acks immediately. Dead shards are
    /// skipped — a degraded engine keeps serving its survivors, and a
    /// respawned shard re-derives committed sweeps from its WAL.
    pub(crate) fn control(&self, op: ControlOp) -> Result<Vec<ControlAck>, EngineError> {
        let n = self.config.num_shards;
        let (tx, rx) = bounded::<ControlAck>(n);
        let mut acked = vec![false; n];
        let mut acks: Vec<ControlAck> = Vec::with_capacity(n);
        for (shard, shard_acked) in acked.iter_mut().enumerate() {
            if self.board.is_failed(shard) {
                *shard_acked = true;
                continue;
            }
            // A send that fails because the shard died mid-broadcast is
            // fine (it will be marked failed below); any other closure is
            // a real error.
            if self.send_to(shard, Message::Control { op, ack: tx.clone() }).is_err()
                && !self.board.is_failed(shard)
            {
                return Err(EngineError::ChannelClosed { shard });
            }
        }
        self.wake_all();
        let deadline = Deadline::new(self.config.quiescence_deadline);
        loop {
            if acked.iter().all(|&a| a) {
                return Ok(acks);
            }
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(ack) => {
                    if !acked[ack.shard] {
                        acked[ack.shard] = true;
                        acks.push(ack);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Shards that died since the broadcast stop owing an
                    // ack; re-nudge the live laggards (idempotent claims).
                    for (shard, shard_acked) in acked.iter_mut().enumerate() {
                        if *shard_acked {
                            continue;
                        }
                        if self.board.is_failed(shard) {
                            *shard_acked = true;
                            continue;
                        }
                        let _ = self.send_to(shard, Message::Control { op, ack: tx.clone() });
                    }
                    if deadline.expired() {
                        return Err(EngineError::QuiescenceTimeout {
                            waited: deadline.waited(),
                        });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable while we hold `tx`, but fail loudly.
                    return Err(EngineError::ShardPanicked {
                        failures: self.board.snapshot(),
                    });
                }
            }
        }
    }

    /// One supervised wait step: failure first (a dead shard must surface
    /// even with no deadline configured), then the deadline.
    fn check_liveness(&self, deadline: &Deadline) -> Result<(), EngineError> {
        if self.board.any_failed() {
            return Err(EngineError::ShardPanicked {
                failures: self.board.snapshot(),
            });
        }
        if deadline.expired() {
            return Err(EngineError::QuiescenceTimeout {
                waited: deadline.waited(),
            });
        }
        Ok(())
    }

    /// Blocks until every injected stream is drained and no algorithmic
    /// event is in flight — or until a shard failure or the configured
    /// `quiescence_deadline` cuts the wait short.
    pub fn try_await_quiescence(&self) -> Result<(), EngineError> {
        let deadline = Deadline::new(self.config.quiescence_deadline);
        let timer = DetectionTimer::begin();
        let mut backoff = Backoff::probe();
        loop {
            self.check_liveness(&deadline)?;
            if self.shared.quiescent_probe() {
                // Drain any stale announcements for this quiet period.
                while self.quiesce_rx.try_recv().is_ok() {}
                self.tele.record_quiesce(timer.elapsed_ns());
                self.tele.settle_ingest();
                return Ok(());
            }
            // Sleep with ears open: a Safra announcement lands on
            // `quiesce_rx` and cuts the wait short; in counter mode no
            // shard ever sends here, so this degrades to a plain
            // capped-exponential-backoff sleep instead of the old
            // fixed-interval spin.
            let _ = self.quiesce_rx.recv_timeout(backoff.next_wait());
        }
    }

    /// Receiver of the Safra detector's quiescence announcements (for tests
    /// and the termination ablation).
    pub fn quiescence_announcements(&self) -> &Receiver<()> {
        &self.quiesce_rx
    }

    /// One four-counter reading: true when every sent envelope has been
    /// processed and every injected stream event ingested. Exposed so tests
    /// can assert the termination books balance once a run has quiesced —
    /// in particular that lattice coalescing absorbed envelopes without
    /// leaking `sent` or `processed` counts.
    pub fn counters_balanced(&self) -> bool {
        self.shared.quiescent_probe()
    }

    /// Receives one collection fragment under the `query_deadline`.
    fn recv_fragment<T>(
        &self,
        rx: &Receiver<T>,
        answered: usize,
        expected: usize,
    ) -> Result<T, EngineError> {
        let degraded = |answered| EngineError::Degraded {
            failures: self.board.snapshot(),
            answered,
            expected,
        };
        match self.config.query_deadline {
            None => rx.recv().map_err(|_| degraded(answered)),
            Some(d) => rx.recv_timeout(d).map_err(|e| match e {
                // Disconnected: a replier died — the board will say which.
                RecvTimeoutError::Disconnected => degraded(answered),
                RecvTimeoutError::Timeout => {
                    if self.board.any_failed() {
                        degraded(answered)
                    } else {
                        EngineError::QuiescenceTimeout { waited: d }
                    }
                }
            }),
        }
    }

    /// Collects a global snapshot **without pausing ingestion** (§III-D):
    /// opens a new epoch, waits for every shard to start tagging with it,
    /// waits for the old epoch's events to drain (they keep draining while
    /// new-epoch events are processed concurrently), then gathers each
    /// vertex's previous-epoch state. A dead shard or an expired
    /// `quiescence_deadline` aborts the collection with an error instead of
    /// hanging at the barrier.
    pub fn try_snapshot(&mut self) -> Result<Snapshot<A::State>, EngineError> {
        let deadline = Deadline::new(self.config.quiescence_deadline);
        self.check_liveness(&deadline)?;
        let old = self.shared.epoch.fetch_add(1, Ordering::SeqCst);
        let new = old + 1;
        // Parked shards learn about the new epoch on their next wakeup —
        // unpark them all so the ack barrier doesn't wait out heartbeats.
        self.wake_all();
        // Barrier: every shard must have observed the new epoch, so no
        // further old-epoch stream events can be born.
        for id in 0..self.config.num_shards {
            while self.shared.slot(id).epoch_ack.load(Ordering::SeqCst) < new {
                self.check_liveness(&deadline)?;
                std::thread::yield_now();
            }
        }
        // Drain the old epoch (its cascades inherit its parity).
        let mut backoff = Backoff::probe();
        while !self.shared.drained_probe(old) {
            self.check_liveness(&deadline)?;
            std::thread::sleep(backoff.next_wait());
        }
        // Gather fragments.
        let expected = self.config.num_shards;
        let (reply_tx, reply_rx) = bounded(expected);
        for id in 0..expected {
            self.send_to(
                id,
                Message::Collect {
                    old_epoch: old,
                    live: false,
                    reply: reply_tx.clone(),
                },
            )?;
        }
        drop(reply_tx);
        let mut states = Vec::new();
        for answered in 0..expected {
            states.extend(self.recv_fragment(&reply_rx, answered, expected)?);
        }
        Ok(Snapshot::from_fragments(old, states))
    }

    /// Observes one vertex's **live local state** right now (§III-E,
    /// §VI-A): an O(1) read on the owning shard, answered in queue order
    /// with the events currently ahead of it. Returns `Ok(None)` for
    /// vertices no event has touched. Does not wait for quiescence — the
    /// answer is the current monotone bound, exactly what local-state
    /// queries mean in this model. If the owning shard is dead the query
    /// fails with [`EngineError::ShardPanicked`] instead of blocking
    /// forever on a reply that can never come.
    pub fn try_local_state(&self, v: VertexId) -> Result<Option<A::State>, EngineError> {
        let owner_shard = self.owner(v);
        if self.board.is_failed(owner_shard) {
            return Err(EngineError::ShardPanicked {
                failures: self.board.snapshot(),
            });
        }
        let (reply_tx, reply_rx) = bounded(1);
        self.send_to(
            owner_shard,
            Message::Query {
                vertex: v,
                reply: reply_tx,
            },
        )?;
        // Even with no deadline this cannot hang: if the owner dies, its
        // queue (holding our reply sender) is dropped and recv disconnects.
        match self.config.query_deadline {
            None => reply_rx.recv().map_err(|_| self.send_error(owner_shard)),
            Some(d) => reply_rx.recv_timeout(d).map_err(|e| match e {
                RecvTimeoutError::Disconnected => self.send_error(owner_shard),
                RecvTimeoutError::Timeout => {
                    if self.board.is_failed(owner_shard) {
                        EngineError::ShardPanicked {
                            failures: self.board.snapshot(),
                        }
                    } else {
                        EngineError::QuiescenceTimeout { waited: d }
                    }
                }
            }),
        }
    }

    /// Waits for quiescence, then collects every vertex's live state
    /// (equivalent to a snapshot at the end of all injected work).
    pub fn try_collect_live(&self) -> Result<Snapshot<A::State>, EngineError> {
        self.try_await_quiescence()?;
        let expected = self.config.num_shards;
        let (reply_tx, reply_rx) = bounded(expected);
        let epoch = self.shared.epoch.load(Ordering::SeqCst);
        for id in 0..expected {
            self.send_to(
                id,
                Message::Collect {
                    old_epoch: epoch,
                    live: true,
                    reply: reply_tx.clone(),
                },
            )?;
        }
        drop(reply_tx);
        let mut states = Vec::new();
        for answered in 0..expected {
            states.extend(self.recv_fragment(&reply_rx, answered, expected)?);
        }
        Ok(Snapshot::from_fragments(epoch, states))
    }

    /// One reading of every progress counter (injected, epoch, and each
    /// slot's sent/processed/ingested including the controller's), written
    /// into `buf` so the settle loop's 1 ms poll reuses one allocation.
    fn counter_fingerprint_into(&self, buf: &mut Vec<u64>) {
        buf.clear();
        buf.reserve(self.config.num_shards * 5 + 7);
        buf.push(self.shared.injected.load(Ordering::SeqCst));
        buf.push(u64::from(self.shared.epoch.load(Ordering::SeqCst)));
        for id in 0..=self.config.num_shards {
            let s = self.shared.slot(id);
            buf.push(s.sent[0].load(Ordering::SeqCst));
            buf.push(s.sent[1].load(Ordering::SeqCst));
            buf.push(s.processed[0].load(Ordering::SeqCst));
            buf.push(s.processed[1].load(Ordering::SeqCst));
            buf.push(s.ingested.load(Ordering::SeqCst));
        }
    }

    /// After a shard failure, true quiescence is unreachable (the dead
    /// shard's in-flight events can never be processed), but the survivors
    /// still have useful work queued. Wait — bounded by
    /// `shutdown_deadline` — until their progress counters hold still, so
    /// the degraded harvest reflects everything the survivors could
    /// compute, not a snapshot of wherever they happened to be when the
    /// failure was noticed.
    fn settle_survivors(&self) {
        let deadline = Deadline::new(Some(self.config.shutdown_deadline));
        let mut last = Vec::new();
        let mut now = Vec::new();
        self.counter_fingerprint_into(&mut last);
        let mut stable = 0;
        while stable < 5 && !deadline.expired() {
            std::thread::sleep(Duration::from_millis(1));
            self.counter_fingerprint_into(&mut now);
            if now == last {
                stable += 1;
            } else {
                stable = 0;
                std::mem::swap(&mut last, &mut now);
            }
        }
    }

    /// Supervised finish: waits for quiescence (under the configured
    /// deadline), stops the shards, and harvests final state plus metrics.
    ///
    /// Degrades gracefully: if shards died, the run is **not** lost — the
    /// survivors' states, metrics, and tables are returned with
    /// [`RunResult::failures`] describing the dead shards (their vertices
    /// are simply absent, and their monotone states on survivors remain
    /// valid bounds per §IV). Returns `Err` only when nothing useful can be
    /// harvested — today that is [`EngineError::QuiescenceTimeout`] with
    /// every shard still alive but the system not quiescent (e.g. lost
    /// messages), where partial state would be silently wrong rather than
    /// merely partial.
    pub fn try_finish(mut self) -> Result<RunResult<A::State>, EngineError> {
        match self.try_await_quiescence() {
            Ok(()) => {}
            // Shards died: harvest what survives.
            Err(EngineError::ShardPanicked { .. }) => {}
            Err(e @ EngineError::QuiescenceTimeout { .. }) => {
                if !self.board.any_failed() {
                    return Err(e); // Drop will tear the shards down.
                }
            }
            Err(e) => return Err(e),
        }
        if self.board.any_failed() {
            self.settle_survivors();
        }
        for s in &self.senders {
            let _ = s.send(Message::Shutdown);
        }
        self.wake_all();

        let shards = self.config.num_shards;
        let mut states = Vec::new();
        let mut metrics = RunMetrics::default();
        metrics.per_shard.resize(shards, Default::default());
        let mut num_vertices = 0;
        let mut num_edges = 0;
        let mut adjacency_bytes = 0;
        let mut store_bytes = 0;
        let mut tables: Vec<Option<remo_store::VertexTable<_>>> =
            (0..shards).map(|_| None).collect();

        // Join with a deadline: a healthy shard exits promptly after
        // Shutdown, a panicked shard's thread is already gone, and a wedged
        // shard (e.g. chaos delay) is detached and reported, never joined
        // unboundedly.
        let deadline = Deadline::new(Some(self.config.shutdown_deadline));
        for (id, h) in self.handles.drain(..).enumerate() {
            let mut backoff = Backoff::probe();
            while !h.is_finished() && !deadline.expired() {
                std::thread::sleep(backoff.next_wait());
            }
            if !h.is_finished() {
                self.board.record(ShardFailure {
                    id,
                    payload: "shard did not stop within shutdown_deadline".to_string(),
                    last_epoch: self.shared.slot(id).epoch_ack.load(Ordering::SeqCst),
                    // The wedged shard may still be writing; the dump
                    // drops any possibly-overwritten prefix.
                    trace: self.tele.dump_flight(id),
                });
                continue; // detach: the thread ends (or not) on its own
            }
            match h.join() {
                Ok(Some(report)) => {
                    states.extend(report.states);
                    metrics.per_shard[report.id] = report.metrics;
                    num_vertices += report.num_vertices;
                    num_edges += report.num_edges;
                    adjacency_bytes += report.adjacency_bytes;
                    store_bytes += report.store_bytes;
                    tables[report.id] = Some(report.table);
                }
                // A panicked shard recorded its failure on the board
                // before returning None from run_supervised.
                Ok(None) => {}
                // Panic outside catch_unwind (e.g. in a Drop during
                // unwind): synthesize the record the wrapper could not.
                Err(payload) => self.board.record(ShardFailure {
                    id,
                    payload: crate::supervision::panic_payload_string(payload),
                    last_epoch: self.shared.slot(id).epoch_ack.load(Ordering::SeqCst),
                    trace: self.tele.dump_flight(id),
                }),
            }
        }
        let failures = self.board.snapshot();
        metrics.lost_shards = failures.iter().map(|f| f.id).collect();
        // A dead shard's exact counters died with its thread, but its last
        // snapshot-cell publish survives — fold that in (at most
        // PUBLISH_EVERY events stale, and a chaos panic publishes a final
        // cell on its way down) instead of under-reporting the shard as
        // all zeros. With telemetry counters off the cell reads as zeros,
        // which is the seed's old behaviour.
        for &id in &metrics.lost_shards {
            if id < shards {
                metrics.per_shard[id] = self.tele.shard_snapshot(id).0;
            }
        }
        metrics.controller_sent = self.tele.controller_sent();
        metrics.service = self.tele.service_snapshot();
        metrics.flush = self.tele.flush_snapshot();
        metrics.quiesce = self.tele.quiesce_snapshot();
        metrics.ingest_fixpoint = self.tele.ingest_fixpoint_snapshot();
        metrics.checkpoint = self.tele.checkpoint_snapshot();
        // Satellite invariant: on a clean, quiesced harvest every envelope
        // counted as sent was accounted for exactly once. Lost shards void
        // the equation (their in-flight envelopes retired as
        // undeliverable on survivors, their own counters are a stale
        // cell), as does a timed-out degraded finish.
        if failures.is_empty() {
            debug_assert!(
                metrics.verify_balance().is_ok(),
                "clean harvest failed the envelope balance: {:?}",
                metrics.verify_balance()
            );
        }
        let epoch = self.shared.epoch.load(Ordering::SeqCst);
        Ok(RunResult {
            states: Snapshot::from_fragments(epoch, states),
            metrics,
            num_vertices,
            num_edges,
            adjacency_bytes,
            store_bytes,
            tables: tables.into_iter().map(|t| t.unwrap_or_default()).collect(),
            failures,
        })
    }
}

impl<A: Algorithm> Drop for Engine<A> {
    fn drop(&mut self) {
        // try_finish drains handles; an un-finished engine tears down here.
        // Best-effort with a deadline: a shard that died before receiving
        // Shutdown, or one wedged mid-event, must not block drop forever —
        // stragglers are detached instead of joined.
        if self.handles.is_empty() {
            return;
        }
        for s in &self.senders {
            let _ = s.send(Message::Shutdown);
        }
        self.wake_all();
        let deadline = Deadline::new(Some(self.config.shutdown_deadline));
        for h in self.handles.drain(..) {
            let mut backoff = Backoff::probe();
            while !h.is_finished() && !deadline.expired() {
                std::thread::sleep(backoff.next_wait());
            }
            if h.is_finished() {
                let _ = h.join();
            }
            // else: detached — the OS reaps it when the process exits.
        }
    }
}
