//! Per-vertex engine-side state wrapper.
//!
//! Each vertex record stores the algorithm's live state plus the machinery
//! for the continuous snapshot protocol (§III-D): when a vertex first sees
//! an event of a newer epoch it forks `prev = live.clone()`; old-epoch
//! events thereafter apply to *both* versions, new-epoch events only to
//! `live`. A fired-triggers bitmask implements at-most-once trigger firing.
//!
//! The epoch and bitmask live together in the packed [`VertexMeta`] (8
//! bytes) so the dense storage layout can keep them in their own slab — the
//! hot path touches meta on every event, while the fork (`prev`) is cold
//! and lives out-of-line there (see `crate::storage`). [`VertexState`] is
//! the record-style composition of the two plus the inline fork, used by
//! the legacy rhh-record layout and the sequential reference engine.

use crate::event::Epoch;

/// Packed per-vertex engine metadata: the snapshot fork epoch and the
/// fired-triggers bitmask. 8 bytes, `Copy`, no algorithm state — exactly
/// what the dense layout stores in its meta slab.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VertexMeta {
    /// Epoch the vertex has forked up to: events with `epoch >
    /// forked_epoch` trigger a fork.
    pub forked_epoch: Epoch,
    /// Bitmask of triggers that already fired for this vertex.
    pub fired: u32,
}

/// Engine wrapper around an algorithm's vertex state `S`.
#[derive(Debug, Clone, Default)]
pub struct VertexState<S> {
    /// Live algorithm state (`this.value`).
    pub live: S,
    /// Forked previous-epoch state, present only while a snapshot that
    /// includes this vertex is being drained.
    pub prev: Option<S>,
    /// Fork epoch + fired-triggers bitmask.
    pub meta: VertexMeta,
}

impl<S: Clone> VertexState<S> {
    /// Ensures the vertex is forked for `event_epoch`: on the first event of
    /// a newer epoch, capture `prev`. Returns `true` if a fork happened.
    pub fn fork_for(&mut self, event_epoch: Epoch) -> bool {
        if event_epoch > self.meta.forked_epoch {
            self.prev = Some(self.live.clone());
            self.meta.forked_epoch = event_epoch;
            true
        } else {
            false
        }
    }

    /// True when an event of `event_epoch` must also be applied to the
    /// forked previous state (i.e. it belongs to an epoch older than the
    /// fork point and a fork exists).
    pub fn applies_to_prev(&self, event_epoch: Epoch) -> bool {
        self.prev.is_some() && event_epoch < self.meta.forked_epoch
    }

    /// The state a snapshot of `old_epoch` should report: the fork if the
    /// vertex advanced past the boundary, otherwise the live state.
    pub fn snapshot_view(&self, old_epoch: Epoch) -> &S {
        if self.meta.forked_epoch > old_epoch {
            self.prev.as_ref().unwrap_or(&self.live)
        } else {
            &self.live
        }
    }

    /// Discards the fork once the snapshot has been collected.
    pub fn clear_fork(&mut self) {
        self.prev = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_is_small_and_copy() {
        assert_eq!(std::mem::size_of::<VertexMeta>(), 8);
        let m = VertexMeta {
            forked_epoch: 3,
            fired: 0b101,
        };
        let n = m; // Copy
        assert_eq!(m, n);
    }

    #[test]
    fn fork_happens_once_per_epoch() {
        let mut v: VertexState<u64> = VertexState {
            live: 7,
            ..Default::default()
        };
        assert!(v.fork_for(1));
        assert_eq!(v.prev, Some(7));
        v.live = 3;
        assert!(
            !v.fork_for(1),
            "second event of same epoch must not re-fork"
        );
        assert_eq!(v.prev, Some(7));
    }

    #[test]
    fn old_events_apply_to_prev_only_after_fork() {
        let mut v: VertexState<u64> = VertexState {
            live: 5,
            ..Default::default()
        };
        assert!(!v.applies_to_prev(0), "no fork yet");
        v.fork_for(1);
        assert!(v.applies_to_prev(0));
        assert!(!v.applies_to_prev(1), "new-epoch events only touch live");
    }

    #[test]
    fn snapshot_view_selects_correct_version() {
        let mut v: VertexState<u64> = VertexState {
            live: 5,
            ..Default::default()
        };
        // Untouched by the new epoch: live is the snapshot state.
        assert_eq!(*v.snapshot_view(0), 5);
        v.fork_for(1);
        v.live = 2;
        assert_eq!(*v.snapshot_view(0), 5, "snapshot must see the fork");
        v.clear_fork();
        assert_eq!(v.prev, None);
    }

    #[test]
    fn later_epoch_reforks() {
        let mut v: VertexState<u64> = VertexState {
            live: 9,
            ..Default::default()
        };
        v.fork_for(1);
        v.live = 4;
        v.clear_fork();
        assert!(v.fork_for(2));
        assert_eq!(v.prev, Some(4));
    }
}
