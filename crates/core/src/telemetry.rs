//! Live engine telemetry: lock-free mid-run counters, latency histograms,
//! a per-shard flight recorder, and Prometheus/JSON exporters.
//!
//! The paper's thesis is *on-line* analytics — algorithm state is live and
//! queryable at any instant (§IV, Fig. 2). This module extends that
//! property to the engine itself: the run's own vitals (events/sec,
//! queue depths, latency quantiles, recent per-shard activity) are
//! observable mid-run without stopping or even slowing the shards.
//!
//! Four pieces, all allocation-free on the data path:
//!
//! - **Snapshot cells** (`MetricsCell`): each shard republishes its
//!   [`ShardMetrics`] into a per-shard seqlock-protected word array at
//!   batch boundaries (every [`PUBLISH_EVERY`] retired envelopes, at idle
//!   transitions, and — crucially — right before an injected panic).
//!   `Engine::metrics_now` assembles a coherent cross-shard [`RunMetrics`]
//!   from these cells at any time.
//! - **Histograms** (`AtomicHistogram`): single-writer log2-bucketed
//!   latency histograms (see [`LatencyHistogram`] for the bucket scheme)
//!   for event service time and lane-flush latency (shard-owned) plus
//!   quiescence-detection and ingest→fixpoint latency (controller-owned).
//!   Service-time sampling is gated by [`TelemetryConfig::sample_shift`]
//!   so the `Instant::now()` pair stays off the common path.
//! - **Flight recorder** (`FlightRecorder`): a bounded per-shard ring of
//!   recent structured events (processed envelopes, topology ingests,
//!   flushes, park/wake, fault injections, epoch acks). `supervision`
//!   dumps it into [`ShardFailure`](crate::ShardFailure) when a shard
//!   panics, turning chaos postmortems into replayable traces.
//! - **Exporters** ([`TelemetryHub`]): a cloneable, thread-safe handle
//!   rendering Prometheus text format and JSON, plus derived gauges
//!   (events/sec over a sliding window, park ratio, in-flight envelopes).
//!
//! ## Seqlock protocol
//!
//! The writer (the owning shard) bumps the version to odd, a release fence
//! orders that bump before the relaxed payload stores, and a final release
//! store returns the version to even. The reader loads the version with
//! acquire, spins while odd, copies the payload with relaxed loads, issues
//! an acquire fence, and re-reads the version: equality proves the copy is
//! a torn-free snapshot. Payload words are `AtomicU64`, so the data race
//! is benign by construction (no UB even mid-write). Writers never wait;
//! readers retry — exactly the right asymmetry for a hot data path probed
//! by a cold observer.

use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::utils::CachePadded;

use crate::event::Epoch;
use crate::metrics::{LatencyHistogram, RunMetrics, ShardMetrics, HIST_BUCKETS};
use crate::supervision::FailureBoard;
use crate::termination::SharedCounters;
use crate::trace::{self, PropagationTrace, SpanKind, SpanRing, TraceConfig, TraceSpan, TraceTag};

/// How many retired envelopes between two snapshot-cell publications on
/// the hot path (shards also publish at every idle transition, so a
/// quiescent engine's cells are always current).
pub const PUBLISH_EVERY: u32 = 256;

/// Gauge words appended to each shard's counter payload in its snapshot
/// cell: `[queue_depth, lane_occupancy, pinned_core + 1, numa_node + 1]`
/// (the placement words are biased by one so 0 reads "unpinned" — the
/// cells start zeroed and the words are unsigned).
pub(crate) const GAUGE_WORDS: usize = 4;

/// Total words in one shard's snapshot cell.
pub(crate) const CELL_WORDS: usize = ShardMetrics::COUNTER_WORDS + GAUGE_WORDS;

/// Runtime telemetry selection, carried by
/// [`EngineConfig`](crate::EngineConfig). The default enables everything
/// the ≤ 2% overhead budget affords: counters (a seqlock publish every
/// [`PUBLISH_EVERY`] events), sampled histograms, and the flight recorder
/// (control-plane events always; data-plane events sampled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Publish per-shard counters to snapshot cells at batch boundaries
    /// (powers `Engine::metrics_now` and the exporters). Off: the cells
    /// are never written and mid-run snapshots read as zero.
    pub counters: bool,
    /// Record latency histograms (service time sampled per
    /// `sample_shift`; flush/quiescence/ingest→fixpoint are rare enough
    /// to record unconditionally).
    pub histograms: bool,
    /// Sampling shift for per-event instrumentation: every `2^shift`-th
    /// processed envelope gets a service-time measurement and (when the
    /// recorder is on) a flight-recorder entry. `0` samples every event —
    /// chaos-forensics mode, not for benchmarking.
    pub sample_shift: u32,
    /// Keep a bounded ring of recent structured events per shard, dumped
    /// into [`ShardFailure`](crate::ShardFailure) on panic and on
    /// degraded harvests.
    pub flight_recorder: bool,
    /// Flight-recorder ring capacity per shard (rounded up to a power of
    /// two, minimum 16).
    pub flight_capacity: usize,
    /// Attribute each shard's busy wall to phases
    /// (drain/process/flush/spin/park/checkpoint/replay ns counters —
    /// see the `phase_*_ns` fields of [`ShardMetrics`]). Two `Instant`
    /// reads per run-loop iteration, not per event, so it rides inside
    /// the ≤ 2% telemetry budget and stays on by default.
    pub phase_accounting: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            counters: true,
            histograms: true,
            sample_shift: 6,
            flight_recorder: true,
            flight_capacity: 128,
            phase_accounting: true,
        }
    }
}

impl TelemetryConfig {
    /// Everything off — the seed's black-box behaviour, for overhead
    /// ablations (`metrics_now` returns zeros; failures carry no trace).
    pub fn off() -> Self {
        TelemetryConfig {
            counters: false,
            histograms: false,
            sample_shift: 6,
            flight_recorder: false,
            flight_capacity: 0,
            phase_accounting: false,
        }
    }

    /// The default full set, spelled out for symmetry with [`Self::off`].
    pub fn full() -> Self {
        Self::default()
    }

    /// Sets the sampling shift (see [`TelemetryConfig::sample_shift`]).
    pub fn with_sample_shift(mut self, shift: u32) -> Self {
        self.sample_shift = shift.min(62);
        self
    }

    /// Enables or disables per-shard phase accounting (see
    /// [`TelemetryConfig::phase_accounting`]).
    pub fn with_phase_accounting(mut self, on: bool) -> Self {
        self.phase_accounting = on;
        self
    }

    /// Bitmask such that `seq & mask == 0` selects sampled events.
    #[inline]
    pub(crate) fn sample_mask(&self) -> u64 {
        (1u64 << self.sample_shift.min(62)) - 1
    }
}

/// One shard's seqlock-protected snapshot cell: an even/odd version word
/// guarding [`CELL_WORDS`] payload words (counters then gauges).
#[derive(Debug)]
pub(crate) struct MetricsCell {
    version: AtomicU64,
    words: [AtomicU64; CELL_WORDS],
}

impl MetricsCell {
    fn new() -> Self {
        MetricsCell {
            version: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Publishes a new payload. Single writer (the owning shard); never
    /// blocks or retries.
    pub(crate) fn publish(&self, payload: &[u64; CELL_WORDS]) {
        let v = self.version.load(Ordering::Relaxed);
        self.version.store(v.wrapping_add(1), Ordering::Relaxed);
        // Order the odd version ahead of the payload stores.
        fence(Ordering::Release);
        for (slot, &w) in self.words.iter().zip(payload.iter()) {
            slot.store(w, Ordering::Relaxed);
        }
        // Order the payload stores ahead of the even version.
        self.version.store(v.wrapping_add(2), Ordering::Release);
    }

    /// Reads a coherent payload copy, spinning through concurrent writes.
    pub(crate) fn read(&self, out: &mut [u64; CELL_WORDS]) {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            for (slot, w) in self.words.iter().zip(out.iter_mut()) {
                *w = slot.load(Ordering::Relaxed);
            }
            // Order the payload loads ahead of the version re-check.
            fence(Ordering::Acquire);
            if self.version.load(Ordering::Relaxed) == v1 {
                return;
            }
            std::hint::spin_loop();
        }
    }
}

/// Single-writer atomic counterpart of [`LatencyHistogram`]: the owning
/// thread records with relaxed read-modify-writes on its own cache lines;
/// observers snapshot with relaxed loads (buckets are monotone, so a
/// racy snapshot is still a valid histogram that merely trails by a few
/// samples).
#[derive(Debug)]
pub(crate) struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one nanosecond sample (single writer, relaxed).
    #[inline]
    pub(crate) fn record(&self, ns: u64) {
        let i = LatencyHistogram::bucket_index(ns);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Copies the current contents into a plain histogram.
    pub(crate) fn snapshot(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for (dst, src) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum_ns = self.sum_ns.load(Ordering::Relaxed);
        // A racy snapshot may catch `count` ahead of the bucket stores;
        // re-derive it from the buckets so quantile ranks stay consistent.
        h.count = h.buckets.iter().sum();
        h
    }
}

/// Kinds of structured events a shard's `FlightRecorder` captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightTag {
    /// An envelope was processed (`a` = target vertex, `b` = event kind).
    Process = 1,
    /// A topology event was pulled from a stream (`a` = src, `b` = dst).
    TopoIngest = 2,
    /// An outgoing batch was flushed (`a` = destination shard, `b` = len).
    Flush = 3,
    /// The shard went to sleep in its idle loop.
    Park = 4,
    /// The shard woke a sleeping peer (`a` = peer shard).
    Unpark = 5,
    /// A fault was injected (`a`: 1 = panic, 2 = delay, 3 = drop).
    Fault = 6,
    /// The shard acknowledged a new snapshot epoch.
    EpochAck = 7,
    /// A topology stream segment arrived (`a` = events in segment).
    Stream = 8,
    /// The shard answered a state collection (`a` = live vertices sent).
    Collect = 9,
    /// A batch was diverted to the channel fallback (`a` = dest, `b` = len).
    Fallback = 10,
    /// The shard observed shutdown and is draining.
    Shutdown = 11,
    /// The shard was respawned in place after a contained panic
    /// (`a` = respawn attempt number, `b` = WAL records replayed).
    Respawn = 12,
    /// A traced envelope was processed on this shard (`a` = trace id,
    /// `b` = hop depth) — lets a chaos postmortem name exactly which
    /// in-flight traced updates died with the shard. See [`crate::trace`].
    Trace = 13,
}

impl FlightTag {
    fn from_u8(v: u8) -> Option<FlightTag> {
        Some(match v {
            1 => FlightTag::Process,
            2 => FlightTag::TopoIngest,
            3 => FlightTag::Flush,
            4 => FlightTag::Park,
            5 => FlightTag::Unpark,
            6 => FlightTag::Fault,
            7 => FlightTag::EpochAck,
            8 => FlightTag::Stream,
            9 => FlightTag::Collect,
            10 => FlightTag::Fallback,
            11 => FlightTag::Shutdown,
            12 => FlightTag::Respawn,
            13 => FlightTag::Trace,
            _ => return None,
        })
    }
}

/// One decoded flight-recorder entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// Global per-shard sequence number of this entry (monotone).
    pub seq: u64,
    /// What happened.
    pub tag: FlightTag,
    /// Snapshot epoch the shard was in.
    pub epoch: Epoch,
    /// First operand (meaning depends on `tag`).
    pub a: u64,
    /// Second operand (meaning depends on `tag`).
    pub b: u64,
}

impl FlightEntry {
    /// Renders the entry as one trace line (the format stored in
    /// [`ShardFailure::trace`](crate::ShardFailure)).
    pub fn render(&self) -> String {
        let body = match self.tag {
            FlightTag::Process => {
                let kind = match self.b {
                    0 => "Init",
                    1 => "Add",
                    2 => "ReverseAdd",
                    3 => "Update",
                    4 => "Remove",
                    5 => "ReverseRemove",
                    _ => "?",
                };
                format!("process target={} kind={kind}", self.a)
            }
            FlightTag::TopoIngest => format!("topo src={} dst={}", self.a, self.b),
            FlightTag::Flush => format!("flush dest={} len={}", self.a, self.b),
            FlightTag::Park => "park".to_string(),
            FlightTag::Unpark => format!("unpark peer={}", self.a),
            FlightTag::Fault => {
                let kind = match self.a {
                    1 => "panic",
                    2 => "delay",
                    3 => "drop",
                    _ => "?",
                };
                format!("fault kind={kind}")
            }
            FlightTag::EpochAck => "epoch-ack".to_string(),
            FlightTag::Stream => format!("stream len={}", self.a),
            FlightTag::Collect => format!("collect live={}", self.a),
            FlightTag::Fallback => format!("lane-fallback dest={} len={}", self.a, self.b),
            FlightTag::Shutdown => "shutdown".to_string(),
            FlightTag::Respawn => {
                format!("respawn attempt={} replayed={}", self.a, self.b)
            }
            FlightTag::Trace => format!("trace id={} hop={}", self.a, self.b),
        };
        format!("#{} e{} {body}", self.seq, self.epoch)
    }
}

/// Bounded lock-free ring of recent structured events, single writer (the
/// owning shard). Entries are three relaxed word stores plus one release
/// store of the written count; the reader re-checks the count to discard
/// windows that were overwritten mid-read. On the panic path the dump is
/// taken by the dying shard's own thread inside `catch_unwind`, so the
/// trace attached to a [`ShardFailure`](crate::ShardFailure) is exact.
#[derive(Debug)]
pub(crate) struct FlightRecorder {
    mask: u64,
    written: AtomicU64,
    slots: Box<[[AtomicU64; 3]]>,
}

impl FlightRecorder {
    fn new(capacity: usize) -> Self {
        let cap = capacity.max(16).next_power_of_two();
        FlightRecorder {
            mask: cap as u64 - 1,
            written: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// Appends one entry (single writer).
    #[inline]
    pub(crate) fn record(&self, tag: FlightTag, epoch: Epoch, a: u64, b: u64) {
        let n = self.written.load(Ordering::Relaxed);
        let slot = &self.slots[(n & self.mask) as usize];
        slot[0].store(((epoch as u64) << 8) | tag as u64, Ordering::Relaxed);
        slot[1].store(a, Ordering::Relaxed);
        slot[2].store(b, Ordering::Relaxed);
        self.written.store(n.wrapping_add(1), Ordering::Release);
    }

    /// Decodes the retained window, oldest first. Lossy under concurrent
    /// writes (entries overwritten mid-read are dropped), exact when the
    /// writer has stopped — the panic-dump and harvest cases.
    pub(crate) fn dump(&self) -> Vec<FlightEntry> {
        let cap = self.mask + 1;
        for _ in 0..4 {
            let n1 = self.written.load(Ordering::Acquire);
            let start = n1.saturating_sub(cap);
            let mut out = Vec::with_capacity((n1 - start) as usize);
            for seq in start..n1 {
                let slot = &self.slots[(seq & self.mask) as usize];
                let w0 = slot[0].load(Ordering::Relaxed);
                let a = slot[1].load(Ordering::Relaxed);
                let b = slot[2].load(Ordering::Relaxed);
                if let Some(tag) = FlightTag::from_u8((w0 & 0xFF) as u8) {
                    out.push(FlightEntry {
                        seq,
                        tag,
                        epoch: (w0 >> 8) as Epoch,
                        a,
                        b,
                    });
                }
            }
            fence(Ordering::Acquire);
            let n2 = self.written.load(Ordering::Acquire);
            if n2 == n1 {
                return out;
            }
            // Writer advanced mid-read: the oldest (n2 - n1) decoded
            // entries may be torn — drop them and retry for a clean pass.
            let advanced = (n2 - n1) as usize;
            if advanced < out.len() {
                out.drain(..advanced);
            } else {
                out.clear();
            }
            if !out.is_empty() {
                return out;
            }
        }
        Vec::new()
    }
}

/// Derived point-in-time gauges assembled by [`TelemetryHub::gauges`].
#[derive(Debug, Clone, Default)]
pub struct EngineGauges {
    /// Wall-clock time since the engine was built.
    pub uptime: Duration,
    /// Algorithmic events retired per second over the recent sliding
    /// window (0 until two observations exist).
    pub events_per_sec: f64,
    /// Topology updates ingested per second over the recent sliding
    /// window (0 until two observations exist) — the sustained-ingest
    /// headline rate, as opposed to the algorithmic event rate above.
    pub updates_per_sec: f64,
    /// Total algorithmic events retired so far.
    pub events_processed: u64,
    /// Per-shard pending-work depth (inbox channel + staged local work),
    /// as of each shard's last snapshot publication.
    pub queue_depth: Vec<u64>,
    /// Per-shard inbound lane occupancy (batches parked in SPSC rings;
    /// 0 under the channel transport), as of the last publication.
    pub lane_occupancy: Vec<u64>,
    /// Per-shard pinned CPU (−1 = unpinned / placement off / the shard
    /// has not published yet), as of the last publication.
    pub pinned_core: Vec<i64>,
    /// Per-shard NUMA node of the pinned CPU (−1 = unpinned).
    pub numa_node: Vec<i64>,
    /// `idle_parks / (idle_parks + events_processed)` — how often shards
    /// slept vs worked.
    pub park_ratio: f64,
    /// Envelopes sent but not yet processed (from the termination
    /// counters; exact at the instant of the probe).
    pub in_flight: u64,
    /// Topology events injected but not yet ingested by shards.
    pub ingest_backlog: u64,
    /// Current snapshot epoch.
    pub epoch: Epoch,
    /// Shards recorded as failed.
    pub failed_shards: u64,
}

/// One live query's counters as exported by a
/// [`QueryStatsSource`] — the registry's per-slot telemetry row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryStatsRow {
    /// Human-readable query name supplied at attach time.
    pub name: String,
    /// Registry slot the query occupies (stable for its lifetime).
    pub slot: usize,
    /// Delta envelopes emitted on behalf of this query.
    pub envelopes_sent: u64,
    /// State-cell writes that actually changed this query's column.
    pub updates_applied: u64,
}

/// Provider of per-query telemetry, registered by the multi-query
/// registry (see [`QueryRegistry`](crate::QueryRegistry)) via
/// [`TelemetryHub::set_query_source`]. The exporters poll it on every
/// render; implementations must be cheap and lock-light.
pub trait QueryStatsSource: std::fmt::Debug + Send + Sync {
    /// Number of queries currently attached.
    fn queries_attached(&self) -> usize;
    /// One row per attached query.
    fn query_rows(&self) -> Vec<QueryStatsRow>;
    /// Attach-backfill duration histogram (one sample per attach).
    fn backfill_histogram(&self) -> LatencyHistogram;
    /// Resident bytes of the per-query state columns as of the last
    /// control sweep (tracks the detach-time compaction; 0 when the
    /// provider does not measure it).
    fn column_bytes(&self) -> u64 {
        0
    }
}

/// Sliding-window sample horizon for the events/sec gauge.
const WINDOW: Duration = Duration::from_secs(3);
const WINDOW_SAMPLES: usize = 256;

/// Everything the telemetry layer shares between shards, the controller,
/// and exporter handles. One instance per engine, behind an `Arc`.
#[derive(Debug)]
pub(crate) struct TelemetryShared {
    pub(crate) config: TelemetryConfig,
    started: Instant,
    cells: Vec<CachePadded<MetricsCell>>,
    service: Vec<AtomicHistogram>,
    flush: Vec<AtomicHistogram>,
    recorders: Vec<FlightRecorder>,
    spans: Vec<SpanRing>,
    quiesce: AtomicHistogram,
    ingest_fixpoint: AtomicHistogram,
    checkpoint: AtomicHistogram,
    /// Nanoseconds-since-start + 1 of the first ingest after the last
    /// quiescent point; 0 = unarmed. Controller-written.
    ingest_mark: AtomicU64,
    counters: Arc<SharedCounters>,
    board: Arc<FailureBoard>,
    window: Mutex<VecDeque<(Instant, u64)>>,
    ingest_window: Mutex<VecDeque<(Instant, u64)>>,
    /// Per-query stats provider, installed by the multi-query registry on
    /// first attach (`None` for single-algorithm runs).
    query_source: Mutex<Option<Arc<dyn QueryStatsSource>>>,
}

impl TelemetryShared {
    pub(crate) fn new(
        config: TelemetryConfig,
        trace: TraceConfig,
        shards: usize,
        counters: Arc<SharedCounters>,
        board: Arc<FailureBoard>,
    ) -> Self {
        let cells = (0..shards)
            .map(|_| CachePadded::new(MetricsCell::new()))
            .collect();
        let service = (0..shards).map(|_| AtomicHistogram::new()).collect();
        let flush = (0..shards).map(|_| AtomicHistogram::new()).collect();
        let recorders = (0..shards)
            .map(|_| {
                FlightRecorder::new(if config.flight_recorder {
                    config.flight_capacity
                } else {
                    0
                })
            })
            .collect();
        // `spans` is empty when tracing is off — every trace-plane entry
        // point no-ops on the missing ring, which is the zero-cost gate.
        let spans = if trace.enabled {
            (0..shards).map(|_| SpanRing::new(trace.ring_capacity)).collect()
        } else {
            Vec::new()
        };
        TelemetryShared {
            config,
            started: Instant::now(),
            cells,
            service,
            flush,
            recorders,
            spans,
            quiesce: AtomicHistogram::new(),
            ingest_fixpoint: AtomicHistogram::new(),
            checkpoint: AtomicHistogram::new(),
            ingest_mark: AtomicU64::new(0),
            counters,
            board,
            window: Mutex::new(VecDeque::new()),
            ingest_window: Mutex::new(VecDeque::new()),
            query_source: Mutex::new(None),
        }
    }

    // ---- shard-facing publication API --------------------------------

    /// Publishes one shard's counters + gauges into its snapshot cell.
    pub(crate) fn publish_counters(
        &self,
        shard: usize,
        m: &ShardMetrics,
        queue_depth: u64,
        lane_occupancy: u64,
        seat: Option<(usize, usize)>,
    ) {
        let mut payload = [0u64; CELL_WORDS];
        let (head, _) = payload.split_at_mut(ShardMetrics::COUNTER_WORDS);
        if let Ok(head) = <&mut [u64; ShardMetrics::COUNTER_WORDS]>::try_from(head) {
            m.to_words(head);
        }
        payload[ShardMetrics::COUNTER_WORDS] = queue_depth;
        payload[ShardMetrics::COUNTER_WORDS + 1] = lane_occupancy;
        // Placement seat `(cpu, node)`, biased +1 so zeroed cells (and
        // unpinned shards) read as "no seat".
        let (cpu1, node1) = seat.map_or((0, 0), |(c, n)| (c as u64 + 1, n as u64 + 1));
        payload[ShardMetrics::COUNTER_WORDS + 2] = cpu1;
        payload[ShardMetrics::COUNTER_WORDS + 3] = node1;
        self.cells[shard].publish(&payload);
    }

    /// Records one sampled event-service-time measurement.
    #[inline]
    pub(crate) fn record_service(&self, shard: usize, ns: u64) {
        self.service[shard].record(ns);
    }

    /// Records one lane-flush latency measurement.
    #[inline]
    pub(crate) fn record_flush(&self, shard: usize, ns: u64) {
        self.flush[shard].record(ns);
    }

    /// Appends one flight-recorder entry for `shard`.
    #[inline]
    pub(crate) fn record_flight(&self, shard: usize, tag: FlightTag, epoch: Epoch, a: u64, b: u64) {
        self.recorders[shard].record(tag, epoch, a, b);
    }

    /// Nanoseconds since the engine was built — the trace plane's clock.
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Appends one trace span to `shard`'s ring. Returns `true` when the
    /// append evicted an older span (ring overflow). No-op (false) when
    /// tracing is off.
    #[inline]
    pub(crate) fn record_span(
        &self,
        shard: usize,
        kind: SpanKind,
        tag: TraceTag,
        a: u64,
        b: u64,
    ) -> bool {
        match self.spans.get(shard) {
            Some(ring) => ring.record(kind, tag, self.now_ns(), a, b),
            None => false,
        }
    }

    /// Dumps every shard's span-ring window (lossy for shards still
    /// writing, exact after harvest).
    pub(crate) fn dump_spans(&self) -> Vec<TraceSpan> {
        let mut out = Vec::new();
        for (shard, ring) in self.spans.iter().enumerate() {
            out.extend(ring.dump(shard));
        }
        out
    }

    /// Reconstructs the propagation trees currently held in the span
    /// rings (empty when tracing is off).
    pub(crate) fn traces(&self) -> Vec<PropagationTrace> {
        trace::reconstruct(&self.dump_spans())
    }

    /// Dumps `shard`'s flight-recorder window as rendered trace lines.
    pub(crate) fn dump_flight(&self, shard: usize) -> Vec<String> {
        if !self.config.flight_recorder {
            return Vec::new();
        }
        self.recorders[shard]
            .dump()
            .iter()
            .map(FlightEntry::render)
            .collect()
    }

    // ---- controller-facing latency API -------------------------------

    /// Records one quiescence-detection latency sample.
    pub(crate) fn record_quiesce(&self, ns: u64) {
        if self.config.histograms {
            self.quiesce.record(ns);
        }
    }

    /// Records one checkpoint duration sample (shard-written; staging
    /// through publish of one durable checkpoint).
    pub(crate) fn record_checkpoint(&self, ns: u64) {
        if self.config.histograms {
            self.checkpoint.record(ns);
        }
    }

    /// Arms the ingest→fixpoint clock at the first ingest after a
    /// quiescent point (no-op while already armed).
    pub(crate) fn mark_ingest(&self) {
        if !self.config.histograms {
            return;
        }
        if self.ingest_mark.load(Ordering::Relaxed) == 0 {
            let ns = self.started.elapsed().as_nanos() as u64;
            self.ingest_mark
                .store(ns.wrapping_add(1), Ordering::Relaxed);
        }
    }

    /// Closes the ingest→fixpoint interval at a detected quiescence.
    pub(crate) fn settle_ingest(&self) {
        if !self.config.histograms {
            return;
        }
        let mark = self.ingest_mark.swap(0, Ordering::Relaxed);
        if mark != 0 {
            let now = self.started.elapsed().as_nanos() as u64;
            self.ingest_fixpoint.record(now.saturating_sub(mark - 1));
        }
    }

    // ---- observer API ------------------------------------------------

    /// One shard's last published counters + gauge words.
    pub(crate) fn shard_snapshot(&self, shard: usize) -> (ShardMetrics, [u64; GAUGE_WORDS]) {
        let mut payload = [0u64; CELL_WORDS];
        self.cells[shard].read(&mut payload);
        let mut counters = [0u64; ShardMetrics::COUNTER_WORDS];
        counters.copy_from_slice(&payload[..ShardMetrics::COUNTER_WORDS]);
        let gauges = [
            payload[ShardMetrics::COUNTER_WORDS],
            payload[ShardMetrics::COUNTER_WORDS + 1],
            payload[ShardMetrics::COUNTER_WORDS + 2],
            payload[ShardMetrics::COUNTER_WORDS + 3],
        ];
        (ShardMetrics::from_words(&counters), gauges)
    }

    /// Envelopes the controller itself has sent (both epoch parities).
    pub(crate) fn controller_sent(&self) -> u64 {
        let slot = self.counters.slot(self.counters.controller_slot());
        slot.sent[0].load(Ordering::SeqCst) + slot.sent[1].load(Ordering::SeqCst)
    }

    pub(crate) fn service_snapshot(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for s in &self.service {
            h.merge(&s.snapshot());
        }
        h
    }

    pub(crate) fn flush_snapshot(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for s in &self.flush {
            h.merge(&s.snapshot());
        }
        h
    }

    pub(crate) fn quiesce_snapshot(&self) -> LatencyHistogram {
        self.quiesce.snapshot()
    }

    pub(crate) fn ingest_fixpoint_snapshot(&self) -> LatencyHistogram {
        self.ingest_fixpoint.snapshot()
    }

    pub(crate) fn checkpoint_snapshot(&self) -> LatencyHistogram {
        self.checkpoint.snapshot()
    }

    /// Assembles a coherent cross-shard [`RunMetrics`] from the snapshot
    /// cells — the engine's mid-run `metrics_now`.
    pub(crate) fn snapshot_metrics(&self) -> RunMetrics {
        let per_shard: Vec<ShardMetrics> = (0..self.cells.len())
            .map(|s| self.shard_snapshot(s).0)
            .collect();
        let lost_shards: Vec<usize> = (0..self.cells.len())
            .filter(|&s| self.board.is_failed(s))
            .collect();
        RunMetrics {
            per_shard,
            lost_shards,
            controller_sent: self.controller_sent(),
            service: self.service_snapshot(),
            flush: self.flush_snapshot(),
            quiesce: self.quiesce_snapshot(),
            ingest_fixpoint: self.ingest_fixpoint_snapshot(),
            checkpoint: self.checkpoint_snapshot(),
        }
    }

    fn note_window(&self, processed: u64) -> f64 {
        Self::windowed_rate(&self.window, processed)
    }

    fn note_ingest_window(&self, ingested: u64) -> f64 {
        Self::windowed_rate(&self.ingest_window, ingested)
    }

    fn windowed_rate(slot: &Mutex<VecDeque<(Instant, u64)>>, count: u64) -> f64 {
        let now = Instant::now();
        let mut window = slot.lock().unwrap_or_else(|p| p.into_inner());
        window.push_back((now, count));
        while window.len() > WINDOW_SAMPLES {
            window.pop_front();
        }
        while let Some(&(t, _)) = window.front() {
            if now.duration_since(t) > WINDOW && window.len() > 2 {
                window.pop_front();
            } else {
                break;
            }
        }
        match (window.front(), window.back()) {
            (Some(&(t0, c0)), Some(&(t1, c1))) if t1 > t0 => {
                let dt = t1.duration_since(t0).as_secs_f64();
                if dt > 1e-4 {
                    (c1.saturating_sub(c0)) as f64 / dt
                } else {
                    0.0
                }
            }
            _ => 0.0,
        }
    }
}

/// Cloneable, thread-safe handle onto a running engine's telemetry:
/// mid-run metrics, derived gauges, and Prometheus/JSON rendering.
/// Obtained from `Engine::telemetry`; remains valid (frozen at the last
/// published values) after the engine finishes.
#[derive(Debug, Clone)]
pub struct TelemetryHub {
    shared: Arc<TelemetryShared>,
}

impl TelemetryHub {
    pub(crate) fn new(shared: Arc<TelemetryShared>) -> Self {
        TelemetryHub { shared }
    }

    /// The telemetry configuration this engine was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.shared.config
    }

    /// Coherent cross-shard metrics as of the shards' last snapshot
    /// publications (zeros when telemetry counters are off).
    pub fn metrics_now(&self) -> RunMetrics {
        self.shared.snapshot_metrics()
    }

    /// Propagation trees reconstructed from the per-shard span rings as
    /// of now (empty when tracing is off; see [`crate::trace`]). Exact
    /// once the engine has quiesced; lossy-but-coherent mid-run.
    pub fn traces_now(&self) -> Vec<PropagationTrace> {
        self.shared.traces()
    }

    /// Aggregate quantiles over [`TelemetryHub::traces_now`] — what the
    /// exporters render as `remo_trace_*` families.
    pub fn trace_summary(&self) -> trace::TraceSummary {
        trace::summarize(&self.traces_now())
    }

    /// Installs (or replaces) the per-query stats provider. Called by the
    /// multi-query registry on attach; exporters pick it up on the next
    /// render.
    pub fn set_query_source(&self, src: Arc<dyn QueryStatsSource>) {
        let mut slot = self
            .shared
            .query_source
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        *slot = Some(src);
    }

    /// The installed per-query stats provider, if any.
    pub fn query_source(&self) -> Option<Arc<dyn QueryStatsSource>> {
        self.shared
            .query_source
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Derived point-in-time gauges. Each call also feeds the sliding
    /// window behind `events_per_sec`, so a dashboard polling this at a
    /// steady cadence gets a stable rate.
    pub fn gauges(&self) -> EngineGauges {
        let shards = self.shared.cells.len();
        let mut queue_depth = Vec::with_capacity(shards);
        let mut lane_occupancy = Vec::with_capacity(shards);
        let mut pinned_core = Vec::with_capacity(shards);
        let mut numa_node = Vec::with_capacity(shards);
        let mut totals = ShardMetrics::default();
        for s in 0..shards {
            let (m, g) = self.shared.shard_snapshot(s);
            queue_depth.push(g[0]);
            lane_occupancy.push(g[1]);
            // Biased +1 in the cell (0 = unpinned); surface as -1.
            pinned_core.push(g[2] as i64 - 1);
            numa_node.push(g[3] as i64 - 1);
            totals.merge(&m);
        }
        let processed = totals.events_processed();
        let events_per_sec = self.shared.note_window(processed);
        let park_ratio = if totals.idle_parks + processed == 0 {
            0.0
        } else {
            totals.idle_parks as f64 / (totals.idle_parks + processed) as f64
        };
        // Exact in-flight/backlog from the termination counters (always
        // live, even with telemetry counters off).
        let c = &self.shared.counters;
        let mut sent = 0u64;
        let mut proc = 0u64;
        for id in 0..=c.controller_slot() {
            let slot = c.slot(id);
            sent += slot.sent[0].load(Ordering::SeqCst) + slot.sent[1].load(Ordering::SeqCst);
            proc +=
                slot.processed[0].load(Ordering::SeqCst) + slot.processed[1].load(Ordering::SeqCst);
        }
        let mut ingested = 0u64;
        for id in 0..=c.controller_slot() {
            ingested += c.slot(id).ingested.load(Ordering::SeqCst);
        }
        let injected = c.injected.load(Ordering::SeqCst);
        let updates_per_sec = self.shared.note_ingest_window(ingested);
        EngineGauges {
            uptime: self.shared.started.elapsed(),
            events_per_sec,
            updates_per_sec,
            events_processed: processed,
            queue_depth,
            lane_occupancy,
            pinned_core,
            numa_node,
            park_ratio,
            in_flight: sent.saturating_sub(proc),
            ingest_backlog: injected.saturating_sub(ingested),
            epoch: c.epoch.load(Ordering::SeqCst),
            failed_shards: self.shared.board.len() as u64,
        }
    }

    /// Renders the full metric set in Prometheus text exposition format:
    /// per-shard counters as `remo_<name>_total`, gauges, and the four
    /// latency histograms as summaries with p50/p99/p999 quantiles.
    pub fn render_prometheus(&self) -> String {
        let g = self.gauges();
        let shards = self.shared.cells.len();
        let mut per_shard_words: Vec<[u64; ShardMetrics::COUNTER_WORDS]> = Vec::new();
        for s in 0..shards {
            let (m, _) = self.shared.shard_snapshot(s);
            let mut w = [0u64; ShardMetrics::COUNTER_WORDS];
            m.to_words(&mut w);
            per_shard_words.push(w);
        }
        let mut out = String::with_capacity(8192);
        for (i, name) in ShardMetrics::COUNTER_NAMES.iter().enumerate() {
            out.push_str(&format!(
                "# HELP remo_{name}_total remo-core shard counter `{name}` (see ShardMetrics docs).\n# TYPE remo_{name}_total counter\n"
            ));
            for (s, words) in per_shard_words.iter().enumerate() {
                out.push_str(&format!(
                    "remo_{name}_total{{shard=\"{s}\"}} {}\n",
                    words[i]
                ));
            }
        }
        let mut gauge = |name: &str, help: &str, value: String| {
            out.push_str(&format!(
                "# HELP remo_{name} {help}\n# TYPE remo_{name} gauge\n{value}"
            ));
        };
        gauge(
            "uptime_seconds",
            "Wall-clock seconds since the engine was built.",
            format!("remo_uptime_seconds {:.3}\n", g.uptime.as_secs_f64()),
        );
        gauge(
            "events_per_sec",
            "Algorithmic events retired per second (sliding window).",
            format!("remo_events_per_sec {:.3}\n", g.events_per_sec),
        );
        gauge(
            "updates_per_sec",
            "Topology updates ingested per second (sliding window).",
            format!("remo_updates_per_sec {:.3}\n", g.updates_per_sec),
        );
        gauge(
            "park_ratio",
            "idle_parks / (idle_parks + events_processed).",
            format!("remo_park_ratio {:.6}\n", g.park_ratio),
        );
        gauge(
            "in_flight_envelopes",
            "Envelopes sent but not yet processed.",
            format!("remo_in_flight_envelopes {}\n", g.in_flight),
        );
        gauge(
            "ingest_backlog",
            "Topology events injected but not yet ingested.",
            format!("remo_ingest_backlog {}\n", g.ingest_backlog),
        );
        gauge(
            "epoch",
            "Current snapshot epoch.",
            format!("remo_epoch {}\n", g.epoch),
        );
        gauge(
            "failed_shards",
            "Shards recorded as failed.",
            format!("remo_failed_shards {}\n", g.failed_shards),
        );
        let mut depth_lines = String::new();
        for (s, d) in g.queue_depth.iter().enumerate() {
            depth_lines.push_str(&format!("remo_queue_depth{{shard=\"{s}\"}} {d}\n"));
        }
        gauge(
            "queue_depth",
            "Pending-work depth per shard at its last snapshot.",
            depth_lines,
        );
        let mut lane_lines = String::new();
        for (s, d) in g.lane_occupancy.iter().enumerate() {
            lane_lines.push_str(&format!("remo_lane_occupancy{{shard=\"{s}\"}} {d}\n"));
        }
        gauge(
            "lane_occupancy",
            "Inbound SPSC lane occupancy (batches) per shard at its last snapshot.",
            lane_lines,
        );
        let mut core_lines = String::new();
        for (s, c) in g.pinned_core.iter().enumerate() {
            core_lines.push_str(&format!("remo_pinned_core{{shard=\"{s}\"}} {c}\n"));
        }
        gauge(
            "pinned_core",
            "CPU the shard thread is pinned to (-1 = unpinned).",
            core_lines,
        );
        let mut node_lines = String::new();
        for (s, n) in g.numa_node.iter().enumerate() {
            node_lines.push_str(&format!("remo_numa_node{{shard=\"{s}\"}} {n}\n"));
        }
        gauge(
            "numa_node",
            "NUMA node of the shard's pinned CPU (-1 = unpinned).",
            node_lines,
        );
        let summary = |out: &mut String, name: &str, help: &str, h: &LatencyHistogram| {
            out.push_str(&format!(
                "# HELP remo_{name} {help}\n# TYPE remo_{name} summary\n"
            ));
            for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
                out.push_str(&format!(
                    "remo_{name}{{quantile=\"{label}\"}} {:.9}\n",
                    h.quantile_ns(q) / 1e9
                ));
            }
            out.push_str(&format!("remo_{name}_sum {:.9}\n", h.sum_ns as f64 / 1e9));
            out.push_str(&format!("remo_{name}_count {}\n", h.count));
        };
        summary(
            &mut out,
            "service_time_seconds",
            "Event service time (sampled).",
            &self.shared.service_snapshot(),
        );
        summary(
            &mut out,
            "flush_latency_seconds",
            "Outgoing lane-flush latency.",
            &self.shared.flush_snapshot(),
        );
        summary(
            &mut out,
            "quiesce_latency_seconds",
            "Quiescence-detection latency.",
            &self.shared.quiesce_snapshot(),
        );
        summary(
            &mut out,
            "ingest_fixpoint_seconds",
            "Ingest-to-fixpoint latency per settled epoch.",
            &self.shared.ingest_fixpoint_snapshot(),
        );
        summary(
            &mut out,
            "checkpoint_seconds",
            "Durable checkpoint duration (staging through publish).",
            &self.shared.checkpoint_snapshot(),
        );
        // Trace plane: always rendered (zeros when tracing is off) so
        // scrapers see a stable family set.
        let ts = self.trace_summary();
        out.push_str(&format!(
            "# HELP remo_traces_observed Propagation traces currently reconstructable from the span rings.\n# TYPE remo_traces_observed gauge\nremo_traces_observed {}\n",
            ts.observed
        ));
        summary(
            &mut out,
            "trace_fixpoint_seconds",
            "Per-trace propagation wall time, root ingest to last span.",
            &ts.fixpoint,
        );
        // Hops and amplification are unitless counts — render the raw
        // quantiles instead of routing them through the seconds scaler.
        let summary_raw = |out: &mut String, name: &str, help: &str, h: &LatencyHistogram| {
            out.push_str(&format!(
                "# HELP remo_{name} {help}\n# TYPE remo_{name} summary\n"
            ));
            for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
                out.push_str(&format!(
                    "remo_{name}{{quantile=\"{label}\"}} {:.3}\n",
                    h.quantile_ns(q)
                ));
            }
            out.push_str(&format!("remo_{name}_sum {}\n", h.sum_ns));
            out.push_str(&format!("remo_{name}_count {}\n", h.count));
        };
        summary_raw(
            &mut out,
            "trace_hops",
            "Hops to fixpoint per trace (unitless).",
            &ts.hops,
        );
        summary_raw(
            &mut out,
            "trace_amplification",
            "Envelopes caused per traced update (unitless).",
            &ts.amplification,
        );
        out.push_str(&format!(
            "# HELP remo_trace_cross_shard_hops_total Cross-shard sends over all reconstructed traces.\n# TYPE remo_trace_cross_shard_hops_total counter\nremo_trace_cross_shard_hops_total {}\n",
            ts.cross_shard_hops
        ));
        out.push_str(&format!(
            "# HELP remo_trace_cross_numa_hops_total Cross-NUMA sends over all reconstructed traces.\n# TYPE remo_trace_cross_numa_hops_total counter\nremo_trace_cross_numa_hops_total {}\n",
            ts.cross_numa_hops
        ));
        if let Some(src) = self.query_source() {
            out.push_str(&format!(
                "# HELP remo_queries_attached Live queries attached to the multi-query registry.\n# TYPE remo_queries_attached gauge\nremo_queries_attached {}\n",
                src.queries_attached()
            ));
            let rows = src.query_rows();
            out.push_str(
                "# HELP remo_query_envelopes_sent_total Delta envelopes emitted per registered query.\n# TYPE remo_query_envelopes_sent_total counter\n",
            );
            for r in &rows {
                out.push_str(&format!(
                    "remo_query_envelopes_sent_total{{query=\"{}\",slot=\"{}\"}} {}\n",
                    r.name, r.slot, r.envelopes_sent
                ));
            }
            out.push_str(
                "# HELP remo_query_updates_applied_total State-cell writes that changed a query's column.\n# TYPE remo_query_updates_applied_total counter\n",
            );
            for r in &rows {
                out.push_str(&format!(
                    "remo_query_updates_applied_total{{query=\"{}\",slot=\"{}\"}} {}\n",
                    r.name, r.slot, r.updates_applied
                ));
            }
            let h = src.backfill_histogram();
            out.push_str(
                "# HELP remo_attach_backfill_seconds Live-attach backfill duration (prime + flood + seed).\n# TYPE remo_attach_backfill_seconds summary\n",
            );
            for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
                out.push_str(&format!(
                    "remo_attach_backfill_seconds{{quantile=\"{label}\"}} {:.9}\n",
                    h.quantile_ns(q) / 1e9
                ));
            }
            out.push_str(&format!(
                "remo_attach_backfill_seconds_sum {:.9}\n",
                h.sum_ns as f64 / 1e9
            ));
            out.push_str(&format!("remo_attach_backfill_seconds_count {}\n", h.count));
            out.push_str(&format!(
                "# HELP remo_registry_column_bytes Resident bytes of per-query state columns as of the last control sweep.\n# TYPE remo_registry_column_bytes gauge\nremo_registry_column_bytes {}\n",
                src.column_bytes()
            ));
        }
        out
    }

    /// Renders the full metric set as a single JSON object (hand-rolled —
    /// the workspace deliberately carries no serialization dependency).
    pub fn render_json(&self) -> String {
        let g = self.gauges();
        let m = self.metrics_now();
        let totals = m.total();
        let mut out = String::with_capacity(4096);
        out.push('{');
        out.push_str(&format!("\"uptime_s\":{:.3},", g.uptime.as_secs_f64()));
        out.push_str(&format!("\"epoch\":{},", g.epoch));
        out.push_str(&format!("\"events_per_sec\":{:.3},", g.events_per_sec));
        out.push_str(&format!("\"updates_per_sec\":{:.3},", g.updates_per_sec));
        out.push_str(&format!("\"park_ratio\":{:.6},", g.park_ratio));
        out.push_str(&format!("\"in_flight\":{},", g.in_flight));
        out.push_str(&format!("\"ingest_backlog\":{},", g.ingest_backlog));
        out.push_str(&format!(
            "\"lost_shards\":[{}],",
            m.lost_shards
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
        let counters_json = |m: &ShardMetrics| -> String {
            let mut w = [0u64; ShardMetrics::COUNTER_WORDS];
            m.to_words(&mut w);
            ShardMetrics::COUNTER_NAMES
                .iter()
                .zip(w.iter())
                .map(|(n, v)| format!("\"{n}\":{v}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!("\"totals\":{{{}}},", counters_json(&totals)));
        out.push_str("\"per_shard\":[");
        for (s, sm) in m.per_shard.iter().enumerate() {
            if s > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{{},\"queue_depth\":{},\"lane_occupancy\":{},\"pinned_core\":{},\"numa_node\":{}}}",
                counters_json(sm),
                g.queue_depth.get(s).copied().unwrap_or(0),
                g.lane_occupancy.get(s).copied().unwrap_or(0),
                g.pinned_core.get(s).copied().unwrap_or(-1),
                g.numa_node.get(s).copied().unwrap_or(-1),
            ));
        }
        out.push_str("],");
        let hist_json = |h: &LatencyHistogram| -> String {
            let (p50, p99, p999) = h.quantiles_us();
            format!(
                "{{\"count\":{},\"mean_us\":{:.3},\"p50_us\":{:.3},\"p99_us\":{:.3},\"p999_us\":{:.3}}}",
                h.count,
                h.mean_ns() / 1e3,
                p50,
                p99,
                p999
            )
        };
        out.push_str(&format!(
            "\"histograms\":{{\"service\":{},\"flush\":{},\"quiesce\":{},\"ingest_fixpoint\":{},\"checkpoint\":{}}}",
            hist_json(&m.service),
            hist_json(&m.flush),
            hist_json(&m.quiesce),
            hist_json(&m.ingest_fixpoint),
            hist_json(&m.checkpoint),
        ));
        let ts = self.trace_summary();
        out.push_str(&format!(
            ",\"traces\":{{\"observed\":{},\"fixpoint\":{},\"hops\":{{\"p50\":{:.1},\"p99\":{:.1}}},\"amplification\":{{\"p50\":{:.1},\"p99\":{:.1}}},\"cross_shard_hops\":{},\"cross_numa_hops\":{}}}",
            ts.observed,
            hist_json(&ts.fixpoint),
            ts.hops.quantile_ns(0.5),
            ts.hops.quantile_ns(0.99),
            ts.amplification.quantile_ns(0.5),
            ts.amplification.quantile_ns(0.99),
            ts.cross_shard_hops,
            ts.cross_numa_hops,
        ));
        if let Some(src) = self.query_source() {
            let rows = src.query_rows();
            out.push_str(&format!(
                ",\"queries\":{{\"attached\":{},\"backfill\":{},\"column_bytes\":{},\"rows\":[",
                src.queries_attached(),
                hist_json(&src.backfill_histogram()),
                src.column_bytes(),
            ));
            for (i, r) in rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"slot\":{},\"envelopes_sent\":{},\"updates_applied\":{}}}",
                    r.name, r.slot, r.envelopes_sent, r.updates_applied
                ));
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn config_defaults_and_off() {
        let d = TelemetryConfig::default();
        assert!(d.counters && d.histograms && d.flight_recorder && d.phase_accounting);
        assert_eq!(d.sample_mask(), 63);
        let off = TelemetryConfig::off();
        assert!(!off.counters && !off.histograms && !off.flight_recorder);
        assert!(!off.phase_accounting);
        assert!(!TelemetryConfig::default()
            .with_phase_accounting(false)
            .phase_accounting);
        assert_eq!(TelemetryConfig::full(), TelemetryConfig::default());
        assert_eq!(
            TelemetryConfig::default()
                .with_sample_shift(0)
                .sample_mask(),
            0
        );
    }

    #[test]
    fn cell_roundtrips_payload() {
        let cell = MetricsCell::new();
        let mut payload = [0u64; CELL_WORDS];
        for (i, w) in payload.iter_mut().enumerate() {
            *w = i as u64 * 3 + 1;
        }
        cell.publish(&payload);
        let mut got = [0u64; CELL_WORDS];
        cell.read(&mut got);
        assert_eq!(payload, got);
    }

    /// Seqlock coherence under a hostile writer: the writer publishes
    /// payloads whose words are all equal to the same (incrementing)
    /// value; any torn read would mix two values and fail the all-equal
    /// check.
    #[test]
    fn cell_never_tears_under_concurrent_writes() {
        let cell = Arc::new(MetricsCell::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    v = v.wrapping_add(1);
                    cell.publish(&[v; CELL_WORDS]);
                }
            })
        };
        let mut last = 0u64;
        let mut got = [0u64; CELL_WORDS];
        for _ in 0..20_000 {
            cell.read(&mut got);
            assert!(got.iter().all(|&w| w == got[0]), "torn snapshot: {got:?}");
            assert!(got[0] >= last, "snapshot went backwards");
            last = got[0];
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().ok();
    }

    #[test]
    fn atomic_histogram_snapshots() {
        let h = AtomicHistogram::new();
        h.record(100);
        h.record(100_000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert!(snap.quantile_ns(0.5) > 0.0);
    }

    #[test]
    fn recorder_wraps_and_dumps_in_order() {
        let r = FlightRecorder::new(16);
        for i in 0..40u64 {
            r.record(FlightTag::Process, 2, i, 1);
        }
        let dump = r.dump();
        assert_eq!(dump.len(), 16, "bounded to capacity");
        let seqs: Vec<u64> = dump.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (24..40).collect::<Vec<u64>>(), "oldest-first window");
        assert!(dump
            .iter()
            .all(|e| e.tag == FlightTag::Process && e.epoch == 2));
        let line = dump[0].render();
        assert!(line.contains("process"), "{line}");
        assert!(line.contains("kind=Add"), "{line}");
    }

    #[test]
    fn recorder_entry_rendering_covers_tags() {
        let r = FlightRecorder::new(16);
        r.record(FlightTag::Fault, 0, 1, 0);
        r.record(FlightTag::Flush, 1, 3, 17);
        r.record(FlightTag::Park, 1, 0, 0);
        let dump = r.dump();
        assert_eq!(dump.len(), 3);
        assert!(dump[0].render().contains("fault kind=panic"));
        assert!(dump[1].render().contains("flush dest=3 len=17"));
        assert!(dump[2].render().contains("park"));
    }

    #[test]
    fn shared_snapshot_assembles_run_metrics() {
        let counters = Arc::new(SharedCounters::new(2));
        let board = Arc::new(FailureBoard::new());
        let tele = TelemetryShared::new(
            TelemetryConfig::default(),
            TraceConfig::off(),
            2,
            Arc::clone(&counters),
            Arc::clone(&board),
        );
        let m = ShardMetrics {
            add_events: 7,
            envelopes_sent: 9,
            ..Default::default()
        };
        tele.publish_counters(0, &m, 5, 2, Some((3, 1)));
        tele.record_service(0, 1500);
        let snap = tele.snapshot_metrics();
        assert_eq!(snap.per_shard.len(), 2);
        assert_eq!(snap.per_shard[0].add_events, 7);
        assert_eq!(snap.per_shard[1], ShardMetrics::default());
        assert_eq!(snap.service.count, 1);
        let (got, gauges) = tele.shard_snapshot(0);
        assert_eq!(got, m);
        // Placement words carry the +1 bias (cpu 3 -> 4, node 1 -> 2).
        assert_eq!(gauges, [5, 2, 4, 2]);
    }

    #[test]
    fn unpinned_publish_reads_as_no_seat() {
        let counters = Arc::new(SharedCounters::new(1));
        let board = Arc::new(FailureBoard::new());
        let tele = Arc::new(TelemetryShared::new(
            TelemetryConfig::default(),
            TraceConfig::off(),
            1,
            counters,
            board,
        ));
        tele.publish_counters(0, &ShardMetrics::default(), 0, 0, None);
        let (_, gauges) = tele.shard_snapshot(0);
        assert_eq!(gauges[2], 0);
        assert_eq!(gauges[3], 0);
        let hub = TelemetryHub::new(tele);
        let g = hub.gauges();
        assert_eq!(g.pinned_core, vec![-1]);
        assert_eq!(g.numa_node, vec![-1]);
        let prom = hub.render_prometheus();
        assert!(prom.contains("remo_pinned_core{shard=\"0\"} -1"));
        assert!(prom.contains("remo_numa_node{shard=\"0\"} -1"));
        let json = hub.render_json();
        assert!(json.contains("\"pinned_core\":-1"));
        assert!(json.contains("\"numa_node\":-1"));
    }

    #[test]
    fn hub_renders_prometheus_and_json() {
        let counters = Arc::new(SharedCounters::new(1));
        let board = Arc::new(FailureBoard::new());
        let tele = Arc::new(TelemetryShared::new(
            TelemetryConfig::default(),
            TraceConfig::on(),
            1,
            counters,
            board,
        ));
        let m = ShardMetrics {
            add_events: 3,
            topo_ingested: 2,
            ..Default::default()
        };
        tele.publish_counters(0, &m, 0, 0, None);
        tele.record_quiesce(10_000);
        // One complete traced cascade so the trace families render
        // non-trivially.
        assert!(!tele.record_span(0, SpanKind::Root, 7 << 8, 1, 2));
        assert!(!tele.record_span(0, SpanKind::Send, (7 << 8) | 1, 1, 0));
        let hub = TelemetryHub::new(tele);
        let traces = hub.traces_now();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].amplification, 1);
        let prom = hub.render_prometheus();
        assert!(prom.contains("# TYPE remo_add_events_total counter"));
        assert!(prom.contains("remo_add_events_total{shard=\"0\"} 3"));
        assert!(prom.contains("# TYPE remo_service_time_seconds summary"));
        assert!(prom.contains("remo_quiesce_latency_seconds_count 1"));
        assert!(prom.contains("remo_events_per_sec"));
        assert!(prom.contains("remo_updates_per_sec"));
        assert!(prom.contains("# TYPE remo_adaptive_decisions_total counter"));
        assert!(prom.contains("remo_traces_observed 1"));
        assert!(prom.contains("# TYPE remo_trace_fixpoint_seconds summary"));
        assert!(prom.contains("remo_trace_hops_count 1"));
        assert!(prom.contains("remo_trace_amplification_count 1"));
        assert!(prom.contains("remo_trace_cross_shard_hops_total"));
        assert!(prom.contains("remo_trace_cross_numa_hops_total"));
        assert!(prom.contains("# TYPE remo_phase_process_ns_total counter"));
        let json = hub.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"add_events\":3"));
        assert!(json.contains("\"updates_per_sec\""));
        assert!(json.contains("\"adaptive_decisions\""));
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"traces\":{\"observed\":1"));
        assert!(json.contains("\"phase_process_ns\""));
        // Braces balance (cheap structural sanity without a JSON parser).
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }
}
