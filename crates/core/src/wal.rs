//! Per-shard durability: CRC-framed write-ahead log, atomic checkpoints,
//! and the engine manifest.
//!
//! Durability is opt-in ([`crate::EngineConfig::with_durability`]); with it
//! off the engine takes no code path through this module. With it on, each
//! shard owns one directory (`<root>/shard-<id>/`) holding:
//!
//! - `wal.log` — the write-ahead log of *accepted external inputs*: every
//!   envelope the shard took custody of from a peer or the controller, and
//!   every topology event it pulled from an input stream. Self-routed
//!   cascade envelopes are deliberately **not** logged: replaying the
//!   external inputs through the normal event loop re-derives them (REMO
//!   callbacks are monotone and join-idempotent, so at-least-once replay
//!   converges to the same fixpoint — see DESIGN.md §14).
//! - `checkpoint.bin` — a point-in-time image of the shard's vertex store
//!   (states, forks, metas, adjacency), written only at *idle* (all queues
//!   drained), so the checkpoint plus the WAL tail is always a complete
//!   description of the shard. Checkpoints are published atomically: body
//!   to `checkpoint.tmp`, fsync, rename, fsync the directory — a crash at
//!   any point leaves either the old checkpoint or the new one, never a
//!   torn file. After a successful publish the WAL is truncated; a crash
//!   between the two merely leaves already-checkpointed records in the
//!   WAL, which replay reapplies idempotently.
//!
//! WAL records are length-prefixed frames: `len: u32 | crc32: u32 |
//! payload`, CRC over the payload. Appends are buffered in memory and
//! written (plus optionally fsynced) at envelope-batch boundaries —
//! crucially *before* the batch is processed, so a record is durable
//! before any of its effects escape the shard. On open the log is scanned
//! front-to-back and truncated at the first frame whose length or CRC does
//! not check out (torn tail from a mid-write crash).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::event::{Epoch, TopoEvent, TopoOp};
use remo_store::VertexId;

/// Runtime durability selection, carried by
/// [`EngineConfig`](crate::EngineConfig). Constructed with
/// [`DurabilityConfig::new`] and customized through the builder methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Root directory for the engine's durable state (one subdirectory
    /// per shard plus a `MANIFEST`). Created on first use.
    pub dir: PathBuf,
    /// Custody records (accepted envelopes + pulled topology events)
    /// between checkpoints. Smaller = shorter replay, more checkpoint
    /// I/O.
    pub checkpoint_every: u64,
    /// Fsync the WAL at each batch-boundary commit. Off trades crash
    /// durability (a `kill -9` may lose the un-synced tail) for speed;
    /// panic recovery within a live process is unaffected either way.
    pub fsync: bool,
    /// In-process recovery budget: how many times a shard may be revived
    /// after a panic before the supervisor gives up and records a
    /// permanent [`ShardFailure`](crate::ShardFailure) (degraded-harvest
    /// behavior, exactly as with durability off).
    pub max_respawns: u32,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with defaults: checkpoint every 4096
    /// custody records, fsync on, up to 3 respawns per shard.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_every: 4096,
            fsync: true,
            max_respawns: 3,
        }
    }

    /// Sets the checkpoint interval in custody records (minimum 1).
    pub fn checkpoint_every(mut self, records: u64) -> Self {
        self.checkpoint_every = records.max(1);
        self
    }

    /// Enables or disables fsync batching (see [`DurabilityConfig::fsync`]).
    pub fn fsync(mut self, on: bool) -> Self {
        self.fsync = on;
        self
    }

    /// Sets the per-shard respawn budget.
    pub fn max_respawns(mut self, n: u32) -> Self {
        self.max_respawns = n;
        self
    }
}

// ---- CRC32 (IEEE 802.3, table-driven) --------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC32 over `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- little-endian byte cursor ---------------------------------------

fn short(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("durability: truncated {what}"),
    )
}

/// Bounds-checked little-endian reader over a byte slice, used by both the
/// WAL record and checkpoint decoders.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| short("length"))?;
        if end > self.buf.len() {
            return Err(short("payload"));
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        let mut w = [0u8; 4];
        w.copy_from_slice(b);
        Ok(u32::from_le_bytes(w))
    }

    pub(crate) fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }

    /// A `u32`-length-prefixed byte run.
    pub(crate) fn bytes(&mut self) -> io::Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

// ---- WAL records -----------------------------------------------------

const TAG_ENVELOPE: u8 = 1;
const TAG_TOPO: u8 = 2;
const TAG_CONTROL: u8 = 3;

/// One decoded WAL record. State bytes stay opaque here — the shard
/// decodes them through [`Algorithm::decode_state`](crate::Algorithm).
pub(crate) enum RawRecord {
    /// An envelope the shard accepted from a peer or the controller.
    Envelope {
        kind: u8,
        epoch: Epoch,
        target: VertexId,
        visitor: VertexId,
        weight: u64,
        /// Causal trace tag (0 = untraced) — preserved so replayed
        /// envelopes keep their trace identity (see [`crate::trace`]).
        tag: u64,
        state: Vec<u8>,
    },
    /// A topology event pulled from an input stream, with the epoch it
    /// was tagged with at ingestion.
    Topo { ev: TopoEvent, epoch: Epoch },
    /// A claimed control sweep (registry attach/detach — see
    /// [`crate::registry`]): `kind` is the [`ControlKind`] wire byte,
    /// `mask` the slot mask the shard claimed before sweeping. Logged
    /// before the sweep runs so replay re-derives its effects.
    Control { kind: u8, mask: u64 },
}

/// One shard's append handle on its `wal.log`.
pub(crate) struct ShardWal {
    file: File,
    /// Frames accepted since the last [`ShardWal::commit`]; nothing in
    /// here is visible to recovery yet.
    buf: Vec<u8>,
    fsync: bool,
}

/// `<root>/shard-<id>/`.
pub(crate) fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard}"))
}

fn wal_path(root: &Path, shard: usize) -> PathBuf {
    shard_dir(root, shard).join("wal.log")
}

/// True when shard `shard` left durable state under `root`: a published
/// checkpoint, or a non-empty WAL.
pub(crate) fn has_durable_state(root: &Path, shard: usize) -> bool {
    let dir = shard_dir(root, shard);
    if fs::metadata(dir.join("checkpoint.bin")).is_ok() {
        return true;
    }
    fs::metadata(dir.join("wal.log")).is_ok_and(|m| m.len() > 0)
}

/// Walks frames front-to-back, returning the byte length of the valid
/// prefix — everything after it is a torn tail to truncate.
fn valid_prefix(bytes: &[u8]) -> u64 {
    let mut pos = 0usize;
    loop {
        let Some(header) = bytes.get(pos..pos + 8) else {
            return pos as u64;
        };
        let mut w = [0u8; 4];
        w.copy_from_slice(&header[..4]);
        let len = u32::from_le_bytes(w) as usize;
        w.copy_from_slice(&header[4..8]);
        let crc = u32::from_le_bytes(w);
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            return pos as u64;
        };
        if crc32(payload) != crc {
            return pos as u64;
        }
        pos += 8 + len;
    }
}

impl ShardWal {
    /// Opens (creating if needed) the shard's WAL, truncating any torn
    /// tail left by a crash mid-append.
    pub(crate) fn open(root: &Path, shard: usize, fsync: bool) -> io::Result<ShardWal> {
        let dir = shard_dir(root, shard);
        fs::create_dir_all(&dir)?;
        let path = wal_path(root, shard);
        let existing = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let keep = valid_prefix(&existing);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false) // the valid prefix is the whole point
            .read(true)
            .write(true)
            .open(&path)?;
        if keep < existing.len() as u64 {
            file.set_len(keep)?;
        }
        file.seek(SeekFrom::Start(keep))?;
        Ok(ShardWal {
            file,
            buf: Vec::new(),
            fsync,
        })
    }

    fn frame(&mut self, payload_from: usize) {
        // `buf[payload_from..]` holds the payload written in place after
        // an 8-byte header placeholder; backfill len + crc.
        let len = (self.buf.len() - payload_from) as u32;
        let crc = crc32(&self.buf[payload_from..]);
        self.buf[payload_from - 8..payload_from - 4].copy_from_slice(&len.to_le_bytes());
        self.buf[payload_from - 4..payload_from].copy_from_slice(&crc.to_le_bytes());
    }

    fn begin_frame(&mut self) -> usize {
        self.buf.extend_from_slice(&[0u8; 8]);
        self.buf.len()
    }

    /// Buffers one accepted-envelope record.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn append_envelope(
        &mut self,
        kind: u8,
        epoch: Epoch,
        target: VertexId,
        visitor: VertexId,
        weight: u64,
        tag: u64,
        state: &[u8],
    ) {
        let start = self.begin_frame();
        self.buf.push(TAG_ENVELOPE);
        self.buf.push(kind);
        put_u32(&mut self.buf, epoch);
        put_u64(&mut self.buf, target);
        put_u64(&mut self.buf, visitor);
        put_u64(&mut self.buf, weight);
        put_u64(&mut self.buf, tag);
        put_bytes(&mut self.buf, state);
        self.frame(start);
    }

    /// Buffers one pulled-topology-event record.
    pub(crate) fn append_topo(&mut self, ev: &TopoEvent, epoch: Epoch) {
        let start = self.begin_frame();
        self.buf.push(TAG_TOPO);
        self.buf.push(match ev.op {
            TopoOp::Add => 0,
            TopoOp::Remove => 1,
        });
        put_u32(&mut self.buf, epoch);
        put_u64(&mut self.buf, ev.src);
        put_u64(&mut self.buf, ev.dst);
        put_u64(&mut self.buf, ev.weight);
        self.frame(start);
    }

    /// Buffers one claimed-control-sweep record.
    pub(crate) fn append_control(&mut self, kind: u8, mask: u64) {
        let start = self.begin_frame();
        self.buf.push(TAG_CONTROL);
        self.buf.push(kind);
        put_u64(&mut self.buf, mask);
        self.frame(start);
    }

    /// True when records are buffered but not yet committed.
    #[cfg(test)]
    pub(crate) fn has_pending(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Writes buffered frames to the log (and to stable storage when
    /// fsync batching is on). Called at batch boundaries, *before* the
    /// batch is processed. Returns bytes written.
    pub(crate) fn commit(&mut self) -> io::Result<u64> {
        if self.buf.is_empty() {
            return Ok(0);
        }
        let n = self.buf.len() as u64;
        self.file.write_all(&self.buf)?;
        self.buf.clear();
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(n)
    }

    /// Drops buffered-but-uncommitted frames. Used by the post-panic
    /// custody sweep: those frames belong to envelopes being retired, and
    /// replay must not see them.
    pub(crate) fn discard_pending(&mut self) {
        self.buf.clear();
    }

    /// Truncates the log after a successfully published checkpoint.
    pub(crate) fn reset(&mut self) -> io::Result<()> {
        self.buf.clear();
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

/// Reads and decodes every valid record in a shard's WAL (bounded by the
/// checkpoint interval, so an in-memory `Vec` is fine). Stops cleanly at a
/// torn tail.
pub(crate) fn read_wal(root: &Path, shard: usize) -> io::Result<Vec<RawRecord>> {
    let bytes = match fs::read(wal_path(root, shard)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let valid = valid_prefix(&bytes) as usize;
    let mut out = Vec::new();
    let mut r = ByteReader::new(&bytes[..valid]);
    while !r.is_empty() {
        let _len = r.u32()?;
        let _crc = r.u32()?;
        match r.u8()? {
            TAG_ENVELOPE => {
                let kind = r.u8()?;
                let epoch = r.u32()?;
                let target = r.u64()?;
                let visitor = r.u64()?;
                let weight = r.u64()?;
                let tag = r.u64()?;
                let state = r.bytes()?.to_vec();
                out.push(RawRecord::Envelope {
                    kind,
                    epoch,
                    target,
                    visitor,
                    weight,
                    tag,
                    state,
                });
            }
            TAG_TOPO => {
                let op = if r.u8()? == 0 {
                    TopoOp::Add
                } else {
                    TopoOp::Remove
                };
                let epoch = r.u32()?;
                let (src, dst, weight) = (r.u64()?, r.u64()?, r.u64()?);
                out.push(RawRecord::Topo {
                    ev: TopoEvent {
                        src,
                        dst,
                        weight,
                        op,
                    },
                    epoch,
                });
            }
            TAG_CONTROL => {
                let kind = r.u8()?;
                let mask = r.u64()?;
                out.push(RawRecord::Control { kind, mask });
            }
            t => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("durability: unknown WAL record tag {t}"),
                ))
            }
        }
    }
    Ok(out)
}

// ---- checkpoints -----------------------------------------------------

const CKPT_MAGIC: u32 = 0x524D_4350; // "RMCP"
const CKPT_VERSION: u32 = 1;

fn ckpt_path(root: &Path, shard: usize) -> PathBuf {
    shard_dir(root, shard).join("checkpoint.bin")
}

fn ckpt_tmp_path(root: &Path, shard: usize) -> PathBuf {
    shard_dir(root, shard).join("checkpoint.tmp")
}

/// Stage one: write `body` to the shard's `checkpoint.tmp` and fsync it.
/// Not yet visible to recovery — a crash here abandons the temp file.
pub(crate) fn stage_checkpoint(root: &Path, shard: usize, body: &[u8]) -> io::Result<()> {
    let dir = shard_dir(root, shard);
    fs::create_dir_all(&dir)?;
    let tmp = ckpt_tmp_path(root, shard);
    let mut header = Vec::with_capacity(16);
    put_u32(&mut header, CKPT_MAGIC);
    put_u32(&mut header, CKPT_VERSION);
    put_u32(&mut header, crc32(body));
    put_u32(&mut header, body.len() as u32);
    let mut f = File::create(&tmp)?;
    f.write_all(&header)?;
    f.write_all(body)?;
    f.sync_all()?;
    Ok(())
}

/// Stage two: atomically publish the staged checkpoint via rename, then
/// fsync the directory so the rename itself is durable.
pub(crate) fn publish_checkpoint(root: &Path, shard: usize) -> io::Result<()> {
    let dir = shard_dir(root, shard);
    fs::rename(ckpt_tmp_path(root, shard), ckpt_path(root, shard))?;
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads the shard's published checkpoint body. `Ok(None)` when no
/// checkpoint has ever been published; `Err` on corruption (the atomic
/// publish protocol should make that impossible short of disk damage).
pub(crate) fn read_checkpoint(root: &Path, shard: usize) -> io::Result<Option<Vec<u8>>> {
    let bytes = match fs::read(ckpt_path(root, shard)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut r = ByteReader::new(&bytes);
    if r.u32()? != CKPT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "durability: bad checkpoint magic",
        ));
    }
    if r.u32()? != CKPT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "durability: bad checkpoint version",
        ));
    }
    let crc = r.u32()?;
    let len = r.u32()? as usize;
    let body = r.take(len)?;
    if crc32(body) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "durability: checkpoint CRC mismatch",
        ));
    }
    Ok(Some(body.to_vec()))
}

// ---- engine manifest -------------------------------------------------

/// Writes `<root>/MANIFEST` describing the engine shape (idempotent).
pub(crate) fn write_manifest(root: &Path, shards: usize, undirected: bool) -> io::Result<()> {
    fs::create_dir_all(root)?;
    let body = format!("remo-manifest v1\nshards={shards}\nundirected={undirected}\n");
    fs::write(root.join("MANIFEST"), body)
}

/// Reads `<root>/MANIFEST`: `Ok(None)` when absent (fresh directory).
pub(crate) fn read_manifest(root: &Path) -> io::Result<Option<(usize, bool)>> {
    let text = match fs::read_to_string(root.join("MANIFEST")) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut shards = None;
    let mut undirected = None;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("shards=") {
            shards = v.trim().parse::<usize>().ok();
        } else if let Some(v) = line.strip_prefix("undirected=") {
            undirected = v.trim().parse::<bool>().ok();
        }
    }
    match (shards, undirected) {
        (Some(s), Some(u)) => Ok(Some((s, u))),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "durability: malformed MANIFEST",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("remo-wal-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_known_vector() {
        // CRC32("123456789") is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_roundtrip_and_reset() {
        let root = tmp_root("roundtrip");
        let mut wal = ShardWal::open(&root, 0, false).unwrap();
        wal.append_envelope(3, 1, 10, 20, 7, (99 << 8) | 2, &42u64.to_le_bytes());
        wal.append_topo(
            &TopoEvent {
                src: 1,
                dst: 2,
                weight: 9,
                op: TopoOp::Remove,
            },
            4,
        );
        wal.append_control(1, 0b101);
        assert!(wal.has_pending());
        let bytes = wal.commit().unwrap();
        assert!(bytes > 0);
        assert!(!wal.has_pending());

        let recs = read_wal(&root, 0).unwrap();
        assert_eq!(recs.len(), 3);
        match &recs[0] {
            RawRecord::Envelope {
                kind,
                epoch,
                target,
                visitor,
                weight,
                tag,
                state,
            } => {
                assert_eq!(
                    (*kind, *epoch, *target, *visitor, *weight, *tag),
                    (3, 1, 10, 20, 7, (99 << 8) | 2)
                );
                assert_eq!(state.as_slice(), &42u64.to_le_bytes());
            }
            _ => panic!("expected envelope record"),
        }
        match &recs[1] {
            RawRecord::Topo { ev, epoch } => {
                assert_eq!((ev.src, ev.dst, ev.weight, *epoch), (1, 2, 9, 4));
                assert_eq!(ev.op, TopoOp::Remove);
            }
            _ => panic!("expected topo record"),
        }
        match &recs[2] {
            RawRecord::Control { kind, mask } => {
                assert_eq!((*kind, *mask), (1, 0b101));
            }
            _ => panic!("expected control record"),
        }

        wal.reset().unwrap();
        assert!(read_wal(&root, 0).unwrap().is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let root = tmp_root("torn");
        let mut wal = ShardWal::open(&root, 1, false).unwrap();
        wal.append_envelope(1, 0, 5, 6, 1, 0, &[]);
        wal.commit().unwrap();
        drop(wal);
        // Simulate a crash mid-append: garbage half-frame at the end.
        let path = shard_dir(&root, 1).join("wal.log");
        let mut bytes = fs::read(&path).unwrap();
        let good = bytes.len();
        bytes.extend_from_slice(&[0x55; 11]);
        fs::write(&path, &bytes).unwrap();

        let mut wal = ShardWal::open(&root, 1, false).unwrap();
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            good as u64,
            "tail truncated"
        );
        assert_eq!(read_wal(&root, 1).unwrap().len(), 1);
        // Appends after recovery land where the valid prefix ended.
        wal.append_envelope(2, 0, 7, 8, 1, 0, &[]);
        wal.commit().unwrap();
        assert_eq!(read_wal(&root, 1).unwrap().len(), 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpoint_staged_then_published_atomically() {
        let root = tmp_root("ckpt");
        assert_eq!(read_checkpoint(&root, 0).unwrap(), None);
        stage_checkpoint(&root, 0, b"hello-checkpoint").unwrap();
        // Staged but unpublished: recovery still sees nothing.
        assert_eq!(read_checkpoint(&root, 0).unwrap(), None);
        publish_checkpoint(&root, 0).unwrap();
        assert_eq!(
            read_checkpoint(&root, 0).unwrap().as_deref(),
            Some(&b"hello-checkpoint"[..])
        );
        // Re-stage overwrites cleanly.
        stage_checkpoint(&root, 0, b"v2").unwrap();
        publish_checkpoint(&root, 0).unwrap();
        assert_eq!(
            read_checkpoint(&root, 0).unwrap().as_deref(),
            Some(&b"v2"[..])
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_checkpoint_is_an_error() {
        let root = tmp_root("ckpt-corrupt");
        stage_checkpoint(&root, 2, b"payload").unwrap();
        publish_checkpoint(&root, 2).unwrap();
        let path = shard_dir(&root, 2).join("checkpoint.bin");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(read_checkpoint(&root, 2).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_roundtrip() {
        let root = tmp_root("manifest");
        assert_eq!(read_manifest(&root).unwrap(), None);
        write_manifest(&root, 4, true).unwrap();
        assert_eq!(read_manifest(&root).unwrap(), Some((4, true)));
        let _ = fs::remove_dir_all(&root);
    }
}
