//! Consistent-hash vertex partitioning (§III-C).
//!
//! "We use a simple form of consistent hashing where we assume a cluster
//! with a static process count P, and assign a vertex with ID V to a process
//! via hash(V) modulo P. This way, as each process uses the same hash
//! function, any process can determine in constant time which process owns a
//! vertex." The paper deliberately accepts the resulting edge imbalance on
//! power-law graphs as a simplicity/baseline trade-off; so do we.

use remo_store::hash::partition_hash;
use remo_store::VertexId;

/// Maps vertices to owning shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    shards: usize,
}

impl Partitioner {
    /// A partitioner over `shards` processes.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Partitioner { shards }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Owning shard of `v` — `hash(V) mod P`.
    #[inline(always)]
    pub fn owner(&self, v: VertexId) -> usize {
        (partition_hash(v) % self.shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let p = Partitioner::new(7);
        for v in 0..10_000u64 {
            let o = p.owner(v);
            assert!(o < 7);
            assert_eq!(o, p.owner(v));
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let p = Partitioner::new(1);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(u64::MAX), 0);
    }

    #[test]
    fn vertex_balance_is_roughly_uniform() {
        // "Consistent hashing produces a balanced, uniform partitioning in
        // terms of the number of vertices" (§III-C).
        let p = Partitioner::new(8);
        let mut counts = [0usize; 8];
        for v in 0..80_000u64 {
            counts[p.owner(v)] += 1;
        }
        for &c in &counts {
            assert!((9_000..=11_000).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        Partitioner::new(0);
    }
}
