//! Consistent-hash vertex partitioning (§III-C).
//!
//! "We use a simple form of consistent hashing where we assume a cluster
//! with a static process count P, and assign a vertex with ID V to a process
//! via hash(V) modulo P. This way, as each process uses the same hash
//! function, any process can determine in constant time which process owns a
//! vertex." The paper deliberately accepts the resulting edge imbalance on
//! power-law graphs as a simplicity/baseline trade-off; so do we.

use remo_store::hash::partition_hash;
use remo_store::VertexId;

/// Maps vertices to owning shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    shards: usize,
    /// `shards - 1` when `shards` is a power of two (the common bench
    /// configuration), letting `owner` replace the per-envelope 64-bit
    /// modulo with a mask; `u64::MAX` sentinels the modulo fallback.
    mask: u64,
}

/// Sentinel for "not a power of two — divide".
const NO_MASK: u64 = u64::MAX;

impl Partitioner {
    /// A partitioner over `shards` processes.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mask = if shards.is_power_of_two() {
            shards as u64 - 1
        } else {
            NO_MASK
        };
        Partitioner { shards, mask }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Owning shard of `v` — `hash(V) mod P`, computed as `hash(V) & (P-1)`
    /// when `P` is a power of two (the two are identical there; the unit
    /// test sweeps both paths against each other).
    #[inline(always)]
    pub fn owner(&self, v: VertexId) -> usize {
        let h = partition_hash(v);
        if self.mask != NO_MASK {
            (h & self.mask) as usize
        } else {
            (h % self.shards as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let p = Partitioner::new(7);
        for v in 0..10_000u64 {
            let o = p.owner(v);
            assert!(o < 7);
            assert_eq!(o, p.owner(v));
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let p = Partitioner::new(1);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(u64::MAX), 0);
    }

    #[test]
    fn vertex_balance_is_roughly_uniform() {
        // "Consistent hashing produces a balanced, uniform partitioning in
        // terms of the number of vertices" (§III-C).
        let p = Partitioner::new(8);
        let mut counts = [0usize; 8];
        for v in 0..80_000u64 {
            counts[p.owner(v)] += 1;
        }
        for &c in &counts {
            assert!((9_000..=11_000).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        Partitioner::new(0);
    }

    #[test]
    fn mask_and_modulo_paths_agree() {
        // Every shard count through 64 (power-of-two counts take the mask
        // path, the rest the modulo path); both must equal the raw
        // `hash % shards` the paper specifies.
        for shards in 1..=64usize {
            let p = Partitioner::new(shards);
            for v in (0..2_000u64).chain([u64::MAX, u64::MAX - 7, 1 << 63]) {
                let expect = (partition_hash(v) % shards as u64) as usize;
                assert_eq!(
                    p.owner(v),
                    expect,
                    "owner diverged from hash%P at shards={shards} v={v}"
                );
            }
        }
    }
}
