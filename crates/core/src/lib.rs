#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
//! # remo-core — event-centric engine for incremental graph analytics
//!
//! A from-scratch Rust reproduction of the infrastructure in *Incremental
//! Graph Processing for On-Line Analytics* (Sallinen, Pearce, Ripeanu,
//! IPDPS 2019): a shared-nothing, asynchronous, event-centric engine on
//! which **REMO** algorithms (REcursive updates, MOnotonic convergence) run
//! concurrently with graph construction, keeping a live, queryable result.
//!
//! ## Architecture (paper Figures 1 & 2)
//!
//! - Vertices are partitioned over shard threads by consistent hashing
//!   ([`partition`]); each shard owns its vertex table exclusively and
//!   communicates only via per-sender FIFO batches of visitor messages
//!   ([`shard`]). The data plane is pluggable ([`transport`]): the default
//!   lane mesh moves batches over lock-free SPSC rings with pooled buffer
//!   recycling and event-driven parking; the seed's MPMC channel path
//!   remains selectable for differential testing.
//! - Shard-local vertex storage is pluggable ([`storage`]): the default
//!   dense arena interns vertex ids once per event and direct-indexes
//!   structure-of-arrays slabs thereafter; the seed's record-per-slot
//!   Robin Hood map remains selectable for differential testing.
//! - Topology events (`[src, dst]` pairs) arrive over per-shard in-order
//!   streams; events on different streams are concurrent ([`event`]).
//! - Algorithms are sets of callbacks over events ([`algorithm`]:
//!   `init`/`on_add`/`on_reverse_add`/`on_update`), with the recursive step
//!   expressed through `update_nbrs`/`update_single_nbr`.
//! - Quiescence is detected by a global counter or by Safra's token-ring
//!   algorithm ([`termination`]).
//! - Global state is collected *without pausing ingestion* via epoch-tagged
//!   events and per-vertex state forks ([`snapshot`], [`vertex_state`]) — the
//!   paper's Chandy–Lamport variant (§III-D).
//! - Local-state "When" queries fire user callbacks at most once per vertex
//!   ([`trigger`]).
//! - N algorithms share one engine ([`registry`]): a [`QueryRegistry`]
//!   runs independent per-query state columns over a single shared
//!   adjacency store and topology stream, with live attach/detach —
//!   topology is ingested once regardless of how many queries watch it.
//! - Shards run under supervision ([`supervision`]): a panicking shard is
//!   contained by `catch_unwind` and reported as a structured
//!   [`ShardFailure`]; the engine's `try_*` API returns
//!   `Result<_, EngineError>` under configurable deadlines instead of
//!   panicking or blocking forever, and [`engine::Engine::try_finish`]
//!   harvests surviving shards on degraded runs.
//! - The running engine is itself observable ([`telemetry`]): shards
//!   publish their counters through lock-free seqlock snapshot cells so
//!   `Engine::metrics_now` returns coherent mid-run metrics, latency
//!   histograms track service/flush/quiescence/fixpoint times, a bounded
//!   per-shard flight recorder attaches a trace of a dying shard's last
//!   events to its [`ShardFailure`], and a cloneable [`TelemetryHub`]
//!   renders Prometheus text format and JSON for live dashboards.
//! - Sampled causal tracing ([`trace`]): a [`TraceConfig`] samples
//!   external ingests and stamps the resulting envelopes with a compact
//!   trace tag that survives coalescing, dominance, registry fan-out, and
//!   WAL replay; `Engine::traces_now` reconstructs per-update propagation
//!   trees (hops to fixpoint, amplification, cross-shard/NUMA hops), and
//!   per-shard phase accounting attributes every busy nanosecond to
//!   drain/process/flush/spin/park/checkpoint/replay.
//!
//! ## Quick example
//!
//! ```
//! use remo_core::{AlgoCtx, Algorithm, Engine, EngineConfig};
//! use remo_core::VertexId;
//!
//! /// Track each vertex's degree (the paper's §II-A example).
//! struct Degree;
//! impl Algorithm for Degree {
//!     type State = u64;
//!     fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: u64) {
//!         ctx.apply(|d| { *d += 1; true });
//!     }
//!     fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: u64) {
//!         ctx.apply(|d| { *d += 1; true });
//!     }
//! }
//!
//! let engine = Engine::new(Degree, EngineConfig::undirected(2));
//! engine.try_ingest_pairs(&[(0, 1), (1, 2)]).unwrap();
//! let result = engine.try_finish().unwrap();
//! assert!(!result.is_degraded());
//! assert_eq!(result.states.get(1), Some(&2)); // vertex 1 has degree 2
//! ```

pub mod adaptive;
pub mod algorithm;
pub mod compose;
pub mod engine;
pub mod event;
pub mod metrics;
pub mod partition;
pub mod placement;
pub mod registry;
pub mod sequential;
pub mod shard;
pub mod snapshot;
pub mod storage;
pub mod supervision;
pub mod telemetry;
pub mod termination;
pub mod trace;
pub mod transport;
pub mod trigger;
pub mod vertex_state;
pub mod wal;

pub use adaptive::AdaptiveConfig;
pub use algorithm::{AlgoCtx, Algorithm, EventCtx, Outgoing};
pub use compose::Pair;
pub use engine::{Engine, EngineBuilder, RunResult};
pub use event::{
    events_from_pairs, events_from_weighted, ControlAck, ControlKind, ControlOp, Envelope, Epoch,
    EventKind, TopoEvent, TopoOp,
};
pub use metrics::{LatencyHistogram, RunMetrics, ShardMetrics, HIST_BUCKETS};
pub use partition::Partitioner;
pub use placement::{HostTopology, PlacementError, PlacementPlan, PlacementPolicy, ShardSeat};
pub use registry::{Cell, QueryId, QueryRegistry, QueryStats, RegPayload, MAX_QUERIES};
pub use sequential::SequentialEngine;
pub use shard::{EngineConfig, LatticeConfig};
pub use snapshot::Snapshot;
pub use storage::StorageLayout;
pub use supervision::{EngineError, FailureBoard, FaultPlan, ShardFailure, CHAOS_PANIC_MARKER};
pub use telemetry::{
    EngineGauges, FlightEntry, FlightTag, QueryStatsRow, QueryStatsSource, TelemetryConfig,
    TelemetryHub, PUBLISH_EVERY,
};
pub use termination::{Backoff, Deadline, DetectionTimer, TerminationMode};
pub use trace::{
    HopStats, PropagationTrace, SpanKind, TraceConfig, TraceSpan, TraceSummary, TraceTag,
};
pub use transport::TransportMode;
pub use trigger::{TriggerFire, MAX_TRIGGERS};
pub use vertex_state::{VertexMeta, VertexState};
pub use wal::DurabilityConfig;

/// Re-exports of the storage layer's core identifiers.
pub use remo_store::{EdgeMeta, VertexId, Weight};
