//! Adaptive data-path controller: per-shard feedback over the telemetry
//! counters.
//!
//! PR 2–4 added three static fast paths — sender-side coalescing, the
//! envelope batch size, and the lane transport — and the ablation
//! artifacts show they do not compose uniformly: coalescing pays for
//! itself on SSSP's redundant-correction storms but costs 15–19% wall on
//! algorithms whose update streams carry little redundancy, and one
//! static `envelope_batch` cannot fit both BFS's short waves and SSSP's
//! deep cascades. Instead of asking the caller to tune
//! [`LatticeConfig`](crate::LatticeConfig)/`envelope_batch` per
//! algorithm, the adaptive controller closes the loop per shard: at
//! decision boundaries (epoch edges and idle points — both moments when
//! the shard's queues are drained or draining) it reads the same monotone
//! counters the telemetry layer publishes, computes the last window's
//! coalesce hit-rate, dominance/suppression rate, and average shipped
//! batch fill, and flips the knobs for the *next* window.
//!
//! Soundness: every knob the controller touches is identity-preserving.
//! Coalescing folds envelopes through [`Algorithm::join`] — a monotone
//! lattice join whose presence or absence never changes the fixpoint,
//! only the event count (DESIGN.md §10); the batch size only moves the
//! flush boundary, and per-pair FIFO holds at any batch size. Toggling
//! coalescing mid-run is safe in both directions: envelopes already
//! staged in the pending map drain normally after a disable, and an
//! enable simply starts indexing future sends. The property suites
//! assert byte-identical fixpoints between adaptive and all-static runs.
//!
//! Every decision is logged through the `adaptive_*` shard counters, so
//! `ablate_transport`'s adaptive cells and the live dashboard can show
//! what the controller actually did — a tuner you cannot observe is a
//! tuner you cannot trust.
//!
//! [`Algorithm::join`]: crate::Algorithm::join

use crate::metrics::ShardMetrics;

/// Tuning envelope for the adaptive controller. `enabled: false` (the
/// default) spawns no controller — the data path is byte-for-byte the
/// static configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Master switch (see [`EngineConfig::with_adaptive`]).
    ///
    /// [`EngineConfig::with_adaptive`]: crate::EngineConfig::with_adaptive
    pub enabled: bool,
    /// Minimum `Update` events a window must span before a decision is
    /// made; smaller windows are carried forward. Keeps decisions out of
    /// the noise on sparse streams.
    pub min_events: u64,
    /// Enable coalescing when the observed redundancy rate — the fraction
    /// of update traffic that was provably absorbable (dominated +
    /// suppressed + coalesced over processed + coalesced) — reaches this.
    pub coalesce_on_rate: f64,
    /// Disable coalescing when its measured hit-rate (absorbed envelopes
    /// over absorbed + sent) falls below this. Kept well under
    /// `coalesce_on_rate` so the pair forms a hysteresis band rather than
    /// an oscillator.
    pub coalesce_off_rate: f64,
    /// With coalescing off and no redundancy signal visible (the passive
    /// counters need an active layer to move), re-try coalescing for one
    /// trial window every this-many decision windows. Bounds the cost of
    /// discovering a workload shift at ~1/probe_every of the run.
    pub probe_every: u32,
    /// Effective envelope-batch bounds: the controller halves/doubles
    /// within `[min_batch, max_batch]`, starting from the static
    /// `envelope_batch`.
    pub min_batch: usize,
    /// See [`AdaptiveConfig::min_batch`].
    pub max_batch: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            enabled: false,
            min_events: 4096,
            coalesce_on_rate: 0.10,
            coalesce_off_rate: 0.02,
            probe_every: 8,
            min_batch: 32,
            max_batch: 2048,
        }
    }
}

impl AdaptiveConfig {
    /// The default tuning with the controller switched on.
    pub fn on() -> Self {
        AdaptiveConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// What one decision window asks the shard to change (`None` = keep).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Decisions {
    /// Flip sender-side coalescing to this.
    pub coalesce: Option<bool>,
    /// Set the effective envelope batch to this.
    pub batch: Option<usize>,
}

/// Per-shard controller state: the counter snapshot closing the previous
/// window, plus the probe/cooloff cadence. Owned by the shard thread —
/// no synchronization; it reads the shard's own monotone counters.
pub(crate) struct AdaptiveController {
    cfg: AdaptiveConfig,
    /// Counters at the previous decision boundary; deltas against the
    /// live counters are the window's rates.
    last: ShardMetrics,
    /// Windows since the last coalesce trial (off-state only).
    windows_since_probe: u32,
    /// Windows to wait before re-enabling coalescing after a disable —
    /// the passive redundancy signal can stay high right after a disable,
    /// and re-enabling on it immediately would oscillate every window.
    cooloff: u32,
}

impl AdaptiveController {
    pub(crate) fn new(cfg: AdaptiveConfig) -> Self {
        AdaptiveController {
            cfg,
            last: ShardMetrics::default(),
            windows_since_probe: 0,
            cooloff: 0,
        }
    }

    /// Evaluates one window. `metrics` are the shard's live counters,
    /// `coalesce_now`/`eff_batch` the knobs currently in force. Returns
    /// `None` when the window is still too small to judge (it keeps
    /// accumulating); `Some` marks a decision boundary even when nothing
    /// changes.
    pub(crate) fn decide(
        &mut self,
        metrics: &ShardMetrics,
        coalesce_now: bool,
        eff_batch: usize,
    ) -> Option<Decisions> {
        let events = metrics.update_events - self.last.update_events;
        let coalesced = metrics.envelopes_coalesced - self.last.envelopes_coalesced;
        // Window size in update traffic: processed plus absorbed (an
        // absorbed envelope was real work the window handled too).
        if events + coalesced < self.cfg.min_events {
            return None;
        }
        let sent = metrics.envelopes_sent - self.last.envelopes_sent;
        let dominated = metrics.updates_dominated - self.last.updates_dominated;
        let suppressed = metrics.updates_suppressed - self.last.updates_suppressed;
        let shipped = (metrics.lane_batches - self.last.lane_batches)
            + (metrics.lane_full_fallbacks - self.last.lane_full_fallbacks);
        self.last = metrics.clone();

        let mut d = Decisions::default();

        // --- coalescing -------------------------------------------------
        let hit = coalesced as f64 / (coalesced + sent).max(1) as f64;
        let redundancy =
            (dominated + suppressed + coalesced) as f64 / (events + coalesced).max(1) as f64;
        if coalesce_now {
            if hit < self.cfg.coalesce_off_rate {
                d.coalesce = Some(false);
                self.cooloff = self.cfg.probe_every;
                self.windows_since_probe = 0;
            }
        } else if self.cooloff > 0 {
            self.cooloff -= 1;
        } else if redundancy >= self.cfg.coalesce_on_rate {
            // The passive layers (dominance/suppression) prove the stream
            // is redundant enough for staging to pay.
            d.coalesce = Some(true);
            self.windows_since_probe = 0;
        } else {
            // No visible signal: the counters that would show redundancy
            // need coalescing on to move. Trial-enable on a slow cadence.
            self.windows_since_probe += 1;
            if self.windows_since_probe >= self.cfg.probe_every {
                self.windows_since_probe = 0;
                d.coalesce = Some(true);
            }
        }

        // --- batch size -------------------------------------------------
        if shipped > 0 {
            let fill = sent as f64 / shipped as f64;
            if fill >= 0.75 * eff_batch as f64 && eff_batch * 2 <= self.cfg.max_batch {
                // Batches consistently hit the threshold flush: the shard
                // produces faster than it ships — double the batch so each
                // flush (and each peer wake) amortizes more envelopes.
                d.batch = Some(eff_batch * 2);
            } else if fill < eff_batch as f64 / 8.0 && eff_batch / 2 >= self.cfg.min_batch {
                // Batches ship mostly empty (idle-flush dominated): halve
                // the threshold so short waves flush in-loop instead of
                // always waiting for the idle boundary.
                d.batch = Some(eff_batch / 2);
            }
        }
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            enabled: true,
            min_events: 100,
            ..AdaptiveConfig::on()
        }
    }

    fn window(update_events: u64, sent: u64, coalesced: u64, dominated: u64) -> ShardMetrics {
        ShardMetrics {
            update_events,
            envelopes_sent: sent,
            envelopes_coalesced: coalesced,
            updates_dominated: dominated,
            ..Default::default()
        }
    }

    #[test]
    fn small_windows_accumulate() {
        let mut c = AdaptiveController::new(cfg());
        assert_eq!(c.decide(&window(50, 50, 0, 0), false, 256), None);
        // The 50 events above were not consumed: the next call sees the
        // cumulative window and crosses the threshold.
        let d = c.decide(&window(120, 120, 0, 0), false, 256).unwrap();
        assert_eq!(d, Decisions::default());
    }

    #[test]
    fn redundancy_enables_coalescing() {
        let mut c = AdaptiveController::new(cfg());
        // 30% of the window's updates were dominance-retired: redundancy
        // well past the 10% enable threshold.
        let d = c.decide(&window(1000, 1000, 0, 300), false, 256).unwrap();
        assert_eq!(d.coalesce, Some(true));
    }

    #[test]
    fn low_hit_rate_disables_and_cooloff_blocks_reenable() {
        let mut c = AdaptiveController::new(cfg());
        // Coalescing on but absorbing ~0.1% of traffic: below the 2% off
        // threshold.
        let d = c.decide(&window(1000, 1000, 1, 300), true, 256).unwrap();
        assert_eq!(d.coalesce, Some(false));
        // The dominance signal is still high, but the cooloff must hold
        // the disable for probe_every windows.
        let d = c
            .decide(&window(2000, 2000, 1, 600), false, 256)
            .unwrap();
        assert_eq!(d.coalesce, None, "cooloff suppresses re-enable");
    }

    #[test]
    fn hysteresis_band_keeps_coalescing_on() {
        let mut c = AdaptiveController::new(cfg());
        // 5% hit-rate: under the 10% enable bar but over the 2% disable
        // bar — an on-state stays on.
        let d = c.decide(&window(950, 950, 50, 0), true, 256).unwrap();
        assert_eq!(d.coalesce, None);
    }

    #[test]
    fn probe_retries_coalescing_without_signal() {
        let mut c = AdaptiveController::new(cfg());
        let mut m = ShardMetrics::default();
        let mut enabled_at = None;
        for i in 0..cfg().probe_every + 1 {
            m.update_events += 1000;
            m.envelopes_sent += 1000;
            let d = c.decide(&m, false, 256).unwrap();
            if d.coalesce == Some(true) {
                enabled_at = Some(i);
                break;
            }
        }
        assert_eq!(
            enabled_at,
            Some(cfg().probe_every - 1),
            "trial window fires on the probe cadence"
        );
    }

    #[test]
    fn batch_grows_when_full_and_shrinks_when_empty() {
        let mut c = AdaptiveController::new(cfg());
        // 1000 envelopes over 4 shipped batches at eff_batch 256: fill 250
        // ≥ 0.75 × 256 — grow.
        let m = ShardMetrics {
            lane_batches: 4,
            ..window(1000, 1000, 0, 0)
        };
        let d = c.decide(&m, false, 256).unwrap();
        assert_eq!(d.batch, Some(512));

        // Next window: 1000 more envelopes over 200 more batches — fill 5,
        // far under 512/8 — shrink.
        let m2 = ShardMetrics {
            lane_batches: 204,
            ..window(2000, 2000, 0, 0)
        };
        let d = c.decide(&m2, false, 512).unwrap();
        assert_eq!(d.batch, Some(256));
    }

    #[test]
    fn batch_respects_bounds() {
        let mut c = AdaptiveController::new(cfg());
        // Full batches at the max: no grow past the ceiling.
        let m = ShardMetrics {
            lane_batches: 1,
            ..window(2048, 2048, 0, 0)
        };
        let d = c.decide(&m, false, 2048).unwrap();
        assert_eq!(d.batch, None);
        // Empty batches at the floor: no shrink below the minimum.
        let m2 = ShardMetrics {
            lane_batches: 1001,
            ..window(4096, 4096, 0, 0)
        };
        let d = c.decide(&m2, false, 32).unwrap();
        assert_eq!(d.batch, None);
    }
}
