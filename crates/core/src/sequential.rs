//! A sequential reference engine: the abstract machine of prior dynamic
//! graph work (§I footnote 1, §II-A reason (i)).
//!
//! "Previous dynamic solutions could support serial graph changes ... these
//! solutions are sequential – each event is processed once the previous
//! event has finished." This engine implements exactly that model: one
//! thread, one queue; every topology event is ingested atomically and its
//! entire update cascade runs to completion before the next event is
//! admitted.
//!
//! It serves three purposes:
//!
//! 1. **Reference semantics**: REMO algorithms must reach the same fixpoint
//!    here as on the concurrent engine (asserted by tests) — the paper's
//!    claim that concurrency does not change the answer.
//! 2. **Baseline**: the `ablate_engine` bench compares the serialized model
//!    against the concurrent one — the architectural motivation of §II-A.
//! 3. **Debugging**: deterministic single-threaded execution of the exact
//!    same `Algorithm` implementations.
//!
//! It reuses the [`Algorithm`]/[`EventCtx`] programming model unchanged;
//! only the execution strategy differs (no shards, no channels, no
//! epochs — snapshots are trivial here because any point between two
//! topology events is globally consistent).

use std::collections::VecDeque;

use remo_store::{EdgeMeta, VertexId, VertexTable};

use crate::algorithm::{AlgoCtx, Algorithm, EventCtx};
use crate::event::{EventKind, TopoEvent, TopoOp};
use crate::metrics::ShardMetrics;
use crate::vertex_state::VertexState;

/// A single-threaded, event-at-a-time dynamic graph engine.
pub struct SequentialEngine<A: Algorithm> {
    algo: A,
    undirected: bool,
    table: VertexTable<VertexState<A::State>>,
    queue: VecDeque<(VertexId, VertexId, A::State, u64, EventKind)>,
    out: Vec<crate::algorithm::Outgoing<A::State>>,
    metrics: ShardMetrics,
    edges: u64,
}

impl<A: Algorithm> SequentialEngine<A> {
    /// Creates an engine processing undirected edges.
    pub fn undirected(algo: A) -> Self {
        Self::new(algo, true)
    }

    /// Creates an engine processing directed edges.
    pub fn directed(algo: A) -> Self {
        Self::new(algo, false)
    }

    fn new(algo: A, undirected: bool) -> Self {
        SequentialEngine {
            algo,
            undirected,
            table: VertexTable::new(),
            queue: VecDeque::new(),
            out: Vec::new(),
            metrics: ShardMetrics::default(),
            edges: 0,
        }
    }

    /// Sends an `Init` event to `v` and runs its cascade to completion.
    pub fn init_vertex(&mut self, v: VertexId) {
        self.enqueue(v, v, A::State::default(), 1, EventKind::Init);
        self.drain();
    }

    /// Ingests one topology event **atomically**: the event and its entire
    /// algorithmic cascade complete before this returns (the sequential
    /// model the paper contrasts against).
    pub fn apply(&mut self, ev: TopoEvent) {
        self.metrics.topo_ingested += 1;
        let kind = match ev.op {
            TopoOp::Add => EventKind::Add,
            TopoOp::Remove => EventKind::Remove,
        };
        self.enqueue(ev.src, ev.dst, A::State::default(), ev.weight, kind);
        self.drain();
    }

    /// Ingests a whole stream, one atomic event at a time.
    pub fn apply_pairs(&mut self, pairs: &[(VertexId, VertexId)]) {
        for &(s, d) in pairs {
            self.apply(TopoEvent::new(s, d));
        }
    }

    /// Weighted variant of [`Self::apply_pairs`].
    pub fn apply_weighted(&mut self, triples: &[(VertexId, VertexId, u64)]) {
        for &(s, d, w) in triples {
            self.apply(TopoEvent::weighted(s, d, w));
        }
    }

    /// Live state of `v` (always globally consistent between `apply`s).
    pub fn state(&self, v: VertexId) -> Option<&A::State> {
        self.table.get(v).map(|r| &r.state.live)
    }

    /// All states, sorted by vertex id.
    pub fn states(&self) -> Vec<(VertexId, A::State)> {
        let mut v: Vec<(VertexId, A::State)> = self
            .table
            .iter()
            .map(|(id, r)| (id, r.state.live.clone()))
            .collect();
        v.sort_unstable_by_key(|&(id, _)| id);
        v
    }

    /// Number of distinct directed edges stored.
    pub fn num_edges(&self) -> u64 {
        self.edges
    }

    /// Events processed so far, by kind.
    pub fn metrics(&self) -> &ShardMetrics {
        &self.metrics
    }

    fn enqueue(
        &mut self,
        target: VertexId,
        visitor: VertexId,
        value: A::State,
        weight: u64,
        kind: EventKind,
    ) {
        self.metrics.envelopes_sent += 1;
        self.queue.push_back((target, visitor, value, weight, kind));
    }

    fn drain(&mut self) {
        while let Some((target, visitor, value, weight, kind)) = self.queue.pop_front() {
            self.process(target, visitor, value, weight, kind);
        }
    }

    fn process(
        &mut self,
        target: VertexId,
        visitor: VertexId,
        value: A::State,
        weight: u64,
        kind: EventKind,
    ) {
        let (rec, _) = self.table.ensure(target);
        match kind {
            EventKind::Add | EventKind::ReverseAdd => {
                let cached = if kind == EventKind::ReverseAdd {
                    A::encode_cache(&value)
                } else {
                    0
                };
                if rec
                    .adj
                    .insert_weight_min(visitor, EdgeMeta { weight, cached })
                {
                    self.edges += 1;
                    self.metrics.edges_inserted += 1;
                } else {
                    self.metrics.duplicate_edges += 1;
                }
            }
            EventKind::Update => {
                rec.adj.set_cached(visitor, A::encode_cache(&value));
            }
            EventKind::Remove | EventKind::ReverseRemove => {
                if rec.adj.remove(visitor).is_some() {
                    self.edges -= 1;
                    self.metrics.edges_removed += 1;
                }
            }
            EventKind::Init => {}
        }

        let mut reverse_value = None;
        {
            let mut ctx = EventCtx::new(
                target,
                crate::storage::VertexParts::from_record(rec, 0),
                &mut self.out,
                0,
            );
            match kind {
                EventKind::Init => {
                    self.metrics.init_events += 1;
                    self.algo.init(&mut ctx);
                }
                EventKind::Add => {
                    self.metrics.add_events += 1;
                    self.algo.on_add(&mut ctx, visitor, &value, weight);
                }
                EventKind::ReverseAdd => {
                    self.metrics.reverse_add_events += 1;
                    self.algo.on_reverse_add(&mut ctx, visitor, &value, weight);
                }
                EventKind::Update => {
                    self.metrics.update_events += 1;
                    self.algo.on_update(&mut ctx, visitor, &value, weight);
                }
                EventKind::Remove => {
                    self.metrics.remove_events += 1;
                    self.algo.on_remove(&mut ctx, visitor, &value, weight);
                }
                EventKind::ReverseRemove => {
                    self.metrics.remove_events += 1;
                    self.algo
                        .on_reverse_remove(&mut ctx, visitor, &value, weight);
                }
            }
            if self.undirected && matches!(kind, EventKind::Add | EventKind::Remove) {
                reverse_value = Some(ctx.state().clone());
            }
        }

        if let Some(rv) = reverse_value {
            let rkind = if kind == EventKind::Add {
                EventKind::ReverseAdd
            } else {
                EventKind::ReverseRemove
            };
            self.enqueue(visitor, target, rv, weight, rkind);
        }
        let mut outgoing = std::mem::take(&mut self.out);
        for o in outgoing.drain(..) {
            self.enqueue(o.target, target, o.value, o.weight, EventKind::Update);
        }
        self.out = outgoing;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct MinFlood;

    impl Algorithm for MinFlood {
        type State = u64;
        fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: u64) {
            let me = ctx.vertex() + 1;
            ctx.apply(move |s| {
                if *s == 0 || *s > me {
                    *s = me;
                    true
                } else {
                    false
                }
            });
        }
        fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, v: VertexId, val: &u64, w: u64) {
            self.on_add(ctx, v, val, w);
            self.on_update(ctx, v, val, w);
        }
        fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, _w: u64) {
            let mine = *ctx.state();
            let theirs = *value;
            if theirs != 0 && (mine == 0 || theirs < mine) {
                if ctx.apply(move |s| {
                    if *s == 0 || *s > theirs {
                        *s = theirs;
                        true
                    } else {
                        false
                    }
                }) {
                    ctx.update_nbrs(&theirs);
                }
            } else if mine != 0 && (theirs == 0 || mine < theirs) {
                ctx.update_single_nbr(visitor, &mine);
            }
        }
    }

    #[test]
    fn sequential_min_flood_converges() {
        let mut eng = SequentialEngine::undirected(MinFlood);
        eng.apply_pairs(&[(5, 6), (6, 7), (7, 5), (1, 7)]);
        for (v, s) in eng.states() {
            assert_eq!(s, 2, "vertex {v}"); // min id 1 -> label 2
        }
    }

    #[test]
    fn each_apply_is_atomic() {
        let mut eng = SequentialEngine::undirected(MinFlood);
        eng.apply(TopoEvent::new(5, 6));
        // Fully converged after each apply: both endpoints settled.
        assert_eq!(eng.state(5), Some(&6));
        assert_eq!(eng.state(6), Some(&6));
        eng.apply(TopoEvent::new(1, 6));
        assert_eq!(eng.state(5), Some(&2));
        assert_eq!(eng.state(6), Some(&2));
    }

    #[test]
    fn directed_mode_skips_reverse() {
        let mut eng = SequentialEngine::directed(MinFlood);
        eng.apply(TopoEvent::new(3, 9));
        assert_eq!(eng.num_edges(), 1);
        assert_eq!(eng.state(9), None, "no reverse-add in directed mode");
    }

    #[test]
    fn removals_update_topology() {
        let mut eng = SequentialEngine::undirected(MinFlood);
        eng.apply(TopoEvent::new(1, 2));
        assert_eq!(eng.num_edges(), 2);
        eng.apply(TopoEvent::removal(1, 2));
        assert_eq!(eng.num_edges(), 0);
        assert_eq!(eng.metrics().edges_removed, 2);
    }
}
