//! The event-centric programming model (§III-A, Algorithm 3).
//!
//! An [`Algorithm`] is a set of user-defined callbacks triggered by events:
//! `init` / `on_add` / `on_reverse_add` / `on_update`, mirroring the paper's
//! virtual methods. Each callback receives a context implementing
//! [`AlgoCtx`] giving access to the visited vertex's state and adjacency,
//! and to the two propagation primitives `update_nbrs` /
//! `update_single_nbr`. The programmer "does not have to consider how the
//! event propagates: the complexities of the graph topology structure are
//! hidden by the supporting framework."
//!
//! The context is a trait (rather than the concrete [`EventCtx`]) so that
//! algorithms compose: [`crate::compose::Pair`] runs two algorithms
//! simultaneously over one topology by projecting the context — the paper's
//! "multiple algorithms can be executed simultaneously on the same
//! underlying dynamic data structure" vision (§I), which its prototype left
//! as future work (§III-F).
//!
//! State changes go through [`AlgoCtx::apply`], which transparently handles
//! the snapshot protocol (applying old-epoch events to the forked previous
//! state as well, §III-D) and records changes for trigger evaluation.

use crate::event::{ControlKind, ControlOp, Epoch};
use crate::storage::VertexParts;
use remo_store::{EdgeMeta, VertexId, Weight};

/// A REMO algorithm: user callbacks over the engine's events.
///
/// Implementations must preserve the two REMO properties (§II-B):
/// *recursive* event propagation (callbacks re-use the same update event as
/// the recursive step) and *monotonic* convergence (every state change moves
/// in one direction toward a bound). The engine does not — cannot — check
/// monotonicity; the algorithm crate's property tests do.
pub trait Algorithm: Send + Sync + 'static {
    /// Vertex-local state (`this.value`). `Default` must be the lattice
    /// bottom: the state of a vertex that has seen no events.
    type State: Clone + Default + Send + PartialEq + std::fmt::Debug + 'static;

    /// How many [`Pair`](crate::compose::Pair) levels wrap this algorithm
    /// (0 for a leaf). `Pair` uses it to warn once when tuple nesting gets
    /// deep enough that the [`registry`](crate::registry) is the better
    /// tool.
    #[doc(hidden)]
    const COMPOSE_DEPTH: usize = 0;

    /// Called when an `Init` event reaches a vertex (e.g. the BFS source).
    fn init(&self, _ctx: &mut impl AlgoCtx<Self::State>) {}

    /// Called at the first endpoint of a new edge (after the engine inserted
    /// the edge into the local topology). `visitor` is the other endpoint;
    /// no meaningful value is available yet.
    fn on_add(
        &self,
        _ctx: &mut impl AlgoCtx<Self::State>,
        _visitor: VertexId,
        _value: &Self::State,
        _weight: Weight,
    ) {
    }

    /// Called at the second endpoint of an undirected edge; `value` is the
    /// first endpoint's state at `Add` time.
    fn on_reverse_add(
        &self,
        _ctx: &mut impl AlgoCtx<Self::State>,
        _visitor: VertexId,
        _value: &Self::State,
        _weight: Weight,
    ) {
    }

    /// Called for algorithm-generated update events; `value` is the
    /// visitor's state at send time, `weight` the edge the event travelled.
    fn on_update(
        &self,
        _ctx: &mut impl AlgoCtx<Self::State>,
        _visitor: VertexId,
        _value: &Self::State,
        _weight: Weight,
    ) {
    }

    /// Called at the first endpoint of a removed edge, after the engine
    /// dropped the edge from the local topology (§VI-B extension). The core
    /// REMO algorithms ignore removals; generational variants react here.
    fn on_remove(
        &self,
        _ctx: &mut impl AlgoCtx<Self::State>,
        _visitor: VertexId,
        _value: &Self::State,
        _weight: Weight,
    ) {
    }

    /// Called at the second endpoint of an undirected edge removal.
    fn on_reverse_remove(
        &self,
        _ctx: &mut impl AlgoCtx<Self::State>,
        _visitor: VertexId,
        _value: &Self::State,
        _weight: Weight,
    ) {
    }

    /// Compact encoding of a state for the per-edge neighbour cache
    /// (`this.nbrs.set(vis_ID, vis_val)` in Algorithm 3). The engine stores
    /// this on the incoming edge whenever a neighbour's value arrives;
    /// algorithms may read it back to suppress redundant sends. Return 0 if
    /// the cache is unused.
    fn encode_cache(_state: &Self::State) -> u64
    where
        Self: Sized,
    {
        0
    }

    /// Monotone lattice merge of two pending `Update` values bound for the
    /// same target over the same edge: fold `from` into `into` so that one
    /// envelope carries the information of both, and return `true`. The
    /// default returns `false` ("no merge performed"), which keeps the
    /// engine's exact FIFO behaviour for this algorithm.
    ///
    /// Soundness contract: processing the merged value must drive the
    /// target's state at least as far toward its bound as processing both
    /// originals would — which holds exactly when `join` is the lattice
    /// join of the REMO state (§II-B) and the `on_update` callback is
    /// monotone in `value` (all the core algorithms are).
    fn join(_into: &mut Self::State, _from: &Self::State) -> bool
    where
        Self: Sized,
    {
        false
    }

    /// Priority of a pending `Update` value: lower = closer to the bound,
    /// i.e. more likely to dominate downstream work when processed first.
    /// `None` (the default) keeps FIFO draining for this algorithm. Safe to
    /// reorder on only because REMO convergence is order-independent for
    /// `Update` events; the engine never reorders `Add`/`ReverseAdd`.
    fn priority(_state: &Self::State) -> Option<u64>
    where
        Self: Sized,
    {
        None
    }

    /// Serializes one vertex state for the durability layer (WAL envelope
    /// records and checkpoint images; see [`crate::wal`]). Must be the
    /// exact inverse of [`Algorithm::decode_state`] — recovery asserts
    /// byte-identical fixpoints on it. The default panics: implement both
    /// codec hooks before enabling
    /// [`EngineConfig::with_durability`](crate::EngineConfig::with_durability).
    /// Durability-off engines never call either hook.
    fn encode_state(_state: &Self::State, _out: &mut Vec<u8>)
    where
        Self: Sized,
    {
        panic!("Algorithm::encode_state is required when durability is enabled");
    }

    /// Deserializes one vertex state previously written by
    /// [`Algorithm::encode_state`]. May panic on corrupt input (the WAL
    /// and checkpoint layers CRC-validate frames before decoding, so this
    /// only sees bytes the same algorithm produced).
    fn decode_state(_bytes: &[u8]) -> Self::State
    where
        Self: Sized,
    {
        panic!("Algorithm::decode_state is required when durability is enabled");
    }

    /// Control-plane claim: a [`ControlOp`] broadcast (see
    /// [`crate::registry`]) reached `shard`. Return the subset of
    /// `op.mask` this algorithm wants swept on that shard (0 = nothing,
    /// the default — plain algorithms ignore the control plane). When the
    /// returned mask is non-zero the shard logs the claim durably, runs
    /// one full-store sweep calling [`Algorithm::on_sweep`] per vertex,
    /// and then calls [`Algorithm::on_control_commit`].
    fn on_control(&self, _shard: usize, _op: &ControlOp) -> u64 {
        0
    }

    /// One vertex visit of a claimed control sweep. `mask` is the claimed
    /// slot mask returned by [`Algorithm::on_control`]. Updates queued
    /// through `ctx` are routed as ordinary envelopes after the visit.
    fn on_sweep(&self, _ctx: &mut impl AlgoCtx<Self::State>, _kind: ControlKind, _mask: u64) {}

    /// Called once per shard after a claimed sweep finished and its
    /// outgoing envelopes were routed — the point to publish per-shard
    /// progress bits (e.g. the registry's primed/flooded masks).
    fn on_control_commit(&self, _shard: usize, _kind: ControlKind, _claimed: u64) {}
}

/// Little-endian `u64` state codec helpers for the common `State = u64`
/// case — most REMO lattice states (levels, distances, component labels)
/// encode this way.
pub mod codec {
    /// Appends `v` little-endian.
    pub fn put_u64(v: u64, out: &mut Vec<u8>) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u64` from the front of `bytes`. Panics on
    /// short input (corrupt durable data).
    pub fn get_u64(bytes: &[u8]) -> u64 {
        let mut w = [0u8; 8];
        w.copy_from_slice(&bytes[..8]);
        u64::from_le_bytes(w)
    }

    /// Appends `v` little-endian.
    pub fn put_u32(v: u32, out: &mut Vec<u8>) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u32` from the front of `bytes`.
    pub fn get_u32(bytes: &[u8]) -> u32 {
        let mut w = [0u8; 4];
        w.copy_from_slice(&bytes[..4]);
        u32::from_le_bytes(w)
    }
}

/// Callback context: the visited vertex's state, adjacency, and propagation
/// primitives. Implemented by the engine's [`EventCtx`] and by the
/// projections of [`crate::compose::Pair`].
pub trait AlgoCtx<S: Clone> {
    /// The vertex being visited.
    fn vertex(&self) -> VertexId;

    /// Snapshot epoch of the event being processed.
    fn epoch(&self) -> Epoch;

    /// Shard executing this callback (0 when the context has no shard,
    /// e.g. the sequential reference engine). Composition layers forward
    /// it; the registry keys per-shard progress masks on it.
    fn shard_hint(&self) -> usize {
        0
    }

    /// Current (live) state of the vertex.
    fn state(&self) -> &S;

    /// Applies a monotone state transition. The closure must return whether
    /// it changed the state; it may be invoked twice (live + snapshot
    /// fork), so it must be a pure function of its argument — which is
    /// exactly what a REMO monotone join is.
    fn apply(&mut self, f: impl Fn(&mut S) -> bool) -> bool
    where
        Self: Sized;

    /// Out-degree of the vertex.
    fn degree(&self) -> usize;

    /// Weight of the edge to `nbr`, if present.
    fn edge_weight(&self, nbr: VertexId) -> Option<Weight>;

    /// Cached last-known value of `nbr` (as encoded by
    /// [`Algorithm::encode_cache`]), if the edge exists.
    fn nbr_cached(&self, nbr: VertexId) -> Option<u64>;

    /// Invokes `f` for every `(neighbour, edge metadata)` pair.
    fn for_each_nbr(&self, f: &mut dyn FnMut(VertexId, EdgeMeta));

    /// Sends an update event carrying `value` to every neighbour, each over
    /// its own edge weight (Algorithm 3's `update_nbrs`).
    fn update_nbrs(&mut self, value: &S);

    /// Sends an update event to the neighbours for which `keep` returns
    /// true — the cache-suppression variant (see
    /// [`Algorithm::encode_cache`]).
    fn update_nbrs_filtered(&mut self, value: &S, keep: impl Fn(VertexId, &EdgeMeta) -> bool)
    where
        Self: Sized;

    /// Sends an update event carrying `value` to a single vertex, using the
    /// stored edge weight when the edge exists (Algorithm 3's
    /// `update_single_nbr`). Falls back to weight 1 for edges this vertex
    /// does not hold (e.g. notify-back in a directed graph).
    fn update_single_nbr(&mut self, nbr: VertexId, value: &S) {
        let weight = self.edge_weight(nbr).unwrap_or(1);
        self.send_update(nbr, value, weight);
    }

    /// Sends an update event with an explicit weight.
    fn send_update(&mut self, target: VertexId, value: &S, weight: Weight);
}

/// An update event queued by a callback, routed by the shard after the
/// callback returns.
#[derive(Debug, Clone)]
pub struct Outgoing<S> {
    pub target: VertexId,
    pub value: S,
    pub weight: Weight,
}

/// The engine's concrete callback context.
///
/// Holds split borrows of the visited vertex's storage
/// ([`VertexParts`]) rather than a fat record reference, so it works
/// identically over the dense slab layout and the legacy record layout.
pub struct EventCtx<'a, S> {
    vertex: VertexId,
    parts: VertexParts<'a, S>,
    out: &'a mut Vec<Outgoing<S>>,
    epoch: Epoch,
    /// Shard id surfaced through [`AlgoCtx::shard_hint`] (0 until set).
    shard: usize,
    /// Set when `apply` reported a state change (drives trigger checks).
    pub(crate) state_changed: bool,
}

impl<'a, S: Clone> EventCtx<'a, S> {
    /// Builds a context for one callback invocation. The storage layout
    /// resolved the dual-apply question when assembling `parts`:
    /// `parts.prev` is `Some` exactly when the event's epoch predates the
    /// vertex's fork.
    pub(crate) fn new(
        vertex: VertexId,
        parts: VertexParts<'a, S>,
        out: &'a mut Vec<Outgoing<S>>,
        epoch: Epoch,
    ) -> Self {
        EventCtx {
            vertex,
            parts,
            out,
            epoch,
            shard: 0,
            state_changed: false,
        }
    }

    /// Stamps the executing shard id (surfaced via
    /// [`AlgoCtx::shard_hint`]); separate from `new` so existing call
    /// sites without a shard keep the 0 default.
    #[inline]
    pub(crate) fn set_shard(&mut self, shard: usize) {
        self.shard = shard;
    }

    /// Trigger bookkeeping (engine-internal).
    #[inline]
    pub(crate) fn fired_bits(&self) -> u32 {
        self.parts.meta.fired
    }

    #[inline]
    pub(crate) fn mark_fired(&mut self, bit: u32) {
        self.parts.meta.fired |= bit;
    }

    /// Iterates `(neighbour, edge metadata)` pairs (inherent convenience).
    pub fn nbrs(&self) -> impl Iterator<Item = (VertexId, EdgeMeta)> + '_ {
        self.parts.adj.iter()
    }
}

impl<'a, S: Clone> AlgoCtx<S> for EventCtx<'a, S> {
    #[inline]
    fn vertex(&self) -> VertexId {
        self.vertex
    }

    #[inline]
    fn epoch(&self) -> Epoch {
        self.epoch
    }

    #[inline]
    fn shard_hint(&self) -> usize {
        self.shard
    }

    #[inline]
    fn state(&self) -> &S {
        self.parts.live
    }

    fn apply(&mut self, f: impl Fn(&mut S) -> bool) -> bool {
        let changed = f(self.parts.live);
        if let Some(prev) = self.parts.prev.as_deref_mut() {
            f(prev);
        }
        self.state_changed |= changed;
        changed
    }

    #[inline]
    fn degree(&self) -> usize {
        self.parts.adj.degree()
    }

    fn edge_weight(&self, nbr: VertexId) -> Option<Weight> {
        self.parts.adj.get(nbr).map(|m| m.weight)
    }

    fn nbr_cached(&self, nbr: VertexId) -> Option<u64> {
        self.parts.adj.get(nbr).map(|m| m.cached)
    }

    fn for_each_nbr(&self, f: &mut dyn FnMut(VertexId, EdgeMeta)) {
        for (n, m) in self.parts.adj.iter() {
            f(n, m);
        }
    }

    fn update_nbrs(&mut self, value: &S) {
        for (nbr, meta) in self.parts.adj.iter() {
            self.out.push(Outgoing {
                target: nbr,
                value: value.clone(),
                weight: meta.weight,
            });
        }
    }

    fn update_nbrs_filtered(&mut self, value: &S, keep: impl Fn(VertexId, &EdgeMeta) -> bool) {
        for (nbr, meta) in self.parts.adj.iter() {
            if keep(nbr, &meta) {
                self.out.push(Outgoing {
                    target: nbr,
                    value: value.clone(),
                    weight: meta.weight,
                });
            }
        }
    }

    fn send_update(&mut self, target: VertexId, value: &S, weight: Weight) {
        self.out.push(Outgoing {
            target,
            value: value.clone(),
            weight,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_state::VertexState;
    use remo_store::{Adjacency, VertexRecord};

    fn make_rec(state: u64) -> VertexRecord<VertexState<u64>> {
        VertexRecord {
            state: VertexState {
                live: state,
                ..Default::default()
            },
            adj: Adjacency::new(),
        }
    }

    /// Context over a record, mirroring what the legacy layout's `parts`
    /// hands the shard loop.
    fn ctx<'a>(
        rec: &'a mut VertexRecord<VertexState<u64>>,
        out: &'a mut Vec<Outgoing<u64>>,
        epoch: Epoch,
    ) -> EventCtx<'a, u64> {
        EventCtx::new(1, VertexParts::from_record(rec, epoch), out, epoch)
    }

    #[test]
    fn apply_tracks_changes() {
        let mut rec = make_rec(10);
        let mut out = Vec::new();
        let mut ctx = ctx(&mut rec, &mut out, 0);
        assert!(!ctx.apply(|s| {
            if *s > 20 {
                *s = 20;
                true
            } else {
                false
            }
        }));
        assert!(!ctx.state_changed);
        assert!(ctx.apply(|s| {
            if *s > 5 {
                *s = 5;
                true
            } else {
                false
            }
        }));
        assert!(ctx.state_changed);
        assert_eq!(*ctx.state(), 5);
    }

    #[test]
    fn apply_dual_applies_to_fork_for_old_events() {
        let mut rec = make_rec(10);
        rec.state.fork_for(1); // vertex has advanced to epoch 1
        let mut out = Vec::new();
        // Event of epoch 0: predates the fork.
        let mut ctx = ctx(&mut rec, &mut out, 0);
        ctx.apply(|s| {
            if *s > 3 {
                *s = 3;
                true
            } else {
                false
            }
        });
        assert_eq!(rec.state.live, 3);
        assert_eq!(rec.state.prev, Some(3), "old event must reach the fork");
    }

    #[test]
    fn apply_new_epoch_spares_fork() {
        let mut rec = make_rec(10);
        rec.state.fork_for(1);
        let mut out = Vec::new();
        let mut ctx = ctx(&mut rec, &mut out, 1);
        ctx.apply(|s| {
            *s = 2;
            true
        });
        assert_eq!(rec.state.live, 2);
        assert_eq!(
            rec.state.prev,
            Some(10),
            "new event must not touch the fork"
        );
    }

    #[test]
    fn update_nbrs_fans_out_with_edge_weights() {
        let mut rec = make_rec(0);
        rec.adj.insert(2, EdgeMeta::weighted(5));
        rec.adj.insert(3, EdgeMeta::weighted(7));
        let mut out = Vec::new();
        let mut ctx = ctx(&mut rec, &mut out, 0);
        ctx.update_nbrs(&42);
        assert_eq!(out.len(), 2);
        let mut got: Vec<(VertexId, u64, Weight)> =
            out.iter().map(|o| (o.target, o.value, o.weight)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![(2, 42, 5), (3, 42, 7)]);
    }

    #[test]
    fn update_single_nbr_uses_stored_weight() {
        let mut rec = make_rec(0);
        rec.adj.insert(9, EdgeMeta::weighted(3));
        let mut out = Vec::new();
        let mut ctx = ctx(&mut rec, &mut out, 0);
        ctx.update_single_nbr(9, &1);
        ctx.update_single_nbr(100, &1); // no edge: weight defaults to 1
        assert_eq!(out[0].weight, 3);
        assert_eq!(out[1].weight, 1);
    }

    #[test]
    fn filtered_fanout_respects_predicate() {
        let mut rec = make_rec(0);
        for n in 0..10u64 {
            rec.adj.insert(n, EdgeMeta::unweighted());
        }
        let mut out = Vec::new();
        let mut ctx = ctx(&mut rec, &mut out, 0);
        ctx.update_nbrs_filtered(&7, |n, _| n % 2 == 0);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|o| o.target % 2 == 0));
    }

    #[test]
    fn for_each_nbr_visits_all() {
        let mut rec = make_rec(0);
        for n in 0..5u64 {
            rec.adj.insert(n, EdgeMeta::unweighted());
        }
        let mut out = Vec::new();
        let ctx = ctx(&mut rec, &mut out, 0);
        let mut count = 0;
        ctx.for_each_nbr(&mut |_, _| count += 1);
        assert_eq!(count, 5);
    }
}
