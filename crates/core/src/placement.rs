//! Core-pinned, NUMA-aware shard placement.
//!
//! The engine's data path has been lock-free since the lane-mesh
//! transport (DESIGN.md §12), which makes *where* shard threads run the
//! next scaling lever: a shard whose inbound SPSC rings, recycle pools,
//! and arena slabs live on another core's cache — or worse, another NUMA
//! node's memory — pays cross-node latency on every batch it drains.
//! RisGraph-class update rates come from exactly this locality
//! discipline. This module supplies the three pieces:
//!
//! - **Topology discovery** ([`HostTopology`]): parse
//!   `/sys/devices/system/cpu/online` and the per-node `cpulist` files
//!   under `/sys/devices/system/node` on Linux; fall back to
//!   `available_parallelism` (one synthetic node) anywhere else or when
//!   sysfs is unreadable. Cached per process — the files are static for
//!   a process lifetime.
//! - **Placement policies** ([`PlacementPolicy`]): `None` (the default —
//!   exact current behaviour, zero cost), `Compact` (fill one NUMA node
//!   before spilling to the next — minimizes cross-node lane traffic),
//!   `Scatter` (round-robin across nodes — maximizes aggregate memory
//!   bandwidth), and `Explicit` (a caller-supplied CPU per shard).
//!   [`PlacementPlan::resolve`] turns a policy into a per-shard CPU/node
//!   assignment, validating explicit CPUs against the discovered
//!   topology.
//! - **Pinning** ([`pin_current_thread`]): raw `sched_setaffinity` on
//!   Linux (declared directly — std already links libc; the workspace
//!   deliberately carries no `libc` crate), graceful no-op elsewhere.
//!   Each shard pins itself at the top of its supervised region, so an
//!   in-place respawn after a contained panic re-pins idempotently.
//!
//! Oversubscription is allowed: with more shards than CPUs the plan
//! cycles, so two shards may share a core. That is a policy choice the
//! caller opted into — the park/heartbeat machinery keeps such runs
//! live, just time-sliced.

use std::fmt;
use std::sync::OnceLock;

/// One online logical CPU and the NUMA node its memory belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuSlot {
    /// Kernel CPU id (the value `sched_setaffinity` pins to).
    pub cpu: usize,
    /// NUMA node owning this CPU (0 on single-node hosts and fallback).
    pub node: usize,
}

/// The host's CPU/NUMA layout as discovered at process start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostTopology {
    /// Online CPUs in ascending CPU-id order.
    pub cpus: Vec<CpuSlot>,
    /// Number of distinct NUMA nodes seen (≥ 1).
    pub nodes: usize,
    /// True when the layout came from sysfs; false for the
    /// `available_parallelism` fallback (everything on synthetic node 0).
    pub from_sysfs: bool,
}

impl HostTopology {
    /// Discovers the host topology: sysfs on Linux, fallback elsewhere.
    pub fn discover() -> Self {
        #[cfg(target_os = "linux")]
        if let Some(t) = Self::from_sysfs("/sys/devices/system") {
            return t;
        }
        Self::fallback()
    }

    /// `available_parallelism` CPUs, all on one synthetic node.
    pub fn fallback() -> Self {
        let n = std::thread::available_parallelism().map_or(1, |p| p.get());
        HostTopology {
            cpus: (0..n).map(|cpu| CpuSlot { cpu, node: 0 }).collect(),
            nodes: 1,
            from_sysfs: false,
        }
    }

    /// Parses `<root>/cpu/online` + `<root>/node/node*/cpulist`. Split
    /// from [`Self::discover`] so tests can point it at a fixture tree.
    fn from_sysfs(root: &str) -> Option<Self> {
        let online = std::fs::read_to_string(format!("{root}/cpu/online")).ok()?;
        let online = parse_cpu_list(online.trim())?;
        if online.is_empty() {
            return None;
        }
        // Node membership: cpu -> node, default 0 for CPUs no node claims
        // (some VMs expose cpu/online but no node dirs).
        let max_cpu = *online.last()?;
        let mut node_of = vec![0usize; max_cpu + 1];
        let mut nodes_seen = 0usize;
        if let Ok(entries) = std::fs::read_dir(format!("{root}/node")) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let Some(id) = name
                    .strip_prefix("node")
                    .and_then(|s| s.parse::<usize>().ok())
                else {
                    continue;
                };
                let Ok(list) = std::fs::read_to_string(entry.path().join("cpulist")) else {
                    continue;
                };
                let Some(cpus) = parse_cpu_list(list.trim()) else {
                    continue;
                };
                nodes_seen = nodes_seen.max(id + 1);
                for cpu in cpus {
                    if cpu <= max_cpu {
                        node_of[cpu] = id;
                    }
                }
            }
        }
        Some(HostTopology {
            cpus: online
                .iter()
                .map(|&cpu| CpuSlot {
                    cpu,
                    node: node_of[cpu],
                })
                .collect(),
            nodes: nodes_seen.max(1),
            from_sysfs: true,
        })
    }

    /// Number of online CPUs.
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// NUMA node of `cpu`, if it is online.
    pub fn node_of(&self, cpu: usize) -> Option<usize> {
        self.cpus.iter().find(|s| s.cpu == cpu).map(|s| s.node)
    }

    /// CPUs in compact order: one node fully filled before the next
    /// (ties broken by CPU id).
    fn compact_order(&self) -> Vec<CpuSlot> {
        let mut cpus = self.cpus.clone();
        cpus.sort_by_key(|s| (s.node, s.cpu));
        cpus
    }

    /// CPUs in scatter order: round-robin across nodes, ascending CPU id
    /// within each node.
    fn scatter_order(&self) -> Vec<CpuSlot> {
        let mut per_node: Vec<Vec<CpuSlot>> = vec![Vec::new(); self.nodes];
        for &s in &self.cpus {
            per_node[s.node.min(self.nodes - 1)].push(s);
        }
        let mut out = Vec::with_capacity(self.cpus.len());
        let mut idx = 0;
        while out.len() < self.cpus.len() {
            for list in &per_node {
                if let Some(&s) = list.get(idx) {
                    out.push(s);
                }
            }
            idx += 1;
        }
        out
    }
}

/// The process-wide cached topology (the sysfs layout is static for a
/// process lifetime; placement resolution, telemetry, and the bench
/// JSON metadata all read the same snapshot).
pub fn host() -> &'static HostTopology {
    static HOST: OnceLock<HostTopology> = OnceLock::new();
    HOST.get_or_init(HostTopology::discover)
}

/// Where shard threads run, selected by
/// [`EngineConfig::with_placement`](crate::EngineConfig::with_placement).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// No pinning — the OS scheduler decides, exactly the pre-placement
    /// behaviour (the default; zero cost, no syscalls).
    #[default]
    None,
    /// Fill CPUs node-by-node: shard `i` on the `i`-th CPU of the
    /// node-major order, cycling when shards outnumber CPUs. Keeps
    /// communicating shards on one node for minimal cross-node lane
    /// traffic.
    Compact,
    /// Round-robin shards across NUMA nodes for maximal aggregate memory
    /// bandwidth (each node serves an even share of the arenas).
    Scatter,
    /// Caller-chosen CPU per shard: `cpus[i]` pins shard `i`. Must name
    /// exactly `num_shards` online CPUs; [`PlacementPlan::resolve`]
    /// rejects unknown CPUs and wrong lengths.
    Explicit(Vec<usize>),
}

impl fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementPolicy::None => write!(f, "none"),
            PlacementPolicy::Compact => write!(f, "compact"),
            PlacementPolicy::Scatter => write!(f, "scatter"),
            PlacementPolicy::Explicit(cpus) => write!(f, "explicit{cpus:?}"),
        }
    }
}

/// Why a placement policy could not be resolved against the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// `Explicit` named a CPU the host does not have online.
    UnknownCpu { shard: usize, cpu: usize },
    /// `Explicit` listed a different number of CPUs than shards.
    WrongLength { shards: usize, cpus: usize },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::UnknownCpu { shard, cpu } => write!(
                f,
                "explicit placement pins shard {shard} to cpu {cpu}, which is not online on this host"
            ),
            PlacementError::WrongLength { shards, cpus } => write!(
                f,
                "explicit placement lists {cpus} cpus for {shards} shards (must match exactly)"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// One shard's resolved seat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSeat {
    /// CPU the shard thread pins to.
    pub cpu: usize,
    /// NUMA node of that CPU (feeds the cross-node lane-traffic counter).
    pub node: usize,
}

/// A resolved per-shard placement: `seats[i]` is shard `i`'s pin target,
/// `None` for unpinned (the whole vector is `None` under
/// [`PlacementPolicy::None`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPlan {
    /// Per-shard seat; `None` = leave the thread to the OS scheduler.
    pub seats: Vec<Option<ShardSeat>>,
}

impl PlacementPlan {
    /// A plan that pins nothing: every shard stays with the OS scheduler.
    /// Equivalent to resolving [`PlacementPolicy::None`] on any host.
    pub fn unpinned(shards: usize) -> Self {
        PlacementPlan {
            seats: vec![None; shards],
        }
    }

    /// Resolves `policy` for `shards` shard threads against `topo`.
    pub fn resolve(
        policy: &PlacementPolicy,
        shards: usize,
        topo: &HostTopology,
    ) -> Result<Self, PlacementError> {
        let seats = match policy {
            PlacementPolicy::None => vec![None; shards],
            PlacementPolicy::Compact => Self::cycle(&topo.compact_order(), shards),
            PlacementPolicy::Scatter => Self::cycle(&topo.scatter_order(), shards),
            PlacementPolicy::Explicit(cpus) => {
                if cpus.len() != shards {
                    return Err(PlacementError::WrongLength {
                        shards,
                        cpus: cpus.len(),
                    });
                }
                let mut seats = Vec::with_capacity(shards);
                for (shard, &cpu) in cpus.iter().enumerate() {
                    let Some(node) = topo.node_of(cpu) else {
                        return Err(PlacementError::UnknownCpu { shard, cpu });
                    };
                    seats.push(Some(ShardSeat { cpu, node }));
                }
                seats
            }
        };
        Ok(PlacementPlan { seats })
    }

    fn cycle(order: &[CpuSlot], shards: usize) -> Vec<Option<ShardSeat>> {
        (0..shards)
            .map(|i| {
                let s = order[i % order.len()];
                Some(ShardSeat {
                    cpu: s.cpu,
                    node: s.node,
                })
            })
            .collect()
    }

    /// True when at least one shard is pinned.
    pub fn any_pinned(&self) -> bool {
        self.seats.iter().any(Option::is_some)
    }

    /// True when two shards share a CPU (more shards than seats, or an
    /// explicit plan that doubles up). Oversubscribed seats time-slice:
    /// spinning before parking would burn cycles the co-resident shard
    /// needs, so the pre-park spin is only enabled on one-shard-per-core
    /// plans.
    pub fn oversubscribed(&self) -> bool {
        let mut cpus: Vec<usize> = self.seats.iter().flatten().map(|s| s.cpu).collect();
        cpus.sort_unstable();
        cpus.windows(2).any(|w| w[0] == w[1])
    }

    /// Shard `id`'s seat, if pinned.
    pub fn seat_of(&self, id: usize) -> Option<ShardSeat> {
        self.seats.get(id).copied().flatten()
    }

    /// NUMA node of shard `id`'s seat, if pinned.
    pub fn node_of_shard(&self, id: usize) -> Option<usize> {
        self.seats.get(id).copied().flatten().map(|s| s.node)
    }
}

/// Parses a kernel cpulist string (`"0-3,5,8-9"`) into ascending CPU
/// ids. Returns `None` on malformed input, `Some(vec![])` on an empty
/// list (a memory-only NUMA node's `cpulist` is an empty line).
fn parse_cpu_list(s: &str) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    if s.is_empty() {
        return Some(out);
    }
    for part in s.split(',') {
        let part = part.trim();
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo: usize = lo.trim().parse().ok()?;
                let hi: usize = hi.trim().parse().ok()?;
                if hi < lo || hi - lo > 1 << 20 {
                    return None;
                }
                out.extend(lo..=hi);
            }
            None => out.push(part.parse().ok()?),
        }
    }
    out.sort_unstable();
    out.dedup();
    Some(out)
}

/// Pins the calling thread to `cpu`. Returns whether the kernel accepted
/// the mask. Linux-only; a no-op returning `false` elsewhere, so callers
/// degrade to unpinned gracefully.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(cpu: usize) -> bool {
    // A glibc cpu_set_t is 1024 bits; CPUs past that can't be expressed
    // in the fixed-size set, so refuse rather than pin to a wrong core.
    const WORDS: usize = 1024 / 64;
    if cpu >= 1024 {
        return false;
    }
    let mut mask = [0u64; WORDS];
    mask[cpu / 64] |= 1u64 << (cpu % 64);
    // Declared directly instead of via the `libc` crate (the workspace
    // carries no such dependency); std already links the C library on
    // Linux, so the symbol resolves. pid 0 = the calling thread.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // SAFETY: the mask pointer is valid for `WORDS * 8` bytes, which is
    // exactly the size passed; the syscall only reads it.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// Non-Linux fallback: no affinity API, never pins.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

/// CPU the calling thread is currently executing on (`sched_getcpu`),
/// or `None` where unsupported. Test/assertion aid: after a pin (or a
/// post-panic respawn re-pin), the running CPU must equal the seat.
#[cfg(target_os = "linux")]
pub fn current_cpu() -> Option<usize> {
    extern "C" {
        fn sched_getcpu() -> i32;
    }
    // SAFETY: no arguments; returns -1 on error.
    let cpu = unsafe { sched_getcpu() };
    (cpu >= 0).then_some(cpu as usize)
}

/// Non-Linux fallback.
#[cfg(not(target_os = "linux"))]
pub fn current_cpu() -> Option<usize> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_topo() -> HostTopology {
        // 8 CPUs, two nodes, the interleaved layout some AMD/ARM hosts
        // expose (even CPUs node 0, odd CPUs node 1).
        HostTopology {
            cpus: (0..8)
                .map(|cpu| CpuSlot { cpu, node: cpu % 2 })
                .collect(),
            nodes: 2,
            from_sysfs: true,
        }
    }

    #[test]
    fn parse_cpu_list_handles_ranges_and_singles() {
        assert_eq!(parse_cpu_list("0-3"), Some(vec![0, 1, 2, 3]));
        assert_eq!(parse_cpu_list("0-1,4,6-7"), Some(vec![0, 1, 4, 6, 7]));
        assert_eq!(parse_cpu_list("5"), Some(vec![5]));
        assert_eq!(parse_cpu_list(""), Some(vec![]));
        assert_eq!(parse_cpu_list("3-1"), None, "reversed range rejected");
        assert_eq!(parse_cpu_list("a-b"), None);
        assert_eq!(parse_cpu_list("1,,2"), None);
    }

    #[test]
    fn discover_finds_at_least_one_cpu() {
        let t = HostTopology::discover();
        assert!(t.num_cpus() >= 1);
        assert!(t.nodes >= 1);
        assert!(t.cpus.windows(2).all(|w| w[0].cpu < w[1].cpu), "ascending");
        // The cached handle returns the same layout.
        assert_eq!(host(), &t);
    }

    #[test]
    fn none_policy_resolves_to_no_seats() {
        let plan = PlacementPlan::resolve(&PlacementPolicy::None, 4, &two_node_topo()).unwrap();
        assert_eq!(plan.seats, vec![None; 4]);
        assert!(!plan.any_pinned());
    }

    #[test]
    fn compact_fills_a_node_before_spilling() {
        let topo = two_node_topo();
        let plan = PlacementPlan::resolve(&PlacementPolicy::Compact, 6, &topo).unwrap();
        let cpus: Vec<usize> = plan.seats.iter().map(|s| s.unwrap().cpu).collect();
        // Node 0 owns even CPUs 0,2,4,6; node 1 the odd ones. Compact
        // exhausts node 0 first.
        assert_eq!(cpus, vec![0, 2, 4, 6, 1, 3]);
        assert_eq!(plan.node_of_shard(0), Some(0));
        assert_eq!(plan.node_of_shard(4), Some(1));
        assert!(plan.any_pinned());
    }

    #[test]
    fn scatter_alternates_nodes() {
        let topo = two_node_topo();
        let plan = PlacementPlan::resolve(&PlacementPolicy::Scatter, 4, &topo).unwrap();
        let nodes: Vec<usize> = plan.seats.iter().map(|s| s.unwrap().node).collect();
        assert_eq!(nodes, vec![0, 1, 0, 1]);
    }

    #[test]
    fn oversubscription_cycles_the_order() {
        let topo = HostTopology {
            cpus: vec![CpuSlot { cpu: 0, node: 0 }, CpuSlot { cpu: 1, node: 0 }],
            nodes: 1,
            from_sysfs: false,
        };
        let plan = PlacementPlan::resolve(&PlacementPolicy::Compact, 5, &topo).unwrap();
        let cpus: Vec<usize> = plan.seats.iter().map(|s| s.unwrap().cpu).collect();
        assert_eq!(cpus, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn explicit_validates_cpus_and_length() {
        let topo = two_node_topo();
        let ok = PlacementPlan::resolve(&PlacementPolicy::Explicit(vec![3, 0]), 2, &topo).unwrap();
        assert_eq!(
            ok.seats[0],
            Some(ShardSeat { cpu: 3, node: 1 }),
            "node derived from the topology"
        );
        assert_eq!(
            PlacementPlan::resolve(&PlacementPolicy::Explicit(vec![0, 999]), 2, &topo),
            Err(PlacementError::UnknownCpu { shard: 1, cpu: 999 })
        );
        assert_eq!(
            PlacementPlan::resolve(&PlacementPolicy::Explicit(vec![0]), 2, &topo),
            Err(PlacementError::WrongLength { shards: 2, cpus: 1 })
        );
        // Errors render as readable messages (they surface in a build panic).
        let msg = PlacementError::UnknownCpu { shard: 1, cpu: 999 }.to_string();
        assert!(msg.contains("cpu 999"), "{msg}");
    }

    #[test]
    fn pin_to_own_cpu_roundtrips_on_linux() {
        // Pin to the first online CPU: must succeed on Linux and place us
        // there; elsewhere both calls are inert.
        let topo = HostTopology::discover();
        let cpu = topo.cpus[0].cpu;
        if cfg!(target_os = "linux") {
            assert!(pin_current_thread(cpu), "sched_setaffinity failed");
            assert_eq!(current_cpu(), Some(cpu));
        } else {
            assert!(!pin_current_thread(cpu));
            assert_eq!(current_cpu(), None);
        }
    }

    #[test]
    fn pin_rejects_unaddressable_cpu() {
        assert!(!pin_current_thread(100_000));
    }

    #[test]
    fn oversubscription_is_detected() {
        let topo = two_node_topo();
        // 8 shards on 8 CPUs: one seat each.
        let plan = PlacementPlan::resolve(&PlacementPolicy::Compact, 8, &topo).unwrap();
        assert!(!plan.oversubscribed());
        // 9 shards on 8 CPUs: the plan cycles, someone shares.
        let plan = PlacementPlan::resolve(&PlacementPolicy::Compact, 9, &topo).unwrap();
        assert!(plan.oversubscribed());
        // Explicit doubling-up counts too; unpinned plans never do.
        let plan = PlacementPlan::resolve(&PlacementPolicy::Explicit(vec![0, 0]), 2, &topo).unwrap();
        assert!(plan.oversubscribed());
        assert!(!PlacementPlan::unpinned(4).oversubscribed());
    }

    #[test]
    fn policy_display_is_stable() {
        // Bench cell labels and CI greps key off these strings.
        assert_eq!(PlacementPolicy::None.to_string(), "none");
        assert_eq!(PlacementPolicy::Compact.to_string(), "compact");
        assert_eq!(PlacementPolicy::Scatter.to_string(), "scatter");
        assert_eq!(
            PlacementPolicy::Explicit(vec![0, 2]).to_string(),
            "explicit[0, 2]"
        );
    }
}
