//! Algorithm composition: multiple live queries on one dynamic graph.
//!
//! The paper targets "a design where ... multiple algorithms can be
//! executed simultaneously (i.e. maintain their state) on the same
//! underlying dynamic data structure, thus enabling support for multiple
//! queries" (§I) — but its prototype "only supports hooking in one
//! algorithm" (§III-F limitations). [`Pair`] implements that vision:
//! `Pair::new(a, b)` is itself an [`Algorithm`] whose vertex state is the
//! tuple of both states; every topology event drives both callbacks, the
//! topology (and its storage and messaging) is shared, and nesting
//! (`Pair::new(Pair::new(a, b), c)`) composes any number of queries.
//!
//! ## Why this is sound for REMO algorithms
//!
//! A propagation by one side sends a tuple whose other component is that
//! vertex's *current* other-side state. The receiver therefore sometimes
//! processes "gratuitous" updates: valid current states it did not ask
//! for. For REMO algorithms these are harmless by construction — a
//! monotone join with a genuine current value either helps or is a no-op,
//! and the paper's own convergence argument ("potentially conflicting
//! events being either independent or order-irrelevant", §II-D) covers
//! them. Every reply a side emits strictly improves the receiving side's
//! state, so termination is preserved. The composition tests and the
//! workspace integration tests assert both fixpoints equal their solo
//! runs.
//!
//! ## When to reach for the registry instead
//!
//! `Pair` is static composition: the query set is fixed at engine
//! construction, and every propagation carries the **full tuple** of all
//! component states — at N queries that is an O(N) payload per envelope
//! even when only one component changed. The dynamic alternative is
//! [`QueryRegistry`](crate::registry::QueryRegistry) (DESIGN.md §17):
//! one shared adjacency store, an independent state column per query,
//! per-query *delta* envelopes, and live attach/detach with backfill from
//! the stored adjacency. Prefer the registry beyond two or three queries,
//! or whenever queries come and go at runtime; `Pair` remains the
//! zero-overhead choice for a fixed duo.

use std::marker::PhantomData;

use crate::algorithm::{AlgoCtx, Algorithm};
use crate::event::Epoch;
use remo_store::{EdgeMeta, VertexId, Weight};

/// Two algorithms running simultaneously over one dynamic graph.
///
/// For more than two or three live queries — or for attaching and
/// detaching queries at runtime — prefer
/// [`QueryRegistry`](crate::registry::QueryRegistry) (DESIGN.md §17):
/// it shares the topology the same way but sends per-query deltas
/// instead of the full tuple, so its envelope cost does not grow with
/// the number of attached queries.
pub struct Pair<A, B> {
    first: A,
    second: B,
}

impl<A: Algorithm, B: Algorithm> Pair<A, B> {
    /// Composes `first` and `second`.
    ///
    /// Nesting (`Pair::new(Pair::new(a, b), c)`) composes any number of
    /// queries, but every level widens the tuple every envelope carries;
    /// at three or more levels a one-time stderr note points at the
    /// registry, which sends O(1)-per-change deltas instead.
    pub fn new(first: A, second: B) -> Self {
        if Self::COMPOSE_DEPTH >= 3 {
            static DEEP_NESTING_NOTE: std::sync::Once = std::sync::Once::new();
            DEEP_NESTING_NOTE.call_once(|| {
                eprintln!(
                    "remo: note: compose::Pair nested {} deep — every envelope now carries \
                     the full {}-wide state tuple. For many or dynamic queries, \
                     QueryRegistry (DESIGN.md §17) shares the topology with per-query \
                     delta envelopes and live attach/detach.",
                    Self::COMPOSE_DEPTH,
                    Self::COMPOSE_DEPTH + 1,
                );
            });
        }
        Pair { first, second }
    }
}

/// `usize::max` is not const-callable through the trait bound, so the
/// depth fold gets its own const fn.
const fn max_depth(a: usize, b: usize) -> usize {
    if a > b {
        a
    } else {
        b
    }
}

/// Context projection onto the first component.
struct ProjA<'c, C, SA, SB> {
    inner: &'c mut C,
    _pd: PhantomData<fn() -> (SA, SB)>,
}

/// Context projection onto the second component.
struct ProjB<'c, C, SA, SB> {
    inner: &'c mut C,
    _pd: PhantomData<fn() -> (SA, SB)>,
}

fn proj_a<C, SA, SB>(inner: &mut C) -> ProjA<'_, C, SA, SB> {
    ProjA {
        inner,
        _pd: PhantomData,
    }
}

fn proj_b<C, SA, SB>(inner: &mut C) -> ProjB<'_, C, SA, SB> {
    ProjB {
        inner,
        _pd: PhantomData,
    }
}

impl<'c, C, SA, SB> AlgoCtx<SA> for ProjA<'c, C, SA, SB>
where
    SA: Clone,
    SB: Clone,
    C: AlgoCtx<(SA, SB)>,
{
    fn vertex(&self) -> VertexId {
        self.inner.vertex()
    }

    fn epoch(&self) -> Epoch {
        self.inner.epoch()
    }

    fn state(&self) -> &SA {
        &self.inner.state().0
    }

    fn apply(&mut self, f: impl Fn(&mut SA) -> bool) -> bool {
        self.inner.apply(|s| f(&mut s.0))
    }

    fn degree(&self) -> usize {
        self.inner.degree()
    }

    fn edge_weight(&self, nbr: VertexId) -> Option<Weight> {
        self.inner.edge_weight(nbr)
    }

    fn nbr_cached(&self, nbr: VertexId) -> Option<u64> {
        self.inner.nbr_cached(nbr)
    }

    fn for_each_nbr(&self, f: &mut dyn FnMut(VertexId, EdgeMeta)) {
        self.inner.for_each_nbr(f)
    }

    fn update_nbrs(&mut self, value: &SA) {
        let full = (value.clone(), self.inner.state().1.clone());
        self.inner.update_nbrs(&full);
    }

    fn update_nbrs_filtered(&mut self, value: &SA, keep: impl Fn(VertexId, &EdgeMeta) -> bool) {
        let full = (value.clone(), self.inner.state().1.clone());
        self.inner.update_nbrs_filtered(&full, keep);
    }

    fn send_update(&mut self, target: VertexId, value: &SA, weight: Weight) {
        let full = (value.clone(), self.inner.state().1.clone());
        self.inner.send_update(target, &full, weight);
    }
}

impl<'c, C, SA, SB> AlgoCtx<SB> for ProjB<'c, C, SA, SB>
where
    SA: Clone,
    SB: Clone,
    C: AlgoCtx<(SA, SB)>,
{
    fn vertex(&self) -> VertexId {
        self.inner.vertex()
    }

    fn epoch(&self) -> Epoch {
        self.inner.epoch()
    }

    fn state(&self) -> &SB {
        &self.inner.state().1
    }

    fn apply(&mut self, f: impl Fn(&mut SB) -> bool) -> bool {
        self.inner.apply(|s| f(&mut s.1))
    }

    fn degree(&self) -> usize {
        self.inner.degree()
    }

    fn edge_weight(&self, nbr: VertexId) -> Option<Weight> {
        self.inner.edge_weight(nbr)
    }

    fn nbr_cached(&self, nbr: VertexId) -> Option<u64> {
        self.inner.nbr_cached(nbr)
    }

    fn for_each_nbr(&self, f: &mut dyn FnMut(VertexId, EdgeMeta)) {
        self.inner.for_each_nbr(f)
    }

    fn update_nbrs(&mut self, value: &SB) {
        let full = (self.inner.state().0.clone(), value.clone());
        self.inner.update_nbrs(&full);
    }

    fn update_nbrs_filtered(&mut self, value: &SB, keep: impl Fn(VertexId, &EdgeMeta) -> bool) {
        let full = (self.inner.state().0.clone(), value.clone());
        self.inner.update_nbrs_filtered(&full, keep);
    }

    fn send_update(&mut self, target: VertexId, value: &SB, weight: Weight) {
        let full = (self.inner.state().0.clone(), value.clone());
        self.inner.send_update(target, &full, weight);
    }
}

macro_rules! forward_both {
    ($self:ident, $ctx:ident, $method:ident, $visitor:ident, $value:ident, $weight:ident) => {{
        $self
            .first
            .$method(&mut proj_a($ctx), $visitor, &$value.0, $weight);
        $self
            .second
            .$method(&mut proj_b($ctx), $visitor, &$value.1, $weight);
    }};
}

impl<A: Algorithm, B: Algorithm> Algorithm for Pair<A, B> {
    type State = (A::State, B::State);

    const COMPOSE_DEPTH: usize = 1 + max_depth(A::COMPOSE_DEPTH, B::COMPOSE_DEPTH);

    fn encode_state(state: &Self::State, out: &mut Vec<u8>) {
        // Length-prefix the first component so decode can split the pair
        // without knowing either codec's width.
        let mut a = Vec::new();
        A::encode_state(&state.0, &mut a);
        out.extend_from_slice(&(a.len() as u32).to_le_bytes());
        out.extend_from_slice(&a);
        B::encode_state(&state.1, out);
    }

    fn decode_state(bytes: &[u8]) -> Self::State {
        let mut w = [0u8; 4];
        w.copy_from_slice(&bytes[..4]);
        let n = u32::from_le_bytes(w) as usize;
        (
            A::decode_state(&bytes[4..4 + n]),
            B::decode_state(&bytes[4 + n..]),
        )
    }

    fn init(&self, ctx: &mut impl AlgoCtx<Self::State>) {
        self.first.init(&mut proj_a(ctx));
        self.second.init(&mut proj_b(ctx));
    }

    fn on_add(
        &self,
        ctx: &mut impl AlgoCtx<Self::State>,
        visitor: VertexId,
        value: &Self::State,
        weight: Weight,
    ) {
        forward_both!(self, ctx, on_add, visitor, value, weight)
    }

    fn on_reverse_add(
        &self,
        ctx: &mut impl AlgoCtx<Self::State>,
        visitor: VertexId,
        value: &Self::State,
        weight: Weight,
    ) {
        forward_both!(self, ctx, on_reverse_add, visitor, value, weight)
    }

    fn on_update(
        &self,
        ctx: &mut impl AlgoCtx<Self::State>,
        visitor: VertexId,
        value: &Self::State,
        weight: Weight,
    ) {
        forward_both!(self, ctx, on_update, visitor, value, weight)
    }

    fn on_remove(
        &self,
        ctx: &mut impl AlgoCtx<Self::State>,
        visitor: VertexId,
        value: &Self::State,
        weight: Weight,
    ) {
        forward_both!(self, ctx, on_remove, visitor, value, weight)
    }

    fn on_reverse_remove(
        &self,
        ctx: &mut impl AlgoCtx<Self::State>,
        visitor: VertexId,
        value: &Self::State,
        weight: Weight,
    ) {
        forward_both!(self, ctx, on_reverse_remove, visitor, value, weight)
    }

    /// All-or-nothing: the merged tuple must dominate both originals in
    /// *both* components, so the pair coalesces only when each side's
    /// `join` accepts. Tentative copies avoid half-applied merges when one
    /// side lacks the hook.
    fn join(into: &mut Self::State, from: &Self::State) -> bool {
        let mut a = into.0.clone();
        let mut b = into.1.clone();
        if A::join(&mut a, &from.0) && B::join(&mut b, &from.1) {
            into.0 = a;
            into.1 = b;
            true
        } else {
            false
        }
    }

    /// Best-first for the pair means best for either side: take the min of
    /// the component priorities. `None` from either side disables
    /// reordering for the pair (that side needs FIFO).
    fn priority(state: &Self::State) -> Option<u64> {
        match (A::priority(&state.0), B::priority(&state.1)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::shard::EngineConfig;

    /// Counter of add/reverse-add touches.
    #[derive(Debug, Default, Clone, Copy)]
    struct Touch;

    impl Algorithm for Touch {
        type State = u64;
        fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: Weight) {
            ctx.apply(|s| {
                *s += 1;
                true
            });
        }
        fn on_reverse_add(
            &self,
            ctx: &mut impl AlgoCtx<u64>,
            _v: VertexId,
            _val: &u64,
            _w: Weight,
        ) {
            ctx.apply(|s| {
                *s += 1;
                true
            });
        }
    }

    /// Min-id flood.
    #[derive(Debug, Default, Clone, Copy)]
    struct MinFlood;

    impl Algorithm for MinFlood {
        type State = u64;
        fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: Weight) {
            let me = ctx.vertex() + 1;
            ctx.apply(move |s| {
                if *s == 0 || *s > me {
                    *s = me;
                    true
                } else {
                    false
                }
            });
        }
        fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, v: VertexId, val: &u64, w: Weight) {
            self.on_add(ctx, v, val, w);
            self.on_update(ctx, v, val, w);
        }
        fn on_update(
            &self,
            ctx: &mut impl AlgoCtx<u64>,
            visitor: VertexId,
            value: &u64,
            _w: Weight,
        ) {
            let mine = *ctx.state();
            let theirs = *value;
            if theirs != 0 && (mine == 0 || theirs < mine) {
                if ctx.apply(move |s| {
                    if *s == 0 || *s > theirs {
                        *s = theirs;
                        true
                    } else {
                        false
                    }
                }) {
                    ctx.update_nbrs(&theirs);
                }
            } else if mine != 0 && (theirs == 0 || mine < theirs) {
                ctx.update_single_nbr(visitor, &mine);
            }
        }

        fn join(into: &mut u64, from: &u64) -> bool {
            if *from != 0 && (*into == 0 || *from < *into) {
                *into = *from;
            }
            true
        }

        fn priority(state: &u64) -> Option<u64> {
            Some(if *state == 0 { u64::MAX } else { *state })
        }
    }

    fn edges() -> Vec<(u64, u64)> {
        (0..40u64).map(|i| (i, (i * 13 + 1) % 40)).collect()
    }

    #[test]
    fn pair_matches_solo_runs() {
        let es = edges();

        let solo_touch = {
            let e = Engine::new(Touch, EngineConfig::undirected(3));
            e.try_ingest_pairs(&es).unwrap();
            e.try_finish().unwrap().states.into_vec()
        };
        let solo_flood = {
            let e = Engine::new(MinFlood, EngineConfig::undirected(3));
            e.try_ingest_pairs(&es).unwrap();
            e.try_finish().unwrap().states.into_vec()
        };

        let e = Engine::new(Pair::new(Touch, MinFlood), EngineConfig::undirected(3));
        e.try_ingest_pairs(&es).unwrap();
        let both = e.try_finish().unwrap().states.into_vec();

        let firsts: Vec<(u64, u64)> = both.iter().map(|&(v, (a, _))| (v, a)).collect();
        let seconds: Vec<(u64, u64)> = both.iter().map(|&(v, (_, b))| (v, b)).collect();
        assert_eq!(firsts, solo_touch, "first component diverged");
        assert_eq!(seconds, solo_flood, "second component diverged");
    }

    #[test]
    fn nested_pair_composes_three() {
        // A ring: connected, so the flood must reach min id + 1 everywhere.
        let es: Vec<(u64, u64)> = (0..40u64).map(|i| (i, (i + 1) % 40)).collect();
        let e = Engine::new(
            Pair::new(Pair::new(Touch, MinFlood), Touch),
            EngineConfig::undirected(2),
        );
        e.try_ingest_pairs(&es).unwrap();
        let states = e.try_finish().unwrap().states;
        for (v, ((touch1, flood), touch2)) in states.iter() {
            assert_eq!(touch1, touch2, "vertex {v}: the two Touch copies diverged");
            assert_eq!(*flood, 1, "vertex {v}: flood must reach min id + 1");
        }
    }

    #[test]
    fn pair_join_is_all_or_nothing() {
        // Touch has no join: the pair must decline and leave `into` alone.
        let mut into = (1u64, 5u64);
        assert!(!<Pair<Touch, MinFlood> as Algorithm>::join(
            &mut into,
            &(2, 3)
        ));
        assert_eq!(into, (1, 5));
        let mut into = (5u64, 5u64);
        assert!(<Pair<MinFlood, MinFlood> as Algorithm>::join(
            &mut into,
            &(3, 7)
        ));
        assert_eq!(into, (3, 5));
        assert_eq!(
            <Pair<MinFlood, MinFlood> as Algorithm>::priority(&(4, 9)),
            Some(4)
        );
        assert_eq!(
            <Pair<Touch, MinFlood> as Algorithm>::priority(&(4, 9)),
            None
        );
    }

    #[test]
    fn pair_with_lattice_matches_fifo() {
        let es = edges();
        let fifo = {
            let e = Engine::new(Pair::new(MinFlood, MinFlood), EngineConfig::undirected(3));
            e.try_ingest_pairs(&es).unwrap();
            e.try_finish().unwrap().states.into_vec()
        };
        let lat = {
            let e = Engine::new(
                Pair::new(MinFlood, MinFlood),
                EngineConfig::undirected(3).with_lattice(),
            );
            e.try_ingest_pairs(&es).unwrap();
            e.try_finish().unwrap().states.into_vec()
        };
        assert_eq!(fifo, lat, "lattice layers changed the pair's fixpoint");
    }

    #[test]
    fn compose_depth_counts_pair_levels() {
        assert_eq!(Touch::COMPOSE_DEPTH, 0);
        assert_eq!(<Pair<Touch, MinFlood>>::COMPOSE_DEPTH, 1);
        assert_eq!(<Pair<Pair<Touch, MinFlood>, Touch>>::COMPOSE_DEPTH, 2);
        assert_eq!(
            <Pair<Pair<Pair<Touch, MinFlood>, Touch>, MinFlood>>::COMPOSE_DEPTH,
            3
        );
        // The ≥3-deep constructor path (one-time stderr note) still
        // produces a working algorithm.
        let e = Engine::new(
            Pair::new(Pair::new(Pair::new(Touch, MinFlood), Touch), MinFlood),
            EngineConfig::undirected(2),
        );
        e.try_ingest_pairs(&[(0, 1), (1, 2)]).unwrap();
        let states = e.try_finish().unwrap().states;
        assert_eq!(states.get(1).map(|(((t, _), _), _)| *t), Some(2));
    }

    #[test]
    fn pair_init_reaches_both() {
        #[derive(Debug, Default)]
        struct InitMark;
        impl Algorithm for InitMark {
            type State = u64;
            fn init(&self, ctx: &mut impl AlgoCtx<u64>) {
                ctx.apply(|s| {
                    *s = 7;
                    true
                });
            }
        }
        let e = Engine::new(Pair::new(InitMark, InitMark), EngineConfig::undirected(2));
        e.try_init_vertex(3).unwrap();
        let states = e.try_finish().unwrap().states;
        assert_eq!(states.get(3), Some(&(7, 7)));
    }
}
