//! Shard storage layouts: how a shard physically holds its vertices.
//!
//! The shard event loop is written against `ShardStore`, a minimal
//! interface with two implementations:
//!
//! - `DenseStore` (the default, [`StorageLayout::DenseArena`]): an
//!   interning table (`RhhMap<VertexId, u32>`, one probe per event) in
//!   front of a record slab — each entry a packed `(state, meta-word)`
//!   pair (`HotVertex`) contiguous with its `Adjacency` — plus a
//!   **cold side map** `LocalIdx -> S` for snapshot forks. Forks exist
//!   only while a snapshot is draining, so `Option<S>` no longer pads
//!   every hot record; the hot working set per event is one contiguous
//!   `size_of::<S>() + 8 + 40`-byte slab record.
//! - `LegacyStore` ([`StorageLayout::RhhRecord`]): the seed layout — one
//!   `RhhMap<VertexId, VertexRecord<VertexState<S>>>` with state, fork,
//!   meta, and adjacency interleaved per record. Kept as a runtime-
//!   selectable layout (not a cfg) so differential tests and the
//!   `ablate_store` bench can run both layouts in one process and assert
//!   byte-identical fixpoints.
//!
//! A `ShardStore::Handle` is the layout's name for a vertex *within one
//! event*: the dense layout's handle is the stable [`LocalIdx`]; the
//! legacy layout's is the transient Robin Hood slot index, valid only
//! until the next vertex-set mutation. The shard loop interns once per
//! envelope and performs every subsequent access through the handle, which
//! is what makes the dense layout's single-probe discipline real.

use crate::event::Epoch;
use crate::vertex_state::{VertexMeta, VertexState};
use remo_store::{
    Adjacency, DenseVertexTable, LocalIdx, RhhMap, VertexId, VertexRecord, VertexTable,
};

/// Which physical layout each shard uses for its vertex storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StorageLayout {
    /// Interning table + dense record slab + cold fork side map.
    #[default]
    DenseArena,
    /// The seed layout: one Robin Hood map of fat records.
    RhhRecord,
}

/// Split mutable borrows of one vertex's storage, assembled per event.
///
/// `prev` is `Some` exactly when the event being processed must dual-apply
/// to the snapshot fork (its epoch predates the vertex's fork point) — the
/// layout resolves `applies_to_prev` once, here, instead of every consumer
/// re-deriving it.
pub struct VertexParts<'a, S> {
    /// Live algorithm state.
    pub live: &'a mut S,
    /// The snapshot fork, present only when this event dual-applies.
    pub prev: Option<&'a mut S>,
    /// Fork epoch + fired-trigger bits.
    pub meta: &'a mut VertexMeta,
    /// Out-edges.
    pub adj: &'a mut Adjacency,
}

/// Visitor handed to [`ShardStore::export_records`]: receives each
/// vertex's `(id, live state, snapshot fork, meta word, adjacency)`.
pub(crate) type RecordVisitor<'a, S> =
    dyn FnMut(VertexId, &S, Option<&S>, VertexMeta, &Adjacency) + 'a;

impl<'a, S> VertexParts<'a, S> {
    /// Assembles parts from a record-style vertex (legacy layout and the
    /// sequential reference engine) for an event of `epoch`.
    pub fn from_record(rec: &'a mut VertexRecord<VertexState<S>>, epoch: Epoch) -> Self {
        let st = &mut rec.state;
        let prev = if epoch < st.meta.forked_epoch {
            st.prev.as_mut()
        } else {
            None
        };
        VertexParts {
            live: &mut st.live,
            prev,
            meta: &mut st.meta,
            adj: &mut rec.adj,
        }
    }
}

/// What the shard event loop needs from a storage layout.
///
/// The handle discipline: `intern`/`lookup` perform the (single) probe;
/// every other accessor is direct indexing off the handle. Handles are
/// valid until the next `intern` — the shard loop never holds one across
/// envelopes.
pub(crate) trait ShardStore<S>: Send + 'static
where
    S: Clone + Default + PartialEq + Send + 'static,
{
    /// Per-event vertex handle (dense index or transient slot index).
    type Handle: Copy;

    /// A store pre-sized for `vertices` entries (0 = start empty).
    fn with_capacity(vertices: usize) -> Self;

    /// Handle for `v`, creating default state/meta/adjacency if absent.
    fn intern(&mut self, v: VertexId) -> Self::Handle;

    /// Handle for `v` if it has a record.
    fn lookup(&self, v: VertexId) -> Option<Self::Handle>;

    /// Live state at `h`.
    fn live(&self, h: Self::Handle) -> &S;

    /// True when an event of `epoch` at `h` must dual-apply to the fork.
    fn applies_to_prev(&self, h: Self::Handle, epoch: Epoch) -> bool;

    /// Forks `h` for `epoch` if this is the first event of a newer epoch
    /// (capturing the previous state), then hands out split borrows of
    /// `h`'s state/fork/meta/adjacency. One fused call — the shard loop
    /// needs both on every envelope, and fusing touches the vertex's meta
    /// word once instead of twice. Returns `(forked, parts)`.
    fn fork_and_parts(&mut self, h: Self::Handle, epoch: Epoch) -> (bool, VertexParts<'_, S>);

    /// Number of vertices present.
    fn num_vertices(&self) -> usize;

    /// Snapshot of every vertex id present, in iteration order. Cold path:
    /// the control-sweep driver (see [`crate::registry`]) materializes the
    /// id list once, then interns per id — handles must not be held across
    /// the mutations a sweep performs.
    fn vertex_ids(&self) -> Vec<VertexId>;

    /// Approximate heap footprint of adjacency storage, in bytes.
    fn adjacency_heap_bytes(&self) -> usize;

    /// Approximate total heap footprint of the store (index + state +
    /// meta + adjacency + forks), in bytes.
    fn heap_bytes(&self) -> usize;

    /// Collects `(vertex, state)` pairs: the live view, or the snapshot
    /// view at `old_epoch` (omitting still-default states and clearing
    /// forks, matching the snapshot protocol's drain step).
    fn collect(&mut self, old_epoch: Epoch, live: bool) -> Vec<(VertexId, S)>;

    /// Converts into the record-style table handed to callers via
    /// `RunResult::tables` (one-time shutdown cost for the dense layout).
    fn into_table(self) -> VertexTable<VertexState<S>>;

    /// Streams every vertex record — live state, outstanding snapshot
    /// fork, meta word, adjacency — to `f`. The checkpoint serializer's
    /// walk (cold path; only durability-enabled shards call it).
    fn export_records(&self, f: &mut RecordVisitor<S>);

    /// Reinstates one checkpointed vertex record. The store must be
    /// freshly constructed — restore never merges into existing records.
    fn restore_record(
        &mut self,
        v: VertexId,
        live: S,
        prev: Option<S>,
        meta: VertexMeta,
        adj: Adjacency,
    );
}

/// The seed layout: one Robin Hood map of fat `VertexRecord`s.
pub(crate) struct LegacyStore<S> {
    table: VertexTable<VertexState<S>>,
}

impl<S> ShardStore<S> for LegacyStore<S>
where
    S: Clone + Default + PartialEq + Send + 'static,
{
    /// Transient Robin Hood slot index: valid until the next vertex-set
    /// mutation (adjacency mutations are fine — they touch record values,
    /// not the map structure).
    type Handle = usize;

    fn with_capacity(vertices: usize) -> Self {
        LegacyStore {
            table: if vertices > 0 {
                VertexTable::with_capacity(vertices)
            } else {
                VertexTable::new()
            },
        }
    }

    #[inline]
    fn intern(&mut self, v: VertexId) -> usize {
        self.table.ensure_index(v).0
    }

    #[inline]
    fn lookup(&self, v: VertexId) -> Option<usize> {
        self.table.index_of(v)
    }

    #[inline]
    fn live(&self, h: usize) -> &S {
        &self.table.record_at(h).state.live
    }

    #[inline]
    fn applies_to_prev(&self, h: usize, epoch: Epoch) -> bool {
        self.table.record_at(h).state.applies_to_prev(epoch)
    }

    #[inline]
    fn fork_and_parts(&mut self, h: usize, epoch: Epoch) -> (bool, VertexParts<'_, S>) {
        let rec = self.table.record_at_mut(h);
        let forked = rec.state.fork_for(epoch);
        (forked, VertexParts::from_record(rec, epoch))
    }

    fn num_vertices(&self) -> usize {
        self.table.num_vertices()
    }

    fn vertex_ids(&self) -> Vec<VertexId> {
        self.table.iter().map(|(v, _)| v).collect()
    }

    fn adjacency_heap_bytes(&self) -> usize {
        self.table.adjacency_heap_bytes()
    }

    fn heap_bytes(&self) -> usize {
        // The slot array holds the fat records inline; adjacency spill
        // storage is on the heap behind it.
        self.table.record_heap_bytes() + self.table.adjacency_heap_bytes()
    }

    fn collect(&mut self, old_epoch: Epoch, live: bool) -> Vec<(VertexId, S)> {
        let default = S::default();
        let mut states = Vec::with_capacity(self.table.num_vertices());
        for (v, rec) in self.table.iter_mut() {
            if live {
                states.push((v, rec.state.live.clone()));
            } else {
                let view = rec.state.snapshot_view(old_epoch);
                // A vertex still at bottom did not exist (algorithmically)
                // at the snapshot point; omit it, matching what a static
                // run over the stream prefix would produce.
                if *view != default {
                    states.push((v, view.clone()));
                }
                rec.state.clear_fork();
            }
        }
        states
    }

    fn into_table(self) -> VertexTable<VertexState<S>> {
        self.table
    }

    fn export_records(&self, f: &mut RecordVisitor<S>) {
        for (v, rec) in self.table.iter() {
            f(
                v,
                &rec.state.live,
                rec.state.prev.as_ref(),
                rec.state.meta,
                &rec.adj,
            );
        }
    }

    fn restore_record(
        &mut self,
        v: VertexId,
        live: S,
        prev: Option<S>,
        meta: VertexMeta,
        adj: Adjacency,
    ) {
        self.table
            .insert_record(v, VertexState { live, prev, meta }, adj);
    }
}

/// Per-vertex hot payload of the dense layout: the live state packed with
/// the 8-byte meta word. Every envelope reads both (the fork check is on
/// the meta, the callback is on the state), so splitting them into two
/// slabs costs a second dependent cache line per event for nothing —
/// measured on the `ablate_store` workload, packing them (and packing the
/// pair contiguously with the adjacency, see
/// [`remo_store::DenseVertexTable`]) recovers the record layout's locality
/// while keeping the slab record at `size_of::<S>() + 8 + 40` bytes
/// instead of the legacy hash slot's ~88.
#[derive(Clone, Default)]
pub(crate) struct HotVertex<S> {
    live: S,
    meta: VertexMeta,
}

/// The dense layout: interning + record slab + cold fork side map.
pub(crate) struct DenseStore<S> {
    table: DenseVertexTable<HotVertex<S>>,
    /// Snapshot forks, keyed by dense index. Populated only between a
    /// fork and the snapshot drain that clears it — keeping `Option<S>`
    /// out of the hot records is the point of the dense layout.
    forks: RhhMap<LocalIdx, S>,
    /// One-entry intern memo: cascades and hub traffic often deliver
    /// consecutive envelopes to the same vertex, and a compare beats a
    /// probe. Only the dense layout can memoize across envelopes — its
    /// handles are stable for the table's lifetime, whereas the legacy
    /// layout's slot indices are invalidated by any rehash.
    last: Option<(VertexId, LocalIdx)>,
}

impl<S> ShardStore<S> for DenseStore<S>
where
    S: Clone + Default + PartialEq + Send + 'static,
{
    /// Stable dense index (vertices are never evicted).
    type Handle = LocalIdx;

    fn with_capacity(vertices: usize) -> Self {
        DenseStore {
            table: if vertices > 0 {
                DenseVertexTable::with_capacity(vertices)
            } else {
                DenseVertexTable::new()
            },
            forks: RhhMap::new(),
            last: None,
        }
    }

    #[inline]
    fn intern(&mut self, v: VertexId) -> LocalIdx {
        if let Some((id, h)) = self.last {
            if id == v {
                return h;
            }
        }
        let (h, _) = self.table.intern(v);
        self.last = Some((v, h));
        h
    }

    #[inline]
    fn lookup(&self, v: VertexId) -> Option<LocalIdx> {
        self.table.lookup(v)
    }

    #[inline]
    fn live(&self, h: LocalIdx) -> &S {
        &self.table.state(h).live
    }

    #[inline]
    fn applies_to_prev(&self, h: LocalIdx, epoch: Epoch) -> bool {
        // The meta read answers "no" without touching the cold map in the
        // common (no snapshot draining) case.
        epoch < self.table.state(h).meta.forked_epoch && self.forks.contains(h)
    }

    #[inline]
    fn fork_and_parts(&mut self, h: LocalIdx, epoch: Epoch) -> (bool, VertexParts<'_, S>) {
        let (hot, adj) = self.table.state_adj_mut(h);
        let HotVertex { live, meta } = hot;
        let forked = epoch > meta.forked_epoch;
        if forked {
            meta.forked_epoch = epoch;
            self.forks.insert(h, live.clone());
        }
        let prev = if epoch < meta.forked_epoch {
            self.forks.get_mut(h)
        } else {
            None
        };
        (
            forked,
            VertexParts {
                live,
                prev,
                meta,
                adj,
            },
        )
    }

    fn num_vertices(&self) -> usize {
        self.table.num_vertices()
    }

    fn vertex_ids(&self) -> Vec<VertexId> {
        self.table.ids().to_vec()
    }

    fn adjacency_heap_bytes(&self) -> usize {
        self.table.adjacency_heap_bytes()
    }

    fn heap_bytes(&self) -> usize {
        self.table.heap_bytes() + self.forks.heap_bytes()
    }

    fn collect(&mut self, old_epoch: Epoch, live: bool) -> Vec<(VertexId, S)> {
        let default = S::default();
        let mut states = Vec::with_capacity(self.table.num_vertices());
        if live {
            for (v, hot, _) in self.table.iter() {
                states.push((v, hot.live.clone()));
            }
        } else {
            // Dense-order slab walk; the cold map is probed only for
            // vertices whose meta says they forked past the boundary.
            for (i, (v, hot, _)) in self.table.iter().enumerate() {
                let view = if hot.meta.forked_epoch > old_epoch {
                    self.forks.get(i as LocalIdx).unwrap_or(&hot.live)
                } else {
                    &hot.live
                };
                if *view != default {
                    states.push((v, view.clone()));
                }
            }
            // The snapshot drain retires every outstanding fork at once.
            self.forks.clear();
        }
        states
    }

    fn into_table(mut self) -> VertexTable<VertexState<S>> {
        let (ids, hots, adjs) = self.table.into_parts();
        let mut table = VertexTable::with_capacity(ids.len());
        for (i, ((v, hot), adj)) in ids.into_iter().zip(hots).zip(adjs).enumerate() {
            let prev = self.forks.remove(i as LocalIdx);
            let rec = VertexState {
                live: hot.live,
                prev,
                meta: hot.meta,
            };
            table.insert_record(v, rec, adj);
        }
        table
    }

    fn export_records(&self, f: &mut RecordVisitor<S>) {
        for (i, (v, hot, adj)) in self.table.iter().enumerate() {
            f(v, &hot.live, self.forks.get(i as LocalIdx), hot.meta, adj);
        }
    }

    fn restore_record(
        &mut self,
        v: VertexId,
        live: S,
        prev: Option<S>,
        meta: VertexMeta,
        adj: Adjacency,
    ) {
        let (h, _) = self.table.intern(v);
        *self.table.state_mut(h) = HotVertex { live, meta };
        *self.table.adj_mut(h) = adj;
        if let Some(p) = prev {
            self.forks.insert(h, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<St: ShardStore<u64>>() {
        let mut st = St::with_capacity(8);
        let h = st.intern(42);
        assert_eq!(st.num_vertices(), 1);
        assert_eq!(*st.live(h), 0);
        {
            let (forked, parts) = st.fork_and_parts(h, 0);
            assert!(!forked, "epoch 0 never forks");
            *parts.live = 7;
            parts.meta.fired |= 1;
        }
        let h = st.lookup(42).unwrap_or_else(|| unreachable!());
        assert_eq!(*st.live(h), 7);

        // Fork at epoch 1, advance live, check dual-apply visibility.
        {
            let (forked, parts) = st.fork_and_parts(h, 1);
            assert!(forked, "first event of a new epoch forks");
            *parts.live = 9;
            assert!(parts.prev.is_none(), "new-epoch event spares the fork");
            assert_eq!(parts.meta.fired, 1, "fired bits survive the fork");
        }
        assert!(st.applies_to_prev(h, 0));
        assert!(!st.applies_to_prev(h, 1));
        {
            let (forked, parts) = st.fork_and_parts(h, 1);
            assert!(!forked, "same epoch must not re-fork");
            assert!(parts.prev.is_none());
        }
        {
            let (forked, parts) = st.fork_and_parts(h, 0);
            assert!(!forked);
            assert_eq!(parts.prev.as_deref().copied(), Some(7));
        }

        // Snapshot collect sees the fork, then clears it.
        let snap = st.collect(0, false);
        assert_eq!(snap, vec![(42, 7)]);
        assert!(!st.applies_to_prev(h, 0), "fork cleared by the drain");
        let live = st.collect(u32::MAX, true);
        assert_eq!(live, vec![(42, 9)]);

        // Default-state vertices are omitted from snapshots but present in
        // the live collection and the converted table.
        let h2 = st.intern(100);
        let _ = h2;
        let snap = st.collect(5, false);
        assert_eq!(snap, vec![(42, 9)]);
        let mut ids = st.vertex_ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![42, 100]);
        let table = st.into_table();
        assert_eq!(table.num_vertices(), 2);
        let rec = table.get(42).unwrap_or_else(|| unreachable!());
        assert_eq!(rec.state.live, 9);
        assert_eq!(rec.state.meta.fired, 1);
    }

    fn exercise_fused<St: ShardStore<u64>>() {
        let mut st = St::with_capacity(0);
        let h = st.intern(7);
        {
            let (forked, parts) = st.fork_and_parts(h, 0);
            assert!(!forked, "epoch 0 never forks");
            *parts.live = 3;
        }
        let (forked, _) = st.fork_and_parts(h, 1);
        assert!(forked, "first event of a new epoch forks");
        let (forked, parts) = st.fork_and_parts(h, 1);
        assert!(!forked, "same epoch must not re-fork");
        assert!(parts.prev.is_none(), "new-epoch event spares the fork");
        let (forked, parts) = st.fork_and_parts(h, 0);
        assert!(!forked);
        assert_eq!(
            parts.prev.as_deref().copied(),
            Some(3),
            "old-epoch event dual-applies to the fork"
        );
    }

    fn exercise_export_restore<St: ShardStore<u64>>() {
        use remo_store::EdgeMeta;
        let mut st = St::with_capacity(0);
        let h = st.intern(1);
        {
            let (_, parts) = st.fork_and_parts(h, 0);
            *parts.live = 5;
            parts.meta.fired = 0b10;
            parts.adj.insert(2, EdgeMeta::weighted(3));
        }
        // Fork at epoch 1 so an outstanding prev rides the checkpoint.
        let _ = st.fork_and_parts(h, 1);
        let _ = st.intern(9);

        let mut restored = St::with_capacity(0);
        st.export_records(&mut |v, live, prev, meta, adj| {
            restored.restore_record(v, *live, prev.copied(), meta, adj.clone());
        });
        assert_eq!(restored.num_vertices(), 2);
        let h = restored.lookup(1).unwrap_or_else(|| unreachable!());
        assert_eq!(*restored.live(h), 5);
        assert!(
            restored.applies_to_prev(h, 0),
            "fork survives the roundtrip"
        );
        let (_, parts) = restored.fork_and_parts(h, 0);
        assert_eq!(parts.prev.as_deref().copied(), Some(5));
        assert_eq!(parts.meta.fired, 0b10);
        assert_eq!(parts.adj.get(2).map(|m| m.weight), Some(3));
    }

    #[test]
    fn dense_store_semantics() {
        exercise::<DenseStore<u64>>();
        exercise_fused::<DenseStore<u64>>();
        exercise_export_restore::<DenseStore<u64>>();
    }

    #[test]
    fn legacy_store_semantics() {
        exercise::<LegacyStore<u64>>();
        exercise_fused::<LegacyStore<u64>>();
        exercise_export_restore::<LegacyStore<u64>>();
    }

    #[test]
    fn dense_intern_memo_is_transparent() {
        let mut st: DenseStore<u64> = DenseStore::with_capacity(0);
        let a = st.intern(5);
        assert_eq!(st.intern(5), a, "memo hit");
        let b = st.intern(9);
        assert_ne!(a, b);
        assert_eq!(st.intern(5), a, "probe after memo miss");
        assert_eq!(st.intern(9), b);
        assert_eq!(st.num_vertices(), 2);
    }

    #[test]
    fn dense_into_table_preserves_outstanding_fork() {
        let mut st: DenseStore<u64> = DenseStore::with_capacity(0);
        let h = st.intern(5);
        *st.fork_and_parts(h, 0).1.live = 3;
        *st.fork_and_parts(h, 1).1.live = 4;
        let table = st.into_table();
        let rec = table.get(5).unwrap_or_else(|| unreachable!());
        assert_eq!(rec.state.live, 4);
        assert_eq!(rec.state.prev, Some(3));
        assert_eq!(rec.state.meta.forked_epoch, 1);
    }

    #[test]
    fn dense_edges_flow_through_parts() {
        use remo_store::EdgeMeta;
        let mut st: DenseStore<u64> = DenseStore::with_capacity(0);
        let h = st.intern(1);
        st.fork_and_parts(h, 0)
            .1
            .adj
            .insert(2, EdgeMeta::weighted(4));
        assert_eq!(st.fork_and_parts(h, 0).1.adj.degree(), 1);
        assert!(st.adjacency_heap_bytes() < st.heap_bytes());
    }
}
