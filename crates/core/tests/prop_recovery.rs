//! Randomised recovery-equivalence suite: for a spread of generated
//! graphs, shard counts, storage layouts, transports, checkpoint
//! intervals, and mid-stream panic points, a durable run that loses a
//! shard and recovers it (checkpoint restore + WAL replay) must be
//! indistinguishable from an uninterrupted run — byte-identical vertex
//! states, the same trigger-fire set, and exactly balanced termination
//! books.
//!
//! Deterministic by construction: a fixed-seed xorshift generator drives
//! every random draw, and the 16 case indices enumerate the full
//! (shards × layout × transport) grid, so failures reproduce by case
//! number with no shrinking machinery needed.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

/// `(states, deduplicated fire keys, raw fire count)` from one run.
type RunOutputs = (Vec<(VertexId, u64)>, BTreeSet<(usize, VertexId)>, u64);

use remo_core::{
    algorithm::codec, AlgoCtx, Algorithm, DurabilityConfig, EngineBuilder, EngineConfig, FaultPlan,
    Snapshot, StorageLayout, TransportMode, VertexId,
};

/// Max-label propagation (see `tests/chaos.rs`): the max join is
/// idempotent under the duplicated delivery that WAL replay introduces,
/// and — because `on_add` always pushes the local label across a new
/// edge — its fixpoint is independent of event interleaving, which is
/// what makes byte-identical assertions meaningful.
struct MaxLabel;

impl MaxLabel {
    fn absorb(ctx: &mut impl AlgoCtx<u64>, cand: u64) {
        let changed = ctx.apply(|s| {
            if cand > *s {
                *s = cand;
                true
            } else {
                false
            }
        });
        if changed {
            let label = *ctx.state();
            ctx.update_nbrs(&label);
        }
    }
}

impl Algorithm for MaxLabel {
    type State = u64;
    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, _val: &u64, _w: u64) {
        let cand = (ctx.vertex() + 1).max(visitor + 1);
        Self::absorb(ctx, cand);
        let label = *ctx.state();
        ctx.update_single_nbr(visitor, &label);
    }
    fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, _w: u64) {
        let cand = (ctx.vertex() + 1).max(visitor + 1).max(*value);
        Self::absorb(ctx, cand);
        let label = *ctx.state();
        ctx.update_single_nbr(visitor, &label);
    }
    fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, _visitor: VertexId, value: &u64, _w: u64) {
        Self::absorb(ctx, *value);
    }
    fn join(into: &mut u64, from: &u64) -> bool {
        if *from > *into {
            *into = *from;
            true
        } else {
            false
        }
    }
    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        codec::put_u64(*state, out);
    }
    fn decode_state(bytes: &[u8]) -> u64 {
        codec::get_u64(bytes)
    }
}

/// xorshift64* — deterministic, dependency-free, good enough to spread
/// draws across the case grid.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One generated scenario. The grid axes (shards, layout, transport) are
/// derived from the case index so all 16 combinations are always
/// covered; everything else is drawn from the seeded generator.
struct Case {
    shards: usize,
    layout: StorageLayout,
    transport: TransportMode,
    pairs: Vec<(VertexId, VertexId)>,
    vertices: u64,
    panic_shard: usize,
    panic_at: u64,
    checkpoint_every: u64,
}

fn gen_case(idx: usize, rng: &mut Rng) -> Case {
    let shards = 1 + (idx % 4);
    let layout = if (idx / 4).is_multiple_of(2) {
        StorageLayout::DenseArena
    } else {
        StorageLayout::RhhRecord
    };
    let transport = if (idx / 8).is_multiple_of(2) {
        TransportMode::Lanes
    } else {
        TransportMode::Channel
    };
    let vertices = 6 + rng.below(20);
    let edges = vertices + rng.below(vertices + 1);
    let mut pairs = Vec::with_capacity(edges as usize);
    while (pairs.len() as u64) < edges {
        let a = rng.below(vertices);
        let b = rng.below(vertices);
        if a != b {
            pairs.push((a, b));
        }
    }
    Case {
        shards,
        layout,
        transport,
        pairs,
        vertices,
        panic_shard: rng.below(shards as u64) as usize,
        panic_at: 1 + rng.below(16),
        checkpoint_every: [2, 4, 16, 100_000][rng.below(4) as usize],
    }
}

fn base_config(case: &Case) -> EngineConfig {
    EngineConfig {
        quiescence_deadline: Some(Duration::from_secs(10)),
        query_deadline: Some(Duration::from_secs(10)),
        ..EngineConfig::undirected(case.shards)
    }
    .with_storage(case.layout)
    .with_transport(case.transport)
}

fn durable_dir(case: usize) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("remo-prop-recovery-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fixpoint(states: &Snapshot<u64>) -> Vec<(VertexId, u64)> {
    states.iter().map(|(v, s)| (v, *s)).collect()
}

/// Runs one engine to its fixpoint and returns `(states, fire keys)`.
/// Trigger delivery across a crash is at-least-once with dedup key
/// `(trigger, vertex)` (see DESIGN.md §14): a fire delivered between the
/// last checkpoint and a panic is regenerated by replay because the
/// per-vertex fired bit only persists at checkpoints. Equivalence is
/// therefore asserted on the deduplicated key set, and the recovered run
/// additionally asserts the duplication is bounded by what replay can
/// regenerate.
fn run_engine(case: &Case, config: EngineConfig, expect_clean: bool) -> RunOutputs {
    let threshold = (case.vertices / 2).max(2);
    let mut builder = EngineBuilder::new(MaxLabel, config);
    builder.trigger("label-threshold", move |_, s: &u64| *s >= threshold);
    let engine = builder.build();
    engine.try_ingest_pairs(&case.pairs).unwrap();
    // Quiescence first: every fire is sent into the channel before its
    // envelope's `processed` count publishes, so a balanced probe means
    // the fire stream is complete — drain it before `try_finish`
    // consumes the engine (and with it the receiver).
    engine
        .try_await_quiescence()
        .expect("run must reach its fixpoint");
    let mut fires = Vec::new();
    while let Ok(f) = engine.trigger_events().try_recv() {
        fires.push((f.trigger, f.vertex));
    }
    let raw = fires.len() as u64;
    let result = engine.try_finish().expect("harvest must succeed");
    if expect_clean {
        assert!(
            !result.is_degraded(),
            "recovered run must not degrade: {:?}",
            result.failures
        );
    }
    result.metrics.verify_balance().unwrap();
    (fixpoint(&result.states), fires.into_iter().collect(), raw)
}

#[test]
fn recovered_runs_match_uninterrupted_runs() {
    let mut rng = Rng::new(0xD15EA5E);
    for idx in 0..16 {
        let case = gen_case(idx, &mut rng);
        eprintln!(
            "case {idx}: shards={} layout={:?} transport={:?} edges={} panic=({},{}) ckpt={}",
            case.shards,
            case.layout,
            case.transport,
            case.pairs.len(),
            case.panic_shard,
            case.panic_at,
            case.checkpoint_every
        );
        let (want_states, want_fires, want_raw) = run_engine(&case, base_config(&case), true);
        assert_eq!(
            want_fires.len() as u64,
            want_raw,
            "case {idx}: an uninterrupted run must fire at-most-once per (trigger, vertex)"
        );

        let dir = durable_dir(idx);
        let config = base_config(&case)
            .with_durability(
                DurabilityConfig::new(&dir)
                    .checkpoint_every(case.checkpoint_every)
                    .fsync(false),
            )
            .with_fault_plan(FaultPlan::panic_shard_at(case.panic_shard, case.panic_at));
        let (got_states, got_fires, _) = run_engine(&case, config, true);

        assert_eq!(
            got_states, want_states,
            "case {idx} ({} shards, {:?}, {:?}, ckpt {}): recovered fixpoint diverged",
            case.shards, case.layout, case.transport, case.checkpoint_every
        );
        assert_eq!(
            got_fires, want_fires,
            "case {idx}: recovered trigger-fire set diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The same grid without faults: durability alone (WAL + checkpoints, no
/// panic, no replay) must be invisible in every observable output.
#[test]
fn durable_fault_free_runs_match_plain_runs() {
    let mut rng = Rng::new(0xBADC0FFE);
    for idx in 0..8 {
        let case = gen_case(idx, &mut rng);
        let (want_states, want_fires, _) = run_engine(&case, base_config(&case), true);

        let dir = durable_dir(100 + idx);
        let config = base_config(&case).with_durability(
            DurabilityConfig::new(&dir)
                .checkpoint_every(case.checkpoint_every)
                .fsync(false),
        );
        let (got_states, got_fires, got_raw) = run_engine(&case, config, true);
        assert_eq!(
            got_states, want_states,
            "case {idx}: durable fixpoint diverged"
        );
        assert_eq!(
            got_fires, want_fires,
            "case {idx}: durable fire set diverged"
        );
        assert_eq!(
            got_fires.len() as u64,
            got_raw,
            "case {idx}: no replay happened, so no duplicate fires are admissible"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Regression: `drain_lanes` claims (clears) the pending bitmap before
/// draining, so a chaos panic unwinding between the claim and the drain
/// used to strand delivered batches in the rings — invisible to the bit
/// probe, wedging quiescence (~1 in 4 runs of this exact scenario before
/// the full-mesh sweep in `recover`). The case is the sparse 4-shard
/// lanes graph that originally exposed it; iterate to give the race room.
#[test]
fn lane_claim_unwind_does_not_strand_batches() {
    let mut rng = Rng::new(0xD15EA5E);
    let mut case = gen_case(0, &mut rng);
    for idx in 1..4 {
        case = gen_case(idx, &mut rng);
    }
    for iter in 0..20 {
        let dir = durable_dir(900 + iter);
        let config = base_config(&case)
            .with_durability(
                DurabilityConfig::new(&dir)
                    .checkpoint_every(case.checkpoint_every)
                    .fsync(false),
            )
            .with_fault_plan(FaultPlan::panic_shard_at(case.panic_shard, case.panic_at));
        let threshold = (case.vertices / 2).max(2);
        let mut builder = EngineBuilder::new(MaxLabel, config);
        builder.trigger("label-threshold", move |_, s: &u64| *s >= threshold);
        let engine = builder.build();
        engine.try_ingest_pairs(&case.pairs).unwrap();
        if let Err(e) = engine.try_await_quiescence() {
            let m = engine.metrics_now();
            eprintln!("iter {iter}: {e}");
            eprintln!("balance: {:?}", m.verify_balance());
            eprintln!("total: {:#?}", m.total());
            for (i, s) in m.per_shard.iter().enumerate() {
                eprintln!("shard {i}: {s:#?}");
            }
            panic!("hang reproduced");
        }
        drop(engine.try_finish());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
