//! Integration suite for the live telemetry subsystem: `metrics_now`
//! monotonicity and coherence under concurrent ingest (1–4 shards, both
//! transports), the zero-overhead-when-off contract, envelope-balance
//! verification on clean runs, and the Prometheus/JSON exporter surface.
//!
//! The seqlock snapshot cells promise two things these tests pin down:
//! a reader never observes a torn (mixed-publication) counter set, and
//! successive reads of one shard's cell never go backwards — each read is
//! some real published state, and publications are program-ordered.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use remo_core::{
    AlgoCtx, Algorithm, Engine, EngineConfig, ShardMetrics, TelemetryConfig, TransportMode,
    VertexId,
};

/// §II-A degree counting — every topology event fans an envelope to each
/// endpoint, so counters, service samples, and the balance equation all
/// get real traffic.
struct Degree;

impl Algorithm for Degree {
    type State = u64;
    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: u64) {
        ctx.apply(|d| {
            *d += 1;
            true
        });
    }
    fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: u64) {
        ctx.apply(|d| {
            *d += 1;
            true
        });
    }
    fn join(into: &mut u64, from: &u64) -> bool {
        if *from > *into {
            *into = *from;
            true
        } else {
            false
        }
    }
}

/// Deterministic pseudo-random edge stream (xorshift) over a small vertex
/// range — dense enough that every shard of a ≤4-way engine owns work.
fn edge_stream(n: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut x = seed | 1;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..n)
        .map(|_| {
            let s = step() % 509;
            let mut d = step() % 509;
            if d == s {
                d = (d + 1) % 509;
            }
            (s, d)
        })
        .collect()
}

fn counter_words(m: &ShardMetrics) -> [u64; ShardMetrics::COUNTER_WORDS] {
    let mut w = [0u64; ShardMetrics::COUNTER_WORDS];
    m.to_words(&mut w);
    w
}

/// Counters are increment-only and each shard's cell is single-writer, so
/// any interleaving of snapshots must be elementwise nondecreasing per
/// shard. A violation means a torn or reordered seqlock read.
fn assert_snapshots_monotone(snaps: &[remo_core::RunMetrics], ctx: &str) {
    for pair in snaps.windows(2) {
        for (shard, (prev, next)) in pair[0].per_shard.iter().zip(&pair[1].per_shard).enumerate() {
            let (pw, nw) = (counter_words(prev), counter_words(next));
            for (i, name) in ShardMetrics::COUNTER_NAMES.iter().enumerate() {
                assert!(
                    nw[i] >= pw[i],
                    "{ctx}: shard {shard} counter `{name}` went backwards ({} -> {})",
                    pw[i],
                    nw[i]
                );
            }
        }
    }
}

/// Polls `metrics_now` from a dedicated thread while the controller
/// ingests and quiesces, across 1–4 shards and both transports: every
/// observed snapshot must be coherent (monotone per shard) and the final
/// snapshot must agree with the harvested report.
#[test]
fn metrics_now_is_monotone_under_concurrent_ingest() {
    let edges = edge_stream(4_000, 0x5eed);
    for transport in [TransportMode::Lanes, TransportMode::Channel] {
        for shards in 1..=4usize {
            let config = EngineConfig::undirected(shards).with_transport(transport);
            let engine = Engine::new(Degree, config);
            let hub = engine.telemetry();
            let stop = Arc::new(AtomicBool::new(false));
            let reader = {
                let hub = hub.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut snaps = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        snaps.push(hub.metrics_now());
                        std::thread::yield_now();
                    }
                    snaps.push(hub.metrics_now());
                    snaps
                })
            };
            for chunk in edges.chunks(1_000) {
                engine.try_ingest_pairs(chunk).unwrap();
                engine.try_await_quiescence().unwrap();
                // Mid-run probe from the controller side too: must agree
                // with itself (total == sum of shards) at every poll.
                let m = engine.metrics_now();
                let total = m.total().events_processed();
                let by_shard: u64 = m.per_shard.iter().map(|s| s.events_processed()).sum();
                assert_eq!(total, by_shard);
            }
            stop.store(true, Ordering::Relaxed);
            let snaps = reader.join().unwrap();
            let ctx = format!("{transport:?} P={shards}");
            assert_snapshots_monotone(&snaps, &ctx);

            let result = engine.try_finish().unwrap();
            assert!(result.failures.is_empty());
            result.metrics.verify_balance().unwrap();
            // The hub outlives the engine, frozen at each shard's final
            // report-time publication: processed counts match the harvest
            // exactly, and no cell counter exceeds its harvested value.
            let last = hub.metrics_now();
            for (shard, (cell, harvested)) in last
                .per_shard
                .iter()
                .zip(&result.metrics.per_shard)
                .enumerate()
            {
                assert_eq!(
                    cell.events_processed(),
                    harvested.events_processed(),
                    "{ctx}: shard {shard} final cell trails the harvest"
                );
                let (cw, hw) = (counter_words(cell), counter_words(harvested));
                for (i, name) in ShardMetrics::COUNTER_NAMES.iter().enumerate() {
                    assert!(
                        cw[i] <= hw[i],
                        "{ctx}: shard {shard} cell `{name}` exceeds harvest"
                    );
                }
            }
        }
    }
}

/// `TelemetryConfig::off()` must cost nothing and change nothing: the
/// snapshot cells stay zero, every latency histogram stays empty, and the
/// fixpoint plus the harvested deterministic counters are identical to a
/// fully-instrumented run over the same stream.
#[test]
fn telemetry_off_is_invisible_to_the_computation() {
    let edges = edge_stream(3_000, 0xca11);
    let run = |telemetry: TelemetryConfig| {
        let config = EngineConfig::undirected(2).with_telemetry(telemetry);
        let engine = Engine::new(Degree, config);
        let hub = engine.telemetry();
        engine.try_ingest_pairs(&edges).unwrap();
        engine.try_await_quiescence().unwrap();
        let mid = engine.metrics_now();
        let result = engine.try_finish().unwrap();
        assert!(result.failures.is_empty());
        (mid, result, hub)
    };

    let (mid_off, off, hub_off) = run(TelemetryConfig::off());
    let (_, on, _) = run(TelemetryConfig::default());

    // Off: nothing published, nothing sampled — but the harvest itself is
    // untouched, and the balance equation still closes (controller_sent
    // comes from the termination counters, not the cells).
    assert_eq!(mid_off.total(), ShardMetrics::default());
    assert!(mid_off.service.is_empty() && mid_off.flush.is_empty());
    assert!(mid_off.quiesce.is_empty() && mid_off.ingest_fixpoint.is_empty());
    assert!(off.metrics.service.is_empty());
    assert!(off.metrics.quiesce.is_empty());
    assert!(off.metrics.ingest_fixpoint.is_empty());
    off.metrics.verify_balance().unwrap();
    assert!(off.metrics.total().events_processed() > 0);
    assert!(hub_off.metrics_now().total() == ShardMetrics::default());

    // Same fixpoint either way: telemetry may observe, never perturb.
    let mut a = off.states.into_vec();
    let mut b = on.states.into_vec();
    a.sort_unstable_by_key(|&(v, _)| v);
    b.sort_unstable_by_key(|&(v, _)| v);
    assert_eq!(a, b);

    // Deterministic work counters agree exactly (scheduling-sensitive ones
    // like parks/unparks/lane traffic legitimately differ).
    let (ta, tb) = (off.metrics.total(), on.metrics.total());
    assert_eq!(ta.topo_ingested, tb.topo_ingested);
    assert_eq!(ta.edges_inserted, tb.edges_inserted);
    assert_eq!(ta.duplicate_edges, tb.duplicate_edges);
}

/// With the sampling shift at 0 every processed envelope is timed: the
/// four histograms populate, quantiles come out ordered, and the summary
/// triple is exposed through the harvested `RunMetrics`.
#[test]
fn histograms_populate_and_quantiles_are_ordered() {
    let edges = edge_stream(2_000, 0x600d);
    let config =
        EngineConfig::undirected(2).with_telemetry(TelemetryConfig::default().with_sample_shift(0));
    let engine = Engine::new(Degree, config);
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();
    engine.try_ingest_pairs(&edges[..64]).unwrap();
    engine.try_await_quiescence().unwrap();
    let result = engine.try_finish().unwrap();
    let m = &result.metrics;
    assert_eq!(m.service.count, m.total().events_processed());
    assert!(m.quiesce.count >= 2, "one sample per await_quiescence");
    assert!(m.ingest_fixpoint.count >= 2, "one sample per settled epoch");
    for h in [&m.service, &m.quiesce, &m.ingest_fixpoint] {
        let (p50, p99, p999) = h.quantiles_us();
        assert!(p50 <= p99 && p99 <= p999, "quantiles out of order");
        assert!(p999 > 0.0);
        assert_eq!(h.count, h.buckets.iter().sum::<u64>());
    }
}

/// Every exported Prometheus family renders, and every sample line parses
/// as `name{labels} value` with a finite float value — the same check the
/// CI smoke job runs against the live dashboard's scrape.
#[test]
fn prometheus_rendering_is_parseable_and_complete() {
    let edges = edge_stream(1_500, 0xfeed);
    let engine = Engine::new(Degree, EngineConfig::undirected(2));
    let hub = engine.telemetry();
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let text = hub.render_prometheus();
    drop(engine.try_finish().unwrap());

    for name in ShardMetrics::COUNTER_NAMES {
        assert!(
            text.contains(&format!("# TYPE remo_{name}_total counter")),
            "missing counter family remo_{name}_total"
        );
        assert!(text.contains(&format!("remo_{name}_total{{shard=\"0\"}}")));
    }
    for family in [
        "remo_uptime_seconds",
        "remo_events_per_sec",
        "remo_park_ratio",
        "remo_in_flight_envelopes",
        "remo_ingest_backlog",
        "remo_epoch",
        "remo_failed_shards",
        "remo_queue_depth",
        "remo_lane_occupancy",
        "remo_service_time_seconds",
        "remo_flush_latency_seconds",
        "remo_quiesce_latency_seconds",
        "remo_ingest_fixpoint_seconds",
    ] {
        assert!(text.contains(family), "missing family {family}");
    }
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (metric, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("unparseable exposition line: {line:?}");
        });
        assert!(metric.starts_with("remo_"), "bad metric name in {line:?}");
        let v: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad sample value in {line:?}"));
        assert!(v.is_finite());
    }
}

/// The JSON rendering is structurally sound (balanced delimiters outside
/// strings, one top-level object) and carries every counter name, the
/// per-shard array, and all four histogram summaries.
#[test]
fn json_rendering_is_well_formed() {
    let edges = edge_stream(1_500, 0xbead);
    let engine = Engine::new(Degree, EngineConfig::undirected(3));
    let hub = engine.telemetry();
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let json = hub.render_json();
    drop(engine.try_finish().unwrap());

    assert!(json.starts_with('{') && json.ends_with('}'));
    let mut depth = 0i64;
    let mut in_str = false;
    let mut prev = '\0';
    for c in json.chars() {
        match c {
            '"' if prev != '\\' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close in JSON rendering");
            }
            _ => {}
        }
        prev = c;
    }
    assert_eq!(depth, 0, "unbalanced JSON rendering");
    assert!(!in_str, "unterminated string in JSON rendering");
    for key in [
        "\"totals\"",
        "\"per_shard\"",
        "\"histograms\"",
        "\"service\"",
        "\"flush\"",
        "\"quiesce\"",
        "\"ingest_fixpoint\"",
        "\"p999_us\"",
    ] {
        assert!(json.contains(key), "missing key {key}");
    }
    for name in ShardMetrics::COUNTER_NAMES {
        assert!(
            json.contains(&format!("\"{name}\":")),
            "missing counter {name}"
        );
    }
    // Three shards -> three per_shard objects, each with a queue gauge.
    assert_eq!(json.matches("\"queue_depth\":").count(), 3);
}

/// Per-shard phase accounting: with the default config every nanosecond a
/// shard thread spends between loop laps is charged to exactly one
/// `phase_*_ns` counter *and* to `phase_busy_ns`, so the breakdown must
/// decompose the busy wall almost exactly (≥95% — the charge points are
/// lockstep, so the only slack is the final partial lap). The counters
/// flow through both exporters like every other `shard_metrics!` entry.
#[test]
fn phase_breakdown_decomposes_busy_wall_and_exports() {
    let edges = edge_stream(4_000, 0x7157);
    let engine = Engine::new(Degree, EngineConfig::undirected(2));
    let hub = engine.telemetry();
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let prom = hub.render_prometheus();
    let json = hub.render_json();
    let result = engine.try_finish().unwrap();
    assert!(result.failures.is_empty());
    result.metrics.verify_balance().unwrap();

    let mut charged_shards = 0;
    for (shard, m) in result.metrics.per_shard.iter().enumerate() {
        if m.phase_busy_ns == 0 {
            continue;
        }
        charged_shards += 1;
        let sum = m.phase_sum_ns();
        assert!(
            sum as f64 >= 0.95 * m.phase_busy_ns as f64,
            "shard {shard}: phase sum {sum}ns covers <95% of busy {}ns",
            m.phase_busy_ns
        );
        // Real work happened, so the work phases can't all be zero.
        assert!(
            m.phase_process_ns + m.phase_drain_ns + m.phase_flush_ns > 0,
            "shard {shard}: processed events but charged no work phase"
        );
    }
    assert!(charged_shards > 0, "no shard accumulated busy time");

    // Exporters carry the new counters like any other shard metric.
    for name in [
        "phase_drain_ns",
        "phase_process_ns",
        "phase_flush_ns",
        "phase_spin_ns",
        "phase_park_ns",
        "phase_checkpoint_ns",
        "phase_replay_ns",
        "phase_busy_ns",
    ] {
        assert!(
            prom.contains(&format!("remo_{name}_total{{shard=\"0\"}}")),
            "missing Prometheus sample for {name}"
        );
        assert!(json.contains(&format!("\"{name}\":")), "missing JSON key {name}");
    }
}

/// `with_phase_accounting(false)` disarms the clock entirely: every phase
/// counter stays zero while the computation and its other counters are
/// unaffected.
#[test]
fn phase_accounting_off_charges_nothing() {
    let edges = edge_stream(1_500, 0x0ff0);
    let config = EngineConfig::undirected(2)
        .with_telemetry(TelemetryConfig::default().with_phase_accounting(false));
    let engine = Engine::new(Degree, config);
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let result = engine.try_finish().unwrap();
    let t = result.metrics.total();
    assert!(t.events_processed() > 0);
    assert_eq!(t.phase_busy_ns, 0);
    assert_eq!(result.metrics.per_shard.iter().map(ShardMetrics::phase_sum_ns).sum::<u64>(), 0);
}

/// Derived gauges stay self-consistent with the snapshot cells and the
/// engine's shape.
#[test]
fn gauges_track_engine_shape() {
    let edges = edge_stream(1_000, 0x9a6e);
    let engine = Engine::new(Degree, EngineConfig::undirected(4));
    let hub = engine.telemetry();
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let g = hub.gauges();
    assert_eq!(g.queue_depth.len(), 4);
    assert_eq!(g.lane_occupancy.len(), 4);
    assert_eq!(g.failed_shards, 0);
    assert!(g.park_ratio >= 0.0 && g.park_ratio <= 1.0);
    assert!(g.events_processed > 0, "cells published during the run");
    let result = engine.try_finish().unwrap();
    assert!(g.events_processed <= result.metrics.total().events_processed());
}
