//! The concurrency-transparency claim (§II-D): the concurrent engine and
//! the sequential reference engine — prior work's one-event-at-a-time
//! abstract machine — reach identical fixpoints for REMO algorithms.
//! Also covers the live point-query API (§VI-A's "any vertices' local
//! state can be observed in constant time").

use remo_core::{AlgoCtx, Algorithm, Engine, EngineConfig, SequentialEngine, VertexId, Weight};

/// Min-label flood (component min id + 1).
#[derive(Debug, Default, Clone, Copy)]
struct MinFlood;

impl Algorithm for MinFlood {
    type State = u64;
    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: Weight) {
        let me = ctx.vertex() + 1;
        ctx.apply(move |s| {
            if *s == 0 || *s > me {
                *s = me;
                true
            } else {
                false
            }
        });
    }
    fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, v: VertexId, val: &u64, w: Weight) {
        self.on_add(ctx, v, val, w);
        self.on_update(ctx, v, val, w);
    }
    fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, _w: Weight) {
        let mine = *ctx.state();
        let theirs = *value;
        if theirs != 0 && (mine == 0 || theirs < mine) {
            if ctx.apply(move |s| {
                if *s == 0 || *s > theirs {
                    *s = theirs;
                    true
                } else {
                    false
                }
            }) {
                ctx.update_nbrs(&theirs);
            }
        } else if mine != 0 && (theirs == 0 || mine < theirs) {
            ctx.update_single_nbr(visitor, &mine);
        }
    }
}

fn random_edges(n: u64, m: usize, seed: u64) -> Vec<(u64, u64)> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .filter(|&(a, b)| a != b)
        .collect()
}

#[test]
fn sequential_and_concurrent_agree() {
    for seed in [1u64, 2, 3] {
        let edges = random_edges(60, 300, seed);

        let mut seq = SequentialEngine::undirected(MinFlood);
        seq.apply_pairs(&edges);
        let sequential = seq.states();

        for shards in [1usize, 4] {
            let engine = Engine::new(MinFlood, EngineConfig::undirected(shards));
            engine.try_ingest_pairs(&edges).unwrap();
            let concurrent = engine.try_finish().unwrap().states.into_vec();
            assert_eq!(sequential, concurrent, "seed {seed}, P={shards}");
        }
    }
}

#[test]
fn sequential_event_counts_match_concurrent_topology() {
    let edges = random_edges(40, 150, 9);
    let mut seq = SequentialEngine::undirected(MinFlood);
    seq.apply_pairs(&edges);

    let engine = Engine::new(MinFlood, EngineConfig::undirected(3));
    engine.try_ingest_pairs(&edges).unwrap();
    let r = engine.try_finish().unwrap();

    assert_eq!(seq.num_edges(), r.num_edges);
    assert_eq!(seq.metrics().topo_ingested, r.metrics.total().topo_ingested);
    assert_eq!(
        seq.metrics().edges_inserted,
        r.metrics.total().edges_inserted
    );
}

#[test]
fn point_query_returns_live_state() {
    let engine = Engine::new(MinFlood, EngineConfig::undirected(3));
    engine.try_ingest_pairs(&[(5, 6), (6, 7)]).unwrap();
    engine.try_await_quiescence().unwrap();
    assert_eq!(engine.try_local_state(6).unwrap(), Some(6)); // min id 5 -> label 6
    assert_eq!(
        engine.try_local_state(999).unwrap(),
        None,
        "untouched vertex"
    );
    // Query mid-stream: must return the current monotone bound, never
    // something above it.
    engine.try_ingest_pairs(&[(0, 5)]).unwrap();
    let bound = engine.try_local_state(6).unwrap().unwrap();
    assert!(bound == 6 || bound == 1, "monotone bound, got {bound}");
    engine.try_await_quiescence().unwrap();
    assert_eq!(engine.try_local_state(6).unwrap(), Some(1));
    let _ = engine.try_finish().unwrap();
}

#[test]
fn point_queries_during_heavy_ingest_do_not_deadlock() {
    let edges = random_edges(200, 5_000, 4);
    let engine = Engine::new(MinFlood, EngineConfig::undirected(4));
    engine.try_ingest_pairs(&edges).unwrap();
    for v in 0..50u64 {
        let _ = engine.try_local_state(v).unwrap();
    }
    let _ = engine.try_finish().unwrap();
}
