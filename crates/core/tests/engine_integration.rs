//! Engine-level integration tests: the infrastructure guarantees of
//! §III (event routing, undirected serialization, quiescence detection in
//! both modes, continuous snapshots, triggers) exercised through small
//! purpose-built algorithms, independent of the paper's headline algorithms.

use remo_core::{
    AlgoCtx, Algorithm, Engine, EngineBuilder, EngineConfig, TerminationMode, TopoEvent, VertexId,
    Weight,
};

/// Counts add/reverse-add events per vertex (monotone counter).
#[derive(Debug, Default, Clone, Copy)]
struct TouchCount;

impl Algorithm for TouchCount {
    type State = u64;
    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: Weight) {
        ctx.apply(|s| {
            *s += 1;
            true
        });
    }
    fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: Weight) {
        ctx.apply(|s| {
            *s += 1;
            true
        });
    }
}

/// Min-label flood: every vertex converges to the minimum vertex id in its
/// component (a classic monotone fixpoint, cheap to oracle).
#[derive(Debug, Default, Clone, Copy)]
struct MinLabel;

impl Algorithm for MinLabel {
    type State = u64;

    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: Weight) {
        let me = ctx.vertex() + 1; // avoid the 0 = bottom sentinel
        ctx.apply(move |s| {
            if *s == 0 || *s > me {
                *s = me;
                true
            } else {
                false
            }
        });
    }

    fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, v: VertexId, val: &u64, w: Weight) {
        self.on_add(ctx, v, val, w);
        self.on_update(ctx, v, val, w);
    }

    fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, _w: Weight) {
        let mine = *ctx.state();
        let theirs = *value;
        if theirs != 0 && (mine == 0 || theirs < mine) {
            if ctx.apply(move |s| {
                if *s == 0 || *s > theirs {
                    *s = theirs;
                    true
                } else {
                    false
                }
            }) {
                ctx.update_nbrs(&theirs);
            }
        } else if mine != 0 && (theirs == 0 || mine < theirs) {
            ctx.update_single_nbr(visitor, &mine);
        }
    }
}

fn ring_edges(n: u64) -> Vec<(u64, u64)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

#[test]
fn undirected_add_produces_symmetric_touches() {
    let engine = Engine::new(TouchCount, EngineConfig::undirected(3));
    engine.try_ingest_pairs(&[(1, 2)]).unwrap();
    let r = engine.try_finish().unwrap();
    assert_eq!(r.states.get(1), Some(&1));
    assert_eq!(r.states.get(2), Some(&1));
    assert_eq!(r.num_edges, 2, "undirected edge stored in both directions");
}

#[test]
fn directed_add_touches_only_source() {
    let engine = Engine::new(TouchCount, EngineConfig::directed(3));
    engine.try_ingest_pairs(&[(1, 2)]).unwrap();
    let r = engine.try_finish().unwrap();
    assert_eq!(r.states.get(1), Some(&1));
    assert_eq!(r.states.get(2), None, "no reverse-add in directed mode");
    assert_eq!(r.num_edges, 1);
}

#[test]
fn min_label_converges_on_every_shard_count() {
    let edges = ring_edges(64);
    let mut reference: Option<Vec<(u64, u64)>> = None;
    for shards in [1usize, 2, 3, 4, 8] {
        let engine = Engine::new(MinLabel, EngineConfig::undirected(shards));
        engine.try_ingest_pairs(&edges).unwrap();
        let states = engine.try_finish().unwrap().states.into_vec();
        for &(_, label) in &states {
            assert_eq!(label, 1, "ring must flood to min id + 1 at P={shards}");
        }
        match &reference {
            None => reference = Some(states),
            Some(r) => assert_eq!(r, &states, "shard count changed the fixpoint"),
        }
    }
}

#[test]
fn multi_stream_splits_converge_identically() {
    let edges = ring_edges(50);
    let engine_a = Engine::new(MinLabel, EngineConfig::undirected(4));
    engine_a.try_ingest_pairs(&edges).unwrap();
    let a = engine_a.try_finish().unwrap().states.into_vec();

    // Same edges, adversarial split: all edges in one stream, then reversed
    // order in many tiny streams.
    let engine_b = Engine::new(MinLabel, EngineConfig::undirected(4));
    let mut streams: Vec<Vec<TopoEvent>> = vec![Vec::new(); 4];
    for (i, &(s, d)) in edges.iter().rev().enumerate() {
        streams[(i / 5) % 4].push(TopoEvent::new(s, d));
    }
    engine_b.try_ingest(streams).unwrap();
    let b = engine_b.try_finish().unwrap().states.into_vec();
    assert_eq!(a, b);
}

#[test]
fn safra_mode_reaches_same_fixpoint_and_announces() {
    let edges = ring_edges(40);
    let config = EngineConfig {
        termination: TerminationMode::Safra,
        ..EngineConfig::undirected(3)
    };
    let engine = Engine::new(MinLabel, config);
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let r = engine.try_finish().unwrap();
    for (_, label) in r.states.iter() {
        assert_eq!(*label, 1);
    }
    assert!(
        r.metrics.total().safra_tokens > 0,
        "Safra detector never circulated a token"
    );
}

#[test]
fn quiescence_then_more_work_then_quiescence() {
    let engine = Engine::new(TouchCount, EngineConfig::undirected(2));
    engine.try_ingest_pairs(&[(0, 1)]).unwrap();
    engine.try_await_quiescence().unwrap();
    engine.try_ingest_pairs(&[(0, 2), (2, 3)]).unwrap();
    engine.try_await_quiescence().unwrap();
    let r = engine.try_finish().unwrap();
    assert_eq!(r.states.get(0), Some(&2));
    assert_eq!(r.states.get(3), Some(&1));
}

#[test]
fn snapshot_mid_ingest_excludes_later_epoch() {
    // Ingest one batch; snapshot; ingest a second batch. The snapshot must
    // reflect only the first batch even though collection overlaps batch 2.
    let mut engine = Engine::new(TouchCount, EngineConfig::undirected(2));
    engine.try_ingest_pairs(&[(0, 1), (0, 2)]).unwrap();
    engine.try_await_quiescence().unwrap();

    // Start the second batch *before* snapshotting so its (new-epoch) events
    // interleave with collection.
    engine.try_ingest_pairs(&[(0, 3), (0, 4), (0, 5)]).unwrap();
    let snap = engine.try_snapshot().unwrap();
    let r = engine.try_finish().unwrap();

    // Snapshot: vertex 0 had exactly 2 touches at the boundary... except the
    // second batch may have partially landed in the old epoch: shards tag
    // stream pulls with the epoch *at pull time*, and the bump happens
    // inside snapshot(). What IS guaranteed: snapshot counts <= final
    // counts, and the final state sees everything.
    let snap0 = snap.get(0).copied().unwrap_or(0);
    assert!(
        (2..=5).contains(&snap0),
        "snapshot count {snap0} out of range"
    );
    assert_eq!(r.states.get(0), Some(&5));
}

#[test]
fn snapshot_boundary_is_exact_when_quiesced() {
    // With the engine quiescent, a snapshot is exactly the state so far and
    // later events don't leak in.
    let mut engine = Engine::new(TouchCount, EngineConfig::undirected(2));
    engine.try_ingest_pairs(&[(0, 1), (0, 2)]).unwrap();
    engine.try_await_quiescence().unwrap();
    let snap = engine.try_snapshot().unwrap();
    engine.try_ingest_pairs(&[(0, 3), (0, 4)]).unwrap();
    let r = engine.try_finish().unwrap();
    assert_eq!(snap.get(0), Some(&2));
    assert_eq!(snap.get(3), None, "vertex 3 did not exist at the boundary");
    assert_eq!(r.states.get(0), Some(&4));
}

#[test]
fn consecutive_snapshots_are_monotone() {
    let mut engine = Engine::new(TouchCount, EngineConfig::undirected(4));
    let mut last = 0u64;
    for batch in 0..4u64 {
        let pairs: Vec<(u64, u64)> = (0..50).map(|i| (7, 1000 + batch * 50 + i)).collect();
        engine.try_ingest_pairs(&pairs).unwrap();
        let snap = engine.try_snapshot().unwrap();
        let now = snap.get(7).copied().unwrap_or(0);
        assert!(now >= last, "vertex 7 went backwards: {last} -> {now}");
        last = now;
    }
    let r = engine.try_finish().unwrap();
    assert_eq!(r.states.get(7), Some(&200));
}

#[test]
fn triggers_fire_exactly_once_with_causal_seq() {
    let mut builder = EngineBuilder::new(TouchCount, EngineConfig::undirected(2));
    let t0 = builder.trigger("t>=1", |_, s: &u64| *s >= 1);
    let t1 = builder.trigger("t>=3", |_, s: &u64| *s >= 3);
    let engine = builder.build();
    engine
        .try_ingest_pairs(&[(9, 1), (9, 2), (9, 3), (9, 4)])
        .unwrap();
    engine.try_await_quiescence().unwrap();
    let fires: Vec<_> = engine.trigger_events().try_iter().collect();
    // t0 fires for every touched vertex (5 of them), t1 only for vertex 9.
    let t0_fires: Vec<_> = fires.iter().filter(|f| f.trigger == t0).collect();
    let t1_fires: Vec<_> = fires.iter().filter(|f| f.trigger == t1).collect();
    assert_eq!(t0_fires.len(), 5);
    assert_eq!(t1_fires.len(), 1);
    assert_eq!(t1_fires[0].vertex, 9);
    drop(engine);
}

#[test]
fn removal_events_update_topology() {
    let engine = Engine::new(TouchCount, EngineConfig::undirected(2));
    engine.try_ingest_pairs(&[(0, 1), (0, 2)]).unwrap();
    engine.try_await_quiescence().unwrap();
    engine.try_delete_pairs(&[(0, 1)]).unwrap();
    let r = engine.try_finish().unwrap();
    // 4 directed edges added, 2 removed.
    assert_eq!(r.num_edges, 2);
    assert_eq!(r.metrics.total().edges_removed, 2);
}

#[test]
fn duplicate_edges_are_deduped_in_topology() {
    let engine = Engine::new(TouchCount, EngineConfig::undirected(1));
    engine.try_ingest_pairs(&[(0, 1), (0, 1), (1, 0)]).unwrap();
    let r = engine.try_finish().unwrap();
    assert_eq!(r.num_edges, 2, "one undirected edge = two directed records");
    assert!(r.metrics.total().duplicate_edges > 0);
}

#[test]
fn heavy_fanout_stress_with_many_shards() {
    // A star graph pushes every event through the hub's shard; make sure
    // nothing deadlocks and counts are exact.
    let n: u64 = 5_000;
    let pairs: Vec<(u64, u64)> = (1..=n).map(|i| (0, i)).collect();
    let engine = Engine::new(TouchCount, EngineConfig::undirected(8));
    engine.try_ingest_pairs(&pairs).unwrap();
    let r = engine.try_finish().unwrap();
    assert_eq!(r.states.get(0), Some(&n));
    assert_eq!(r.metrics.total().topo_ingested, n);
    assert_eq!(r.num_vertices as u64, n + 1);
}

#[test]
fn init_routes_to_owning_shard() {
    #[derive(Debug, Default)]
    struct InitMark;
    impl Algorithm for InitMark {
        type State = u64;
        fn init(&self, ctx: &mut impl AlgoCtx<u64>) {
            ctx.apply(|s| {
                *s = 42;
                true
            });
        }
    }
    let engine = Engine::new(InitMark, EngineConfig::undirected(4));
    for v in 0..16u64 {
        engine.try_init_vertex(v).unwrap();
    }
    let r = engine.try_finish().unwrap();
    for v in 0..16u64 {
        assert_eq!(r.states.get(v), Some(&42), "vertex {v}");
    }
}
